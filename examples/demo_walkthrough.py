"""The demo walkthrough: a textual re-enactment of the paper's §4.

Reproduces, pane by pane, what the VLDB demo showed on screen:

1. posing continuous queries (Fig. 2) and watching the optimizer turn
   a one-time plan into a continuous plan;
2. the query network view (Fig. 3): receptors, baskets, factories,
   emitters, and where tuples currently live;
3. pause/resume of individual queries and streams;
4. the two execution modes compared on the same sliding-window query;
5. the analysis pane (Fig. 4): elapsed time, rates, cache statistics.

Run::

    python examples/demo_walkthrough.py
"""

from repro import DataCellEngine, RateSource
from repro.streams.generators import sensor_rows


def banner(text: str) -> None:
    print()
    print("=" * 70)
    print(text)
    print("=" * 70)


def main() -> None:
    engine = DataCellEngine()
    engine.execute("CREATE STREAM sensors (sensor_id INT, room INT, "
                   "temperature FLOAT, humidity FLOAT)")
    engine.execute("CREATE TABLE rooms (room INT, name VARCHAR(16), "
                   "min_temp FLOAT, max_temp FLOAT)")
    engine.execute("INSERT INTO rooms VALUES "
                   "(0,'lab',15.0,26.0), (1,'office',17.0,27.0), "
                   "(2,'server-room',19.0,28.0), (3,'hall',21.0,29.0)")

    banner("1. Posing queries — plan transformation (demo Fig. 2)")
    query = engine.register_continuous(
        "SELECT r.name, avg(s.temperature) AS avg_temp "
        "FROM sensors [RANGE 120 SLIDE 30] s, rooms r "
        "WHERE s.room = r.room GROUP BY r.name ORDER BY r.name",
        name="room_watch")
    print(engine.explain("room_watch"))

    banner("2. Query network (demo Fig. 3)")
    engine.register_continuous(
        "SELECT sensor_id, temperature FROM sensors "
        "WHERE temperature > 24", name="hot_alerts")
    engine.attach_source("sensors",
                         RateSource(sensor_rows(600), rate=300.0))
    engine.run_for(1000)
    print(engine.monitor.network())

    banner("3. Pause and resume")
    engine.pause_query("hot_alerts")
    before = len(engine.results("hot_alerts"))
    engine.run_for(400)
    print(f"hot_alerts paused: still {before} batches after 400ms "
          f"(now {len(engine.results('hot_alerts'))})")
    engine.resume_query("hot_alerts")
    engine.run_for(200)
    print(f"resumed: {len(engine.results('hot_alerts'))} batches — "
          f"it caught up on the buffered tuples")
    engine.run_until_drained()

    banner("4. Two execution modes on one query")
    rows = sensor_rows(4000, seed=9)
    for mode in ("reeval", "incremental"):
        other = DataCellEngine()
        other.execute("CREATE STREAM sensors (sensor_id INT, room INT, "
                      "temperature FLOAT, humidity FLOAT)")
        q = other.register_continuous(
            "SELECT room, avg(temperature) FROM sensors "
            "[RANGE 800 SLIDE 100] GROUP BY room", mode=mode, name="q")
        other.attach_source("sensors", RateSource(rows, rate=1e6))
        other.run_until_drained()
        f = q.factory
        print(f"  {mode:>11}: {f.fires} fires, "
              f"{f.busy_seconds * 1000:.1f}ms busy "
              f"({f.busy_seconds / f.fires * 1e3:.3f} ms/fire)")
    print("  (same results, different work — see benchmarks/ for the "
          "full sweeps)")

    banner("5. Analysis pane (demo Fig. 4)")
    print(engine.monitor.analysis())

    banner("Done")
    print("latest room averages:")
    print(engine.results("room_watch").latest().pretty())


if __name__ == "__main__":
    main()
