"""Quickstart: a standing query over a sensor stream in ~30 lines.

Run::

    python examples/quickstart.py
"""

from repro import DataCellEngine, RateSource
from repro.streams.generators import sensor_rows


def main() -> None:
    engine = DataCellEngine()

    # streams are declared like tables — DataCell extends the SQL DDL
    engine.execute(
        "CREATE STREAM sensors (sensor_id INT, room INT, "
        "temperature FLOAT, humidity FLOAT)")

    # a continuous query: sliding window of 200 tuples, sliding by 50;
    # 'auto' picks incremental execution because the window slides
    query = engine.register_continuous(
        "SELECT room, avg(temperature) AS avg_temp, count(*) AS n "
        "FROM sensors [RANGE 200 SLIDE 50] "
        "GROUP BY room ORDER BY room",
        name="room_temps")
    print(f"registered {query.name!r} in {query.mode!r} mode\n")

    # attach a rate-controlled source and drive the Petri net
    engine.attach_source("sensors",
                         RateSource(sensor_rows(1000), rate=500.0))
    engine.run_until_drained()

    sink = engine.results("room_temps")
    print(f"{len(sink)} window results; latest:")
    print(sink.latest().pretty())

    # the same engine still answers one-time SQL — here against the
    # tuples currently retained in the stream's basket
    print("\none-time query over the live basket:")
    print(engine.query(
        "SELECT count(*) AS retained FROM sensors").pretty())

    # and the demo's analysis pane
    print()
    print(engine.monitor.analysis())


if __name__ == "__main__":
    main()
