"""Market-data analytics: VWAP, volatility and cross-stream screens.

A finance-flavored scenario exercising the newer SQL surface:

* ``vwap`` — volume-weighted average price per symbol per sliding
  window (incremental aggregate over an expression);
* ``volatility`` — per-symbol STDDEV of prices (a mergeable
  three-moment partial state in incremental mode);
* ``watched`` — a semi-join screen: only symbols on a persistent
  watchlist pass (``IN (SELECT ...)``);
* ``spikes`` — a chained query network: per-window stats flow into an
  output basket that a second standing query screens for volatility
  spikes.

Run::

    python examples/market_ticks.py
"""

from repro import DataCellEngine, RateSource
from repro.streams.generators import TICKS_SCHEMA, tick_rows


def main() -> None:
    engine = DataCellEngine()
    engine.execute(TICKS_SCHEMA)
    engine.execute("CREATE TABLE watchlist (symbol VARCHAR(8))")
    engine.execute("INSERT INTO watchlist VALUES ('ACME'), ('UMBR')")

    engine.register_continuous(
        "SELECT symbol, sum(price * volume) / sum(volume) AS vwap, "
        "sum(volume) AS vol FROM ticks [RANGE 600 SLIDE 150] "
        "GROUP BY symbol ORDER BY symbol",
        name="vwap")

    # stage 1 of the chained network: stats into an output basket
    engine.register_continuous(
        "SELECT symbol, stddev(price) AS sd, avg(price) AS mean "
        "FROM ticks [RANGE 600 SLIDE 150] GROUP BY symbol",
        name="volatility", output_stream="volstats")

    # stage 2: screen the derived stream for relative volatility spikes
    engine.register_continuous(
        "SELECT symbol, sd / mean AS rel_vol FROM volstats "
        "WHERE sd / mean > 0.004",
        name="spikes")

    engine.register_continuous(
        "SELECT symbol, price FROM ticks WHERE symbol IN "
        "(SELECT symbol FROM watchlist) AND volume > 450",
        name="watched")

    for name in ("vwap", "volatility", "spikes", "watched"):
        print(f"{name}: {engine.continuous_query(name).mode} mode")

    print("\nstreaming 8000 ticks...\n")
    engine.attach_source("ticks",
                         RateSource(tick_rows(8000), rate=2000.0))
    engine.run_until_drained()
    assert not engine.scheduler.failed

    print("latest VWAP window:")
    print(engine.results("vwap").latest().pretty())

    print("\nlatest volatility window:")
    print(engine.results("volatility").latest().pretty())

    spike_rows = engine.results("spikes").rows()
    print(f"\nvolatility spikes flagged: {len(spike_rows)} "
          f"(e.g. {spike_rows[:3]})")

    watched = engine.results("watched").rows()
    symbols = {s for s, _p in watched}
    print(f"\nwatchlist hits: {len(watched)} ticks, symbols {symbols}")
    assert symbols <= {"ACME", "UMBR"}

    print("\nwhere tuples live (volatility query):")
    print(engine.monitor.intermediates("volatility"))


if __name__ == "__main__":
    main()
