"""Web-log analytics: online dashboards over a click stream.

The paper's "web log analysis requires fast analysis of big streaming
data for decision support" scenario: a request stream feeds

* ``top_pages`` — most-requested URLs per sliding window (joined with
  a persistent page catalog: stream ⋈ table);
* ``error_rate`` — 5xx ratio per tumbling window;
* ``slow_pages`` — latency spike alerting with HAVING.

Run::

    python examples/web_analytics.py
"""

from repro import DataCellEngine, RateSource
from repro.streams.generators import WEBLOG_SCHEMA, weblog_rows


def main() -> None:
    engine = DataCellEngine()
    engine.execute(WEBLOG_SCHEMA)

    # persistent dimension: page catalog with owning team
    engine.execute("CREATE TABLE pages (url VARCHAR(64), "
                   "team VARCHAR(16))")
    rows = [("/", "core"), ("/login", "auth"), ("/search", "search"),
            ("/cart", "checkout"), ("/checkout", "checkout")]
    rows += [(f"/page/{i}", "content") for i in range(40)]
    for url, team in rows:
        engine.execute(
            f"INSERT INTO pages VALUES ('{url}', '{team}')")
    engine.execute("CREATE INDEX ON pages (url)")

    engine.register_continuous(
        "SELECT p.team, l.url, count(*) AS hits "
        "FROM weblog [RANGE 3000 SLIDE 1000] l, pages p "
        "WHERE l.url = p.url "
        "GROUP BY p.team, l.url ORDER BY hits DESC LIMIT 5",
        name="top_pages")

    engine.register_continuous(
        "SELECT count(*) AS requests, "
        "sum(CASE WHEN status >= 500 THEN 1 ELSE 0 END) AS errors "
        "FROM weblog [RANGE 2000]",
        name="error_rate")

    engine.register_continuous(
        "SELECT url, avg(latency_ms) AS avg_ms, count(*) AS n "
        "FROM weblog [RANGE 3000 SLIDE 1500] "
        "GROUP BY url HAVING avg(latency_ms) > 120 AND count(*) >= 3 "
        "ORDER BY avg_ms DESC",
        name="slow_pages")

    for name in ("top_pages", "error_rate", "slow_pages"):
        print(f"{name}: {engine.continuous_query(name).mode} mode")

    print("\nstreaming 15000 requests...\n")
    engine.attach_source("weblog",
                         RateSource(weblog_rows(15000), rate=5000.0))
    engine.run_until_drained()

    print("top pages (latest window):")
    print(engine.results("top_pages").latest().pretty())

    print("\nerror rate per tumbling window:")
    for now, rel in engine.results("error_rate").batches:
        requests, errors = rel.to_rows()[0]
        print(f"  t={now:>6}ms  {errors}/{requests} "
              f"({errors / requests:.2%})")

    slow = engine.results("slow_pages")
    print(f"\nlatency alerts fired in "
          f"{sum(1 for _t, r in slow.batches if r.row_count)} of "
          f"{len(slow)} windows; latest non-empty:")
    for _now, rel in reversed(slow.batches):
        if rel.row_count:
            print(rel.pretty())
            break

    print("\nplan of the hybrid query (note basket.bind vs sql.bind):")
    print(engine.explain("top_pages"))


if __name__ == "__main__":
    main()
