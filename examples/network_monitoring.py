"""Network monitoring: port-scan detection over a flow stream.

One of the paper's motivating applications ("network monitoring",
"continuous monitoring to remain in good state and prevent fraud
attacks"). Two standing queries watch a netflow stream:

* ``scanners`` — sources touching many distinct low ports with tiny
  flows inside a sliding window (port-scan signature);
* ``heavy_hitters`` — top traffic producers per tumbling window.

After the stream drains, ordinary one-time SQL digs into the archived
flows — the "two query paradigms" working together.

Run::

    python examples/network_monitoring.py
"""

from repro import DataCellEngine, RateSource
from repro.streams.generators import NETFLOW_SCHEMA, netflow_rows


def main() -> None:
    engine = DataCellEngine()
    engine.execute(NETFLOW_SCHEMA)
    engine.execute("CREATE TABLE flow_archive (src_ip INT, dst_ip INT, "
                   "dst_port INT, protocol INT, packets INT, bytes INT)")

    scanners = engine.register_continuous(
        "SELECT src_ip, count(*) AS probes, avg(bytes) AS avg_bytes "
        "FROM netflow [RANGE 2000 SLIDE 500] "
        "WHERE dst_port < 1024 AND packets <= 3 "
        "GROUP BY src_ip HAVING count(*) >= 20 "
        "ORDER BY probes DESC",
        name="scanners")

    engine.register_continuous(
        "SELECT src_ip, sum(bytes) AS total_bytes "
        "FROM netflow [RANGE 2000] GROUP BY src_ip "
        "ORDER BY total_bytes DESC LIMIT 5",
        name="heavy_hitters")

    # a never-completing window keeps the raw flows in the basket so
    # they can be archived afterwards (tuples drop only once every
    # subscribed query has released them)
    engine.register_continuous(
        "SELECT count(*) FROM netflow [RANGE 100000]", name="retainer")

    alerts = []
    engine.subscribe("scanners", lambda rel, now: alerts.extend(
        (now, row) for row in rel.to_rows()))

    print(f"scanners runs in {scanners.mode!r} mode")
    print("streaming 12000 flows...\n")
    engine.attach_source("netflow",
                         RateSource(netflow_rows(12000), rate=4000.0))
    engine.run_until_drained()

    suspects = sorted({row[0] for _now, row in alerts})
    print(f"{len(alerts)} scanner alerts across "
          f"{len(engine.results('scanners'))} windows")
    print(f"suspect sources: {suspects}")
    assert all(s >= 10_000 for s in suspects), \
        "only the injected attackers should trip the detector"

    print("\nlast heavy-hitter window:")
    print(engine.results("heavy_hitters").latest().pretty())

    # archive the retained flows, then investigate offline
    archived = engine.execute(
        "INSERT INTO flow_archive SELECT * FROM netflow")
    print(f"\narchived {archived} flows; forensics (one-time SQL):")
    report = engine.query(
        "SELECT dst_port, count(*) AS hits FROM flow_archive "
        "WHERE src_ip >= 10000 GROUP BY dst_port "
        "ORDER BY hits DESC LIMIT 5")
    print(report.pretty())
    assert report.row_count > 0

    print()
    print(engine.monitor.network())


if __name__ == "__main__":
    main()
