"""Linear Road: the stream-benchmark scenario the paper cites.

Drives a scaled traffic simulation through the benchmark's standing
queries (segment statistics, stopped-car/accident detection, toll
computation) and checks the response-time constraint. See DESIGN.md
for the substitution notes (the official benchmark's testbed is
replaced by a compact seeded simulator).

Run::

    python examples/linear_road.py
"""

import time

from repro import DataCellEngine
from repro.streams.linearroad import (POSITION_SCHEMA, LinearRoadConfig,
                                      LinearRoadGenerator,
                                      expected_tolls,
                                      reference_segment_stats, toll)
from repro.streams.source import ListSource


def main() -> None:
    config = LinearRoadConfig(cars=150, duration_s=120, seed=11)
    generator = LinearRoadGenerator(config)
    events = generator.events()
    print(f"simulated {len(events)} position reports, "
          f"{len(generator.accidents)} accidents injected")

    engine = DataCellEngine()
    engine.execute(POSITION_SCHEMA)

    engine.register_continuous(
        "SELECT xway, dir, seg, avg(speed) AS lav, count(*) AS n "
        "FROM position [RANGE 30 SECONDS SLIDE 30 SECONDS] "
        "GROUP BY xway, dir, seg", name="segstats")

    engine.register_continuous(
        "SELECT car, xway, dir, seg FROM position "
        "[RANGE 12 SECONDS SLIDE 3 SECONDS] WHERE speed = 0 "
        "GROUP BY car, xway, dir, seg HAVING count(*) >= 4",
        name="accidents")

    engine.attach_source("position", ListSource(events))
    wall_start = time.perf_counter()
    engine.run_for(config.scale_ms(config.duration_s) + 1000,
                   step_ms=500)
    wall = time.perf_counter() - wall_start
    assert not engine.scheduler.failed

    print(f"\nprocessed at {len(events) / wall:,.0f} reports/s "
          f"(wall clock)")

    # --- accident notifications -----------------------------------
    detections = engine.results("accidents").rows()
    print(f"\naccident detections (car, xway, dir, seg): "
          f"{sorted(set(detections))[:6]}")

    # --- toll computation over the segment statistics --------------
    print("\ntolls per window (threshold scaled to 12 cars):")
    for now, rel in engine.results("segstats").batches:
        assessed = []
        for xway, direction, seg, lav, n in rel.to_rows():
            blocked = any(
                acc.xway == xway and acc.direction == direction
                and 0 <= (acc.seg - seg if direction == 0
                          else seg - acc.seg) <= 5
                and acc.active_at(now - 1)
                for acc in generator.accidents)
            t = toll(lav, n, blocked, car_threshold=12)
            if t:
                assessed.append((xway, direction, seg, t))
        print(f"  t={now:>6}ms: {len(assessed)} tolled segments "
              f"{assessed[:4]}")

    # --- validate against the plain-Python oracle ------------------
    oracle = reference_segment_stats(events, 30000, 30000)
    matches = 0
    for (now, rel), (onow, expected) in zip(
            engine.results("segstats").batches, oracle):
        got = {(x, d, s): round(lav, 9)
               for x, d, s, lav, _n in rel.to_rows()}
        want = {k: round(v[0], 9) for k, v in expected.items()}
        matches += got == want
    print(f"\nsegment statistics match the oracle in "
          f"{matches}/{len(oracle)} windows")
    print(f"response constraint: {config.response_constraint_ms}ms "
          f"(every firing completed well under it)")


if __name__ == "__main__":
    main()
