"""E3 — Re-evaluation vs Incremental (the demo's headline comparison).

A sliding-window aggregate with window w split into n = w/s basic
windows. Expected shape (paper §3/§4): incremental processing touches
each tuple once and merges n small partials, so the per-slide cost is
~n times lower than re-evaluating the full window; the gap grows with
n and vanishes for tumbling windows (n = 1).
"""

from __future__ import annotations

import pytest

from benchmarks.workloads import drive, sensor_engine
from repro.bench.harness import ResultTable, speedup

N_ROWS = 120_000
WINDOW = 38_400
BASIC_COUNTS = [1, 2, 4, 8, 16, 32]

QUERY = ("SELECT room, count(*), avg(temperature), min(temperature), "
         "max(temperature) FROM sensors [RANGE {w} SLIDE {s}] "
         "GROUP BY room")


def run_mode(mode: str, window: int, slide: int, nrows: int = N_ROWS):
    engine, rows = sensor_engine(nrows)
    query = engine.register_continuous(
        QUERY.format(w=window, s=slide), mode=mode, name="q")
    drive(engine, "sensors", rows)
    factory = query.factory
    return {
        "fires": factory.fires,
        "busy_ms": factory.busy_seconds * 1000,
        "ms_per_fire": (factory.busy_seconds / factory.fires * 1000
                        if factory.fires else 0.0),
        "rows": [r.to_rows() for _t, r in engine.results("q").batches],
    }


def run_experiment() -> ResultTable:
    table = ResultTable(
        f"E3: re-evaluation vs incremental, window={WINDOW} tuples, "
        f"{N_ROWS} tuples streamed",
        ["n_basic", "slide", "reeval_ms_per_fire", "incr_ms_per_fire",
         "speedup", "fires"])
    for n in BASIC_COUNTS:
        slide = WINDOW // n
        ree = run_mode("reeval", WINDOW, slide)
        inc = run_mode("incremental", WINDOW, slide)
        assert ree["fires"] == inc["fires"]
        table.add(n, slide, ree["ms_per_fire"], inc["ms_per_fire"],
                  speedup(ree["ms_per_fire"], inc["ms_per_fire"]),
                  ree["fires"])
    return table


def test_e3_report():
    table = run_experiment()
    table.show()
    rows = table.as_dicts()
    # tumbling windows: the two modes are within noise of each other
    assert rows[0]["speedup"] < 2.0
    # the incremental win grows with the number of basic windows
    assert rows[-1]["speedup"] > rows[1]["speedup"]
    # and is substantial at n=32
    assert rows[-1]["speedup"] > 3.0


def test_e3_results_identical_across_modes():
    ree = run_mode("reeval", 80, 20, nrows=800)
    inc = run_mode("incremental", 80, 20, nrows=800)
    assert len(ree["rows"]) == len(inc["rows"])
    def norm(rows):
        return sorted(tuple(round(v, 6) if isinstance(v, float) else v
                            for v in row) for row in rows)

    for a, b in zip(ree["rows"], inc["rows"]):
        assert norm(a) == norm(b)


@pytest.mark.parametrize("mode", ["reeval", "incremental"])
def test_e3_window_sliding(benchmark, mode):
    benchmark(lambda: run_mode(mode, 9600, 600, nrows=30000))
