"""E17 — Postgres front end on the asyncio I/O core.

Two claims behind ``repro serve --pg-port``:

* **E17a**: a Postgres simple-query round trip through the pg session
  costs the same order as a framed-protocol round trip — the v3
  message layer adds parsing, not architecture;
* **E17b**: because every connection is a coroutine on one event loop
  (not a thread), the server holds ≥1000 concurrent *idle* tail
  subscribers with a flat per-connection cost: the process thread
  count does not grow with connections, and resident memory grows by
  a small bounded amount per connection.

Acceptance tests gate both; the archive test diffs the portable shape
(per-connection RSS, thread delta) against the checked-in
``BENCH_E17.json`` so CI catches drift without trusting absolute
numbers on shared runners.
"""

from __future__ import annotations

import gc
import os
import socket
import statistics
import struct
import threading
import time

from repro.bench.harness import ResultTable
from repro.core.clock import WallClock
from repro.core.engine import DataCellEngine
from repro.net.client import DataCellClient
from repro.net.server import DataCellServer
from repro.pg.server import PGWireServer

I32 = struct.Struct("!i")

LATENCY_ITERS = 300
IDLE_COUNTS = [100, 1000]
IDLE_TARGET = 1000


class _MiniPG:
    """Just enough of the v3 protocol for the benchmark: startup,
    simple Query, and a fire-and-forget send (for parking tails)."""

    def __init__(self, host: str, port: int):
        self.sock = socket.create_connection((host, port), timeout=30)
        self.sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        body = I32.pack(196608) + b"user\x00bench\x00\x00"
        self.sock.sendall(I32.pack(len(body) + 4) + body)
        self.read_until(b"Z")

    def _rx(self, n: int) -> bytes:
        buf = b""
        while len(buf) < n:
            chunk = self.sock.recv(n - len(buf))
            if not chunk:
                raise EOFError("server closed the connection")
            buf += chunk
        return buf

    def read_until(self, stop: bytes) -> None:
        while True:
            head = self._rx(5)
            (length,) = I32.unpack(head[1:])
            if length > 4:
                self._rx(length - 4)
            if head[0:1] == stop:
                return

    def query(self, sql: str) -> None:
        payload = sql.encode() + b"\x00"
        self.sock.sendall(b"Q" + I32.pack(len(payload) + 4) + payload)
        self.read_until(b"Z")

    def send_query(self, sql: str) -> None:
        """Send without reading the reply (parks a TAIL)."""
        payload = sql.encode() + b"\x00"
        self.sock.sendall(b"Q" + I32.pack(len(payload) + 4) + payload)

    def close(self) -> None:
        try:
            self.sock.sendall(b"X" + I32.pack(4))
        except OSError:
            pass
        self.sock.close()


def _engine() -> DataCellEngine:
    engine = DataCellEngine(clock=WallClock())
    engine.execute("CREATE STREAM s (k INT, v FLOAT)")
    # a one-row table with no standing query: SELECTs read the basket
    engine.execute("CREATE STREAM one (k INT)")
    engine.execute("INSERT INTO one VALUES (1)")
    engine.register_continuous("SELECT k, v FROM s", name="q")
    return engine


def _time_roundtrips(fn, iters: int) -> dict:
    fn()  # warm up
    samples = []
    for _ in range(iters):
        start = time.perf_counter()
        fn()
        samples.append((time.perf_counter() - start) * 1000.0)
    return {"mean_ms": statistics.fmean(samples),
            "p50_ms": statistics.median(samples)}


# -- E17a: round-trip latency, pg vs framed ---------------------------


def run_latency_table(iters: int = LATENCY_ITERS) -> ResultTable:
    table = ResultTable(
        "E17a: one synchronous round trip through the asyncio core "
        "(pg simple query vs framed protocol)",
        ["path", "round_trips", "mean_ms", "p50_ms"])
    engine = _engine()
    pg = PGWireServer(engine, drive_scheduler=False)
    pg.start()
    framed = DataCellServer(engine, step_interval_s=0.002,
                            io_loop=pg.io)
    framed.start()
    try:
        client = _MiniPG(pg.host, pg.port)
        out = _time_roundtrips(
            lambda: client.query("SELECT k FROM one"), iters)
        table.add("pg simple SELECT", iters,
                  round(out["mean_ms"], 4), round(out["p50_ms"], 4))
        client.close()

        with DataCellClient(port=framed.port) as fc:
            out = _time_roundtrips(lambda: fc.stats(), iters)
            table.add("framed STATS", iters,
                      round(out["mean_ms"], 4),
                      round(out["p50_ms"], 4))
            seq = [0]

            def one_ingest():
                fc.ingest("s", [[seq[0], 0.0]], seq=seq[0])
                seq[0] += 1

            out = _time_roundtrips(one_ingest, iters)
            table.add("framed INGEST(1 row)", iters,
                      round(out["mean_ms"], 4),
                      round(out["p50_ms"], 4))
    finally:
        framed.stop()
        pg.stop()
        engine.close()
    return table


# -- E17b: idle tail subscribers --------------------------------------


def _rss_kb() -> int:
    with open("/proc/self/status") as f:
        for line in f:
            if line.startswith("VmRSS:"):
                return int(line.split()[1])
    raise OSError("VmRSS not found")


def _fd_count() -> int:
    return len(os.listdir("/proc/self/fd"))


def _raise_nofile(need: int) -> bool:
    """Best-effort RLIMIT_NOFILE bump; False when *need* is out of
    reach."""
    import resource

    soft, hard = resource.getrlimit(resource.RLIMIT_NOFILE)
    if soft >= need:
        return True
    want = min(max(need, soft), hard if hard > 0 else need)
    try:
        resource.setrlimit(resource.RLIMIT_NOFILE, (want, hard))
    except (ValueError, OSError):
        return False
    return want >= need


def idle_subscribers(n: int) -> dict:
    """Open *n* pg connections, park each on an unbounded ``TAIL``,
    and measure what the server-side coroutines cost while idle."""
    if not _raise_nofile(2 * n + 256):
        raise OSError(f"RLIMIT_NOFILE too low for {n} connections")
    engine = _engine()
    server = PGWireServer(engine, drive_scheduler=True,
                          step_interval_s=0.01)
    server.start()
    clients = []
    try:
        gc.collect()
        threads_before = threading.active_count()
        rss_before = _rss_kb()
        for _ in range(n):
            client = _MiniPG(server.host, server.port)
            client.send_query("TAIL q")
            clients.append(client)
        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline:
            stats = server.pg_stats()
            if stats["tails"] >= n:
                break
            time.sleep(0.05)
        tails = server.pg_stats()["tails"]
        time.sleep(0.5)  # settle: all tails parked on their events
        gc.collect()
        threads_after = threading.active_count()
        rss_after = _rss_kb()
        return {"subscribers": n,
                "tails": tails,
                "thread_delta": threads_after - threads_before,
                "fds": _fd_count(),
                "rss_delta_kb": max(rss_after - rss_before, 0),
                "rss_kb_per_conn":
                    max(rss_after - rss_before, 0) / max(n, 1)}
    finally:
        for client in clients:
            try:
                client.sock.close()
            except OSError:
                pass
        server.stop()
        engine.close()


def run_idle_table(counts=None) -> ResultTable:
    table = ResultTable(
        "E17b: idle pg tail subscribers on one event loop "
        "(client+server share this process; RSS includes both sides)",
        ["subscribers", "tails", "thread_delta", "fds",
         "rss_delta_kb", "rss_kb_per_conn"])
    for n in (counts or IDLE_COUNTS):
        out = idle_subscribers(n)
        table.add(out["subscribers"], out["tails"],
                  out["thread_delta"], out["fds"],
                  out["rss_delta_kb"],
                  round(out["rss_kb_per_conn"], 1))
    return table


def run_experiment():
    return [run_latency_table(), run_idle_table()]


# -- acceptance -------------------------------------------------------


def test_e17_pg_roundtrip_same_order_as_framed():
    """E17a gate: a pg simple query is a bounded constant factor of a
    framed round trip — the wire format isn't the bottleneck."""
    table = run_latency_table(iters=100)
    table.show()
    rows = {r["path"]: r for r in table.as_dicts()}
    pg_ms = rows["pg simple SELECT"]["p50_ms"]
    framed_ms = rows["framed STATS"]["p50_ms"]
    assert pg_ms < 50.0, rows  # sane absolute bound on loopback
    assert pg_ms <= 25.0 * max(framed_ms, 0.01), rows


def test_e17_thousand_idle_subscribers_flat_cost():
    """E17b gate: >= 1000 concurrent idle tails, no thread growth,
    bounded per-connection memory."""
    import pytest

    if not os.path.exists("/proc/self/status"):
        pytest.skip("needs /proc (Linux)")
    try:
        out = idle_subscribers(IDLE_TARGET)
    except OSError as exc:
        pytest.skip(f"fd limit: {exc}")
    print(out)
    assert out["tails"] >= IDLE_TARGET, out
    # coroutines, not threads: the thread count must not scale with
    # connections (small slack for lazy runtime helpers)
    assert out["thread_delta"] <= 8, out
    # flat per-connection cost — both endpoints of every socket live
    # in this process, so the budget covers client + server state
    assert out["rss_kb_per_conn"] <= 1024, out


def test_e17_archive_within_regression_budget():
    """CI drift gate: per-connection cost vs the archived baseline
    (absolute numbers are machine-dependent; the shape is not)."""
    import pytest

    from repro.bench.reporting import load_json

    if not os.path.exists("/proc/self/status"):
        pytest.skip("needs /proc (Linux)")
    path = os.path.join(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))), "BENCH_E17.json")
    if not os.path.exists(path):
        pytest.skip("no archived BENCH_E17.json baseline")
    archived = load_json(path)
    baseline = next(entry for entry in archived
                    if entry["title"].startswith("E17b"))
    idx_n = baseline["columns"].index("subscribers")
    idx_rss = baseline["columns"].index("rss_kb_per_conn")
    idx_threads = baseline["columns"].index("thread_delta")
    biggest = max(baseline["rows"], key=lambda r: r[idx_n])
    try:
        live = idle_subscribers(int(biggest[idx_n]))
    except OSError as exc:
        pytest.skip(f"fd limit: {exc}")
    assert live["rss_kb_per_conn"] <= \
        max(2.0 * float(biggest[idx_rss]), 64.0), (live, biggest)
    assert live["thread_delta"] <= int(biggest[idx_threads]) + 4, (
        live, biggest)


if __name__ == "__main__":
    for result in run_experiment():
        result.show()
