"""E10n — Network edge loopback (paper §2 "receptors and emitters").

The demo's DataCell runs as a server: "receptors and emitters, i.e., a
set of separate processes per stream and per client, to listen for new
data and to deliver results". Measured here over a TCP loopback:

* ingest throughput vs INGEST batch size — every batch is a synchronous
  framed round trip, so batching amortizes both the RTT and the codec;
* end-to-end delivery: rows/s from producer ``ingest()`` to the last
  subscriber ``results()`` row, vs the number of subscribed clients
  (each subscriber gets its own delivery queue + writer thread).
"""

from __future__ import annotations

import time

from repro.bench.harness import ResultTable
from repro.core.clock import WallClock
from repro.core.engine import DataCellEngine
from repro.net.client import DataCellClient
from repro.net.server import DataCellServer

N_ROWS = 20_000
BATCH_SIZES = [1, 16, 256, 2048]
SUBSCRIBER_COUNTS = [1, 3]


def _server(step_interval_s: float = 0.001) -> DataCellServer:
    engine = DataCellEngine(clock=WallClock())
    engine.execute("CREATE STREAM s (k INT, v FLOAT)")
    engine.register_continuous("SELECT k, v FROM s", name="q")
    server = DataCellServer(engine, step_interval_s=step_interval_s,
                            collect_max_batches=64)
    return server.start()


def ingest_throughput(batch_size: int, nrows: int = N_ROWS) -> float:
    """Rows/s for synchronous framed ingest at one batch size."""
    rows = [[i, float(i % 7)] for i in range(nrows)]
    server = _server()
    try:
        with DataCellClient(port=server.port) as client:
            start = time.perf_counter()
            for i in range(0, nrows, batch_size):
                client.ingest("s", rows[i:i + batch_size], seq=i)
            elapsed = time.perf_counter() - start
        totals = server.net_stats()["totals"]
        assert totals["offered"] == nrows and totals["shed"] == 0
        return nrows / elapsed
    finally:
        server.stop()
        server.engine.close()


def delivery_rate(n_subscribers: int, nrows: int = N_ROWS,
                  batch_size: int = 512) -> dict:
    """Producer-to-last-subscriber delivery over the loopback."""
    rows = [[i, float(i % 7)] for i in range(nrows)]
    server = _server()
    subscribers = []
    try:
        for _ in range(n_subscribers):
            sub = DataCellClient(port=server.port)
            sub.subscribe("q")
            subscribers.append(sub)
        start = time.perf_counter()
        with DataCellClient(port=server.port) as producer:
            for i in range(0, nrows, batch_size):
                producer.ingest("s", rows[i:i + batch_size], seq=i)
        received = []
        for sub in subscribers:
            got = sum(b.row_count
                      for b in sub.results(max_rows=nrows,
                                           timeout=60.0))
            received.append(got)
        elapsed = time.perf_counter() - start
        assert all(got == nrows for got in received), received
        return {"subscribers": n_subscribers,
                "rows_per_s_ingest_to_last": nrows / elapsed,
                "rows_delivered_total": sum(received)}
    finally:
        for sub in subscribers:
            sub.close()
        server.stop()
        server.engine.close()


def run_ingest_table(nrows: int = N_ROWS) -> ResultTable:
    table = ResultTable(
        f"E10n-a: loopback ingest throughput ({nrows} tuples, "
        f"sync framed batches)",
        ["batch_size", "tuples_per_s"])
    for batch in BATCH_SIZES:
        n = nrows if batch >= 16 else max(nrows // 10, 500)
        table.add(batch, ingest_throughput(batch, n))
    return table


def run_delivery_table(nrows: int = N_ROWS) -> ResultTable:
    table = ResultTable(
        f"E10n-b: end-to-end delivery ({nrows} tuples/subscriber)",
        ["subscribers", "rows_per_s_ingest_to_last",
         "rows_delivered_total"])
    for n_subs in SUBSCRIBER_COUNTS:
        out = delivery_rate(n_subs, nrows)
        table.add(out["subscribers"],
                  out["rows_per_s_ingest_to_last"],
                  out["rows_delivered_total"])
    return table


def run_experiment():
    return [run_ingest_table(), run_delivery_table()]


def test_e10n_ingest_report():
    table = run_ingest_table(nrows=4_000)
    table.show()
    rows = table.as_dicts()
    # batching amortizes the per-frame round trip: 2048-row batches
    # must beat single-row frames by a wide margin
    assert rows[-1]["tuples_per_s"] > rows[0]["tuples_per_s"] * 2


def test_e10n_delivery_report():
    table = run_delivery_table(nrows=2_000)
    table.show()
    rows = {r["subscribers"]: r for r in table.as_dicts()}
    assert rows[1]["rows_delivered_total"] == 2_000
    assert rows[3]["rows_delivered_total"] == 6_000  # 3 full copies
