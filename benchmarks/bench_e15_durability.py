"""E15 — durability: logged-ingest throughput and recovery time.

The DataCell paper keeps baskets purely in memory; the durable store
bolts a segmented append-only log under each basket so admitted tuples
survive a crash. This experiment prices that guarantee:

* **E15a** — ingest throughput by write discipline. ``off`` is the
  in-memory engine (no data_dir); ``async`` appends through the
  group-commit writer thread (flush per drained group, no fsync on the
  ingest path); ``fsync`` forces every group to disk before the
  offsets count as durable. The measured span includes a final
  :meth:`StreamLog.flush` barrier, so async pays its whole backlog.
  Acceptance: async sustains at least half the in-memory rate — the
  log is a background mirror, not a write-through tax.
* **E15b** — cold-start recovery time against log size: rebuild
  baskets, cursors and emit stamps from the manifest + checkpoint.
  Recovery replays only what the queries still need (the cursor
  floor), so time grows with the retained suffix, not with history.
"""

from __future__ import annotations

import os
import shutil
import tempfile
import time

from repro.bench.harness import ResultTable
from repro.core.clock import SimulatedClock
from repro.core.engine import DataCellEngine

N_ROWS = 60_000
BATCH = 512
RECOVERY_SIZES = [2_000, 8_000, 32_000]

# async group commit must keep >= this fraction of in-memory ingest
ASYNC_FLOOR = 0.5

DDL = "CREATE STREAM s (k INT, v FLOAT)"
QUERY = ("SELECT k, sum(v) FROM s [RANGE 256 SLIDE 256] GROUP BY k")


def make_rows(nrows: int):
    return [(i % 16, float((i * 7) % 23)) for i in range(nrows)]


def ingest_throughput(durability: str, nrows: int = N_ROWS,
                      batch: int = BATCH) -> float:
    """Rows/s to admit *nrows* (and, when logging, make them durable)."""
    data_dir = None if durability == "off" else tempfile.mkdtemp(
        prefix="e15_")
    engine = DataCellEngine(clock=SimulatedClock(), data_dir=data_dir,
                            durability=durability,
                            checkpoint_interval_s=1e9)
    try:
        engine.execute(DDL)
        rows = make_rows(nrows)
        start = time.perf_counter()
        for i in range(0, nrows, batch):
            engine.feed("s", rows[i:i + batch])
        if engine.durable:
            engine.stream_log("s").flush()  # async pays its backlog
        elapsed = time.perf_counter() - start
        return nrows / elapsed if elapsed > 0 else 0.0
    finally:
        engine.close()
        if data_dir is not None:
            shutil.rmtree(data_dir, ignore_errors=True)


def _best(repeats: int, **kw) -> float:
    return max(ingest_throughput(**kw) for _ in range(repeats))


def run_ingest_table(nrows: int = N_ROWS, repeats: int = 3
                     ) -> ResultTable:
    table = ResultTable(
        f"E15a: logged-ingest throughput by write discipline "
        f"({nrows} tuples, {BATCH}-row batches, final flush included)",
        ["durability", "tuples_per_s", "x_of_off"])
    base = _best(repeats, durability="off", nrows=nrows)
    table.add("off", round(base), 1.0)
    for durability in ("async", "fsync"):
        rate = _best(repeats, durability=durability, nrows=nrows)
        table.add(durability, round(rate),
                  round(rate / base, 3) if base else 0.0)
    return table


def recovery_run(nrows: int, data_dir: str) -> dict:
    """Build a logged engine with a standing query, crash it, and
    time the cold reopen."""
    engine = DataCellEngine(clock=SimulatedClock(), data_dir=data_dir,
                            durability="async",
                            checkpoint_interval_s=1e9)
    engine.execute(DDL)
    engine.register_continuous(QUERY, name="q", mode="reeval")
    rows = make_rows(nrows)
    for i in range(0, nrows, BATCH):
        engine.feed("s", rows[i:i + BATCH])
        engine.step(advance_ms=1)
    fired = len(engine.results("q").batches)
    engine.checkpoint()
    del engine  # crash: no close()

    start = time.perf_counter()
    recovered = DataCellEngine(clock=SimulatedClock(),
                               data_dir=data_dir, durability="async",
                               checkpoint_interval_s=1e9)
    elapsed = time.perf_counter() - start
    try:
        assert recovered.recovered
        stats = recovered.log_stats()["streams"]["s"]
        return {
            "recover_ms": elapsed * 1000.0,
            "log_rows": stats["next_offset"],
            "replayed_rows": (recovered.basket("s").next_oid
                              - recovered.basket("s").first_oid),
            "fired": fired,
        }
    finally:
        recovered.close()


def run_recovery_table(sizes=None) -> ResultTable:
    table = ResultTable(
        "E15b: cold-start recovery time vs log size "
        "(async log, one standing query, checkpoint at crash point)",
        ["log_rows", "replayed_rows", "recover_ms"])
    for nrows in (sizes or RECOVERY_SIZES):
        data_dir = tempfile.mkdtemp(prefix="e15r_")
        try:
            out = recovery_run(nrows, data_dir)
            table.add(out["log_rows"], out["replayed_rows"],
                      round(out["recover_ms"], 1))
        finally:
            shutil.rmtree(data_dir, ignore_errors=True)
    return table


def run_experiment(nrows: int = N_ROWS, repeats: int = 3):
    return [run_ingest_table(nrows, repeats), run_recovery_table()]


# -- acceptance -------------------------------------------------------


def test_e15_async_keeps_half_the_rate():
    """The tentpole claim: group commit makes durability cheap —
    async-logged ingest sustains >= 0.5x the in-memory rate."""
    table = run_ingest_table(nrows=30_000)
    table.show()
    rows = {r["durability"]: r for r in table.as_dicts()}
    assert rows["async"]["x_of_off"] >= ASYNC_FLOOR, rows["async"]
    # fsync trades throughput for the stronger guarantee, but must
    # still make forward progress in group-sized strides
    assert rows["fsync"]["tuples_per_s"] > 0


def test_e15_recovery_bounded_by_retention():
    """Recovery replays the cursor-retained suffix, not all history:
    replayed rows stay bounded while the log grows."""
    table = run_recovery_table(sizes=[2_000, 8_000])
    table.show()
    rows = table.as_dicts()
    assert rows[0]["log_rows"] == 2_000
    assert rows[1]["log_rows"] == 8_000
    for row in rows:
        assert row["recover_ms"] < 30_000, row
        # vacuum keeps the basket near one window of retained tuples
        assert row["replayed_rows"] <= row["log_rows"]


def test_e15_archive_within_regression_budget():
    """CI drift gate: the portable shape of E15a — the async/off
    throughput ratio — must not regress more than 20% against the
    archived baseline (absolute rates are machine-dependent, the
    ratio is not)."""
    from repro.bench.reporting import load_json

    path = os.path.join(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))), "BENCH_E15.json")
    if not os.path.exists(path):
        import pytest
        pytest.skip("no archived BENCH_E15.json baseline")
    archived = load_json(path)
    baseline = next(entry for entry in archived
                    if entry["title"].startswith("E15a"))
    idx_mode = baseline["columns"].index("durability")
    idx_ratio = baseline["columns"].index("x_of_off")
    archived_async = next(r[idx_ratio] for r in baseline["rows"]
                          if r[idx_mode] == "async")
    live = {r["durability"]: r["x_of_off"]
            for r in run_ingest_table(nrows=30_000).as_dicts()}
    assert live["async"] >= 0.8 * archived_async, (
        f"async/off ingest ratio {live['async']:.3f} regressed >20% "
        f"vs archived {archived_async:.3f}")
