"""E8 — Scheduler time constraints (paper §3: "the scheduler manages
the time constraints attached to event handling, which leads to
possibly delaying events in their baskets for some time").

A plain (unwindowed) filter query with the batching knobs swept:
``min_batch`` tuples per firing, bounded by ``max_delay_ms``. Expected
trade-off: larger batches amortize per-firing overhead (lower cost per
tuple) at the price of higher result latency (tuples wait in the
basket).
"""

from __future__ import annotations

import pytest

from repro.bench.harness import ResultTable
from repro.core.engine import DataCellEngine
from repro.streams.generators import sensor_rows
from repro.streams.source import RateSource

N_ROWS = 20_000
RATE = 2_000.0  # tuples/second of simulated time
BATCHES = [1, 8, 64, 256, 1024]
QUERY = ("SELECT sensor_id, temperature FROM sensors "
         "WHERE temperature > 10")


def run_batched(min_batch: int, max_delay_ms: int = 2000):
    engine = DataCellEngine()
    engine.execute("CREATE STREAM sensors (sensor_id INT, room INT, "
                   "temperature FLOAT, humidity FLOAT)")
    query = engine.register_continuous(QUERY, mode="reeval", name="q",
                                       min_batch=min_batch,
                                       max_delay_ms=max_delay_ms)
    rows = sensor_rows(N_ROWS)
    engine.attach_source("sensors", RateSource(rows, rate=RATE))
    engine.run_until_drained()
    assert not engine.scheduler.failed
    factory = query.factory

    # result latency estimate: a tuple waits on average half the batch
    # accumulation span before its firing consumes it
    avg_batch = factory.tuples_in / factory.fires if factory.fires else 0
    est_latency_ms = (avg_batch / RATE) * 1000 / 2 + \
        (1000.0 / RATE) / 2

    return {
        "fires": factory.fires,
        "tuples": factory.tuples_in,
        "avg_batch": avg_batch,
        "busy_us_per_tuple": (factory.busy_seconds / factory.tuples_in
                              * 1e6 if factory.tuples_in else 0.0),
        "est_latency_ms": est_latency_ms,
    }


def run_experiment() -> ResultTable:
    table = ResultTable(
        f"E8: batching vs latency ({N_ROWS} tuples at "
        f"{RATE:.0f}/s simulated)",
        ["min_batch", "fires", "avg_batch", "busy_us_per_tuple",
         "est_latency_ms"])
    for batch in BATCHES:
        out = run_batched(batch)
        table.add(batch, out["fires"], out["avg_batch"],
                  out["busy_us_per_tuple"], out["est_latency_ms"])
    return table


def test_e8_report():
    table = run_experiment()
    table.show()
    rows = table.as_dicts()
    # every tuple is processed exactly once, except a tail batch
    # smaller than min_batch that may still be pending at source end
    for r in rows:
        consumed = r["avg_batch"] * r["fires"]
        assert N_ROWS - r["min_batch"] <= consumed <= N_ROWS
    # larger batches -> fewer firings -> cheaper per tuple
    assert rows[-1]["fires"] < rows[0]["fires"] / 4
    assert rows[-1]["busy_us_per_tuple"] < rows[0]["busy_us_per_tuple"]
    # ... but higher result latency
    assert rows[-1]["est_latency_ms"] > rows[0]["est_latency_ms"]


def test_e8_max_delay_bounds_wait():
    """Even a huge min_batch cannot delay past max_delay_ms."""
    engine = DataCellEngine()
    engine.execute("CREATE STREAM sensors (sensor_id INT, room INT, "
                   "temperature FLOAT, humidity FLOAT)")
    engine.register_continuous(QUERY, mode="reeval", name="q",
                               min_batch=10_000, max_delay_ms=50)
    engine.feed("sensors", [(1, 0, 30.0, 40.0)])
    engine.step()
    assert len(engine.results("q")) == 0
    engine.step(advance_ms=60)
    assert len(engine.results("q")) == 1


@pytest.mark.parametrize("batch", [1, 256])
def test_e8_batch_throughput(benchmark, batch):
    benchmark(lambda: run_batched(batch))
