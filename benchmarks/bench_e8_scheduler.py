"""E8 — Scheduler time constraints and parallel firing.

Two experiments share this module:

* **Batching sweep** (paper §3: "the scheduler manages the time
  constraints attached to event handling, which leads to possibly
  delaying events in their baskets for some time"): a plain
  (unwindowed) filter query with the batching knobs swept —
  ``min_batch`` tuples per firing, bounded by ``max_delay_ms``.
  Expected trade-off: larger batches amortize per-firing overhead
  (lower cost per tuple) at the price of higher result latency.

* **Parallel ablation** (``--parallel-ablation``): the E2 32-query
  filter fleet run serially and with ``parallel_workers=4``. The
  emitted result logs are asserted byte-identical before any timing is
  reported — the worker pool is an execution strategy, not a semantics
  change. On a multi-core box the fleet is one wide conflict-free wave
  per round, so wall-clock should drop roughly with core count.
"""

from __future__ import annotations

import argparse
import os
import sys
import time

import pytest

sys.path.insert(0, os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))))

from benchmarks.workloads import drive, sensor_engine
from repro.bench.harness import ResultTable
from repro.core.engine import DataCellEngine
from repro.streams.generators import sensor_rows
from repro.streams.source import RateSource

N_ROWS = 20_000
RATE = 2_000.0  # tuples/second of simulated time
BATCHES = [1, 8, 64, 256, 1024]
QUERY = ("SELECT sensor_id, temperature FROM sensors "
         "WHERE temperature > 10")


def run_batched(min_batch: int, max_delay_ms: int = 2000):
    engine = DataCellEngine()
    engine.execute("CREATE STREAM sensors (sensor_id INT, room INT, "
                   "temperature FLOAT, humidity FLOAT)")
    query = engine.register_continuous(QUERY, mode="reeval", name="q",
                                       min_batch=min_batch,
                                       max_delay_ms=max_delay_ms)
    rows = sensor_rows(N_ROWS)
    engine.attach_source("sensors", RateSource(rows, rate=RATE))
    engine.run_until_drained()
    assert not engine.scheduler.failed
    factory = query.factory

    # result latency estimate: a tuple waits on average half the batch
    # accumulation span before its firing consumes it
    avg_batch = factory.tuples_in / factory.fires if factory.fires else 0
    est_latency_ms = (avg_batch / RATE) * 1000 / 2 + \
        (1000.0 / RATE) / 2

    return {
        "fires": factory.fires,
        "tuples": factory.tuples_in,
        "avg_batch": avg_batch,
        "busy_us_per_tuple": (factory.busy_seconds / factory.tuples_in
                              * 1e6 if factory.tuples_in else 0.0),
        "est_latency_ms": est_latency_ms,
    }


def run_experiment() -> ResultTable:
    table = ResultTable(
        f"E8: batching vs latency ({N_ROWS} tuples at "
        f"{RATE:.0f}/s simulated)",
        ["min_batch", "fires", "avg_batch", "busy_us_per_tuple",
         "est_latency_ms"])
    for batch in BATCHES:
        out = run_batched(batch)
        table.add(batch, out["fires"], out["avg_batch"],
                  out["busy_us_per_tuple"], out["est_latency_ms"])
    return table


def test_e8_report():
    table = run_experiment()
    table.show()
    rows = table.as_dicts()
    # every tuple is processed exactly once, except a tail batch
    # smaller than min_batch that may still be pending at source end
    for r in rows:
        consumed = r["avg_batch"] * r["fires"]
        assert N_ROWS - r["min_batch"] <= consumed <= N_ROWS
    # larger batches -> fewer firings -> cheaper per tuple
    assert rows[-1]["fires"] < rows[0]["fires"] / 4
    assert rows[-1]["busy_us_per_tuple"] < rows[0]["busy_us_per_tuple"]
    # ... but higher result latency
    assert rows[-1]["est_latency_ms"] > rows[0]["est_latency_ms"]


def test_e8_max_delay_bounds_wait():
    """Even a huge min_batch cannot delay past max_delay_ms."""
    engine = DataCellEngine()
    engine.execute("CREATE STREAM sensors (sensor_id INT, room INT, "
                   "temperature FLOAT, humidity FLOAT)")
    engine.register_continuous(QUERY, mode="reeval", name="q",
                               min_batch=10_000, max_delay_ms=50)
    engine.feed("sensors", [(1, 0, 30.0, 40.0)])
    engine.step()
    assert len(engine.results("q")) == 0
    engine.step(advance_ms=60)
    assert len(engine.results("q")) == 1


@pytest.mark.parametrize("batch", [1, 256])
def test_e8_batch_throughput(benchmark, batch):
    benchmark(lambda: run_batched(batch))


# -- parallel ablation -----------------------------------------------------

PAR_QUERIES = 32
PAR_WORKERS = 4
PAR_ROWS = 40_000
# ingest in large bursts so each firing filters a big batch (numpy
# kernels release the GIL; tiny batches would measure interpreter
# overhead that the pool cannot parallelize)
PAR_RATE = 10_000_000.0


def run_parallel_fleet(workers: int, nrows: int = PAR_ROWS,
                       n_queries: int = PAR_QUERIES):
    """The E2 fleet under one scheduler mode: wall-clock + emissions."""
    engine, rows = sensor_engine(nrows, parallel_workers=workers)
    try:
        for i in range(n_queries):
            engine.register_continuous(
                f"SELECT sensor_id, temperature FROM sensors "
                f"WHERE temperature > {15 + (i % 10)}", name=f"q{i}")
        start = time.perf_counter()
        drive(engine, "sensors", rows, rate=PAR_RATE)
        elapsed = time.perf_counter() - start
        emitted = {f"q{i}": [(t, rel.to_rows()) for t, rel in
                             engine.results(f"q{i}").batches]
                   for i in range(n_queries)}
        return elapsed, emitted, engine.scheduler.parallel_stats()
    finally:
        engine.close()


def run_parallel_ablation(nrows: int = PAR_ROWS,
                          workers: int = PAR_WORKERS,
                          repeats: int = 3) -> ResultTable:
    """Serial vs worker-pool wall clock; results asserted identical.

    The equivalence check is part of the benchmark (not eyeballed):
    any divergence between the serial and parallel emission logs —
    firing times or row payloads — raises before a number is printed.
    """
    serial_s = parallel_s = None
    serial_out = parallel_out = pstats = None
    for _ in range(repeats):  # best-of-N, the noise-robust estimator
        s, out, _stats = run_parallel_fleet(1, nrows)
        if serial_s is None or s < serial_s:
            serial_s = s
        serial_out = out
        p, pout, stats = run_parallel_fleet(workers, nrows)
        if parallel_s is None or p < parallel_s:
            parallel_s = p
        parallel_out, pstats = pout, stats
    if parallel_out != serial_out:
        raise AssertionError(
            "parallel mode diverged from serial emission log — the "
            "worker pool must be byte-identical to the serial cascade")
    speedup = serial_s / parallel_s if parallel_s else 0.0
    table = ResultTable(
        f"E8: parallel ablation ({PAR_QUERIES} filter queries, "
        f"{nrows} tuples, results byte-identical, "
        f"{os.cpu_count()} cores)",
        ["mode", "wall_s", "ktuples_per_s", "speedup",
         "max_wave_width", "parallel_fires"])
    table.add("serial", serial_s, nrows / serial_s / 1e3, 1.0, 1, 0)
    table.add(f"pool[{workers}]", parallel_s,
              nrows / parallel_s / 1e3, speedup,
              pstats["max_wave_width"], pstats["parallel_fires"])
    return table


def test_e8_parallel_equivalence():
    table = run_parallel_ablation(nrows=8_000, repeats=1)
    table.show()
    rows = table.as_dicts()
    # the fleet reads one shared basket and writes none of them: all 32
    # factories are conflict-free and share every wave
    assert rows[1]["max_wave_width"] == PAR_QUERIES
    assert rows[1]["parallel_fires"] > 0
    # the ≥1.5x acceptance bar only means something with real cores
    if (os.cpu_count() or 1) >= 4:
        assert rows[1]["speedup"] >= 1.5


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--parallel-ablation", action="store_true",
                        help="run the serial vs worker-pool ablation")
    parser.add_argument("--rows", type=int, default=None,
                        help="override the tuple count")
    args = parser.parse_args(argv)
    if args.parallel_ablation:
        table = run_parallel_ablation(nrows=args.rows or PAR_ROWS)
    else:
        table = run_experiment()
    print(table.render())
    return 0


if __name__ == "__main__":
    sys.exit(main())
