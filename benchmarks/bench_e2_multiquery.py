"""E2 — Query-network scaling (demo Fig. 3).

Multi-query processing over one shared stream: N standing filter
queries all bind the same basket. The claim to reproduce: per-query
cost stays near-flat as queries share the basket (the stream is
ingested and stored once), versus the naive alternative of one private
stream copy per query.
"""

from __future__ import annotations

import pytest

from benchmarks.workloads import SENSOR_DDL, drive, sensor_engine
from repro.bench.harness import ResultTable
from repro.core.engine import DataCellEngine
from repro.streams.generators import sensor_rows
from repro.streams.source import RateSource

N_ROWS = 2000
QUERY_COUNTS = [1, 2, 4, 8, 16, 32]


def run_shared(n_queries: int, nrows: int = N_ROWS):
    engine, rows = sensor_engine(nrows)
    for i in range(n_queries):
        engine.register_continuous(
            f"SELECT sensor_id, temperature FROM sensors "
            f"WHERE temperature > {15 + (i % 10)}", name=f"q{i}")
    drive(engine, "sensors", rows)
    busy = sum(f.busy_seconds for f in engine.scheduler.factories)
    return engine, busy


def run_private(n_queries: int, nrows: int = N_ROWS):
    """Naive baseline: each query gets its own stream + copy of the
    data (what a per-query engine instance would do)."""
    engine = DataCellEngine()
    rows = sensor_rows(nrows)
    for i in range(n_queries):
        engine.execute(SENSOR_DDL.replace("sensors", f"sensors{i}"))
        engine.register_continuous(
            f"SELECT sensor_id, temperature FROM sensors{i} "
            f"WHERE temperature > {15 + (i % 10)}", name=f"q{i}")
        engine.attach_source(f"sensors{i}", RateSource(rows,
                                                       rate=1_000_000))
    engine.run_until_drained()
    busy = sum(f.busy_seconds for f in engine.scheduler.factories)
    ingested = sum(b.total_in
                   for b in engine.scheduler.baskets.values())
    return busy, ingested


def run_experiment() -> ResultTable:
    table = ResultTable(
        "E2: standing-query scaling over one shared stream "
        f"({N_ROWS} tuples)",
        ["queries", "shared_busy_ms", "shared_us_per_tuple_query",
         "private_ingested", "shared_ingested"])
    for n in QUERY_COUNTS:
        engine, busy = run_shared(n)
        ingested = engine.basket("sensors").total_in
        per_unit = busy / (N_ROWS * n) * 1e6
        _busy_priv, priv_ingested = run_private(min(n, 8))
        # scale the private ingest count up for display when capped
        priv_scaled = priv_ingested * (n / min(n, 8))
        table.add(n, busy * 1000, per_unit, int(priv_scaled), ingested)
    return table


def test_e2_report():
    table = run_experiment()
    table.show()
    rows = table.as_dicts()
    # the stream is ingested exactly once regardless of query count
    assert all(r["shared_ingested"] == N_ROWS for r in rows)
    # per-(tuple x query) cost must not blow up with the query count:
    # allow generous headroom for fixed per-firing overheads
    assert rows[-1]["shared_us_per_tuple_query"] < \
        rows[0]["shared_us_per_tuple_query"] * 3


def test_e2_sixteen_queries(benchmark):
    def run():
        engine, rows = sensor_engine(500)
        for i in range(16):
            engine.register_continuous(
                f"SELECT sensor_id FROM sensors "
                f"WHERE temperature > {15 + i}", name=f"q{i}")
        drive(engine, "sensors", rows)
        return engine

    benchmark(run)
