"""E2 — Query-network scaling (demo Fig. 3).

Multi-query processing over one shared stream: N standing filter
queries all bind the same basket. The claim to reproduce: per-query
cost stays near-flat as queries share the basket (the stream is
ingested and stored once), versus the naive alternative of one private
stream copy per query.
"""

from __future__ import annotations


from benchmarks.workloads import SENSOR_DDL, drive, sensor_engine
from repro.bench.harness import ResultTable
from repro.core.engine import DataCellEngine
from repro.streams.generators import sensor_rows
from repro.streams.source import RateSource

N_ROWS = 2000
QUERY_COUNTS = [1, 2, 4, 8, 16, 32]
# the recycler ablation uses a larger stream ingested in bigger bursts
# so the per-firing windows are compute-bound (tiny windows measure
# interpreter overhead instead of the shared work the recycler removes)
RECYCLER_ROWS = 30000
RECYCLER_RATE = 10_000_000.0


def run_shared(n_queries: int, nrows: int = N_ROWS,
               recycler_enabled: bool = True,
               rate: float = 1_000_000.0):
    engine, rows = sensor_engine(nrows,
                                 recycler_enabled=recycler_enabled)
    for i in range(n_queries):
        engine.register_continuous(
            f"SELECT sensor_id, temperature FROM sensors "
            f"WHERE temperature > {15 + (i % 10)}", name=f"q{i}")
    drive(engine, "sensors", rows, rate=rate)
    busy = sum(f.busy_seconds for f in engine.scheduler.factories)
    return engine, busy


def run_private(n_queries: int, nrows: int = N_ROWS):
    """Naive baseline: each query gets its own stream + copy of the
    data (what a per-query engine instance would do)."""
    engine = DataCellEngine()
    rows = sensor_rows(nrows)
    for i in range(n_queries):
        engine.execute(SENSOR_DDL.replace("sensors", f"sensors{i}"))
        engine.register_continuous(
            f"SELECT sensor_id, temperature FROM sensors{i} "
            f"WHERE temperature > {15 + (i % 10)}", name=f"q{i}")
        engine.attach_source(f"sensors{i}", RateSource(rows,
                                                       rate=1_000_000))
    engine.run_until_drained()
    busy = sum(f.busy_seconds for f in engine.scheduler.factories)
    ingested = sum(b.total_in
                   for b in engine.scheduler.baskets.values())
    return busy, ingested


def run_experiment() -> ResultTable:
    table = ResultTable(
        "E2: standing-query scaling over one shared stream "
        f"({N_ROWS} tuples)",
        ["queries", "shared_busy_ms", "shared_us_per_tuple_query",
         "private_ingested", "shared_ingested"])
    for n in QUERY_COUNTS:
        engine, busy = run_shared(n)
        ingested = engine.basket("sensors").total_in
        per_unit = busy / (N_ROWS * n) * 1e6
        _busy_priv, priv_ingested = run_private(min(n, 8))
        # scale the private ingest count up for display when capped
        priv_scaled = priv_ingested * (n / min(n, 8))
        table.add(n, busy * 1000, per_unit, int(priv_scaled), ingested)
    return table


def _best_shared(n_queries: int, nrows: int, recycler_enabled: bool,
                 repeats: int = 3):
    """Best-of-*repeats* busy time (min is the noise-robust estimator
    for CPU-bound work on a shared machine) plus the last engine."""
    best = float("inf")
    engine = None
    for _ in range(repeats):
        engine, busy = run_shared(n_queries, nrows,
                                  recycler_enabled=recycler_enabled,
                                  rate=RECYCLER_RATE)
        best = min(best, busy)
    return engine, best


def run_recycler_experiment(nrows: int = RECYCLER_ROWS) -> ResultTable:
    """Shared-work ablation: identical standing-query fleet with the
    intermediate recycler on vs off."""
    table = ResultTable(
        f"E2r: recycler on/off over one shared stream ({nrows} tuples)",
        ["queries", "busy_off_ms", "busy_on_ms", "speedup",
         "hits", "misses", "slice_hits"])
    for n in [8, 32]:
        _off_engine, busy_off = _best_shared(n, nrows, False)
        on_engine, busy_on = _best_shared(n, nrows, True)
        stats = on_engine.recycler.stats()
        table.add(n, busy_off * 1000, busy_on * 1000,
                  busy_off / busy_on, stats["hits"], stats["misses"],
                  stats["slice_hits"])
    return table


def test_e2_recycler_speedup():
    """Acceptance: >=2x throughput at 32 standing queries with the
    recycler, identical emitted results, sub-linear per-query cost."""
    off_engine, busy_off = _best_shared(32, RECYCLER_ROWS, False,
                                        repeats=5)
    on_engine, busy_on = _best_shared(32, RECYCLER_ROWS, True,
                                      repeats=5)
    stats = on_engine.recycler.stats()
    assert stats["hits"] > 0 and stats["slice_hits"] > 0
    for i in range(32):
        assert on_engine.results(f"q{i}").rows() == \
            off_engine.results(f"q{i}").rows()
    assert busy_off / busy_on >= 2.0, \
        f"recycler speedup {busy_off / busy_on:.2f} below 2x"
    # per-query cost is sub-linear: 32 shared queries cost well below
    # 32x one query's cost
    _e1, busy_one = _best_shared(1, RECYCLER_ROWS, True)
    assert busy_on < busy_one * 32 * 0.6


def test_e2_report():
    table = run_experiment()
    table.show()
    rows = table.as_dicts()
    # the stream is ingested exactly once regardless of query count
    assert all(r["shared_ingested"] == N_ROWS for r in rows)
    # per-(tuple x query) cost must not blow up with the query count:
    # allow generous headroom for fixed per-firing overheads
    assert rows[-1]["shared_us_per_tuple_query"] < \
        rows[0]["shared_us_per_tuple_query"] * 3


def test_e2_sixteen_queries(benchmark):
    def run():
        engine, rows = sensor_engine(500)
        for i in range(16):
            engine.register_continuous(
                f"SELECT sensor_id FROM sensors "
                f"WHERE temperature > {15 + i}", name=f"q{i}")
        drive(engine, "sensors", rows)
        return engine

    benchmark(run)
