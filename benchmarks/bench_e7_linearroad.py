"""E7 — Linear Road (paper §3: "easily meeting the requirements of the
Linear Road Benchmark").

The scaled substrate (see DESIGN.md substitutions) drives position
reports through the standing queries the benchmark needs — per-segment
statistics (LAV + car counts) and stopped-car detection — and checks

* correctness: the query outputs match the plain-Python oracle;
* the response constraint: every notification is produced within the
  (scaled) 5-second budget, measured as wall-clock factory latency per
  firing;
* sustainable input rate: reports/second processed.
"""

from __future__ import annotations

import time


from repro.bench.harness import ResultTable
from repro.core.engine import DataCellEngine
from repro.streams.linearroad import (POSITION_SCHEMA, LinearRoadConfig,
                                      LinearRoadGenerator,
                                      detect_stopped_cars,
                                      reference_segment_stats)
from repro.streams.source import ListSource

SEGSTATS = ("SELECT xway, dir, seg, avg(speed) lav, count(*) n "
            "FROM position [RANGE 30 SECONDS SLIDE 30 SECONDS] "
            "GROUP BY xway, dir, seg")
STOPPED = ("SELECT car, count(*) c FROM position "
           "[RANGE 12 SECONDS SLIDE 3 SECONDS] WHERE speed = 0 "
           "GROUP BY car HAVING count(*) >= 4")


def run_linear_road(cars: int = 120, duration_s: int = 120,
                    seed: int = 7):
    config = LinearRoadConfig(cars=cars, duration_s=duration_s,
                              seed=seed)
    generator = LinearRoadGenerator(config)
    events = generator.events()
    engine = DataCellEngine()
    engine.execute(POSITION_SCHEMA)
    engine.register_continuous(SEGSTATS, name="segstats")
    engine.register_continuous(STOPPED, name="stopped")

    fire_latencies = []
    original_step = engine.scheduler.step

    def timed_step():
        start = time.perf_counter()
        out = original_step()
        if out["fired"]:
            fire_latencies.append(
                (time.perf_counter() - start) / out["fired"])
        return out

    engine.scheduler.step = timed_step
    engine.attach_source("position", ListSource(events))
    wall_start = time.perf_counter()
    engine.run_for(config.scale_ms(duration_s) + 1000, step_ms=500)
    wall = time.perf_counter() - wall_start
    assert not engine.scheduler.failed
    return {
        "config": config,
        "generator": generator,
        "events": events,
        "engine": engine,
        "fire_latencies": fire_latencies,
        "reports_per_s": len(events) / wall,
    }


def run_experiment() -> ResultTable:
    table = ResultTable(
        "E7: scaled Linear Road — correctness & response constraint",
        ["cars", "reports", "accidents", "segstat_windows_ok",
         "stopped_found/oracle", "max_fire_ms", "constraint_ms",
         "meets_constraint", "reports_per_s"])
    for cars in (60, 120, 240):
        out = run_linear_road(cars=cars)
        events = out["events"]
        engine = out["engine"]
        oracle = reference_segment_stats(events, 30000, 30000)
        batches = engine.results("segstats").batches
        windows_ok = 0
        for (t, rel), (ot, expected) in zip(batches, oracle):
            got = {(x, d, s): (round(lav, 6), n)
                   for x, d, s, lav, n in rel.to_rows()}
            want = {k: round(v[0], 6) for k, v in expected.items()}
            if set(got) == set(expected) and all(
                    got[k][0] == want[k] for k in want):
                windows_ok += 1
        stopped = {r[0] for r in engine.results("stopped").rows()}
        oracle_stopped = {c for _t, c, _l in detect_stopped_cars(events)}
        max_fire_ms = max(out["fire_latencies"]) * 1000 \
            if out["fire_latencies"] else 0.0
        constraint = out["config"].response_constraint_ms
        table.add(cars, len(events), len(out["generator"].accidents),
                  f"{windows_ok}/{len(oracle)}",
                  f"{len(oracle_stopped & stopped)}/{len(oracle_stopped)}",
                  max_fire_ms, constraint, max_fire_ms < constraint,
                  out["reports_per_s"])
    return table


def test_e7_report():
    table = run_experiment()
    table.show()
    for row in table.as_dicts():
        ok, total = row["segstat_windows_ok"].split("/")
        assert int(ok) >= int(total) - 1  # last partial window may lag
        found, oracle = row["stopped_found/oracle"].split("/")
        assert int(found) == int(oracle)
        assert row["meets_constraint"] is True


def test_e7_throughput(benchmark):
    benchmark(lambda: run_linear_road(cars=60, duration_s=60))
