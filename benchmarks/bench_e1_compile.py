"""E1 — Posing queries (demo Fig. 2).

Continuous queries are ordinary SQL: measure the cost of the full
compile path (parse -> bind -> plan -> optimize -> MAL -> continuous
rewrite) and show how the plan shape changes (instruction counts
before/after the DataCell rewrite) for a suite of query templates.
"""

from __future__ import annotations

import pytest

from repro.bench.harness import ResultTable, time_callable
from repro.core.rewriter import rewrite_summary, rewrite_to_continuous
from repro.mal.compiler import compile_plan
from repro.sql import compile_select
from repro.sql.plan import find_stream_scans
from repro.storage import Schema
from repro.storage.catalog import Catalog

TEMPLATES = [
    ("filter", "SELECT sensor_id, temperature FROM sensors "
               "WHERE temperature > 30"),
    ("tumbling-agg", "SELECT room, avg(temperature) FROM sensors "
                     "[RANGE 100] GROUP BY room"),
    ("sliding-agg", "SELECT room, avg(temperature), count(*) "
                    "FROM sensors [RANGE 100 SLIDE 20] GROUP BY room "
                    "HAVING count(*) > 3 ORDER BY room"),
    ("stream-table-join", "SELECT r.name, max(s.temperature) "
                          "FROM sensors [RANGE 60 SLIDE 20] s, rooms r "
                          "WHERE s.room = r.room GROUP BY r.name"),
    ("time-window", "SELECT count(*) FROM sensors "
                    "[RANGE 10 SECONDS SLIDE 2 SECONDS] "
                    "WHERE temperature > 25"),
]


def make_catalog() -> Catalog:
    catalog = Catalog()
    catalog.create_stream("sensors", Schema.parse(
        [("sensor_id", "INT"), ("room", "INT"),
         ("temperature", "FLOAT"), ("humidity", "FLOAT")]))
    catalog.create_table("rooms", Schema.parse(
        [("room", "INT"), ("name", "VARCHAR"),
         ("min_temp", "FLOAT"), ("max_temp", "FLOAT")]))
    return catalog


def compile_continuous(catalog: Catalog, sql: str):
    plan = compile_select(sql, catalog)
    program = compile_plan(plan)
    streams = [s.stream_name for s in find_stream_scans(plan)]
    continuous = rewrite_to_continuous(program, streams)
    return plan, program, continuous


def run_experiment() -> ResultTable:
    catalog = make_catalog()
    table = ResultTable(
        "E1: continuous-query compilation (parse..rewrite)",
        ["template", "compile_ms", "one_time_ops", "continuous_ops",
         "binds_redirected"])
    for name, sql in TEMPLATES:
        seconds, (plan, program, continuous) = time_callable(
            lambda sql=sql: compile_continuous(catalog, sql), repeats=5)
        summary = rewrite_summary(program, continuous)
        table.add(name, seconds * 1000, len(program), len(continuous),
                  summary["binds_redirected"])
    return table


def test_e1_report():
    table = run_experiment()
    table.show()
    for row in table.as_dicts():
        assert row["continuous_ops"] > row["one_time_ops"]
        assert row["binds_redirected"] >= 1


@pytest.mark.parametrize("name,sql", TEMPLATES,
                         ids=[n for n, _s in TEMPLATES])
def test_e1_compile_speed(benchmark, name, sql):
    catalog = make_catalog()
    benchmark(lambda: compile_continuous(catalog, sql))
