"""Shared workload builders for the experiment benches."""

from __future__ import annotations

from typing import List, Tuple

from repro.core.engine import DataCellEngine
from repro.streams.generators import sensor_rows
from repro.streams.source import RateSource

SENSOR_DDL = ("CREATE STREAM sensors (sensor_id INT, room INT, "
              "temperature FLOAT, humidity FLOAT)")
ROOMS_DDL = ("CREATE TABLE rooms (room INT, name VARCHAR(16), "
             "min_temp FLOAT, max_temp FLOAT)")


def sensor_engine(nrows: int, with_rooms: bool = False,
                  seed: int = 42,
                  **engine_kwargs) -> Tuple[DataCellEngine, List[tuple]]:
    """Fresh engine + sensors stream (+ optional rooms dimension).

    Extra keyword arguments reach :class:`DataCellEngine` (e.g.
    ``recycler_enabled=False`` for the shared-work ablations).
    """
    engine = DataCellEngine(**engine_kwargs)
    engine.execute(SENSOR_DDL)
    if with_rooms:
        from repro.streams.generators import reference_rooms

        engine.execute(ROOMS_DDL)
        engine.catalog.table("rooms").insert_rows(reference_rooms(4))
    rows = sensor_rows(nrows, seed=seed)
    return engine, rows


def drive(engine: DataCellEngine, stream: str, rows,
          rate: float = 1_000_000.0) -> None:
    """Attach a source and run the net to exhaustion (simulated clock)."""
    engine.attach_source(stream, RateSource(rows, rate=rate))
    engine.run_until_drained()
    if engine.scheduler.failed:
        raise RuntimeError(f"factory failures: {engine.scheduler.failed}")
