"""E10 — Ablation: intermediate-result caching (DESIGN.md choice).

The paper's key mechanism is "appropriately caching and reusing
intermediates during sliding window queries". This ablation disables
the per-pair join-result cache of the two-stream incremental path
(``cache_enabled=False``: every firing recomputes every live
basic-window pair) and compares against the cached configuration and
the re-evaluation baseline. Expected: cache-off lands between reeval
and cached incremental — plan splitting alone helps, caching is where
the bulk of the win comes from.
"""

from __future__ import annotations

import pytest

from repro.bench.harness import ResultTable, speedup
from repro.core.engine import DataCellEngine
from repro.streams.generators import sensor_rows
from repro.streams.source import RateSource

WINDOW, SLIDE, N_ROWS = 1600, 200, 8000
QUERY = ("SELECT a.room, count(*), avg(a.temperature) "
         f"FROM sensors [RANGE {WINDOW} SLIDE {SLIDE}] a, "
         f"sensors2 [RANGE {WINDOW} SLIDE {SLIDE}] b "
         "WHERE a.sensor_id = b.sensor_id GROUP BY a.room")


def run(mode: str, cache_enabled: bool = True):
    engine = DataCellEngine()
    for name in ("sensors", "sensors2"):
        engine.execute(f"CREATE STREAM {name} (sensor_id INT, room INT, "
                       "temperature FLOAT, humidity FLOAT)")
    q = engine.register_continuous(QUERY, mode=mode, name="q",
                                   cache_enabled=cache_enabled)
    engine.attach_source("sensors", RateSource(
        sensor_rows(N_ROWS, seed=1), rate=1_000_000))
    engine.attach_source("sensors2", RateSource(
        sensor_rows(N_ROWS, seed=2), rate=1_000_000))
    engine.run_until_drained()
    assert not engine.scheduler.failed
    factory = q.factory
    stats = factory.stats()
    return {
        "ms_per_fire": factory.busy_seconds / factory.fires * 1000,
        "fires": factory.fires,
        "pairs_computed": stats.get("pairs_computed", 0),
        "pairs_reused": stats.get("pairs_reused", 0),
        "rows": [rel.to_rows() for _t, rel in
                 engine.results("q").batches],
    }


def run_experiment() -> ResultTable:
    table = ResultTable(
        "E10: ablation — windowed-join intermediate caching",
        ["configuration", "ms_per_fire", "pairs_computed",
         "pairs_reused", "speedup_vs_reeval"])
    ree = run("reeval")
    cached = run("incremental", cache_enabled=True)
    uncached = run("incremental", cache_enabled=False)
    table.add("re-evaluation", ree["ms_per_fire"], 0, 0, 1.0)
    table.add("incremental, cache OFF", uncached["ms_per_fire"],
              uncached["pairs_computed"], uncached["pairs_reused"],
              speedup(ree["ms_per_fire"], uncached["ms_per_fire"]))
    table.add("incremental, cache ON", cached["ms_per_fire"],
              cached["pairs_computed"], cached["pairs_reused"],
              speedup(ree["ms_per_fire"], cached["ms_per_fire"]))
    return table


def test_e10_report():
    table = run_experiment()
    table.show()
    rows = {r["configuration"]: r for r in table.as_dicts()}
    cached = rows["incremental, cache ON"]
    uncached = rows["incremental, cache OFF"]
    # the cache is where the win comes from
    assert cached["ms_per_fire"] < uncached["ms_per_fire"]
    assert cached["speedup_vs_reeval"] > 2.0
    # cache-off recomputes every live pair every firing
    assert uncached["pairs_computed"] > cached["pairs_computed"] * 3
    assert cached["pairs_reused"] > 0
    assert uncached["pairs_reused"] == 0


def test_e10_results_identical():
    cached = run("incremental", cache_enabled=True)
    uncached = run("incremental", cache_enabled=False)
    assert cached["rows"] == uncached["rows"]


@pytest.mark.parametrize("cache", [True, False],
                         ids=["cached", "uncached"])
def test_e10_join_cache(benchmark, cache):
    benchmark(lambda: run("incremental", cache_enabled=cache))
