"""E13 — Z-set delta execution vs incremental vs re-evaluation.

A grouped sliding-window aggregate with a fixed slide and a growing
window (n = w/s basic windows). Expected shape: re-evaluation touches
the whole window per slide (cost grows with n); incremental touches
each tuple once but re-merges n cached partials per slide (cost also
grows with n); delta execution consumes only the arrival/expiry Z-set
(~2·slide weighted rows) and keeps running per-group state, so its
per-slide cost is flat in the window size — O(Δ), and ≥2× below
incremental once n ≥ 8.

The group count (~:data:`N_KEYS` live keys) is deliberately high: the
per-group merge work is where incremental's O(n) shows, and where the
delta aggregator's columnar state pays off.
"""

from __future__ import annotations

import pytest

from repro.bench.harness import ResultTable, speedup
from repro.core.engine import DataCellEngine
from repro.streams.source import RateSource

N_ROWS = 60_000
SLIDE = 600
N_KEYS = 499
BASIC_COUNTS = [1, 2, 4, 8, 16, 32]

DDL = "CREATE STREAM s (k INT, v FLOAT)"
QUERY = ("SELECT k, count(*), sum(v), avg(v), stddev(v) FROM s "
         "[RANGE {w} SLIDE {s}] GROUP BY k")


def make_rows(nrows: int):
    return [(i % N_KEYS, float((i * 31) % 997) / 7.0)
            for i in range(nrows)]


def run_mode(mode: str, window: int, slide: int = SLIDE,
             nrows: int = N_ROWS):
    engine = DataCellEngine()
    engine.execute(DDL)
    query = engine.register_continuous(
        QUERY.format(w=window, s=slide), mode=mode, name="q",
        collect_max_batches=4)
    engine.attach_source("s", RateSource(make_rows(nrows),
                                         rate=1_000_000))
    engine.run_until_drained()
    if engine.scheduler.failed:
        raise RuntimeError(f"factory failures: {engine.scheduler.failed}")
    factory = query.factory
    return {
        "mode": query.mode,
        "fires": factory.fires,
        "busy_ms": factory.busy_seconds * 1000,
        "ms_per_fire": (factory.busy_seconds / factory.fires * 1000
                        if factory.fires else 0.0),
        "stats": factory.stats(),
        "rows": [r.to_rows() for _t, r in engine.results("q").batches],
    }


def run_experiment(nrows: int = N_ROWS) -> ResultTable:
    table = ResultTable(
        f"E13: delta vs incremental vs re-evaluation, slide={SLIDE}, "
        f"{N_KEYS} group keys, {nrows} tuples streamed",
        ["n_basic", "window", "reeval_ms_per_fire", "incr_ms_per_fire",
         "delta_ms_per_fire", "incr_over_delta", "reeval_over_delta",
         "fires"])
    for n in BASIC_COUNTS:
        window = n * SLIDE
        ree = run_mode("reeval", window, nrows=nrows)
        inc = run_mode("incremental", window, nrows=nrows)
        dlt = run_mode("delta", window, nrows=nrows)
        assert ree["fires"] == inc["fires"] == dlt["fires"]
        table.add(n, window, ree["ms_per_fire"], inc["ms_per_fire"],
                  dlt["ms_per_fire"],
                  speedup(inc["ms_per_fire"], dlt["ms_per_fire"]),
                  speedup(ree["ms_per_fire"], dlt["ms_per_fire"]),
                  ree["fires"])
    return table


def run_nondivisible_table(nrows: int = 6_000) -> ResultTable:
    """Windows incremental mode cannot run (size % slide != 0):
    delta still processes them in O(Δ)."""
    table = ResultTable(
        f"E13b: non-divisible windows (delta-only geometry), "
        f"{nrows} tuples streamed",
        ["window", "slide", "reeval_ms_per_fire", "delta_ms_per_fire",
         "reeval_over_delta", "fires"])
    for window, slide in ((1000, 300), (2500, 700), (4000, 900)):
        ree = run_mode("reeval", window, slide=slide, nrows=nrows)
        dlt = run_mode("delta", window, slide=slide, nrows=nrows)
        assert ree["fires"] == dlt["fires"]
        table.add(window, slide, ree["ms_per_fire"],
                  dlt["ms_per_fire"],
                  speedup(ree["ms_per_fire"], dlt["ms_per_fire"]),
                  dlt["fires"])
    return table


def test_e13_report():
    table = run_experiment()
    table.show()
    rows = table.as_dicts()
    by_n = {r["n_basic"]: r for r in rows}
    # the headline claim: at n >= 8 delta is at least 2x cheaper per
    # slide than incremental's n-way partial re-merge
    for n in (8, 16, 32):
        assert by_n[n]["incr_over_delta"] >= 2.0, by_n[n]
    # delta per-slide cost is flat (sublinear) in the window size
    # while re-evaluation keeps growing with it
    delta_growth = by_n[32]["delta_ms_per_fire"] / \
        by_n[8]["delta_ms_per_fire"]
    reeval_growth = by_n[32]["reeval_ms_per_fire"] / \
        by_n[8]["reeval_ms_per_fire"]
    assert delta_growth < 2.0, delta_growth
    assert reeval_growth > 1.5, reeval_growth
    assert delta_growth < reeval_growth
    # incremental's merge cost grows with n (the gap delta closes)
    assert by_n[32]["incr_ms_per_fire"] > \
        2.0 * by_n[8]["incr_ms_per_fire"]


def test_e13_nondivisible_report():
    table = run_nondivisible_table()
    table.show()
    for row in table.as_dicts():
        assert row["fires"] > 0


def test_e13_results_identical_across_modes():
    window, slide, nrows = 800, 100, 4_000
    ree = run_mode("reeval", window, slide=slide, nrows=nrows)
    inc = run_mode("incremental", window, slide=slide, nrows=nrows)
    dlt = run_mode("delta", window, slide=slide, nrows=nrows)
    assert ree["mode"] == "reeval" and inc["mode"] == "incremental" \
        and dlt["mode"] == "delta"
    assert len(ree["rows"]) == len(inc["rows"]) == len(dlt["rows"])

    def norm(rows):
        return sorted(tuple(round(v, 6) + 0.0 if isinstance(v, float)
                            else v for v in row) for row in rows)

    for a, b, c in zip(ree["rows"], inc["rows"], dlt["rows"]):
        assert norm(a) == norm(b) == norm(c)


def test_e13_delta_is_o_of_delta():
    """The executor's own accounting: rows consumed per firing track
    the slide, not the window."""
    out = run_mode("delta", 32 * SLIDE)
    fires = out["fires"]
    rows_in = out["stats"]["delta_rows_in"]
    # arrival + expiry per firing ~ 2 * slide, plus the first window
    assert rows_in <= 2.5 * SLIDE * fires + 32 * SLIDE


@pytest.mark.parametrize("mode", ["reeval", "incremental", "delta"])
def test_e13_window_sliding(benchmark, mode):
    benchmark(lambda: run_mode(mode, 4800, nrows=20_000))
