"""E4 — Window sizes (demo §4 "Window Sizes").

Users vary window size and step and watch plans/performance change.
Two sweeps: (a) fixed slide, growing window — re-evaluation cost grows
linearly with w while incremental stays ~flat (it reprocesses only one
basic window per slide); (b) fixed window, growing slide — the modes
converge as the window becomes tumbling.
"""

from __future__ import annotations

import pytest

from benchmarks.bench_e3_incremental import run_mode
from repro.bench.harness import ResultTable, speedup

N_ROWS = 90_000
SLIDE_FIXED = 1200
WINDOW_SWEEP = [2400, 4800, 9600, 19200, 38400]
WINDOW_FIXED = 28_800
SLIDE_SWEEP = [1200, 2400, 4800, 9600, 14400, 28800]


def run_window_sweep() -> ResultTable:
    table = ResultTable(
        f"E4a: growing window, slide={SLIDE_FIXED} tuples",
        ["window", "reeval_ms_per_fire", "incr_ms_per_fire", "speedup"])
    for window in WINDOW_SWEEP:
        ree = run_mode("reeval", window, SLIDE_FIXED, N_ROWS)
        inc = run_mode("incremental", window, SLIDE_FIXED, N_ROWS)
        table.add(window, ree["ms_per_fire"], inc["ms_per_fire"],
                  speedup(ree["ms_per_fire"], inc["ms_per_fire"]))
    return table


def run_slide_sweep() -> ResultTable:
    table = ResultTable(
        f"E4b: growing slide, window={WINDOW_FIXED} tuples",
        ["slide", "n_basic", "reeval_ms_per_fire", "incr_ms_per_fire",
         "speedup"])
    for slide in SLIDE_SWEEP:
        ree = run_mode("reeval", WINDOW_FIXED, slide, N_ROWS)
        inc = run_mode("incremental", WINDOW_FIXED, slide, N_ROWS)
        table.add(slide, WINDOW_FIXED // slide, ree["ms_per_fire"],
                  inc["ms_per_fire"],
                  speedup(ree["ms_per_fire"], inc["ms_per_fire"]))
    return table


def run_experiment():
    return [run_window_sweep(), run_slide_sweep()]


def test_e4_window_sweep_report():
    table = run_window_sweep()
    table.show()
    rows = table.as_dicts()
    # re-evaluation cost grows with the window ...
    assert rows[-1]["reeval_ms_per_fire"] > \
        rows[0]["reeval_ms_per_fire"] * 2
    # ... incremental does not (bounded by one basic window + merge)
    assert rows[-1]["incr_ms_per_fire"] < \
        rows[0]["incr_ms_per_fire"] * 6
    # so the speedup widens monotonically-ish with window size
    assert rows[-1]["speedup"] > rows[0]["speedup"]


def test_e4_slide_sweep_report():
    table = run_slide_sweep()
    table.show()
    rows = table.as_dicts()
    # sliding toward tumbling: the advantage shrinks toward ~1x
    assert rows[0]["speedup"] > rows[-1]["speedup"]
    assert rows[-1]["speedup"] < 3.0


@pytest.mark.parametrize("window", [2400, 19200])
def test_e4_reeval_cost_scales(benchmark, window):
    benchmark(lambda: run_mode("reeval", window, 1200, nrows=40000))
