"""Run every experiment (E1-E16) and print the full report.

Usage::

    python benchmarks/run_experiments.py [--quick]

This is the aggregate view behind EXPERIMENTS.md: each experiment
module also runs under pytest (``pytest benchmarks/``) where the shape
assertions live; this runner just produces all tables in one place.
"""

from __future__ import annotations

import os
import sys
import time

# allow `python benchmarks/run_experiments.py` from the repo root
sys.path.insert(0, os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))))

from benchmarks import (bench_e1_compile, bench_e2_multiquery,
                        bench_e3_incremental, bench_e4_windows,
                        bench_e5_complex, bench_e6_hybrid,
                        bench_e7_linearroad, bench_e8_scheduler,
                        bench_e9_baskets, bench_e10_ablation,
                        bench_e10_net, bench_e11_indexing,
                        bench_e12_storefirst, bench_e13_delta,
                        bench_e14_interp, bench_e15_durability,
                        bench_e16_paging)

EXPERIMENTS = [
    ("E1 — continuous-query compilation", bench_e1_compile),
    ("E2 — query-network scaling", bench_e2_multiquery),
    ("E3 — re-evaluation vs incremental", bench_e3_incremental),
    ("E4 — window-size sweeps", bench_e4_windows),
    ("E5 — complex queries (joins)", bench_e5_complex),
    ("E6 — stream + persistent paradigms", bench_e6_hybrid),
    ("E7 — scaled Linear Road", bench_e7_linearroad),
    ("E8 — scheduler time constraints", bench_e8_scheduler),
    ("E9 — basket mechanics", bench_e9_baskets),
    ("E10 — caching ablation", bench_e10_ablation),
    ("E10n — network edge loopback", bench_e10_net),
    ("E11 — indexing in a streaming setting", bench_e11_indexing),
    ("E12 — continuous vs store-first-query-later",
     bench_e12_storefirst),
    ("E13 — Z-set delta execution", bench_e13_delta),
    ("E14 — slot-compiled plan execution", bench_e14_interp),
    ("E15 — durable stream log", bench_e15_durability),
    ("E16 — log-resident paged windows", bench_e16_paging),
]


def main() -> int:
    total_start = time.perf_counter()
    for title, module in EXPERIMENTS:
        print()
        print("#" * 72)
        print(f"# {title}")
        print("#" * 72)
        start = time.perf_counter()
        result = module.run_experiment()
        tables = result if isinstance(result, list) else [result]
        for table in tables:
            print()
            print(table.render())
        print(f"\n[{title}: {time.perf_counter() - start:.1f}s]")
    print(f"\nall experiments: "
          f"{time.perf_counter() - total_start:.1f}s")
    return 0


if __name__ == "__main__":
    sys.exit(main())
