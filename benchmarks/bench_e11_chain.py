"""E11c — Chained-network recycling: eviction-policy ablation.

A three-stage chained query network (Figure 3 composed twice):
``sensors`` is filtered into output basket ``hot``, ``hot`` into
``alerts``, and a fleet of standing queries consumes ``alerts``. Two
claims to measure:

* **fingerprint flow across stage boundaries** — each upstream firing's
  emit payload is adopted by the recycler under its output-basket oid
  range, so every downstream scan of that range is a cache hit
  (``chain_hits``), never a re-materialization;
* **benefit-density eviction** under a tight byte budget: the fleet
  interleaves duplicated aggregates (tiny, relatively costly, reused by
  their twins later in the same cascade round) with one-shot selects
  (large candidate/projection intermediates, cheap per byte). Benefit
  density (cost × reuses / bytes) keeps the aggregate states resident
  through the churn; plain LRU ages them out before their twins re-ask.

The ablation runs the same fleet with the recycler off, with ``lru``
eviction and with ``benefit`` eviction at 8/16/32 standing queries and
archives busy time, hit rates and chain counters (``BENCH_E11.json``).
Emitted results are asserted byte-identical across all three runs.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from benchmarks.workloads import SENSOR_DDL, drive
from repro.bench.harness import ResultTable
from repro.core.engine import DataCellEngine
from repro.streams.generators import sensor_rows

N_ROWS = 20_000
RATE = 200_000.0          # ~200-row bursts per simulated-clock step
QUERY_COUNTS = [8, 16, 32]
# tight on purpose: one cascade round's churn of select intermediates
# must overflow the cache so the policies actually have to choose
BUDGET_BYTES = 8 << 10

AGG_SQL = ("SELECT room, count(*), sum(temperature), avg(humidity) "
           "FROM alerts GROUP BY room ORDER BY room")


def build_chain(engine: DataCellEngine, n_queries: int) -> List[str]:
    """Register the 3-stage network; returns every query name.

    Stage 1 and 2 are the chain spine (``output_stream`` baskets);
    the remaining ``n_queries - 2`` form the fleet over ``alerts``:
    every third is the *same* aggregate (duplicates that re-ask for
    each other's intermediates), the rest are churning selects with
    per-query thresholds (one-shot large intermediates).
    """
    engine.execute(SENSOR_DDL)
    engine.register_continuous(
        "SELECT sensor_id, room, temperature, humidity FROM sensors "
        "WHERE temperature > 12", name="s1", mode="reeval",
        output_stream="hot")
    engine.register_continuous(
        "SELECT sensor_id, room, temperature, humidity FROM hot "
        "WHERE temperature > 16", name="s2", mode="reeval",
        output_stream="alerts")
    names = ["s1", "s2"]
    for i in range(n_queries - 2):
        name = f"q{i}"
        if i % 3 == 0:
            engine.register_continuous(AGG_SQL, name=name,
                                       mode="reeval")
        else:
            engine.register_continuous(
                f"SELECT sensor_id, room, temperature, humidity "
                f"FROM alerts WHERE temperature > {18 + (i % 8)}",
                name=name, mode="reeval")
        names.append(name)
    return names


def run_chain(policy: Optional[str], n_queries: int,
              nrows: int = N_ROWS, autotune: bool = False
              ) -> Tuple[DataCellEngine, List[str], float]:
    """One full run; ``policy=None`` disables the recycler.

    ``autotune=True`` keeps the same deliberately starved starting
    budget but lets the autotuner grow it out of the thrash — the
    configuration the recycler-on-vs-off acceptance gate runs."""
    engine = DataCellEngine(
        recycler_enabled=policy is not None,
        recycler_policy=policy or "benefit",
        recycler_budget_bytes=BUDGET_BYTES,
        recycler_autotune=autotune)
    names = build_chain(engine, n_queries)
    drive(engine, "sensors", sensor_rows(nrows), rate=RATE)
    busy = sum(f.busy_seconds for f in engine.scheduler.factories)
    return engine, names, busy


def _best(policy: Optional[str], n_queries: int, nrows: int,
          repeats: int = 3, autotune: bool = False
          ) -> Tuple[DataCellEngine, List[str], float]:
    """Best-of-*repeats* busy time (min is the noise-robust estimator
    for CPU-bound work) plus the last run's engine."""
    best = float("inf")
    engine = names = None
    for _ in range(repeats):
        engine, names, busy = run_chain(policy, n_queries, nrows,
                                        autotune=autotune)
        best = min(best, busy)
    return engine, names, best


def hit_rate(stats: dict) -> float:
    """Fraction of all recycler lookups (instruction + slice) served
    from cache."""
    asked = (stats["hits"] + stats["misses"] +
             stats["slice_hits"] + stats["slice_misses"])
    if not asked:
        return 0.0
    return (stats["hits"] + stats["slice_hits"]) / asked


def run_experiment(nrows: int = N_ROWS, repeats: int = 3) -> ResultTable:
    table = ResultTable(
        f"E11c: chained-network recycling, eviction-policy ablation "
        f"({nrows} tuples, 3 stages, budget={BUDGET_BYTES}B, "
        f"autotuned column grows from that budget)",
        ["queries", "busy_off_ms", "busy_lru_ms", "busy_benefit_ms",
         "busy_autotuned_ms", "hitrate_lru", "hitrate_benefit",
         "chain_hits_benefit", "evictions_benefit", "budget_grows"])
    for n in QUERY_COUNTS:
        _off, _names, busy_off = _best(None, n, nrows, repeats)
        lru_engine, _names, busy_lru = _best("lru", n, nrows, repeats)
        ben_engine, _names, busy_ben = _best("benefit", n, nrows,
                                             repeats)
        auto_engine, _names, busy_auto = _best("benefit", n, nrows,
                                               repeats, autotune=True)
        lru = lru_engine.recycler.stats()
        ben = ben_engine.recycler.stats()
        auto = auto_engine.recycler.stats()
        table.add(n, busy_off * 1000, busy_lru * 1000, busy_ben * 1000,
                  busy_auto * 1000,
                  round(hit_rate(lru), 4), round(hit_rate(ben), 4),
                  ben["chain_hits"], ben["evictions"],
                  auto["budget_grows"])
    return table


# -- acceptance -------------------------------------------------------


def test_e11_stage_boundary_is_a_cache_hit():
    """Every downstream stage's scan of an output basket resolves to
    the upstream emit payload: chain hits registered, zero slice
    misses beyond the leaf stream for the spine stages."""
    engine, _names, _busy = run_chain("benefit", 8, nrows=6000)
    stats = engine.recycler.stats()
    assert stats["chain_stamped"] > 0
    assert stats["chain_hits"] > 0
    # the spine emitted into both output baskets
    assert engine.basket("hot").total_in > 0
    assert engine.basket("alerts").total_in > 0


def test_e11_policies_emit_identical_results():
    off_engine, names, _b = run_chain(None, 16, nrows=6000)
    lru_engine, _n, _b = run_chain("lru", 16, nrows=6000)
    ben_engine, _n, _b = run_chain("benefit", 16, nrows=6000)
    for name in names:
        rows = off_engine.results(name).rows()
        assert lru_engine.results(name).rows() == rows
        assert ben_engine.results(name).rows() == rows


def test_e11_autotuned_recycler_not_slower_than_off():
    """The E11c acceptance bar: starting from the same starved budget
    the policy ablation uses, the autotuner must grow the cache out of
    its thrash so recycler-on busy time does not exceed recycler-off.
    Runs are paired back-to-back and gated on the best pair, which
    cancels the box-load drift that independent best-of-N cannot."""
    best = None
    for _ in range(3):
        _e, _n, off = run_chain(None, 16, nrows=8000)
        engine, _n, on = run_chain("benefit", 16, nrows=8000,
                                   autotune=True)
        ratio = on / off if off else 0.0
        if best is None or ratio < best[0]:
            best = (ratio, engine)
    ratio, engine = best
    stats = engine.recycler.stats()
    assert stats["budget_grows"] >= 1, stats
    assert ratio <= 1.0, \
        f"autotuned recycler-on {ratio:.3f}x recycler-off busy time"


def test_e11_benefit_hit_rate_at_least_lru():
    """The tentpole claim: under budget pressure on the chained fleet,
    benefit-density eviction serves at least as many lookups from
    cache as plain LRU (it keeps the tiny/costly/reused aggregate
    states and sheds the one-shot select intermediates instead)."""
    lru_engine, _n, _b = run_chain("lru", 16, nrows=6000)
    ben_engine, _n, _b = run_chain("benefit", 16, nrows=6000)
    lru = lru_engine.recycler.stats()
    ben = ben_engine.recycler.stats()
    assert lru["evictions"] > 0 and ben["evictions"] > 0, \
        "budget too loose: no eviction pressure, ablation is vacuous"
    assert ben["chain_hits"] > 0
    assert hit_rate(ben) >= hit_rate(lru), \
        (f"benefit hit rate {hit_rate(ben):.4f} below "
         f"lru {hit_rate(lru):.4f}")
