"""E9 — Basket mechanics (paper §3 "Baskets/Columns").

Stream tuples are "immediately stored in a lightweight table" and
"once a tuple has been seen by all relevant queries/operators, it is
dropped from its basket". Measured here:

* ingest throughput vs append batch size (columnar appends amortize);
* retention / memory high-water: re-evaluation must keep a full window
  of raw tuples, incremental drops them once their basic window is
  cached (the demo's "intermediate result sizes" pane);
* drain conservation under multiple subscribers.
"""

from __future__ import annotations

import time

import pytest

from benchmarks.workloads import drive, sensor_engine
from repro.bench.harness import ResultTable
from repro.core.basket import Basket
from repro.storage import Schema
from repro.streams.generators import sensor_rows

N_ROWS = 100_000
BATCH_SIZES = [1, 16, 256, 4096]


def ingest_throughput(batch_size: int, nrows: int = N_ROWS) -> float:
    basket = Basket("s", Schema.parse(
        [("sensor_id", "INT"), ("room", "INT"),
         ("temperature", "FLOAT"), ("humidity", "FLOAT")]))
    rows = sensor_rows(nrows)
    start = time.perf_counter()
    for i in range(0, nrows, batch_size):
        basket.append_rows(rows[i:i + batch_size], now=i)
    elapsed = time.perf_counter() - start
    assert len(basket) == nrows
    return nrows / elapsed


def retention(mode: str, window: int = 8000, slide: int = 1000,
              nrows: int = 40_000):
    engine, rows = sensor_engine(nrows)
    query = engine.register_continuous(
        f"SELECT room, avg(temperature) FROM sensors "
        f"[RANGE {window} SLIDE {slide}] GROUP BY room",
        mode=mode, name="q")
    drive(engine, "sensors", rows)
    basket = engine.basket("sensors")
    stats = query.factory.stats()
    return {
        "high_water": basket.high_water,
        "retained_end": len(basket),
        "dropped": basket.total_dropped,
        "cached_rows": stats.get("cached_rows", 0),
    }


def run_ingest_table() -> ResultTable:
    table = ResultTable(
        f"E9a: basket ingest throughput ({N_ROWS} tuples)",
        ["batch_size", "tuples_per_s"])
    for batch in BATCH_SIZES:
        nrows = N_ROWS if batch >= 16 else N_ROWS // 10
        table.add(batch, ingest_throughput(batch, nrows))
    return table


def run_retention_table() -> ResultTable:
    table = ResultTable(
        "E9b: raw-tuple retention, window=8000 slide=1000",
        ["mode", "basket_high_water", "retained_at_end",
         "cached_intermediate_rows"])
    for mode in ("reeval", "incremental"):
        out = retention(mode)
        table.add(mode, out["high_water"], out["retained_end"],
                  out["cached_rows"])
    return table


def run_experiment():
    return [run_ingest_table(), run_retention_table()]


def test_e9_ingest_report():
    table = run_ingest_table()
    table.show()
    rows = table.as_dicts()
    # columnar batch appends amortize: >=10x between batch=1 and 4096
    assert rows[-1]["tuples_per_s"] > rows[0]["tuples_per_s"] * 10


def test_e9_retention_report():
    table = run_retention_table()
    table.show()
    rows = {r["mode"]: r for r in table.as_dicts()}
    # re-evaluation keeps >= a full window of raw tuples around
    assert rows["reeval"]["basket_high_water"] >= 8000
    # incremental keeps only un-cached slide remainders (plus ingest
    # burst slack), far below one window
    assert rows["incremental"]["basket_high_water"] < \
        rows["reeval"]["basket_high_water"]
    # what it keeps instead: small cached intermediates (aggregate
    # partials), not raw tuples
    assert rows["incremental"]["cached_intermediate_rows"] < 1000


def test_e9_multi_subscriber_conservation():
    basket = Basket("s", Schema.parse([("k", "INT")]))
    subs = [basket.subscribe(f"q{i}", from_start=True) for i in range(3)]
    for i in range(100):
        basket.append_rows([(i,)], now=i)
    for i, sub in enumerate(subs):
        sub.release(30 * (i + 1))
    assert basket.vacuum() == 30
    assert basket.total_in == basket.total_dropped + len(basket)


@pytest.mark.parametrize("batch", [16, 4096])
def test_e9_ingest(benchmark, batch):
    benchmark(lambda: ingest_throughput(batch, nrows=20_000))
