"""E11 — DBMS functionality in a streaming setting: indexing.

The paper's abstract names "exploiting standard DBMS functionalities in
a streaming environment such as indexing" as a core challenge. The
concrete case: a standing query joins every window slice against a
persistent dimension table. Without an index, every firing rebuilds a
hash table over the dimension; with a hash index on the join column,
firings only probe. Expected shape: the per-fire win grows with the
dimension-table size (the rebuild is O(|table|), the probe is
O(|slice|)).
"""

from __future__ import annotations

import pytest

from repro.bench.harness import ResultTable, speedup
from repro.core.engine import DataCellEngine
from repro.streams.generators import sensor_rows
from repro.streams.source import RateSource

N_ROWS = 20_000
WINDOW, SLIDE = 4000, 500
TABLE_SIZES = [100, 1_000, 10_000, 50_000]

QUERY = ("SELECT d.label, count(*) n "
         f"FROM sensors [RANGE {WINDOW} SLIDE {SLIDE}] s, dim d "
         "WHERE s.sensor_id = d.key GROUP BY d.label ORDER BY d.label")


def run_hybrid(table_rows: int, indexed: bool, sensors: int = 16):
    engine = DataCellEngine()
    engine.execute("CREATE STREAM sensors (sensor_id INT, room INT, "
                   "temperature FLOAT, humidity FLOAT)")
    engine.execute("CREATE TABLE dim (key INT, label VARCHAR(16))")
    # the first `sensors` keys match the stream; the rest are ballast
    # that makes the per-firing hash-table rebuild expensive
    engine.catalog.table("dim").insert_rows(
        [(k, f"label{k % 7}") for k in range(table_rows)])
    if indexed:
        engine.execute("CREATE INDEX ON dim (key)")
    query = engine.register_continuous(QUERY, mode="incremental",
                                       name="q")
    engine.attach_source(
        "sensors", RateSource(sensor_rows(N_ROWS, sensors=sensors),
                              rate=1_000_000))
    engine.run_until_drained()
    assert not engine.scheduler.failed
    factory = query.factory
    return {
        "ms_per_fire": factory.busy_seconds / factory.fires * 1000,
        "fires": factory.fires,
        "rows": [rel.to_rows() for _t, rel in
                 engine.results("q").batches],
    }


def run_experiment() -> ResultTable:
    table = ResultTable(
        "E11: hash index on the dimension side of a hybrid join",
        ["dim_rows", "noindex_ms_per_fire", "indexed_ms_per_fire",
         "speedup"])
    for size in TABLE_SIZES:
        plain = run_hybrid(size, indexed=False)
        fast = run_hybrid(size, indexed=True)
        table.add(size, plain["ms_per_fire"], fast["ms_per_fire"],
                  speedup(plain["ms_per_fire"], fast["ms_per_fire"]))
    return table


def test_e11_report():
    table = run_experiment()
    table.show()
    rows = table.as_dicts()
    # without the index, cost grows with the dimension size ...
    assert rows[-1]["noindex_ms_per_fire"] > \
        rows[0]["noindex_ms_per_fire"] * 2
    # ... with it, the large-table case wins clearly
    assert rows[-1]["speedup"] > 2.0
    # and the advantage grows with the table size
    assert rows[-1]["speedup"] > rows[0]["speedup"]


def test_e11_results_identical():
    plain = run_hybrid(2000, indexed=False)
    fast = run_hybrid(2000, indexed=True)
    assert plain["rows"] == fast["rows"]


@pytest.mark.parametrize("indexed", [False, True],
                         ids=["noindex", "indexed"])
def test_e11_hybrid_join(benchmark, indexed):
    benchmark(lambda: run_hybrid(10_000, indexed=indexed))
