"""E16 — log-resident windows: paged replay memory and retention.

The paged window binder lets a ``from_start`` standing query window
over durable history without pulling it back into basket memory:
sealed segments are bound as zero-copy ``np.memmap`` views and the
basket stays at its steady-state size. This experiment checks the two
claims that make that useful:

* **E16a** — paged replay over a log at least 4x larger than the
  basket's retained rows. A live query plus vacuum keep the basket
  near one window of tuples; a late ``from_start`` registration then
  replays the whole log. Acceptance: the basket never grows past 2x
  its steady-state row count during the replay, process peak RSS
  stays within ~2x the steady-state RSS, and the late query's
  emissions are byte-identical to a fully-in-memory run of the same
  workload.
* **E16b** — retention under live queries. With ``retain_bytes`` set,
  checkpoint-paced retention truncates sealed prefix segments while
  the standing query keeps firing; a replay read from offset 0 lags
  to the durable floor instead of failing.
"""

from __future__ import annotations

import os
import shutil
import tempfile

from repro.bench.harness import ResultTable
from repro.core.clock import SimulatedClock
from repro.core.engine import DataCellEngine

N_ROWS = 120_000
BATCH = 512
SEGMENT_ROWS = 2048

DDL = "CREATE STREAM s (k INT, v FLOAT)"
QUERY = ("SELECT k, sum(v) FROM s [RANGE 2048 SLIDE 1024] GROUP BY k")

# acceptance bounds
MIN_LOG_TO_RETAINED = 4.0   # log must dwarf the retained basket
MAX_BASKET_GROWTH = 2.0     # replay must not inflate the basket
MAX_RSS_GROWTH = 2.0        # ... or the process


def rss_bytes() -> int:
    """Current resident set size; 0 when /proc is unavailable."""
    try:
        with open("/proc/self/statm") as f:
            pages = int(f.read().split()[1])
        return pages * os.sysconf("SC_PAGE_SIZE")
    except (OSError, ValueError, IndexError):
        return 0


def make_rows(nrows: int):
    return [(i % 16, float((i * 7) % 23)) for i in range(nrows)]


def emissions(engine, name):
    return [tuple(map(tuple, sorted(rel.to_rows())))
            for _t, rel in engine.results(name).batches]


def in_memory_reference(nrows: int):
    """The same workload on a pure in-memory engine — the byte-level
    ground truth the paged replay must reproduce."""
    engine = DataCellEngine(clock=SimulatedClock())
    try:
        engine.execute(DDL)
        engine.register_continuous(QUERY, name="q", mode="reeval")
        rows = make_rows(nrows)
        for i in range(0, nrows, BATCH):
            engine.feed("s", rows[i:i + BATCH])
            engine.step(advance_ms=1)
        for _ in range(8):
            engine.step(advance_ms=1)
        return emissions(engine, "q")
    finally:
        engine.close()


def paged_replay_run(nrows: int = N_ROWS) -> dict:
    """Drive a durable engine to steady state, then replay the whole
    log with a ``from_start`` query while watching basket and RSS."""
    reference = in_memory_reference(nrows)
    data_dir = tempfile.mkdtemp(prefix="e16_")
    engine = DataCellEngine(clock=SimulatedClock(), data_dir=data_dir,
                            durability="fsync", log_inline=True,
                            segment_rows=SEGMENT_ROWS,
                            checkpoint_interval_s=1e9)
    try:
        engine.execute(DDL)
        engine.register_continuous(QUERY, name="q", mode="reeval")
        rows = make_rows(nrows)
        for i in range(0, nrows, BATCH):
            engine.feed("s", rows[i:i + BATCH])
            engine.step(advance_ms=1)
        for _ in range(8):
            engine.step(advance_ms=1)

        basket = engine.basket("s")
        retained = basket.next_oid - basket.first_oid
        log_rows = engine.stream_log("s").next_offset
        rss_steady = rss_bytes()

        engine.register_continuous(QUERY, name="late", mode="reeval",
                                   from_start=True)
        want = len(emissions(engine, "q"))
        peak_rows = retained
        rss_peak = rss_steady
        for _ in range(want + 64):
            engine.step(advance_ms=0)
            peak_rows = max(peak_rows,
                            basket.next_oid - basket.first_oid)
            rss_peak = max(rss_peak, rss_bytes())
            if len(engine.results("late").batches) >= want:
                break
        late = emissions(engine, "late")
        return {
            "log_rows": log_rows,
            "retained_rows": retained,
            "log_to_retained": log_rows / retained if retained else 0.0,
            "peak_replay_rows": peak_rows,
            "rss_steady_mb": rss_steady / 1e6,
            "rss_peak_mb": rss_peak / 1e6,
            "paged_reads": basket.pager.stats()["paged_reads"],
            "identical": late == reference,
            "fires": len(late),
        }
    finally:
        engine.close()
        shutil.rmtree(data_dir, ignore_errors=True)


def run_replay_table(nrows: int = N_ROWS) -> ResultTable:
    table = ResultTable(
        f"E16a: from_start replay over a log-resident history "
        f"({nrows} tuples, paged zero-copy windows, no rehydration)",
        ["log_rows", "retained_rows", "log_to_retained",
         "peak_replay_rows", "rss_steady_mb", "rss_peak_mb",
         "paged_reads", "identical"])
    out = paged_replay_run(nrows)
    table.add(out["log_rows"], out["retained_rows"],
              round(out["log_to_retained"], 1),
              out["peak_replay_rows"],
              round(out["rss_steady_mb"], 1),
              round(out["rss_peak_mb"], 1),
              out["paged_reads"], out["identical"])
    return table


def retention_run(nrows: int = 40_000,
                  retain_bytes: int = 256_000) -> dict:
    """Feed with ``retain_bytes`` set, applying checkpoint-paced
    retention mid-stream; the query must keep firing throughout."""
    data_dir = tempfile.mkdtemp(prefix="e16r_")
    engine = DataCellEngine(clock=SimulatedClock(), data_dir=data_dir,
                            durability="fsync", log_inline=True,
                            segment_rows=SEGMENT_ROWS,
                            retain_bytes=retain_bytes,
                            checkpoint_interval_s=1e9)
    try:
        engine.execute(DDL)
        engine.register_continuous(QUERY, name="q", mode="reeval")
        rows = make_rows(nrows)
        fires_at_truncate = None
        for i in range(0, nrows, BATCH):
            engine.feed("s", rows[i:i + BATCH])
            engine.step(advance_ms=1)
            if (i // BATCH) % 16 == 15:
                engine.checkpoint()
                engine.apply_retention()
            if fires_at_truncate is None \
                    and engine.retention_rows_dropped:
                fires_at_truncate = len(engine.results("q").batches)
        log = engine.stream_log("s")
        stats = log.stats()
        floor = log.durable_floor
        parts = engine.read_stream_range(
            "s", 0, engine.basket("s").next_oid)
        return {
            "rows_fed": nrows,
            "truncations": stats["retention_truncations"],
            "rows_dropped": stats["retention_rows"],
            "durable_floor": floor,
            "retained_bytes": stats["retained_bytes"],
            "fires": len(engine.results("q").batches),
            "fires_at_truncate": fires_at_truncate or 0,
            "replay_starts_at": parts[0][0] if parts else floor,
        }
    finally:
        engine.close()
        shutil.rmtree(data_dir, ignore_errors=True)


def run_retention_table(nrows: int = 40_000) -> ResultTable:
    table = ResultTable(
        f"E16b: retention truncation under a live query "
        f"({nrows} tuples, retain_bytes=256000, "
        f"checkpoint-paced truncation)",
        ["rows_fed", "truncations", "rows_dropped", "durable_floor",
         "retained_bytes", "fires", "replay_starts_at"])
    out = retention_run(nrows)
    table.add(out["rows_fed"], out["truncations"],
              out["rows_dropped"], out["durable_floor"],
              out["retained_bytes"], out["fires"],
              out["replay_starts_at"])
    return table


def run_experiment(nrows: int = N_ROWS):
    return [run_replay_table(nrows), run_retention_table()]


# -- acceptance -------------------------------------------------------


def test_e16_paged_replay_stays_flat_and_identical():
    """The tentpole gate: replaying a log >= 4x the retained basket
    neither rehydrates history (basket stays near steady state, RSS
    within 2x) nor changes a single emitted byte."""
    table = run_replay_table(nrows=40_000)
    table.show()
    row = table.as_dicts()[0]
    assert row["log_to_retained"] >= MIN_LOG_TO_RETAINED, row
    assert row["identical"], "paged replay diverged from in-memory run"
    assert row["paged_reads"] > 0, row
    assert row["peak_replay_rows"] <= \
        MAX_BASKET_GROWTH * max(row["retained_rows"], 1), row
    if row["rss_steady_mb"] > 0:  # /proc present
        assert row["rss_peak_mb"] <= \
            MAX_RSS_GROWTH * row["rss_steady_mb"], row


def test_e16_retention_truncates_under_live_query():
    """Retention drops sealed segments while the query keeps firing,
    and a from-zero replay read lags to the durable floor."""
    out = retention_run(nrows=24_000)
    assert out["truncations"] >= 1, out
    assert out["durable_floor"] > 0, out
    assert out["rows_dropped"] > 0, out
    assert out["fires"] > out["fires_at_truncate"] > 0, \
        "query stopped firing around retention truncation"
    assert out["replay_starts_at"] == out["durable_floor"], out


def test_e16_archive_within_regression_budget():
    """CI drift gate: the portable shape of E16a — the steady-state
    retained basket size and the equivalence bit — must hold against
    the archived baseline. The raw log:retained ratio scales with how
    many rows the run feeds (the archive is full-size, CI is not), so
    the gate compares its log-size-invariant denominator: the basket's
    steady-state row count must not grow more than 25%."""
    from repro.bench.reporting import load_json

    path = os.path.join(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))), "BENCH_E16.json")
    if not os.path.exists(path):
        import pytest
        pytest.skip("no archived BENCH_E16.json baseline")
    archived = load_json(path)
    baseline = next(entry for entry in archived
                    if entry["title"].startswith("E16a"))
    idx = baseline["columns"].index("retained_rows")
    archived_retained = baseline["rows"][0][idx]
    live = run_replay_table(nrows=40_000).as_dicts()[0]
    assert live["identical"]
    assert live["retained_rows"] <= 1.25 * archived_retained, (
        f"steady-state basket {live['retained_rows']} rows grew >25% "
        f"vs archived {archived_retained} — the paged replay is "
        f"retaining more than it used to")
