"""E5 — Complex queries (demo §4 "Complex Queries").

Joins in continuous plans with sliding windows, versus simple
select-project-aggregate (SPA) queries. Expected shape: incremental
processing helps every query class; joins amplify the absolute win
(per-basic-window join results are cached, so a slide only joins the
new slice) while SPA queries show the cleanest proportional profile.
"""

from __future__ import annotations

import pytest

from benchmarks.workloads import drive, sensor_engine
from repro.bench.harness import ResultTable, speedup
from repro.core.engine import DataCellEngine
from repro.streams.generators import sensor_rows
from repro.streams.source import RateSource

N_ROWS = 40_000
WINDOW = 12_800
SLIDE = 800

SPA_QUERY = ("SELECT room, avg(temperature) FROM sensors "
             f"[RANGE {WINDOW} SLIDE {SLIDE}] WHERE temperature > 18 "
             "GROUP BY room")
STREAM_TABLE_QUERY = (
    "SELECT r.name, count(*), avg(s.temperature) "
    f"FROM sensors [RANGE {WINDOW} SLIDE {SLIDE}] s, rooms r "
    "WHERE s.room = r.room GROUP BY r.name")
# stream-stream join: smaller windows, the cross-pair work is heavier
SS_WINDOW, SS_SLIDE, SS_ROWS = 1600, 200, 8000
STREAM_STREAM_QUERY = (
    "SELECT a.room, count(*) "
    f"FROM sensors [RANGE {SS_WINDOW} SLIDE {SS_SLIDE}] a, "
    f"sensors2 [RANGE {SS_WINDOW} SLIDE {SS_SLIDE}] b "
    "WHERE a.sensor_id = b.sensor_id GROUP BY a.room")


def run_single_stream(query: str, mode: str, nrows: int = N_ROWS):
    engine, rows = sensor_engine(nrows, with_rooms=True)
    q = engine.register_continuous(query, mode=mode, name="q")
    drive(engine, "sensors", rows)
    f = q.factory
    return {"ms_per_fire": f.busy_seconds / f.fires * 1000,
            "fires": f.fires}


def run_stream_stream(mode: str):
    engine = DataCellEngine()
    engine.execute("CREATE STREAM sensors (sensor_id INT, room INT, "
                   "temperature FLOAT, humidity FLOAT)")
    engine.execute("CREATE STREAM sensors2 (sensor_id INT, room INT, "
                   "temperature FLOAT, humidity FLOAT)")
    q = engine.register_continuous(STREAM_STREAM_QUERY, mode=mode,
                                   name="q")
    engine.attach_source("sensors",
                         RateSource(sensor_rows(SS_ROWS, seed=1),
                                    rate=1_000_000))
    engine.attach_source("sensors2",
                         RateSource(sensor_rows(SS_ROWS, seed=2),
                                    rate=1_000_000))
    engine.run_until_drained()
    assert not engine.scheduler.failed
    f = q.factory
    return {"ms_per_fire": f.busy_seconds / f.fires * 1000,
            "fires": f.fires}


def run_experiment() -> ResultTable:
    table = ResultTable(
        "E5: query-class comparison under sliding windows",
        ["query_class", "reeval_ms_per_fire", "incr_ms_per_fire",
         "speedup", "fires"])
    for name, runner in [
            ("select-project-aggregate",
             lambda m: run_single_stream(SPA_QUERY, m)),
            ("stream-table join",
             lambda m: run_single_stream(STREAM_TABLE_QUERY, m)),
            ("stream-stream join", run_stream_stream)]:
        ree = runner("reeval")
        inc = runner("incremental")
        table.add(name, ree["ms_per_fire"], inc["ms_per_fire"],
                  speedup(ree["ms_per_fire"], inc["ms_per_fire"]),
                  inc["fires"])
    return table


def test_e5_report():
    table = run_experiment()
    table.show()
    rows = {r["query_class"]: r for r in table.as_dicts()}
    # every class gains from incremental processing
    for row in rows.values():
        assert row["speedup"] > 1.5
    # joins are the expensive class per firing under re-evaluation
    assert rows["stream-table join"]["reeval_ms_per_fire"] > \
        rows["select-project-aggregate"]["reeval_ms_per_fire"]


SMALL_JOIN_QUERY = (
    "SELECT r.name, count(*), avg(s.temperature) "
    "FROM sensors [RANGE 3200 SLIDE 400] s, rooms r "
    "WHERE s.room = r.room GROUP BY r.name")


@pytest.mark.parametrize("mode", ["reeval", "incremental"])
def test_e5_stream_table_join(benchmark, mode):
    benchmark(lambda: run_single_stream(SMALL_JOIN_QUERY, mode,
                                        nrows=12000))


@pytest.mark.parametrize("mode", ["reeval", "incremental"])
def test_e5_stream_stream_join(benchmark, mode):
    benchmark(lambda: run_stream_stream(mode))
