"""E12 — DataCell vs store-first-query-later.

The paper (via the TruCQ comparison it cites) frames the whole research
direction: continuous query evaluation "significantly outperforms
traditional store-first-query-later database technologies". This bench
stages that comparison inside our own engine, answering the same
sliding-window question two ways:

* **store-first** — every slide, append the new batch to a persistent
  table and re-run a one-time SQL query filtering the window by a
  timestamp column (exactly what an application polling a warehouse
  does);
* **DataCell** — the standing query, incremental mode.

Expected shape: the store-first cost per window grows with the table
size (the scan, and even with a sorted index the re-aggregation of the
full window), while DataCell's per-slide cost stays flat; the gap
widens the longer the stream runs.
"""

from __future__ import annotations

import time

import pytest

from repro.bench.harness import ResultTable, speedup
from repro.core.engine import DataCellEngine
from repro.streams.generators import sensor_rows
from repro.streams.source import RateSource

WINDOW, SLIDE = 4000, 1000
TOTALS = [10_000, 20_000, 40_000, 80_000]

DATACELL_QUERY = ("SELECT room, avg(temperature) FROM sensors "
                  f"[RANGE {WINDOW} SLIDE {SLIDE}] GROUP BY room")
STOREFIRST_QUERY = ("SELECT room, avg(temperature) FROM archive "
                    "WHERE seq >= {lo} AND seq < {hi} GROUP BY room")


def run_datacell(total_rows: int):
    engine = DataCellEngine()
    engine.execute("CREATE STREAM sensors (sensor_id INT, room INT, "
                   "temperature FLOAT, humidity FLOAT)")
    query = engine.register_continuous(DATACELL_QUERY,
                                       mode="incremental", name="q")
    engine.attach_source("sensors",
                         RateSource(sensor_rows(total_rows),
                                    rate=1_000_000))
    engine.run_until_drained()
    assert not engine.scheduler.failed
    factory = query.factory
    return {"ms_per_window": factory.busy_seconds / factory.fires * 1000,
            "windows": factory.fires}


def run_store_first(total_rows: int, indexed: bool = True):
    """Append + poll: per slide, insert the batch and re-query."""
    engine = DataCellEngine()
    engine.execute("CREATE TABLE archive (seq INT, sensor_id INT, "
                   "room INT, temperature FLOAT, humidity FLOAT)")
    if indexed:
        engine.execute("CREATE INDEX ON archive (seq) USING sorted")
    table = engine.catalog.table("archive")
    rows = sensor_rows(total_rows)
    busy = 0.0
    windows = 0
    for start in range(0, total_rows, SLIDE):
        batch = [(start + i, *row)
                 for i, row in enumerate(rows[start:start + SLIDE])]
        begin = time.perf_counter()
        table.insert_rows(batch)
        hi = start + SLIDE
        if hi >= WINDOW:
            engine.query(STOREFIRST_QUERY.format(lo=hi - WINDOW, hi=hi))
            windows += 1
        busy += time.perf_counter() - begin
    return {"ms_per_window": busy / windows * 1000 if windows else 0.0,
            "windows": windows}


def run_experiment() -> ResultTable:
    table = ResultTable(
        f"E12: continuous vs store-first-query-later "
        f"(window {WINDOW}, slide {SLIDE})",
        ["stream_length", "storefirst_ms_per_window",
         "datacell_ms_per_window", "speedup"])
    for total in TOTALS:
        naive = run_store_first(total)
        datacell = run_datacell(total)
        assert naive["windows"] == datacell["windows"]
        table.add(total, naive["ms_per_window"],
                  datacell["ms_per_window"],
                  speedup(naive["ms_per_window"],
                          datacell["ms_per_window"]))
    return table


def test_e12_report():
    table = run_experiment()
    table.show()
    rows = table.as_dicts()
    # the standing query beats polling the warehouse at every length
    assert all(r["speedup"] > 1.5 for r in rows)
    # DataCell's per-window cost stays flat as the stream grows ...
    datacell = [r["datacell_ms_per_window"] for r in rows]
    assert max(datacell) < min(datacell) * 4
    # ... and the advantage does not shrink with stream length
    assert rows[-1]["speedup"] >= rows[0]["speedup"] * 0.8


def test_e12_same_answers():
    """Both paradigms must compute identical window answers."""
    total = 12_000
    engine = DataCellEngine()
    engine.execute("CREATE STREAM sensors (sensor_id INT, room INT, "
                   "temperature FLOAT, humidity FLOAT)")
    engine.register_continuous(
        DATACELL_QUERY + " ORDER BY room", mode="incremental", name="q")
    engine.attach_source("sensors",
                         RateSource(sensor_rows(total), rate=1_000_000))
    engine.run_until_drained()
    continuous = [rel.to_rows() for _t, rel in
                  engine.results("q").batches]

    other = DataCellEngine()
    other.execute("CREATE TABLE archive (seq INT, sensor_id INT, "
                  "room INT, temperature FLOAT, humidity FLOAT)")
    table = other.catalog.table("archive")
    rows = sensor_rows(total)
    polled = []
    for start in range(0, total, SLIDE):
        table.insert_rows([(start + i, *row) for i, row in
                           enumerate(rows[start:start + SLIDE])])
        hi = start + SLIDE
        if hi >= WINDOW:
            polled.append(other.query(
                STOREFIRST_QUERY.format(lo=hi - WINDOW, hi=hi)
                + " ORDER BY room").to_rows())

    assert len(continuous) == len(polled)
    def norm(rs):
        return [tuple(round(v, 9) if isinstance(v, float) else v
                      for v in r) for r in rs]

    for a, b in zip(continuous, polled):
        assert norm(a) == norm(b)


@pytest.mark.parametrize("paradigm", ["storefirst", "datacell"])
def test_e12_paradigm(benchmark, paradigm):
    fn = run_store_first if paradigm == "storefirst" else run_datacell
    benchmark(lambda: fn(15_000))
