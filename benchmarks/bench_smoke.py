"""Quick benchmark smoke run: archive E2/E9 result tables as JSON.

Usage::

    python benchmarks/bench_smoke.py [--quick] [--outdir DIR]

Runs the experiments the stacked PRs track for regressions — E2
(standing-query scaling + recycler on/off ablation), E8 (serial vs
worker-pool parallel ablation), E9 (basket ingest/retention
mechanics), E10n (network-edge loopback throughput), E11c
(chained-network recycling, eviction-policy ablation), E13
(Z-set delta execution vs incremental vs re-evaluation), E14
(interpreted vs slot-compiled per-fire overhead, recycler admission
ablation), E15 (durable-log ingest throughput by write discipline,
cold-start recovery time), E16 (paged from_start replay over
log-resident history, retention truncation under live queries) and
E17 (Postgres front-end round-trip latency vs the framed protocol,
idle pg tail subscribers on the shared asyncio core) — and writes
``BENCH_E2.json``, ``BENCH_E8.json``, ``BENCH_E9.json``,
``BENCH_E10.json``, ``BENCH_E11.json``, ``BENCH_E13.json``,
``BENCH_E14.json``, ``BENCH_E15.json``, ``BENCH_E16.json`` and
``BENCH_E17.json`` to the repo root (or ``--outdir``). CI runs ``--quick`` so drift is caught
without a full experiment sweep;
``repro.bench.reporting.compare_runs`` diffs two archives.
"""

from __future__ import annotations

import argparse
import os
import sys

sys.path.insert(0, os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))))

from benchmarks import (bench_e2_multiquery, bench_e8_scheduler,
                        bench_e9_baskets, bench_e10_net,
                        bench_e11_chain, bench_e13_delta,
                        bench_e14_interp, bench_e15_durability,
                        bench_e16_paging, bench_e17_pg)
from repro.bench.reporting import save_json

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def run_e2(quick: bool):
    nrows = 6000 if quick else bench_e2_multiquery.RECYCLER_ROWS
    scaling = bench_e2_multiquery.run_experiment()
    ablation = bench_e2_multiquery.run_recycler_experiment(nrows)
    return [scaling, ablation]


def run_e8(quick: bool):
    nrows = 8_000 if quick else bench_e8_scheduler.PAR_ROWS
    repeats = 1 if quick else 3
    return [bench_e8_scheduler.run_parallel_ablation(
        nrows=nrows, repeats=repeats)]


def run_e9(quick: bool):
    if quick:
        ingest = bench_e9_baskets.ResultTable(
            "E9a: basket ingest throughput (quick)",
            ["batch_size", "tuples_per_s"])
        for batch in (16, 4096):
            ingest.add(batch, bench_e9_baskets.ingest_throughput(
                batch, nrows=20_000))
        return [ingest, bench_e9_baskets.run_retention_table()]
    return bench_e9_baskets.run_experiment()


def run_e10(quick: bool):
    nrows = 2_000 if quick else bench_e10_net.N_ROWS
    return [bench_e10_net.run_ingest_table(nrows),
            bench_e10_net.run_delivery_table(nrows)]


def run_e11(quick: bool):
    nrows = 4_000 if quick else bench_e11_chain.N_ROWS
    repeats = 1 if quick else 3
    return [bench_e11_chain.run_experiment(nrows=nrows,
                                           repeats=repeats)]


def run_e13(quick: bool):
    nrows = 20_000 if quick else bench_e13_delta.N_ROWS
    return [bench_e13_delta.run_experiment(nrows=nrows),
            bench_e13_delta.run_nondivisible_table()]


def run_e14(quick: bool):
    nrows = 8_000 if quick else bench_e14_interp.N_ROWS
    repeats = 1 if quick else 3
    return bench_e14_interp.run_experiment(nrows=nrows,
                                           repeats=repeats)


def run_e15(quick: bool):
    nrows = 20_000 if quick else bench_e15_durability.N_ROWS
    repeats = 1 if quick else 3
    sizes = [2_000, 8_000] if quick \
        else bench_e15_durability.RECOVERY_SIZES
    return [bench_e15_durability.run_ingest_table(nrows, repeats),
            bench_e15_durability.run_recovery_table(sizes)]


def run_e16(quick: bool):
    nrows = 40_000 if quick else bench_e16_paging.N_ROWS
    retention = 24_000 if quick else 40_000
    return [bench_e16_paging.run_replay_table(nrows),
            bench_e16_paging.run_retention_table(retention)]


def run_e17(quick: bool):
    iters = 100 if quick else bench_e17_pg.LATENCY_ITERS
    counts = [100, 1000] if quick else bench_e17_pg.IDLE_COUNTS
    return [bench_e17_pg.run_latency_table(iters),
            bench_e17_pg.run_idle_table(counts)]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="smaller workloads (CI smoke mode)")
    parser.add_argument("--outdir", default=REPO_ROOT,
                        help="directory for BENCH_*.json")
    args = parser.parse_args(argv)

    for name, runner in (("BENCH_E2.json", run_e2),
                         ("BENCH_E8.json", run_e8),
                         ("BENCH_E9.json", run_e9),
                         ("BENCH_E10.json", run_e10),
                         ("BENCH_E11.json", run_e11),
                         ("BENCH_E13.json", run_e13),
                         ("BENCH_E14.json", run_e14),
                         ("BENCH_E15.json", run_e15),
                         ("BENCH_E16.json", run_e16),
                         ("BENCH_E17.json", run_e17)):
        tables = runner(args.quick)
        for table in tables:
            print()
            print(table.render())
        path = os.path.join(args.outdir, name)
        save_json(tables, path)
        print(f"\nwrote {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
