"""E14 — per-fire interpreter overhead: slot compilation ablation.

The paper's factories are *compiled* MAL plans that fire thousands of
times unchanged; the Python interpreter re-pays dynamic dispatch on
every firing (opcode dict probes, ``Var``/``Const`` isinstance checks,
dict-keyed environments). The slot compiler pays that cost once at
registration — opcodes resolved into bound thunks, constants folded,
variables renumbered to integer registers — so a firing is a bare
``for thunk in thunks: thunk(ctx, regs)``.

The workload is deliberately the interpreter's worst case and the
paper's common case: a *wide* plan (24 arithmetic projections, ~80 MAL
instructions) over *small* tumbling windows, so per-fire fixed overhead
dominates the numpy kernel time. Two tables:

* **E14a** — interpreted vs. compiled per-fire busy time across window
  sizes (1 query, recycler off). Acceptance: compiled is ≥1.5× cheaper
  per firing at every window size.
* **E14b** — recycler off vs. on under compilation at 1/2/4 identical
  queries, fed in streaming chunks. With one consumer the
  registration-time census closes every plan gate (no fingerprint is
  shared, so no store/lookup is ever attempted); with sharers the
  net-benefit ledger retires fingerprints whose saved kernel time does
  not cover the cache probe. Acceptance: recycler-on busy time never
  exceeds recycler-off beyond measurement tolerance, and wins outright
  once the work is shared 4 ways.
"""

from __future__ import annotations

from typing import Optional

from repro.bench.harness import ResultTable, speedup
from repro.core.engine import DataCellEngine
from repro.mal.compiler import compile_stats

N_ROWS = 24_000
CHUNK = 400               # streaming arrival granularity (rows/step)
WINDOW_SIZES = [8, 16, 32, 64]
QUERY_COUNTS = [1, 2, 4]
N_EXPRS = 24              # projection width -> ~80 MAL instructions

# recycler-on may sit within measurement noise of recycler-off when
# there is nothing to reuse (the admission gates reduce it to a few
# integer compares per fire); it must never be slower than this
RECYCLER_TOLERANCE = 1.10

DDL = "CREATE STREAM s (k INT, v FLOAT)"


def wide_query(window: int) -> str:
    exprs = ", ".join(f"v * {j} + k" for j in range(1, N_EXPRS + 1))
    return (f"SELECT k, {exprs} FROM s "
            f"[RANGE {window} SLIDE {window}] WHERE v > 3")


def make_rows(nrows: int):
    return [(i % 10, float((i * 7) % 23)) for i in range(nrows)]


def run_fleet(compiled: bool, recycler_on: bool, window: int,
              n_queries: int = 1, nrows: int = N_ROWS,
              chunk: int = CHUNK) -> dict:
    """Feed ``nrows`` in streaming chunks; per-fire busy microseconds
    averaged over the whole fleet."""
    engine = DataCellEngine(compile_plans=compiled,
                            recycler_enabled=recycler_on)
    engine.execute(DDL)
    sql = wide_query(window)
    for q in range(n_queries):
        engine.register_continuous(sql, name=f"q{q}", mode="reeval")
    rows = make_rows(nrows)
    for i in range(0, len(rows), chunk):
        engine.feed("s", rows[i:i + chunk])
        while engine.step()["fired"]:
            pass
    if engine.scheduler.failed:
        raise RuntimeError(f"factory failures: {engine.scheduler.failed}")
    factories = engine.scheduler.factories
    fires = sum(f.fires for f in factories)
    busy = sum(f.busy_seconds for f in factories)
    return {
        "us_per_fire": busy / fires * 1e6 if fires else 0.0,
        "fires": fires,
        "recycler": engine.recycler.stats() if recycler_on else {},
        "results": {f"q{q}": engine.results(f"q{q}").rows()
                    for q in range(n_queries)},
    }


def _best(repeats: int, **kw) -> dict:
    """Best-of-*repeats* per-fire time (min is the noise-robust
    estimator for CPU-bound work); stats from the fastest run."""
    return min((run_fleet(**kw) for _ in range(repeats)),
               key=lambda out: out["us_per_fire"])


def run_overhead_table(nrows: int = N_ROWS,
                       repeats: int = 3) -> ResultTable:
    table = ResultTable(
        f"E14a: interpreted vs slot-compiled per-fire busy time "
        f"({N_EXPRS}-expression plan, tumbling windows, {nrows} tuples)",
        ["window", "interp_us_per_fire", "compiled_us_per_fire",
         "speedup", "fires"])
    for window in WINDOW_SIZES:
        interp = _best(repeats, compiled=False, recycler_on=False,
                       window=window, nrows=nrows)
        comp = _best(repeats, compiled=True, recycler_on=False,
                     window=window, nrows=nrows)
        assert interp["fires"] == comp["fires"]
        table.add(window, round(interp["us_per_fire"], 1),
                  round(comp["us_per_fire"], 1),
                  speedup(interp["us_per_fire"], comp["us_per_fire"]),
                  comp["fires"])
    return table


def run_recycler_table(nrows: int = N_ROWS, window: int = 32,
                       repeats: int = 3) -> ResultTable:
    """Recycler-off vs. -on, measured as *paired* back-to-back runs.

    On a busy 1-core box, absolute per-fire times drift with outside load
    between configurations; pairing each on-run with an immediately
    preceding off-run and keeping the best (lowest-ratio) pair cancels
    the drift that independent best-of-N cannot."""
    table = ResultTable(
        f"E14b: recycler ablation under compilation (window={window}, "
        f"{nrows} tuples fed in {CHUNK}-row chunks)",
        ["queries", "off_us_per_fire", "on_us_per_fire", "on_over_off",
         "hits", "cold_skips", "plan_skips"])
    for n in QUERY_COUNTS:
        best = None
        for _ in range(repeats):
            off = run_fleet(compiled=True, recycler_on=False,
                            window=window, n_queries=n, nrows=nrows)
            on = run_fleet(compiled=True, recycler_on=True,
                           window=window, n_queries=n, nrows=nrows)
            ratio = (on["us_per_fire"] / off["us_per_fire"]
                     if off["us_per_fire"] else 0.0)
            if best is None or ratio < best[0]:
                best = (ratio, off, on)
        ratio, off, on = best
        stats = on["recycler"]
        table.add(n, round(off["us_per_fire"], 1),
                  round(on["us_per_fire"], 1), round(ratio, 4),
                  stats["hits"], stats["cold_skips"],
                  stats["plan_skips"])
    return table


def run_experiment(nrows: int = N_ROWS, repeats: int = 3):
    return [run_overhead_table(nrows, repeats),
            run_recycler_table(nrows, repeats=repeats)]


# -- acceptance -------------------------------------------------------


def test_e14_compiled_speedup():
    """The tentpole claim: >=1.5x lower per-fire wall time for the
    compiled plan at every window size of the small-batch workload."""
    table = run_overhead_table()
    table.show()
    for row in table.as_dicts():
        assert row["speedup"] >= 1.5, row


def test_e14_recycler_never_slower():
    """The E11c/E14 acceptance bar the admission census closes: with
    nothing to reuse the plan gate reduces recycler-on to noise, and
    with shared consumers it wins outright."""
    table = run_recycler_table()
    table.show()
    rows = {r["queries"]: r for r in table.as_dicts()}
    for n, row in rows.items():
        assert row["on_over_off"] <= RECYCLER_TOLERANCE, row
    # single consumer: census closes every plan gate, zero cache work
    assert rows[1]["hits"] == 0
    assert rows[1]["plan_skips"] > 0
    # shared 4 ways: reuse wins outright, no tolerance needed
    assert rows[4]["on_over_off"] <= 1.0, rows[4]
    assert rows[4]["hits"] > 0


def test_e14_emissions_identical():
    """Compiled and interpreted firings emit byte-identical batches,
    with and without the recycler."""
    base = run_fleet(compiled=False, recycler_on=False, window=32,
                     nrows=4_000)
    for compiled, recycler_on in ((True, False), (True, True),
                                  (False, True)):
        out = run_fleet(compiled=compiled, recycler_on=recycler_on,
                        window=32, nrows=4_000)
        assert out["results"] == base["results"], (compiled, recycler_on)


def test_e14_fleet_shares_one_compilation():
    before = compile_stats()
    out = run_fleet(compiled=True, recycler_on=False, window=32,
                    n_queries=4, nrows=2_000)
    after = compile_stats()
    assert out["fires"] > 0
    compiles = after["compiles"] - before["compiles"]
    hits = after["compile_cache_hits"] - before["compile_cache_hits"]
    # the memo is process-global, so an earlier test may have already
    # compiled this canonical plan: at most one real compilation, the
    # remaining registrations all resolve from the cache
    assert compiles <= 1
    assert compiles + hits == 4


def test_e14_archive_within_regression_budget():
    """CI drift gate: the portable shape of E14a — the compiled
    speedup ratio — must not regress more than 20% against the
    archived baseline (absolute per-fire times are machine-dependent,
    the ratio is not)."""
    import os

    from repro.bench.reporting import load_json

    path = os.path.join(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))), "BENCH_E14.json")
    if not os.path.exists(path):
        import pytest
        pytest.skip("no archived BENCH_E14.json baseline")
    archived = load_json(path)
    baseline = next(entry for entry in archived
                    if entry["title"].startswith("E14a"))
    idx_window = baseline["columns"].index("window")
    idx_speedup = baseline["columns"].index("speedup")
    live = {r["window"]: r["speedup"]
            for r in run_overhead_table(nrows=8_000).as_dicts()}
    for row in baseline["rows"]:
        window, archived_speedup = row[idx_window], row[idx_speedup]
        assert live[window] >= 0.8 * archived_speedup, (
            f"window={window}: compiled speedup {live[window]:.2f} "
            f"regressed >20% vs archived {archived_speedup:.2f}")
