"""E6 — Two query paradigms (paper §3).

One factory interacting with both baskets and tables: a continuous
query joins the stream against a persistent dimension table while
ordinary one-time SQL keeps running against the same engine — and new
stream data can be archived into the warehouse (INSERT ... SELECT).
The measurements: continuous throughput with/without concurrent
one-time queries, and one-time query latency with/without streaming
load — neither paradigm should break the other.
"""

from __future__ import annotations

import time


from benchmarks.workloads import drive, sensor_engine
from repro.bench.harness import ResultTable
from repro.streams.source import RateSource

N_ROWS = 30_000
CQ = ("SELECT r.name, avg(s.temperature) "
      "FROM sensors [RANGE 6000 SLIDE 1500] s, rooms r "
      "WHERE s.room = r.room GROUP BY r.name")
ONE_TIME = ("SELECT name, min_temp FROM rooms "
            "WHERE min_temp > 14 ORDER BY name")


def run_streaming(one_time_every: int = 0):
    """Drive the stream; optionally run a one-time query every
    ``one_time_every`` scheduler steps. Returns timings."""
    engine, rows = sensor_engine(N_ROWS, with_rooms=True)
    q = engine.register_continuous(CQ, mode="incremental", name="cq")
    # spread arrivals over ~600 steps so the mix genuinely interleaves
    engine.attach_source("sensors", RateSource(rows, rate=5000))
    one_time_latencies = []
    steps = 0
    while True:
        out = engine.step(advance_ms=10)
        steps += 1
        if one_time_every and steps % one_time_every == 0:
            start = time.perf_counter()
            engine.query(ONE_TIME)
            one_time_latencies.append(time.perf_counter() - start)
        live = [r for r in engine.scheduler.receptors
                if not r.exhausted]
        if not live and out["fired"] == 0 and out["ingested"] == 0:
            break
        if steps > 100000:
            raise RuntimeError("did not drain")
    assert not engine.scheduler.failed
    factory = q.factory
    return {
        "cq_ms_per_fire": factory.busy_seconds / factory.fires * 1000,
        "cq_fires": factory.fires,
        "one_time_ms": (sum(one_time_latencies)
                        / len(one_time_latencies) * 1000
                        if one_time_latencies else None),
        "engine": engine,
    }


def one_time_latency_idle() -> float:
    engine, _rows = sensor_engine(10, with_rooms=True)
    start = time.perf_counter()
    for _ in range(50):
        engine.query(ONE_TIME)
    return (time.perf_counter() - start) / 50 * 1000


def run_experiment() -> ResultTable:
    table = ResultTable(
        "E6: continuous + one-time queries in one engine",
        ["configuration", "cq_ms_per_fire", "one_time_ms"])
    solo = run_streaming(one_time_every=0)
    mixed = run_streaming(one_time_every=5)
    idle = one_time_latency_idle()
    table.add("continuous only", solo["cq_ms_per_fire"], None)
    table.add("continuous + one-time mix", mixed["cq_ms_per_fire"],
              mixed["one_time_ms"])
    table.add("one-time only (idle engine)", None, idle)
    return table


def test_e6_report():
    table = run_experiment()
    table.show()
    rows = table.as_dicts()
    solo, mixed, idle = rows
    # the continuous query is not starved by one-time load
    assert mixed["cq_ms_per_fire"] < solo["cq_ms_per_fire"] * 3
    # one-time latency stays interactive under streaming load
    assert mixed["one_time_ms"] < idle["one_time_ms"] * 20


def test_e6_archive_stream_to_warehouse():
    """The paradigm's third leg: stream data entering the warehouse."""
    engine, rows = sensor_engine(500, with_rooms=True)
    engine.execute("CREATE TABLE archive (sensor_id INT, room INT, "
                   "temperature FLOAT, humidity FLOAT)")
    engine.register_continuous(
        "SELECT sensor_id FROM sensors [RANGE 10000]", name="retainer")
    drive(engine, "sensors", rows)
    count = engine.execute("INSERT INTO archive SELECT * FROM sensors")
    assert count == 500
    archived = engine.query("SELECT count(*) FROM archive").to_rows()
    assert archived == [(500,)]


def test_e6_mixed_workload(benchmark):
    benchmark(lambda: run_streaming(one_time_every=10))
