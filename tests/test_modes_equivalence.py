"""The paper's central correctness claim: incremental mode produces
exactly the windows re-evaluation mode produces — and so does the
Z-set delta mode (:mod:`repro.core.delta`).

Covers deterministic scenarios plus hypothesis-driven random streams,
window geometries and query shapes, compared across all three modes.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.engine import DataCellEngine
from repro.streams.source import RateSource


def run_query(rows, query, mode, schema="CREATE STREAM s (k INT, v FLOAT)",
              streams=("s",)):
    engine = DataCellEngine()
    engine.execute(schema)
    if len(streams) > 1:
        for extra in streams[1:]:
            pass  # schema string creates them all in multi-schema cases
    q = engine.register_continuous(query, mode=mode, name="q")
    engine.attach_source(streams[0], RateSource(rows, rate=100000))
    engine.run_until_drained()
    assert not engine.scheduler.failed, engine.scheduler.failed
    return q.mode, [r.to_rows() for _t, r in engine.results("q").batches]


def normalize(row):
    """Round floats so FP non-associativity (partial sums merge in a
    different order than full-window sums) does not fail the compare.
    ``+ 0.0`` folds ``-0.0`` into ``+0.0`` — running sums can cancel a
    tiny value to an exact zero whose sign differs from the rounded
    full-window sum."""
    return tuple(round(v, 6) + 0.0 if isinstance(v, float) else v
                 for v in row)


def assert_modes_agree(rows, query, expect_incremental=True, **kw):
    m1, r1 = run_query(rows, query, "reeval", **kw)
    m2, r2 = run_query(rows, query, "incremental", **kw)
    m3, r3 = run_query(rows, query, "delta", **kw)
    assert m1 == "reeval" and m2 == "incremental" and m3 == "delta"
    assert len(r1) == len(r2) == len(r3)
    for a, b, c in zip(r1, r2, r3):
        key = sorted(map(repr, map(normalize, a)))
        assert key == sorted(map(repr, map(normalize, b))), (a, b)
        assert key == sorted(map(repr, map(normalize, c))), (a, c)
    return r1


ROWS = [(i % 4, float((i * 7) % 23)) for i in range(60)]
ROWS_WITH_NULLS = [
    (i % 3, None if i % 7 == 0 else float(i % 11)) for i in range(60)]


class TestDeterministicScenarios:
    def test_grouped_avg(self):
        out = assert_modes_agree(
            ROWS, "SELECT k, avg(v) FROM s [RANGE 20 SLIDE 5] GROUP BY k "
                  "ORDER BY k")
        assert len(out) == (60 - 20) // 5 + 1

    def test_all_aggregates_with_nulls(self):
        assert_modes_agree(
            ROWS_WITH_NULLS,
            "SELECT k, count(*), count(v), sum(v), avg(v), min(v), "
            "max(v) FROM s [RANGE 12 SLIDE 4] GROUP BY k ORDER BY k")

    def test_scalar_aggregates(self):
        assert_modes_agree(
            ROWS, "SELECT count(*), sum(v) FROM s [RANGE 10 SLIDE 2]")

    def test_filter_below_window_aggregate(self):
        assert_modes_agree(
            ROWS, "SELECT k, count(*) FROM s [RANGE 16 SLIDE 8] "
                  "WHERE v > 5 GROUP BY k ORDER BY k")

    def test_having_and_order(self):
        assert_modes_agree(
            ROWS, "SELECT k, sum(v) t FROM s [RANGE 20 SLIDE 10] "
                  "GROUP BY k HAVING count(*) > 2 ORDER BY t DESC")

    def test_projection_only_window(self):
        assert_modes_agree(
            ROWS, "SELECT k, v * 2 FROM s [RANGE 8 SLIDE 4] WHERE v > 10")

    def test_tumbling_window(self):
        assert_modes_agree(
            ROWS, "SELECT k, max(v) FROM s [RANGE 15] GROUP BY k "
                  "ORDER BY k")

    def test_expression_group_key(self):
        assert_modes_agree(
            ROWS, "SELECT k % 2, sum(v) FROM s [RANGE 12 SLIDE 6] "
                  "GROUP BY k % 2 ORDER BY 1")

    def test_case_projection_post_merge(self):
        assert_modes_agree(
            ROWS, "SELECT k, CASE WHEN sum(v) > 50 THEN 'busy' "
                  "ELSE 'calm' END FROM s [RANGE 10 SLIDE 5] GROUP BY k "
                  "ORDER BY k")

    def test_limit_post_merge(self):
        assert_modes_agree(
            ROWS, "SELECT k, count(*) c FROM s [RANGE 20 SLIDE 4] "
                  "GROUP BY k ORDER BY c DESC, k LIMIT 2")


class TestHybridAndJoins:
    def make_engine(self):
        engine = DataCellEngine()
        engine.execute("CREATE STREAM s (k INT, v FLOAT)")
        engine.execute("CREATE STREAM s2 (k INT, w INT)")
        engine.execute("CREATE TABLE dim (k INT, label VARCHAR(8))")
        engine.execute("INSERT INTO dim VALUES (0,'a'), (1,'b'), "
                       "(2,'c'), (3,'d')")
        return engine

    def run(self, query, mode):
        engine = self.make_engine()
        q = engine.register_continuous(query, mode=mode, name="q")
        engine.attach_source("s", RateSource(ROWS, rate=100000))
        engine.attach_source(
            "s2", RateSource([(i % 5, i) for i in range(60)],
                             rate=100000))
        engine.run_until_drained()
        return q.mode, [r.to_rows() for _t, r in
                        engine.results("q").batches]

    @pytest.mark.parametrize("query", [
        "SELECT d.label, count(*) FROM s [RANGE 12 SLIDE 4], dim d "
        "WHERE s.k = d.k GROUP BY d.label ORDER BY d.label",
        "SELECT d.label, s.v FROM s [RANGE 8 SLIDE 4], dim d "
        "WHERE s.k = d.k AND s.v > 8",
        "SELECT a.k, count(*) FROM s [RANGE 10 SLIDE 5] a, "
        "s2 [RANGE 10 SLIDE 5] b WHERE a.k = b.k GROUP BY a.k "
        "ORDER BY a.k",
        "SELECT a.v, b.w FROM s [RANGE 6 SLIDE 3] a, "
        "s2 [RANGE 6 SLIDE 3] b WHERE a.k = b.k AND a.v > 10",
    ])
    def test_join_modes_agree(self, query):
        m1, r1 = self.run(query, "reeval")
        m2, r2 = self.run(query, "incremental")
        m3, r3 = self.run(query, "delta")
        assert m2 == "incremental" and m3 == "delta"
        assert len(r1) == len(r2) == len(r3)
        for a, b, c in zip(r1, r2, r3):
            key = sorted(map(repr, a))
            assert key == sorted(map(repr, b))
            assert key == sorted(map(repr, c))


@st.composite
def stream_and_window(draw):
    n = draw(st.integers(10, 80))
    rows = [(draw(st.integers(0, 3)),
             draw(st.one_of(st.none(),
                            st.floats(-50, 50, allow_nan=False))))
            for _ in range(n)]
    slide = draw(st.integers(1, 8))
    factor = draw(st.integers(1, 5))
    return rows, slide * factor, slide


class TestPropertyEquivalence:
    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(stream_and_window())
    def test_random_streams_agree(self, case):
        rows, size, slide = case
        query = (f"SELECT k, count(*), sum(v), min(v), max(v), avg(v) "
                 f"FROM s [RANGE {size} SLIDE {slide}] GROUP BY k "
                 f"ORDER BY k")
        assert_modes_agree(rows, query)

    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(stream_and_window())
    def test_random_projection_windows_agree(self, case):
        rows, size, slide = case
        query = (f"SELECT k, v FROM s [RANGE {size} SLIDE {slide}] "
                 f"WHERE v > 0")
        assert_modes_agree(rows, query)

    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(st.integers(1, 6), st.integers(1, 4))
    def test_window_boundaries_exact(self, nbasic, slide):
        """Window k must cover exactly tuples [k*slide, k*slide+size)."""
        size = nbasic * slide
        rows = [(0, float(i)) for i in range(size + 4 * slide)]
        out = assert_modes_agree(
            rows, f"SELECT min(v), max(v), count(*) FROM s "
                  f"[RANGE {size} SLIDE {slide}]")
        for k, batch in enumerate(out):
            mn, mx, cnt = batch[0]
            assert cnt == size
            assert mn == float(k * slide)
            assert mx == float(k * slide + size - 1)


class TestBasketConservation:
    def test_tuples_conserved_and_dropped(self):
        engine = DataCellEngine()
        engine.execute("CREATE STREAM s (k INT, v FLOAT)")
        engine.register_continuous(
            "SELECT k, sum(v) FROM s [RANGE 10 SLIDE 5] GROUP BY k",
            mode="incremental", name="q")
        engine.attach_source("s", RateSource(ROWS, rate=100000))
        engine.run_until_drained()
        basket = engine.basket("s")
        assert basket.total_in == 60
        assert basket.total_in == basket.total_dropped + len(basket)
        # incremental mode releases eagerly: retained < one window
        assert len(basket) <= 10

    def test_reeval_retains_window(self):
        engine = DataCellEngine()
        engine.execute("CREATE STREAM s (k INT, v FLOAT)")
        engine.register_continuous(
            "SELECT k, sum(v) FROM s [RANGE 10 SLIDE 5] GROUP BY k",
            mode="reeval", name="q")
        engine.attach_source("s", RateSource(ROWS, rate=100000))
        engine.run_until_drained()
        basket = engine.basket("s")
        assert basket.total_in == basket.total_dropped + len(basket)
