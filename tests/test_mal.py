"""Unit tests for MAL programs, the compiler and the interpreter."""

import pytest

from repro.errors import MALError
from repro.mal.compiler import compile_plan
from repro.mal.interpreter import MALContext, execute
from repro.mal.program import Const, Instruction, MALProgram, Var
from repro.sql import compile_select
from repro.sql.executor import ExecutionContext, PlanExecutor

QUERY_CORPUS = [
    "SELECT id FROM emp",
    "SELECT id, salary FROM emp WHERE salary > 60",
    "SELECT id FROM emp WHERE salary > 60 AND dept = 'a'",
    "SELECT id FROM emp WHERE dept IS NULL",
    "SELECT id FROM emp WHERE dept LIKE 'a%' OR id IN (3, 5)",
    "SELECT id * 2 + 1, salary / 2 FROM emp",
    "SELECT upper(dept), abs(-id) FROM emp WHERE dept IS NOT NULL",
    "SELECT CASE WHEN salary > 100 THEN 'hi' ELSE 'lo' END FROM emp "
    "WHERE salary IS NOT NULL",
    "SELECT dept, count(*), sum(salary), avg(salary), min(id), "
    "max(salary) FROM emp GROUP BY dept ORDER BY dept",
    "SELECT count(*), sum(id) FROM emp",
    "SELECT count(DISTINCT dept) FROM emp",
    "SELECT dept, count(*) FROM emp GROUP BY dept "
    "HAVING count(*) > 1 ORDER BY count(*) DESC",
    "SELECT e.id, d.city FROM emp e, dept d WHERE e.dept = d.name "
    "ORDER BY e.id",
    "SELECT e.id FROM emp e JOIN dept d ON e.dept = d.name "
    "AND d.budget > 600",
    "SELECT e.id, d.name FROM emp e CROSS JOIN dept d "
    "ORDER BY e.id, d.name LIMIT 4",
    "SELECT DISTINCT dept FROM emp",
    "SELECT id FROM emp ORDER BY salary DESC LIMIT 2 OFFSET 1",
    "SELECT CAST(salary AS INT) FROM emp WHERE id = 1",
    "SELECT e.id, d.city FROM emp e LEFT JOIN dept d "
    "ON e.dept = d.name ORDER BY e.id",
    "SELECT id FROM emp WHERE dept IN (SELECT name FROM dept) "
    "ORDER BY id",
    "SELECT id FROM emp WHERE dept NOT IN "
    "(SELECT name FROM dept WHERE city = 'ams') ORDER BY id",
    "SELECT dept FROM emp UNION SELECT name FROM dept ORDER BY 1",
    "SELECT id FROM emp WHERE id < 3 UNION ALL "
    "SELECT budget FROM dept ORDER BY 1 LIMIT 4",
    "SELECT dept, stddev(salary), variance(salary) FROM emp "
    "GROUP BY dept ORDER BY dept",
]


class TestProgramModel:
    def test_instruction_render_single(self):
        instr = Instruction(["X_1"], "sql.bind", [Const("t"), Const("a")])
        assert instr.render() == 'X_1 := sql.bind("t", "a");'

    def test_instruction_render_multi(self):
        instr = Instruction(["X_1", "X_2"], "algebra.join",
                            [Var("A"), Var("B")])
        assert instr.render() == "(X_1, X_2) := algebra.join(A, B);"

    def test_instruction_render_no_result(self):
        instr = Instruction([], "basket.lock", [Const("s")])
        assert instr.render() == 'basket.lock("s");'

    def test_comment_rendered(self):
        instr = Instruction([], "basket.lock", [Const("s")], comment="c")
        assert instr.render().endswith("# c")

    def test_opcode_must_be_dotted(self):
        with pytest.raises(MALError):
            Instruction([], "nodot", [])

    def test_fresh_variables_unique(self):
        prog = MALProgram()
        assert prog.fresh().name != prog.fresh().name

    def test_pretty_has_function_wrapper(self):
        prog = MALProgram("user.q")
        prog.emit("sql.bind", Const("t"), Const("a"))
        text = prog.pretty()
        assert text.startswith("function user.q();")
        assert text.endswith("end user.q;")

    def test_factory_kind_renders_factory(self):
        prog = MALProgram("datacell.q", kind="factory")
        assert prog.pretty().startswith("factory datacell.q();")

    def test_copy_independent(self):
        prog = MALProgram()
        prog.emit("sql.bind", Const("t"), Const("a"))
        clone = prog.copy()
        clone.emit("sql.bind", Const("t"), Const("b"))
        assert len(prog) == 1 and len(clone) == 2

    def test_count_module(self):
        prog = MALProgram()
        prog.emit("sql.bind", Const("t"), Const("a"))
        prog.emit("algebra.thetaselect", Var("X_1"), Const(1), Const(">"))
        assert prog.count_module("sql") == 1
        assert prog.count_module("algebra") == 1

    def test_const_repr(self):
        assert repr(Const("x")) == '"x"'
        assert repr(Const(None)) == "nil"
        assert repr(Const(True)) == "true"
        assert repr(Const(3)) == "3"


class TestCompilerOutput:
    def test_select_compiles_to_thetaselect(self, emp_catalog):
        plan = compile_select("SELECT id FROM emp WHERE salary > 60",
                              emp_catalog)
        prog = compile_plan(plan)
        assert "algebra.thetaselect" in prog.opcodes()
        assert "algebra.projection" in prog.opcodes()
        assert prog.opcodes()[-1] == "sql.resultSet"

    def test_complex_predicate_uses_mask(self, emp_catalog):
        plan = compile_select(
            "SELECT id FROM emp WHERE salary > id", emp_catalog)
        prog = compile_plan(plan)
        assert "algebra.maskselect" in prog.opcodes()

    def test_join_opcode(self, emp_catalog):
        plan = compile_select(
            "SELECT e.id FROM emp e, dept d WHERE e.dept = d.name",
            emp_catalog)
        prog = compile_plan(plan)
        assert "algebra.join" in prog.opcodes()

    def test_group_aggregate_opcodes(self, emp_catalog):
        plan = compile_select(
            "SELECT dept, sum(salary) FROM emp GROUP BY dept",
            emp_catalog)
        ops = compile_plan(plan).opcodes()
        assert "group.subgroup" in ops and "aggr.subsum" in ops


class TestInterpreter:
    def test_unknown_opcode(self, emp_catalog):
        prog = MALProgram()
        prog.emit("bogus.op")
        with pytest.raises(MALError, match="unknown opcode"):
            execute(prog, MALContext(emp_catalog))

    def test_unbound_variable(self, emp_catalog):
        prog = MALProgram()
        prog.append(Instruction(["Y"], "algebra.projection",
                                [Var("MISSING"), Var("ALSO")]))
        with pytest.raises(MALError, match="unbound"):
            execute(prog, MALContext(emp_catalog))

    def test_result_arity_mismatch(self, emp_catalog):
        prog = MALProgram()
        x = prog.emit("sql.bind", Const("emp"), Const("id"))
        prog.append(Instruction(["A", "B"], "sql.bind",
                                [Const("emp"), Const("id")]))
        with pytest.raises(MALError, match="results"):
            execute(prog, MALContext(emp_catalog))

    def test_resolve_unknown_source(self, emp_catalog):
        prog = MALProgram()
        prog.emit("sql.bind", Const("nope"), Const("x"))
        with pytest.raises(MALError):
            execute(prog, MALContext(emp_catalog))


class TestEquivalence:
    """The MAL path must agree with the tree executor on every query."""

    @pytest.mark.parametrize("sql", QUERY_CORPUS)
    def test_corpus(self, emp_catalog, sql):
        plan = compile_select(sql, emp_catalog)
        tree = PlanExecutor(
            ExecutionContext(emp_catalog)).execute(plan).to_rows()
        mal = execute(compile_plan(plan),
                      MALContext(emp_catalog)).to_rows()
        assert tree == mal

    @pytest.mark.parametrize("sql", QUERY_CORPUS[:6])
    def test_unoptimized_plans_agree_too(self, emp_catalog, sql):
        plan = compile_select(sql, emp_catalog, optimize=False)
        tree = PlanExecutor(
            ExecutionContext(emp_catalog)).execute(plan).to_rows()
        mal = execute(compile_plan(plan),
                      MALContext(emp_catalog)).to_rows()
        assert tree == mal
