"""Tests for the network edge: wire protocol, socket receptors,
queued emitters, the DataCell server/client pair, and the CLI trio."""

import io
import os
import socket
import threading
import time

import pytest

from repro.core.clock import WallClock
from repro.core.emitter import QueueSink
from repro.core.engine import DataCellEngine
from repro.core.receptor import SocketReceptor
from repro.errors import NetError, StreamError
from repro.mal.relation import Relation
from repro.net import protocol
from repro.net.client import DataCellClient
from repro.net.server import DataCellServer
from repro.storage import Schema
from repro.streams.source import ListSource

# ---------------------------------------------------------------------
# protocol
# ---------------------------------------------------------------------


class TestProtocol:
    def test_json_roundtrip(self):
        message = protocol.ingest("s", [[1, 2.5, "x", None]], seq=7)
        frame = protocol.encode_frame(message, protocol.JSONCodec)
        header, payload = frame[:protocol.HEADER.size], \
            frame[protocol.HEADER.size:]
        assert protocol.decode_frame(header, payload) == message

    def test_numpy_scalars_serialize(self):
        import numpy as np

        frame = protocol.encode_frame(
            protocol.ok(count=np.int64(3), ratio=np.float64(0.5)))
        message = protocol.decode_frame(
            frame[:protocol.HEADER.size], frame[protocol.HEADER.size:])
        assert message["count"] == 3

    def test_msgpack_roundtrip_when_available(self):
        if "msgpack" not in protocol.available_codecs():
            pytest.skip("msgpack not installed")
        message = protocol.result("q", 0, 5, ["k"], [[1], [2]])
        frame = protocol.encode_frame(message, protocol.MsgpackCodec)
        assert protocol.decode_frame(
            frame[:protocol.HEADER.size],
            frame[protocol.HEADER.size:]) == message

    def test_unknown_codec_falls_back_to_json(self):
        assert protocol.get_codec("nope") is protocol.JSONCodec
        assert protocol.get_codec("JSON") is protocol.JSONCodec

    def test_unknown_codec_id_rejected(self):
        header = protocol.HEADER.pack(2, 99)
        with pytest.raises(NetError) as exc:
            protocol.decode_frame(header, b"{}")
        assert exc.value.code == "bad_frame"

    def test_untyped_payload_rejected(self):
        frame = protocol.encode_frame({"type": "ok"})
        with pytest.raises(NetError):
            protocol.decode_frame(protocol.HEADER.pack(2, 0), b"[]")
        assert frame  # typed payload was fine

    def test_frame_stream_roundtrip_and_eof(self):
        a, b = socket.socketpair()
        sa, sb = protocol.FrameStream(a), protocol.FrameStream(b)
        sa.send(protocol.hello())
        sa.send(protocol.stats({"x": 1}))
        assert sb.recv()["type"] == "hello"
        assert sb.recv()["payload"] == {"x": 1}
        sa.close()
        assert sb.recv() is None  # clean EOF
        sb.close()


# ---------------------------------------------------------------------
# socket receptor (admission control)
# ---------------------------------------------------------------------


@pytest.fixture
def basket():
    from repro.core.basket import Basket

    return Basket("s", Schema.parse([("k", "INT")]))


class TestSocketReceptor:
    def test_offer_then_pump(self, basket):
        receptor = SocketReceptor("r", basket, max_pending=4)
        assert receptor.offer([(1,), (2,)]) == 2
        assert receptor.pending_batches() == 1
        assert len(basket) == 0
        assert receptor.pump(now=5) == 2
        assert len(basket) == 2
        assert receptor.total_ingested == 2
        assert basket.arrival_slice(0, 2)[0].tolist() == [5, 5]

    def test_shed_policy_counts(self, basket):
        receptor = SocketReceptor("r", basket, max_pending=2,
                                  policy="shed")
        assert receptor.offer([(1,)]) == 1
        assert receptor.offer([(2,)]) == 1
        assert receptor.offer([(3,), (4,)]) == 0  # queue full -> shed
        assert receptor.total_shed == 2
        assert receptor.pump(0) == 2  # shed rows never reach the basket

    def test_block_policy_waits_for_pump(self, basket):
        receptor = SocketReceptor("r", basket, max_pending=1,
                                  policy="block", block_timeout_s=5.0)
        receptor.offer([(1,)])
        done = threading.Event()

        def offer_second():
            receptor.offer([(2,)])
            done.set()

        thread = threading.Thread(target=offer_second, daemon=True)
        thread.start()
        time.sleep(0.05)
        assert not done.is_set()  # producer is blocked
        assert receptor.total_blocked == 1
        receptor.pump(0)  # scheduler drains -> unblocks the producer
        assert done.wait(2.0)
        receptor.pump(0)
        assert len(basket) == 2

    def test_block_policy_timeout_raises(self, basket):
        receptor = SocketReceptor("r", basket, max_pending=1,
                                  policy="block", block_timeout_s=0.05)
        receptor.offer([(1,)])
        with pytest.raises(StreamError):
            receptor.offer([(2,)])

    def test_close_then_drain_marks_exhausted(self, basket):
        receptor = SocketReceptor("r", basket)
        receptor.offer([(1,)])
        receptor.close()
        assert not receptor.exhausted  # still has a queued batch
        receptor.pump(0)
        assert receptor.exhausted
        with pytest.raises(StreamError):
            receptor.offer([(2,)])

    def test_paused_offer_raises_and_pump_noop(self, basket):
        receptor = SocketReceptor("r", basket)
        receptor.offer([(1,)])
        receptor.pause()
        with pytest.raises(StreamError):
            receptor.offer([(2,)])
        assert receptor.pump(0) == 0  # batch stays queued
        receptor.resume()
        assert receptor.pump(0) == 1

    def test_bad_policy_rejected(self, basket):
        with pytest.raises(StreamError):
            SocketReceptor("r", basket, policy="drop-everything")


# ---------------------------------------------------------------------
# queue sink (per-client delivery)
# ---------------------------------------------------------------------


def _rel(values):
    return Relation.from_rows(Schema.parse([("x", "INT")]),
                              [(v,) for v in values])


class TestQueueSink:
    def test_in_order_delivery(self):
        sink = QueueSink("c1", max_batches=8)
        sink.deliver(_rel([1]), now=5)
        sink.deliver(_rel([2, 3]), now=9)
        seq0, t0, rel0 = sink.get(timeout=0.1)
        seq1, t1, rel1 = sink.get(timeout=0.1)
        assert (seq0, t0, rel0.to_rows()) == (0, 5, [(1,)])
        assert (seq1, t1, rel1.to_rows()) == (1, 9, [(2,), (3,)])
        assert sink.get(timeout=0.01) is None
        assert sink.delivered_rows == 3

    def test_slow_consumer_evicted(self):
        sink = QueueSink("c1", max_batches=2)
        sink.deliver(_rel([1]), 0)
        sink.deliver(_rel([2]), 0)
        assert not sink.evicted
        sink.deliver(_rel([3]), 0)  # overflow -> evicted, batch dropped
        assert sink.evicted
        assert sink.dropped_batches == 1
        sink.deliver(_rel([4]), 0)  # further deliveries just count
        assert sink.dropped_batches == 2
        assert sink.stats()["evicted"] is True
        # queued batches remain readable so the writer can flush + close
        assert sink.get(timeout=0.1)[2].to_rows() == [(1,)]


# ---------------------------------------------------------------------
# server / client loopback
# ---------------------------------------------------------------------


ROWS = [(i, float(i % 3) / 2) for i in range(60)]  # v in {0, .5, 1.0}
FILTER_SQL = "SELECT k, v FROM s WHERE v > 0.5"
WINDOW_SQL = "SELECT count(*) FROM s [RANGE 10]"


def _server_engine():
    engine = DataCellEngine(clock=WallClock())
    engine.execute("CREATE STREAM s (k INT, v FLOAT)")
    engine.execute("CREATE STREAM t (k INT, v FLOAT)")
    engine.register_continuous(FILTER_SQL, name="q")
    engine.register_continuous(WINDOW_SQL, name="w",
                               mode="incremental")
    engine.register_continuous("SELECT k FROM t", name="qt")
    return engine


@pytest.fixture
def server():
    server = DataCellServer(_server_engine(), step_interval_s=0.001)
    server.start()
    yield server
    server.stop()
    server.engine.close()


def _expected_inprocess():
    """The same source through the in-process CollectingSink path."""
    engine = DataCellEngine()
    engine.execute("CREATE STREAM s (k INT, v FLOAT)")
    engine.register_continuous(FILTER_SQL, name="q")
    engine.register_continuous(WINDOW_SQL, name="w",
                               mode="incremental")
    engine.attach_source("s", ListSource(
        [(i, row) for i, row in enumerate(ROWS)]))
    engine.run_until_drained()
    return engine.results("q").rows(), engine.results("w").rows()


def _rows_by_query(batches):
    out = {}
    for batch in batches:
        out.setdefault(batch.query, []).extend(batch.rows)
    return out


class TestServer:
    def test_hello_reports_streams_and_queries(self, server):
        with DataCellClient(port=server.port) as client:
            info = client.server_info
            assert set(info["streams"]) >= {"s", "t"}
            assert set(info["queries"]) == {"q", "w", "qt"}
            assert info["codec"] == "json"

    def test_stats_frame(self, server):
        with DataCellClient(port=server.port) as client:
            stats = client.stats()
            assert "net" in stats and "baskets" in stats
            assert stats["net"]["running"] is True

    def test_ingest_unknown_stream(self, server):
        with DataCellClient(port=server.port) as client:
            with pytest.raises(NetError) as exc:
                client.ingest("nope", [[1, 2.0]])
            assert exc.value.code == "no_stream"

    def test_subscribe_unknown_query(self, server):
        with DataCellClient(port=server.port) as client:
            with pytest.raises(NetError) as exc:
                client.subscribe("nope")
            assert exc.value.code == "no_query"

    def test_duplicate_subscribe_rejected(self, server):
        with DataCellClient(port=server.port) as client:
            client.subscribe("q")
            with pytest.raises(NetError) as exc:
                client.subscribe("q")
            assert exc.value.code == "duplicate"

    def test_loopback_equivalence_three_clients(self, server):
        """Acceptance: the same source through a SocketReceptor, with 3
        subscribed clients, is row-identical per client to the
        in-process CollectingSink run."""
        expected_q, expected_w = _expected_inprocess()
        total = len(expected_q) + len(expected_w)
        subscribers = [DataCellClient(port=server.port)
                       for _ in range(3)]
        try:
            for sub in subscribers:
                assert sub.subscribe("q") == ["k", "v"]
                sub.subscribe("w")
            with DataCellClient(port=server.port) as producer:
                for i in range(0, len(ROWS), 7):  # uneven batches
                    producer.ingest("s", ROWS[i:i + 7], seq=i)
            for sub in subscribers:
                got = _rows_by_query(
                    sub.results(max_rows=total, timeout=15.0))
                assert got.get("q", []) == expected_q
                assert got.get("w", []) == expected_w
        finally:
            for sub in subscribers:
                sub.close()

    def test_two_streams_two_clients_smoke(self, server):
        """CI smoke: two producers on two streams, two subscribers."""
        sub_q = DataCellClient(port=server.port)
        sub_t = DataCellClient(port=server.port)
        try:
            sub_q.subscribe("q")
            sub_t.subscribe("qt")
            with DataCellClient(port=server.port) as p1, \
                    DataCellClient(port=server.port) as p2:
                p1.ingest("s", [[i, 1.0] for i in range(10)])
                p2.ingest("t", [[i, 0.0] for i in range(5)])
            rows_q = [r for b in sub_q.results(max_rows=10,
                                               timeout=10.0)
                      for r in b.rows]
            rows_t = [r for b in sub_t.results(max_rows=5,
                                               timeout=10.0)
                      for r in b.rows]
            assert rows_q == [(i, 1.0) for i in range(10)]
            assert rows_t == [(i,) for i in range(5)]
        finally:
            sub_q.close()
            sub_t.close()

    def test_backpressure_shed(self):
        """Acceptance: a producer faster than the scheduler hits the
        bounded admission queue and receives a shed ERROR frame, with
        the shed count visible in network_stats() and the .net pane."""
        engine = _server_engine()
        server = DataCellServer(engine, admission="shed",
                                max_pending_batches=2)
        server.start()
        # stall the scheduler loop (paused nets still pump receptors,
        # so pausing no longer models a scheduler that can't drain)
        real_step = engine.scheduler.step
        engine.scheduler.step = \
            lambda: {"ingested": 0, "fired": 0, "dropped": 0}
        try:
            with DataCellClient(port=server.port) as producer:
                shed = 0
                for i in range(5):
                    try:
                        producer.ingest("s", [[i, 1.0]] * 3)
                    except NetError as exc:
                        assert exc.code == "shed"
                        shed += 1
                assert shed == 3  # queue holds 2 batches, rest shed
                stats = producer.stats()
                assert stats["net"]["totals"]["shed"] == 9
            pane = engine.monitor.net()
            assert "shed=9" in pane
            engine.scheduler.step = real_step
        finally:
            engine.scheduler.step = real_step
            server.stop()
            engine.close()

    def test_backpressure_block(self):
        """Acceptance (block policy): the producer blocks on a full
        admission queue until the scheduler drains; the wait shows up
        in the blocked counter."""
        engine = _server_engine()
        server = DataCellServer(engine, admission="block",
                                max_pending_batches=1,
                                block_timeout_s=10.0)
        server.start()
        # stall the scheduler loop (paused nets still pump receptors,
        # so pausing no longer models a scheduler that can't drain)
        real_step = engine.scheduler.step
        engine.scheduler.step = \
            lambda: {"ingested": 0, "fired": 0, "dropped": 0}
        try:
            producer = DataCellClient(port=server.port, timeout_s=10.0)
            watcher = DataCellClient(port=server.port)
            producer.ingest("s", [[0, 1.0]])  # fills the queue
            unblocked = threading.Event()

            def blocked_ingest():
                producer.ingest("s", [[1, 1.0]])
                unblocked.set()

            thread = threading.Thread(target=blocked_ingest,
                                      daemon=True)
            thread.start()
            time.sleep(0.3)
            assert not unblocked.is_set()  # producer is stuck
            assert watcher.stats()["net"]["totals"]["blocked"] >= 1
            engine.scheduler.step = real_step  # drain -> unblock
            assert unblocked.wait(5.0)
            assert "blocked=" in engine.monitor.net()
            producer.close()
            watcher.close()
        finally:
            engine.scheduler.step = real_step
            server.stop()
            engine.close()

    def test_stop_flushes_pending_deliveries(self):
        engine = _server_engine()
        server = DataCellServer(engine, step_interval_s=0.001)
        server.start()
        subscriber = DataCellClient(port=server.port)
        try:
            subscriber.subscribe("q")
            with DataCellClient(port=server.port) as producer:
                producer.ingest("s", [[i, 1.0] for i in range(20)])
            server.stop()  # orderly: drain net, flush subscribers
            rows = [r for b in subscriber.results(max_rows=20,
                                                  timeout=5.0)
                    for r in b.rows]
            assert rows == [(i, 1.0) for i in range(20)]
        finally:
            subscriber.close()
            server.stop()
            engine.close()

    def test_server_requires_wall_clock(self):
        with pytest.raises(StreamError):
            DataCellServer(DataCellEngine())  # simulated clock

    def test_server_bounds_collecting_sinks(self):
        engine = _server_engine()
        server = DataCellServer(engine, collect_max_batches=5)
        server.start()
        try:
            assert all(q.sink.max_batches == 5
                       for q in engine.queries())
        finally:
            server.stop()
            engine.close()

    def test_departed_producer_receptor_reaped(self, server):
        with DataCellClient(port=server.port) as producer:
            producer.ingest("s", [[1, 1.0]])
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline:
            server._reap_receptors()  # folds once closed *and* drained
            if not any(isinstance(r, SocketReceptor)
                       for r in server.engine.scheduler.receptors):
                break
            time.sleep(0.02)
        assert not any(isinstance(r, SocketReceptor)
                       for r in server.engine.scheduler.receptors)
        # the ingested row survives in the server's totals
        assert server.net_stats()["totals"]["ingested"] == 1

    def test_monitor_net_pane_unattached(self):
        engine = DataCellEngine()
        assert "not attached" in engine.monitor.net()


# ---------------------------------------------------------------------
# CLI trio
# ---------------------------------------------------------------------


class TestNetCLI:
    def test_serve_send_tail_roundtrip(self, tmp_path):
        from repro.cli import main as repro_main

        script = tmp_path / "init.sql"
        script.write_text(
            "CREATE STREAM sensors (sid INT, temp FLOAT);\n"
            ".register hot SELECT sid, temp FROM sensors "
            "WHERE temp > 25.0;\n")
        rows = tmp_path / "rows.txt"
        rows.write_text("1, 20.0\n2, 30.0\n3, 31.5\n# comment\n")
        port_file = tmp_path / "port"

        serve_out = io.StringIO()
        serve_rc = []

        def run_serve():
            from repro.net.cli import main as net_main

            serve_rc.append(net_main(
                ["serve", "--port", "0", "--script", str(script),
                 "--duration", "8", "--port-file", str(port_file)],
                out=serve_out))

        serve_thread = threading.Thread(target=run_serve, daemon=True)
        serve_thread.start()
        deadline = time.monotonic() + 5.0
        while not os.path.exists(port_file) \
                and time.monotonic() < deadline:
            time.sleep(0.02)
        port = port_file.read_text().strip()

        tail_out = io.StringIO()
        tail_rc = []

        def run_tail():
            from repro.net.cli import main as net_main

            tail_rc.append(net_main(
                ["tail", "hot", "--port", port, "--count", "1",
                 "--timeout", "6"], out=tail_out))

        tail_thread = threading.Thread(target=run_tail, daemon=True)
        tail_thread.start()
        deadline = time.monotonic() + 5.0
        while "subscribed" not in tail_out.getvalue() \
                and time.monotonic() < deadline:
            time.sleep(0.02)

        # dispatch through the top-level `repro` entry point
        assert repro_main(["send", "sensors", "--port", port,
                           "--file", str(rows)]) == 0
        tail_thread.join(10.0)
        serve_thread.join(12.0)
        assert tail_rc == [0]
        assert serve_rc == [0]
        output = tail_out.getvalue()
        assert "subscribed to 'hot'" in output
        assert "30.0" in output and "31.5" in output
        assert "20.0" not in output.replace("-- t=", "")

# ---------------------------------------------------------------------
# teardown of abruptly dropped query subscribers
# ---------------------------------------------------------------------


class TestTeardownLeaks:
    def test_abrupt_subscriber_drop_detaches_and_folds(self, server):
        """A query subscriber whose socket vanishes without an
        UNSUBSCRIBE must have its writer task joined, its QueueSink
        detached from the emitter and its delivery counters folded
        into the server totals."""
        emitter = server.engine.continuous_query("q").emitter
        client = DataCellClient(port=server.port)
        client.subscribe("q")
        assert any(isinstance(s, QueueSink) for s in emitter.sinks)
        with DataCellClient(port=server.port) as producer:
            producer.ingest("s", [list(r) for r in ROWS])
        batches = client.results(max_batches=1, timeout=5.0)
        assert batches
        # abrupt drop: close the raw socket, no goodbye frame
        client._stream.sock.close()
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline \
                and server._snapshot_conns():
            time.sleep(0.02)
        assert server._snapshot_conns() == []
        assert not any(isinstance(s, QueueSink)
                       for s in emitter.sinks)
        totals = server.net_stats()["totals"]
        assert totals["delivered_batches"] >= len(batches)
        assert totals["delivered_rows"] >= \
            sum(b.row_count for b in batches)
