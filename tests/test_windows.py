"""Unit tests for window specs, re-eval cursors and basic-window
trackers — including restored cursors whose windows dip below the
vacuum floor into log-resident history (paged binder)."""

import pytest

from repro.core.basket import Basket
from repro.core.windows import BasicWindowTracker, WindowSpec, WindowState
from repro.errors import WindowError
from repro.sql.ast import WindowClause
from repro.storage import Schema
from repro.store import PagedWindowBinder, StreamLog


@pytest.fixture
def basket():
    return Basket("s", Schema.parse([("k", "INT")]))


def fill(basket, n, start_ts=0, step_ts=0):
    for i in range(n):
        basket.append_rows([(i,)], now=start_ts + i * step_ts)


def durable_basket(tmp_path):
    """A basket whose history survives vacuum in a paged stream log."""
    schema = Schema.parse([("k", "INT")])
    basket = Basket("s", schema)
    log = StreamLog(str(tmp_path / "s"), "s", schema, inline=True,
                    segment_rows=4, durability="fsync")
    basket.attach_log(log)
    basket.attach_pager(PagedWindowBinder(log, schema))
    return basket, log


class TestWindowSpec:
    def test_none(self):
        spec = WindowSpec.none()
        assert spec.kind == "none" and not spec.is_sliding

    def test_tumbling_default_slide(self):
        spec = WindowSpec("tuple", 10)
        assert spec.slide == 10 and spec.is_tumbling

    def test_sliding(self):
        spec = WindowSpec("tuple", 10, 2)
        assert spec.is_sliding and spec.basic_window_count == 5

    def test_invalid_sizes(self):
        with pytest.raises(WindowError):
            WindowSpec("tuple", 0)
        with pytest.raises(WindowError):
            WindowSpec("tuple", 10, 0)
        with pytest.raises(WindowError):
            WindowSpec("tuple", 10, 11)
        with pytest.raises(WindowError):
            WindowSpec("bogus", 10)

    def test_non_divisible_basic_windows(self):
        with pytest.raises(WindowError):
            WindowSpec("tuple", 10, 3).basic_window_count

    def test_from_clause_tuple(self):
        spec = WindowSpec.from_clause(WindowClause(10, 2, False))
        assert spec.kind == "tuple" and spec.size == 10

    def test_from_clause_time_converts_to_ms(self):
        spec = WindowSpec.from_clause(WindowClause(10, 2, True))
        assert spec.size == 10000 and spec.slide == 2000

    def test_from_clause_none(self):
        assert WindowSpec.from_clause(None).kind == "none"

    def test_none_has_no_basic_windows(self):
        with pytest.raises(WindowError):
            WindowSpec.none().basic_window_count


class TestUnwindowedState:
    def test_ready_on_new_data(self, basket):
        sub = basket.subscribe("q")
        state = WindowState(WindowSpec.none(), basket, sub)
        assert not state.ready(0)
        fill(basket, 3)
        assert state.ready(0)
        assert state.slice_bounds(0) == (0, 3)

    def test_advance_consumes_all(self, basket):
        sub = basket.subscribe("q")
        state = WindowState(WindowSpec.none(), basket, sub)
        fill(basket, 3)
        state.advance(0)
        assert not state.ready(0)
        assert sub.released_upto == 3

    def test_paused_never_ready(self, basket):
        sub = basket.subscribe("q")
        sub.paused = True
        state = WindowState(WindowSpec.none(), basket, sub)
        fill(basket, 3)
        assert not state.ready(0)


class TestTupleWindowState:
    def test_fires_only_when_window_full(self, basket):
        sub = basket.subscribe("q")
        state = WindowState(WindowSpec("tuple", 4, 2), basket, sub)
        fill(basket, 3)
        assert not state.ready(0)
        fill(basket, 1)
        assert state.ready(0)
        assert state.slice_bounds(0) == (0, 4)

    def test_slide_moves_window(self, basket):
        sub = basket.subscribe("q")
        state = WindowState(WindowSpec("tuple", 4, 2), basket, sub)
        fill(basket, 6)
        state.advance(0)
        assert state.slice_bounds(0) == (2, 6)
        assert sub.released_upto == 2

    def test_retention_trails_by_window(self, basket):
        sub = basket.subscribe("q")
        state = WindowState(WindowSpec("tuple", 4, 2), basket, sub)
        fill(basket, 4)
        state.advance(0)
        # only tuples before the new window start may be dropped
        assert sub.released_upto == 2
        assert basket.vacuum() == 2


class TestTimeWindowState:
    def test_fires_at_boundary(self, basket):
        sub = basket.subscribe("q")
        state = WindowState(WindowSpec("time", 1000, 500), basket, sub,
                            anchor_time=0)
        fill(basket, 5, start_ts=0, step_ts=100)
        assert not state.ready(999)
        assert state.ready(1000)

    def test_slice_uses_arrival_times(self, basket):
        sub = basket.subscribe("q")
        state = WindowState(WindowSpec("time", 1000, 500), basket, sub)
        fill(basket, 12, start_ts=0, step_ts=100)
        lo, hi = state.slice_bounds(1000)
        assert (lo, hi) == (0, 10)
        state.advance(1000)
        lo, hi = state.slice_bounds(1500)
        assert (lo, hi) == (5, 12)

    def test_empty_window_fires(self, basket):
        sub = basket.subscribe("q")
        state = WindowState(WindowSpec("time", 1000, 1000), basket, sub)
        assert state.ready(1000)
        lo, hi = state.slice_bounds(1000)
        assert lo == hi


class TestBasicWindowTracker:
    def test_requires_window(self, basket):
        sub = basket.subscribe("q")
        with pytest.raises(WindowError):
            BasicWindowTracker(WindowSpec.none(), basket, sub)

    def test_new_basic_windows_tuple(self, basket):
        sub = basket.subscribe("q")
        tracker = BasicWindowTracker(WindowSpec("tuple", 4, 2), basket,
                                     sub)
        fill(basket, 5)
        bws = tracker.new_basic_windows(0)
        assert bws == [(0, 0, 2), (1, 2, 4)]
        fill(basket, 1)
        assert tracker.new_basic_windows(0) == [(2, 4, 6)]

    def test_release_is_eager(self, basket):
        sub = basket.subscribe("q")
        tracker = BasicWindowTracker(WindowSpec("tuple", 4, 2), basket,
                                     sub)
        fill(basket, 4)
        tracker.new_basic_windows(0)
        # processed tuples can be dropped immediately: their contribution
        # lives in cached intermediates
        assert sub.released_upto == 4
        assert basket.vacuum() == 4

    def test_ready_needs_all_basic_windows(self, basket):
        sub = basket.subscribe("q")
        tracker = BasicWindowTracker(WindowSpec("tuple", 4, 2), basket,
                                     sub)
        fill(basket, 3)
        tracker.new_basic_windows(0)
        assert not tracker.ready(0)
        fill(basket, 1)
        assert tracker.ready(0)

    def test_composition_and_advance(self, basket):
        sub = basket.subscribe("q")
        tracker = BasicWindowTracker(WindowSpec("tuple", 4, 2), basket,
                                     sub)
        fill(basket, 6)
        tracker.new_basic_windows(0)
        k, bws = tracker.window_composition()
        assert (k, bws) == (0, [0, 1])
        tracker.advance()
        k, bws = tracker.window_composition()
        assert (k, bws) == (1, [1, 2])
        assert tracker.live_floor() == 1

    def test_time_tracker(self, basket):
        sub = basket.subscribe("q")
        tracker = BasicWindowTracker(WindowSpec("time", 1000, 500),
                                     basket, sub, anchor_time=0)
        fill(basket, 10, start_ts=0, step_ts=100)
        bws = tracker.new_basic_windows(1000)
        assert bws == [(0, 0, 5), (1, 5, 10)]
        assert tracker.ready(1000)

    def test_time_tracker_waits_for_clock(self, basket):
        sub = basket.subscribe("q")
        tracker = BasicWindowTracker(WindowSpec("time", 1000, 500),
                                     basket, sub)
        fill(basket, 10, start_ts=0, step_ts=100)
        assert tracker.new_basic_windows(499) == []

    def test_paused_not_ready(self, basket):
        sub = basket.subscribe("q")
        tracker = BasicWindowTracker(WindowSpec("tuple", 2, 1), basket,
                                     sub)
        fill(basket, 5)
        tracker.new_basic_windows(0)
        sub.paused = True
        assert not tracker.ready(0)


class TestCursorRecoveryWithPagedHistory:
    """Restored cursors whose first window dips below the rebuilt
    basket: the paged binder serves the log-resident part."""

    def test_tracker_restore_pages_vacuumed_basic_windows(
            self, tmp_path):
        basket, log = durable_basket(tmp_path)
        sub = basket.subscribe("q")
        tracker = BasicWindowTracker(WindowSpec("tuple", 4, 2), basket,
                                     sub)
        fill(basket, 8)
        tracker.new_basic_windows(0)  # bw0..3 processed, released
        tracker.advance()             # window 0 fired; next needs bw1
        snap = tracker.snapshot()
        assert snap["floor_oid"] == 2
        # eager release dropped even the next window's data from memory
        assert basket.vacuum() == 8
        assert basket.first_oid == 8
        # recovery: fresh tracker + restored cursor; its first basic
        # window [2,4) now lives only in the log
        sub2 = basket.subscribe("q2")
        t2 = BasicWindowTracker(WindowSpec("tuple", 4, 2), basket, sub2)
        t2.restore(snap)
        assert sub2.read_upto == 2
        bws = t2.new_basic_windows(0)
        assert bws == [(1, 2, 4), (2, 4, 6), (3, 6, 8)]
        assert t2.ready(0)
        lo, hi = t2.window_bounds()
        assert (lo, hi) == (2, 6)
        rel = basket.relation(lo, hi)
        assert rel.column("k").values.tolist() == [2, 3, 4, 5]
        assert basket.pager.stats()["paged_reads"] >= 1
        log.close()

    def test_time_tracker_snapshot_floor_consults_pager(self, tmp_path):
        basket, log = durable_basket(tmp_path)
        sub = basket.subscribe("q")
        tracker = BasicWindowTracker(WindowSpec("time", 1000, 500),
                                     basket, sub, anchor_time=0)
        for i in range(10):
            basket.append_rows([(i,)], now=i * 100)
        tracker.new_basic_windows(1000)  # bw0 [0,5), bw1 [5,10)
        tracker.advance()                # window 0 fired
        assert basket.vacuum() == 10     # memory fully drained
        snap = tracker.snapshot()
        # floor = lo of bw1 = first arrival >= 500ms = oid 5, resolved
        # through the log's __ts segments; without the pager the
        # lookup would snap to first_oid (10) and over-report
        assert snap["floor_oid"] == 5
        log.close()

    def test_window_state_restore_delta_first_fire_pages(
            self, tmp_path):
        basket, log = durable_basket(tmp_path)
        sub = basket.subscribe("q")
        state = WindowState(WindowSpec("tuple", 4, 2), basket, sub)
        fill(basket, 6)
        state.advance(0, retain_expired=True)  # delta fired [0,4)
        snap = state.snapshot()
        # crash: the basket rebuilt from a later checkpoint holds
        # nothing below oid 6, but the log does
        sub.read_upto = sub.released_upto = 6
        assert basket.vacuum() == 6
        sub2 = basket.subscribe("q2")
        s2 = WindowState(WindowSpec("tuple", 4, 2), basket, sub2)
        s2.restore(snap)
        assert s2.ready(0)  # next_oid=6 >= win_start 2 + size 4
        (lo, hi), (alo, ahi), (elo, ehi) = s2.delta_bounds(0)
        # first post-recovery fire: the whole window arrives, nothing
        # retracts (last_bounds is deliberately not restored)
        assert (lo, hi) == (2, 6)
        assert (alo, ahi) == (2, 6)
        assert elo == ehi
        rel = basket.relation(lo, hi)  # head [2,6) is log-resident
        assert rel.column("k").values.tolist() == [2, 3, 4, 5]
        assert basket.pager.stats()["paged_reads"] >= 1
        log.close()
