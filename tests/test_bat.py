"""Unit tests for BATs, vector heaps and candidate lists."""

import numpy as np
import pytest

from repro.errors import KernelError
from repro.mal.bat import (BAT, VectorHeap, all_candidates, as_candidates,
                           empty_candidates)
from repro.storage import types as dt


class TestVectorHeap:
    def test_append_and_view(self):
        heap = VectorHeap(dt.INT)
        for i in range(100):
            heap.append(i)
        assert len(heap) == 100
        assert heap.view().tolist() == list(range(100))

    def test_extend_grows_capacity(self):
        heap = VectorHeap(dt.INT, capacity=4)
        heap.extend(np.arange(1000, dtype=np.int64))
        assert len(heap) == 1000
        assert heap.capacity >= 1000

    def test_drop_head(self):
        heap = VectorHeap(dt.INT)
        heap.extend(np.arange(10, dtype=np.int64))
        heap.drop_head(4)
        assert heap.view().tolist() == [4, 5, 6, 7, 8, 9]

    def test_drop_head_out_of_range(self):
        heap = VectorHeap(dt.INT)
        heap.extend(np.arange(3, dtype=np.int64))
        with pytest.raises(KernelError):
            heap.drop_head(4)
        with pytest.raises(KernelError):
            heap.drop_head(-1)

    def test_drop_then_append_reuses_space(self):
        heap = VectorHeap(dt.INT, capacity=8)
        heap.extend(np.arange(8, dtype=np.int64))
        heap.drop_head(6)
        heap.extend(np.arange(6, dtype=np.int64))
        assert heap.view().tolist() == [6, 7, 0, 1, 2, 3, 4, 5]

    def test_clear(self):
        heap = VectorHeap(dt.INT)
        heap.extend(np.arange(5, dtype=np.int64))
        heap.clear()
        assert len(heap) == 0

    def test_string_heap(self):
        heap = VectorHeap(dt.STRING)
        arr = np.empty(2, dtype=object)
        arr[:] = ["a", None]
        heap.extend(arr)
        assert heap.view().tolist() == ["a", None]

    def test_appends_do_log_n_reallocations(self):
        heap = VectorHeap(dt.INT)
        n = 100000
        for i in range(n):
            heap.append(i)
        # geometric (>=2x) growth: reallocations are O(log n), and a
        # ceiling of 2*log2(n) leaves slack for the 16-slot floor
        import math
        assert 1 <= heap.reallocs <= 2 * math.log2(n)
        assert heap.view().tolist() == list(range(n))

    def test_sliding_drop_append_is_amortized(self, monkeypatch):
        """The steady-state drop_head(1)/append(1) loop of a draining
        basket must not compact on every append (that is O(n) moved
        per element — quadratic overall)."""
        compactions = {"n": 0}
        original = VectorHeap._compact

        def counting(self):
            compactions["n"] += 1
            original(self)

        monkeypatch.setattr(VectorHeap, "_compact", counting)
        window = 512
        heap = VectorHeap(dt.INT)
        heap.extend(np.arange(window, dtype=np.int64))
        iterations = 4096
        for i in range(iterations):
            heap.drop_head(1)
            heap.append(window + i)
        assert heap.view().tolist() == list(
            range(iterations, iterations + window))
        # each compaction frees at least half the capacity, so the
        # count is ~ iterations / capacity, not ~ iterations
        assert compactions["n"] <= iterations // window + 8
        assert heap.reallocs <= 8


class TestBATConstruction:
    def test_from_values_int(self):
        bat = BAT.from_values(dt.INT, [1, 2, 3])
        assert len(bat) == 3
        assert bat.tolist() == [1, 2, 3]

    def test_from_values_coerce_none(self):
        bat = BAT.from_values(dt.INT, [1, None, 3], coerce=True)
        assert bat.tolist() == [1, None, 3]
        assert bat.values[1] == dt.INT_NIL

    def test_from_values_strings(self):
        bat = BAT.from_values(dt.STRING, ["x", None, "y"], coerce=True)
        assert bat.tolist() == ["x", None, "y"]

    def test_from_array(self):
        bat = BAT.from_array(dt.FLOAT, np.array([1.0, 2.0]))
        assert bat.tolist() == [1.0, 2.0]

    def test_iteration(self):
        bat = BAT.from_values(dt.INT, [5, 6])
        assert list(bat) == [5, 6]


class TestBATMutation:
    def test_append_coerce(self):
        bat = BAT(dt.FLOAT)
        bat.append(None, coerce=True)
        bat.append(2, coerce=True)
        assert bat.tolist() == [None, 2.0]

    def test_extend_strings_coerce(self):
        bat = BAT(dt.STRING)
        bat.extend(["a", None], coerce=True)
        assert bat.tolist() == ["a", None]

    def test_append_bat_type_check(self):
        a = BAT.from_values(dt.INT, [1])
        b = BAT.from_values(dt.FLOAT, [1.0])
        with pytest.raises(KernelError):
            a.append_bat(b)

    def test_append_bat(self):
        a = BAT.from_values(dt.INT, [1, 2])
        a.append_bat(BAT.from_values(dt.INT, [3]))
        assert a.tolist() == [1, 2, 3]

    def test_delete_head_advances_hseqbase(self):
        bat = BAT.from_values(dt.INT, [10, 20, 30, 40])
        bat.delete_head(2)
        assert bat.hseqbase == 2
        assert bat.tolist() == [30, 40]

    def test_clear_keeps_oid_monotone(self):
        bat = BAT.from_values(dt.INT, [1, 2, 3])
        bat.clear()
        assert bat.hseqbase == 3
        assert len(bat) == 0


class TestBATDerivation:
    def test_slice_is_copy(self):
        bat = BAT.from_values(dt.INT, [1, 2, 3, 4])
        view = bat.slice(1, 3)
        assert view.tolist() == [2, 3]
        assert view.hseqbase == 1
        view.append(99)
        assert bat.tolist() == [1, 2, 3, 4]

    def test_take(self):
        bat = BAT.from_values(dt.INT, [10, 20, 30])
        out = bat.take(np.array([2, 0], dtype=np.int64))
        assert out.tolist() == [30, 10]

    def test_copy_independent(self):
        bat = BAT.from_values(dt.INT, [1, 2])
        cp = bat.copy()
        cp.append(3)
        assert len(bat) == 2 and len(cp) == 3

    def test_nil_mask(self):
        bat = BAT.from_values(dt.FLOAT, [1.0, None], coerce=True)
        assert bat.nil_mask().tolist() == [False, True]

    def test_get_out_of_range(self):
        bat = BAT.from_values(dt.INT, [1])
        with pytest.raises(KernelError):
            bat.get(5)

    def test_get_returns_python_value(self):
        bat = BAT.from_values(dt.INT, [1, None], coerce=True)
        assert bat.get(0) == 1
        assert bat.get(1) is None

    def test_repr_truncates(self):
        bat = BAT.from_values(dt.INT, list(range(20)))
        assert "..." in repr(bat)


class TestCandidates:
    def test_empty(self):
        assert len(empty_candidates()) == 0
        assert empty_candidates().dtype == np.int64

    def test_all(self):
        assert all_candidates(4).tolist() == [0, 1, 2, 3]

    def test_as_candidates_sorts(self):
        assert as_candidates([3, 1, 2]).tolist() == [1, 2, 3]

    def test_as_candidates_rejects_2d(self):
        with pytest.raises(KernelError):
            as_candidates(np.zeros((2, 2), dtype=np.int64))
