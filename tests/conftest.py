"""Shared fixtures: a populated catalog and an engine factory."""

from __future__ import annotations

import pytest

from repro.core.engine import DataCellEngine
from repro.storage import Schema
from repro.storage.catalog import Catalog


@pytest.fixture
def emp_catalog() -> Catalog:
    """Catalog with the emp/dept pair used across SQL-layer tests."""
    catalog = Catalog()
    emp = catalog.create_table("emp", Schema.parse(
        [("id", "INT"), ("dept", "STRING"), ("salary", "FLOAT")]))
    emp.insert_rows([
        (1, "a", 100.0),
        (2, "a", 200.0),
        (3, "b", 50.0),
        (4, None, None),
        (5, "b", 150.0),
    ])
    dept = catalog.create_table("dept", Schema.parse(
        [("name", "STRING"), ("city", "STRING"), ("budget", "INT")]))
    dept.insert_rows([("a", "ams", 1000), ("b", "rot", 500),
                      ("c", "utr", 250)])
    return catalog


@pytest.fixture
def engine() -> DataCellEngine:
    """A fresh engine with one sensors stream and a rooms table."""
    eng = DataCellEngine()
    eng.execute("CREATE STREAM sensors (sid INT, temp FLOAT)")
    eng.execute("CREATE TABLE rooms (sid INT, room VARCHAR(16))")
    eng.execute("INSERT INTO rooms VALUES (0,'lab'), (1,'office'), "
                "(2,'hall')")
    return eng


def run_select(catalog: Catalog, sql: str):
    """Compile + run a one-time SELECT over a catalog; returns rows."""
    from repro.sql import compile_select
    from repro.sql.executor import ExecutionContext, PlanExecutor

    plan = compile_select(sql, catalog)
    return PlanExecutor(ExecutionContext(catalog)).execute(plan).to_rows()
