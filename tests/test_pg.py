"""Tests for the Postgres wire-protocol front end: v3 messages, the
session state machine (simple + extended query), the streaming dialect
(REGISTER/TAIL/SHOW), cancel, stats panes, and the serve CLI wiring.

``MiniPG`` is a from-scratch socket client speaking just enough of the
v3 protocol to exercise the server the way psql/pg8000 do — so the
suite runs with zero client-side dependencies. The pg8000 end-to-end
test at the bottom runs only when pg8000 is installed.
"""

import io
import socket
import struct
import threading
import time

import pytest

from repro.core.clock import WallClock
from repro.core.engine import DataCellEngine
from repro.net.client import DataCellClient
from repro.net.server import DataCellServer
from repro.pg import messages as msg
from repro.pg.server import PGWireServer
from repro.pg.session import classify, split_statements
from repro.storage import types as dt

I16 = struct.Struct("!h")
I32 = struct.Struct("!i")


def _wait_until(predicate, timeout_s=5.0, interval_s=0.01):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval_s)
    return predicate()


def _typed(t, payload=b""):
    return t + I32.pack(len(payload) + 4) + payload


class MiniPG:
    """A minimal v3 frontend: startup, simple Query, extended
    Parse/Bind/Describe/Execute/Sync, CancelRequest."""

    def __init__(self, host, port, user="tester", database="datacell",
                 timeout=10.0):
        self.sock = socket.create_connection((host, port),
                                             timeout=timeout)
        body = I32.pack(msg.PROTOCOL_3_0)
        for k, v in (("user", user), ("database", database)):
            body += k.encode() + b"\x00" + v.encode() + b"\x00"
        body += b"\x00"
        self.sock.sendall(I32.pack(len(body) + 4) + body)
        self.params = {}
        self.key = None
        for t, payload in self.read_until(b"Z"):
            if t == b"S":
                k, v = payload.split(b"\x00")[:2]
                self.params[k.decode()] = v.decode()
            elif t == b"K":
                self.key = struct.unpack("!ii", payload)

    # -- plumbing ------------------------------------------------------

    def _rx(self, n):
        buf = b""
        while len(buf) < n:
            chunk = self.sock.recv(n - len(buf))
            if not chunk:
                raise EOFError("server closed the connection")
            buf += chunk
        return buf

    def send(self, data):
        self.sock.sendall(data)

    def read_message(self):
        head = self._rx(5)
        (length,) = I32.unpack(head[1:])
        payload = self._rx(length - 4) if length > 4 else b""
        return head[0:1], payload

    def read_until(self, *stop):
        out = []
        while True:
            t, p = self.read_message()
            out.append((t, p))
            if t in stop:
                return out

    # -- protocol ------------------------------------------------------

    def query(self, sql):
        self.send(_typed(b"Q", sql.encode() + b"\x00"))
        return self.read_until(b"Z")

    def parse(self, sql, name=b""):
        self.send(_typed(
            b"P", name + b"\x00" + sql.encode() + b"\x00" + I16.pack(0)))

    def bind(self, portal=b"", statement=b"", result_formats=()):
        body = portal + b"\x00" + statement + b"\x00" \
            + I16.pack(0) + I16.pack(0) \
            + I16.pack(len(result_formats))
        for fmt in result_formats:
            body += I16.pack(fmt)
        self.send(_typed(b"B", body))

    def describe(self, kind=b"S", name=b""):
        self.send(_typed(b"D", kind + name + b"\x00"))

    def execute(self, portal=b"", max_rows=0):
        self.send(_typed(b"E", portal + b"\x00" + I32.pack(max_rows)))

    def sync(self):
        self.send(_typed(b"S"))
        return self.read_until(b"Z")

    def close(self):
        try:
            self.send(_typed(b"X"))
        except OSError:
            pass
        self.sock.close()


def cancel_request(host, port, key):
    """A second connection carrying only a CancelRequest."""
    with socket.create_connection((host, port), timeout=5) as sock:
        body = I32.pack(msg.CANCEL_REQUEST_CODE) \
            + I32.pack(key[0]) + I32.pack(key[1])
        sock.sendall(I32.pack(len(body) + 4) + body)


def data_rows(msgs, raw=False):
    """Decode DataRow messages to tuples (bytes when *raw*)."""
    out = []
    for t, p in msgs:
        if t != b"D":
            continue
        (n,) = I16.unpack_from(p, 0)
        off = 2
        row = []
        for _ in range(n):
            (ln,) = I32.unpack_from(p, off)
            off += 4
            if ln < 0:
                row.append(None)
            else:
                cell = p[off:off + ln]
                row.append(cell if raw else cell.decode())
                off += ln
        out.append(tuple(row))
    return out


def row_description(msgs):
    """Decode the RowDescription to [(name, oid, fmt)]."""
    for t, p in msgs:
        if t != b"T":
            continue
        (n,) = I16.unpack_from(p, 0)
        off = 2
        cols = []
        for _ in range(n):
            end = p.index(b"\x00", off)
            name = p[off:end].decode()
            off = end + 1
            _table, _attnum = struct.unpack_from("!ih", p, off)
            off += 6
            (oid,) = I32.unpack_from(p, off)
            off += 4
            _typlen, _typmod, fmt = struct.unpack_from("!hih", p, off)
            off += 8
            cols.append((name, oid, fmt))
        return cols
    return None


def errors_of(msgs):
    """[(sqlstate, message)] of every ErrorResponse."""
    out = []
    for t, p in msgs:
        if t != b"E":
            continue
        fields = {}
        off = 0
        while off < len(p) and p[off:off + 1] != b"\x00":
            code = p[off:off + 1]
            end = p.index(b"\x00", off + 1)
            fields[code] = p[off + 1:end].decode()
            off = end + 1
        out.append((fields.get(b"C"), fields.get(b"M")))
    return out


def tags_of(msgs):
    return [p.rstrip(b"\x00").decode() for t, p in msgs if t == b"C"]


# ---------------------------------------------------------------------
# message encoding (pure bytes)
# ---------------------------------------------------------------------


class TestMessages:
    def test_data_row_null_and_text_encodings(self):
        row = msg.data_row((1, None, 2.5, True, False, "x"))
        # 6 columns; NULL is length -1 with no payload
        assert row[0:1] == b"D"
        body = row[5:]
        assert I16.unpack_from(body, 0) == (6,)
        assert b"\xff\xff\xff\xff" in body          # the NULL cell
        assert b"t" in body and b"f" in body        # booleans
        assert b"2.5" in body

    def test_type_oids(self):
        assert msg.pg_type_of(dt.INT) == (20, 8)
        assert msg.pg_type_of(dt.FLOAT) == (701, 8)
        assert msg.pg_type_of(dt.STRING) == (25, -1)
        assert msg.pg_type_of(dt.BOOLEAN) == (16, 1)
        assert msg.pg_type_of(dt.TIMESTAMP) == (20, 8)

    def test_error_response_fields(self):
        err = msg.error_response("42601", "busted", hint="fix it")
        assert b"C42601\x00" in err
        assert b"Mbusted\x00" in err
        assert b"Hfix it\x00" in err
        assert err.endswith(b"\x00")

    def test_startup_payload_roundtrip(self):
        payload = b"user\x00alice\x00database\x00db\x00\x00"
        assert msg.parse_startup_payload(payload) == {
            "user": "alice", "database": "db"}

    def test_split_statements_quote_aware(self):
        assert split_statements("a; b") == ["a", "b"]
        assert split_statements("insert into s values ('x;y'); b") \
            == ["insert into s values ('x;y')", "b"]
        assert split_statements("  ;; ") == []

    def test_classify_dialect(self):
        cmd = classify("REGISTER CONTINUOUS q1 MODE delta AS "
                       "SELECT k FROM s")
        assert (cmd.kind, cmd.name, cmd.mode) == \
            ("register", "q1", "delta")
        assert "SELECT k FROM s" in cmd.query
        cmd = classify("TAIL q1 BATCHES 3 ROWS 10 TIMEOUT 500")
        assert (cmd.kind, cmd.name, cmd.batches, cmd.rows,
                cmd.timeout_ms) == ("tail", "q1", 3, 10, 500)
        assert classify("UNREGISTER CONTINUOUS QUERY q1").name == "q1"
        assert classify("begin transaction").kind == "noop"
        assert classify("SELECT 1 FROM s").kind == "sql"


# ---------------------------------------------------------------------
# server fixtures
# ---------------------------------------------------------------------


def _pg_engine():
    engine = DataCellEngine(clock=WallClock())
    engine.execute("CREATE STREAM s (k INT, v FLOAT, name STRING, "
                   "ok BOOLEAN)")
    engine.register_continuous("SELECT k, v FROM s WHERE v > 0.5",
                               name="q")
    return engine


@pytest.fixture
def pg_server():
    server = PGWireServer(_pg_engine(), drive_scheduler=True,
                          step_interval_s=0.001)
    server.start()
    yield server
    server.stop()
    server.engine.close()


# ---------------------------------------------------------------------
# simple query protocol
# ---------------------------------------------------------------------


class TestSimpleQuery:
    def test_startup_handshake(self, pg_server):
        client = MiniPG(pg_server.host, pg_server.port)
        assert client.params["server_encoding"] == "UTF8"
        assert client.params["integer_datetimes"] == "on"
        assert client.key is not None and client.key[1] > 0
        client.close()

    def test_ddl_insert_select_roundtrip(self, pg_server):
        client = MiniPG(pg_server.host, pg_server.port)
        assert tags_of(client.query(
            "CREATE STREAM t2 (a INT, b STRING)")) == ["CREATE STREAM"]
        assert tags_of(client.query(
            "INSERT INTO t2 VALUES (1, 'x'), (2, NULL)")) \
            == ["INSERT 0 2"]
        msgs = client.query("SELECT a, b FROM t2")
        assert row_description(msgs) == [("a", 20, 0), ("b", 25, 0)]
        assert data_rows(msgs) == [("1", "x"), ("2", None)]
        assert tags_of(msgs) == ["SELECT 2"]
        client.close()

    def test_type_oids_and_text_format(self, pg_server):
        # a private stream: no standing query consumes it, so the
        # inserted tuples are still in the basket for the SELECT
        client = MiniPG(pg_server.host, pg_server.port)
        client.query("CREATE STREAM ty (k INT, v FLOAT, name STRING, "
                     "ok BOOLEAN)")
        client.query("INSERT INTO ty VALUES (7, 1.25, 'x', TRUE)")
        msgs = client.query("SELECT k, v, name, ok FROM ty")
        assert row_description(msgs) == [
            ("k", 20, 0), ("v", 701, 0), ("name", 25, 0),
            ("ok", 16, 0)]
        assert data_rows(msgs) == [("7", "1.25", "x", "t")]
        client.close()

    def test_multi_statement_query(self, pg_server):
        client = MiniPG(pg_server.host, pg_server.port)
        msgs = client.query("CREATE STREAM m1 (a INT); "
                            "INSERT INTO m1 VALUES (5); "
                            "SELECT a FROM m1")
        assert tags_of(msgs) == ["CREATE STREAM", "INSERT 0 1",
                                 "SELECT 1"]
        client.close()

    def test_empty_query(self, pg_server):
        client = MiniPG(pg_server.host, pg_server.port)
        msgs = client.query("   ")
        assert [t for t, _ in msgs] == [b"I", b"Z"]
        client.close()

    def test_errors_map_to_sqlstates(self, pg_server):
        client = MiniPG(pg_server.host, pg_server.port)
        cases = [
            ("SELECT k FROM missing", "42P01"),
            ("SELEC k FROM s", "42601"),
            ("SELECT nope FROM s", "42703"),
            ("TAIL missing BATCHES 1", "55000"),
        ]
        for sql, state in cases:
            msgs = client.query(sql)
            assert [e[0] for e in errors_of(msgs)] == [state], sql
            assert msgs[-1][0] == b"Z"  # still ready after the error
        client.close()

    def test_error_aborts_statement_batch(self, pg_server):
        client = MiniPG(pg_server.host, pg_server.port)
        msgs = client.query("CREATE STREAM ab1 (a INT); "
                            "SELECT a FROM missing; "
                            "CREATE STREAM ab2 (a INT)")
        assert tags_of(msgs) == ["CREATE STREAM"]
        assert len(errors_of(msgs)) == 1
        # the statement after the error did not run
        streams = {s.name for s in
                   pg_server.engine.catalog.streams()}
        assert "ab1" in streams and "ab2" not in streams
        client.close()

    def test_ssl_request_negotiated_away(self, pg_server):
        sock = socket.create_connection(
            (pg_server.host, pg_server.port), timeout=5)
        sock.sendall(I32.pack(8) + I32.pack(msg.SSL_REQUEST_CODE))
        assert sock.recv(1) == b"N"
        sock.close()


# ---------------------------------------------------------------------
# streaming dialect
# ---------------------------------------------------------------------


class TestDialect:
    def test_register_show_unregister(self, pg_server):
        client = MiniPG(pg_server.host, pg_server.port)
        msgs = client.query("REGISTER CONTINUOUS q2 AS "
                            "SELECT k FROM s WHERE k > 0")
        assert tags_of(msgs) == ["REGISTER CONTINUOUS"]
        assert "q2" in [q.name for q in pg_server.engine.queries()]

        msgs = client.query("SHOW QUERIES")
        names = [r[0] for r in data_rows(msgs)]
        assert set(names) == {"q", "q2"}

        msgs = client.query("SHOW STREAMS")
        rows = data_rows(msgs)
        assert ("s" in [r[0] for r in rows])
        schema_of = {r[0]: r[1] for r in rows}
        assert schema_of["s"].startswith("k INT, v FLOAT")

        msgs = client.query("UNREGISTER CONTINUOUS q2")
        assert tags_of(msgs) == ["UNREGISTER CONTINUOUS"]
        assert "q2" not in [q.name for q in pg_server.engine.queries()]
        client.close()

    def test_noops_keep_drivers_happy(self, pg_server):
        client = MiniPG(pg_server.host, pg_server.port)
        assert tags_of(client.query("BEGIN")) == ["BEGIN"]
        assert tags_of(client.query("COMMIT")) == ["COMMIT"]
        assert tags_of(client.query(
            "SET client_encoding TO 'UTF8'")) == ["SET"]
        client.close()

    def test_tail_streams_live_batches(self, pg_server):
        engine = pg_server.engine
        result = {}

        def tail():
            client = MiniPG(pg_server.host, pg_server.port)
            msgs = client.query("TAIL q BATCHES 2 TIMEOUT 8000")
            result["desc"] = row_description(msgs)
            result["rows"] = data_rows(msgs)
            result["tags"] = tags_of(msgs)
            client.close()

        thread = threading.Thread(target=tail)
        thread.start()
        assert _wait_until(
            lambda: pg_server.pg_stats()["tails"] == 1)
        engine.feed("s", [(1, 1.5, "a", True)])
        assert _wait_until(lambda: engine.results("q").rows())
        engine.feed("s", [(2, 2.5, "b", False)])
        thread.join(10)
        assert not thread.is_alive()
        assert result["desc"] == [("k", 20, 0), ("v", 701, 0)]
        assert result["rows"] == [("1", "1.5"), ("2", "2.5")]
        assert result["tags"] == ["TAIL 2"]

    def test_tail_timeout_completes_empty(self, pg_server):
        client = MiniPG(pg_server.host, pg_server.port)
        start = time.monotonic()
        msgs = client.query("TAIL q TIMEOUT 300")
        assert tags_of(msgs) == ["TAIL 0"]
        assert time.monotonic() - start < 5.0
        client.close()

    def test_tail_rows_byte_equal_to_framed_subscriber(self):
        """The acceptance bar: a psql tail and a framed-client
        subscriber see byte-identical row text for the same firings."""
        engine = _pg_engine()
        framed = DataCellServer(engine, step_interval_s=0.001)
        framed.start()
        pg = PGWireServer(engine, drive_scheduler=False,
                          io_loop=framed.io)
        pg.start()
        try:
            sub = DataCellClient(port=framed.port)
            sub.subscribe("q")
            result = {}

            def tail():
                client = MiniPG(pg.host, pg.port)
                msgs = client.query("TAIL q BATCHES 2 TIMEOUT 8000")
                result["raw"] = data_rows(msgs, raw=True)
                client.close()

            thread = threading.Thread(target=tail)
            thread.start()
            assert _wait_until(lambda: pg.pg_stats()["tails"] == 1)
            engine.feed("s", [(1, 1.5, "a", True),
                              (2, 0.75, None, False)])
            assert _wait_until(lambda: engine.results("q").rows())
            engine.feed("s", [(3, 2.5, "c", True)])
            thread.join(10)
            batches = sub.results(max_batches=2, timeout=5.0)
            framed_rows = [row for b in batches for row in b.rows]
            expected = [tuple(msg.text_of(v) for v in row)
                        for row in framed_rows]
            assert result["raw"] == expected
            assert len(result["raw"]) == 3
            sub.close()
        finally:
            pg.stop()
            framed.stop()
            engine.close()


# ---------------------------------------------------------------------
# extended query protocol (the pg8000 path)
# ---------------------------------------------------------------------


class TestExtendedQuery:
    def test_parse_describe_bind_execute(self, pg_server):
        client = MiniPG(pg_server.host, pg_server.port)
        client.query("CREATE STREAM e1 (k INT, v FLOAT); "
                     "INSERT INTO e1 VALUES (5, 2.0)")
        # round 1: Parse + Describe(statement) + Sync (pg8000 shape)
        client.parse("SELECT k, v FROM e1")
        client.describe(b"S")
        msgs = client.sync()
        assert [t for t, _ in msgs] == [b"1", b"t", b"T", b"Z"]
        assert row_description(msgs) == [("k", 20, 0), ("v", 701, 0)]
        # round 2: Bind + Execute + Sync
        client.bind()
        client.execute()
        msgs = client.sync()
        assert [t for t, _ in msgs] == [b"2", b"D", b"C", b"Z"]
        assert data_rows(msgs) == [("5", "2.0")]
        client.close()

    def test_describe_nondata_statement_is_nodata(self, pg_server):
        client = MiniPG(pg_server.host, pg_server.port)
        client.parse("INSERT INTO s VALUES (6, 3.0, 'f', FALSE)")
        client.describe(b"S")
        msgs = client.sync()
        assert [t for t, _ in msgs] == [b"1", b"t", b"n", b"Z"]
        client.bind()
        client.execute()
        msgs = client.sync()
        assert tags_of(msgs) == ["INSERT 0 1"]
        client.close()

    def test_binary_result_format_rejected(self, pg_server):
        client = MiniPG(pg_server.host, pg_server.port)
        client.parse("SELECT k FROM s")
        client.bind(result_formats=(1,))
        msgs = client.sync()
        assert [e[0] for e in errors_of(msgs)] == ["0A000"]
        client.close()

    def test_error_recovery_skips_until_sync(self, pg_server):
        client = MiniPG(pg_server.host, pg_server.port)
        client.parse("SELEC oops")      # syntax error at Parse
        client.describe(b"S")           # must be skipped
        client.execute()                # must be skipped
        msgs = client.sync()
        assert [e[0] for e in errors_of(msgs)] == ["42601"]
        assert [t for t, _ in msgs] == [b"E", b"Z"]
        # service resumes after Sync
        client.parse("SELECT k FROM s")
        client.bind()
        client.execute()
        msgs = client.sync()
        assert tags_of(msgs)[0].startswith("SELECT")
        client.close()

    def test_unknown_portal_and_statement(self, pg_server):
        client = MiniPG(pg_server.host, pg_server.port)
        client.describe(b"S", b"nope")
        msgs = client.sync()
        assert [e[0] for e in errors_of(msgs)] == ["26000"]
        client.execute(b"nope")
        msgs = client.sync()
        assert [e[0] for e in errors_of(msgs)] == ["34000"]
        client.close()


# ---------------------------------------------------------------------
# cancel
# ---------------------------------------------------------------------


class TestCancel:
    def test_cancel_request_interrupts_tail(self, pg_server):
        result = {}
        keys = {}
        ready = threading.Event()

        def tail():
            client = MiniPG(pg_server.host, pg_server.port)
            keys["key"] = client.key
            ready.set()
            msgs = client.query("TAIL q")  # unbounded
            result["errors"] = errors_of(msgs)
            client.close()

        thread = threading.Thread(target=tail)
        thread.start()
        assert ready.wait(5)
        assert _wait_until(
            lambda: pg_server.pg_stats()["tails"] == 1)
        cancel_request(pg_server.host, pg_server.port, keys["key"])
        thread.join(10)
        assert not thread.is_alive()
        assert [e[0] for e in result["errors"]] == ["57014"]
        assert pg_server.pg_stats()["cancels"] == 1

    def test_unknown_cancel_key_ignored(self, pg_server):
        cancel_request(pg_server.host, pg_server.port, (999, 999))
        client = MiniPG(pg_server.host, pg_server.port)
        assert tags_of(client.query("BEGIN")) == ["BEGIN"]
        client.close()


# ---------------------------------------------------------------------
# stats / monitor / serve CLI
# ---------------------------------------------------------------------


class TestStatsAndCLI:
    def test_pg_stats_in_network_stats(self, pg_server):
        client = MiniPG(pg_server.host, pg_server.port)
        client.query("SELECT k FROM s")
        stats = pg_server.engine.network_stats()
        assert stats["pg"]["connections_total"] == 1
        assert stats["pg"]["queries"] == 1
        assert stats["pg"]["sessions"][0]["user"] == "tester"
        client.close()

    def test_monitor_pg_pane(self, pg_server):
        client = MiniPG(pg_server.host, pg_server.port)
        client.query("SELECT k FROM s")
        pane = pg_server.engine.monitor.pg()
        assert "postgres front end [running]" in pane
        assert "user=tester" in pane
        client.close()

    def test_monitor_pg_pane_unattached(self):
        engine = DataCellEngine()
        assert "not attached" in engine.monitor.pg()
        engine.close()

    def test_session_teardown_folds_into_stats(self, pg_server):
        client = MiniPG(pg_server.host, pg_server.port)
        client.query("SELECT k FROM s")
        client.close()
        assert _wait_until(
            lambda: not pg_server.pg_stats()["sessions"])
        stats = pg_server.pg_stats()
        assert stats["connections_total"] == 1
        # counters from the closed session are folded into aggregates
        assert stats["queries"] == 1

    def test_serve_cli_with_pg_port(self, tmp_path):
        from repro.net.cli import main as net_main

        script = tmp_path / "init.sql"
        script.write_text("CREATE STREAM s (k INT, v FLOAT);\n"
                          ".register q SELECT k FROM s;\n")
        port_file = tmp_path / "port"
        pg_port_file = tmp_path / "pg_port"
        out = io.StringIO()
        thread = threading.Thread(target=net_main, args=(
            ["serve", "--port", "0", "--pg-port", "0",
             "--script", str(script),
             "--port-file", str(port_file),
             "--pg-port-file", str(pg_port_file),
             "--duration", "3.0"], out))
        thread.start()
        try:
            assert _wait_until(
                lambda: pg_port_file.exists()
                and pg_port_file.read_text(), timeout_s=10)
            pg_port = int(pg_port_file.read_text())
            client = MiniPG("127.0.0.1", pg_port)
            msgs = client.query("SHOW STREAMS")
            assert [r[0] for r in data_rows(msgs)] == ["s"]
            msgs = client.query("INSERT INTO s VALUES (1, 2.0)")
            assert tags_of(msgs) == ["INSERT 0 1"]
            client.close()
        finally:
            thread.join(15)
        assert not thread.is_alive()
        assert "postgres front end listening" in out.getvalue()
        assert "queries=2" in out.getvalue()


# ---------------------------------------------------------------------
# pg8000 end-to-end (runs only when pg8000 is installed)
# ---------------------------------------------------------------------


class TestPG8000:
    def test_pg8000_end_to_end(self):
        pg8000 = pytest.importorskip(
            "pg8000.dbapi",
            reason="pg8000 not installed (pip install pg8000 or the "
                   "[test] extra)")
        engine = DataCellEngine(clock=WallClock())
        with PGWireServer(engine, drive_scheduler=True,
                          step_interval_s=0.001) as server:
            conn = pg8000.connect(user="tester", host=server.host,
                                  port=server.port, database="dc")
            try:
                conn.autocommit = True
            except (AttributeError, pg8000.InterfaceError):
                pass
            cur = conn.cursor()
            cur.execute("CREATE STREAM s8 (k INT, v FLOAT, "
                        "name STRING)")
            cur.execute("INSERT INTO s8 VALUES (1, 0.5, 'a'), "
                        "(2, 1.5, NULL)")
            cur.execute("SELECT k, v, name FROM s8")
            assert [list(r) for r in cur.fetchall()] \
                == [[1, 0.5, "a"], [2, 1.5, None]]
            cur.execute("REGISTER CONTINUOUS q8 AS "
                        "SELECT k, v FROM s8 WHERE v > 1.0")

            feeder_stop = threading.Event()

            def feed():
                k = 10
                while not feeder_stop.is_set():
                    engine.feed("s8", [(k, 2.0 + k, "z")])
                    k += 1
                    time.sleep(0.05)

            feeder = threading.Thread(target=feed)
            feeder.start()
            try:
                cur.execute("TAIL q8 BATCHES 2 TIMEOUT 10000")
                rows = cur.fetchall()
            finally:
                feeder_stop.set()
                feeder.join(5)
            assert len(rows) >= 2
            assert all(float(v) > 1.0 for _, v in rows)
            conn.close()
        engine.close()
