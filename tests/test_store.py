"""The durable stream log (:mod:`repro.store`): segment codecs,
torn-tail truncation, group commit and fault injection at the log
layer; retention (truncate-by-age/bytes, clamped reads, the durable
floor) and the paged-window binder serving log-resident history as
zero-copy views; checkpoint/recovery equivalence at the engine layer
(unit cases per execution mode plus a hypothesis
crash-at-arbitrary-point sweep); and the network replay path —
subscribe-from-offset splicing history into live delivery with no gap
and no duplicate, acked-offset resume, lag-to-floor after retention,
and the ``repro tail`` reconnect loop."""

import io
import os
import time

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.basket import Basket
from repro.core.clock import SimulatedClock, WallClock
from repro.core.engine import DataCellEngine
from repro.core.receptor import SocketReceptor
from repro.errors import (InjectedCrash, ReplayGap, StoreError,
                          StreamError)
from repro.storage import Schema
from repro.storage import types as dt
from repro.store import (ARRIVAL_COLUMN, CRASH_ENV, FaultInjector,
                         PagedWindowBinder, StreamLog)
from repro.store import segment as seg

SCHEMA = Schema.parse([("k", "INT"), ("v", "FLOAT"), ("tag", "STRING")])
NUM_SCHEMA = Schema.parse([("k", "INT"), ("v", "FLOAT")])


def batch(lo, n):
    ks = np.arange(lo, lo + n, dtype=np.int64)
    vs = ks.astype(np.float64) * 0.5
    tags = np.array([f"t{i}" if i % 3 else None
                     for i in range(lo, lo + n)], dtype=object)
    ts = np.full(n, 10 * lo, dtype=np.int64)
    return [ks, vs, tags], ts


# ---------------------------------------------------------------------------
# segment codecs
# ---------------------------------------------------------------------------


class TestSegmentCodec:
    def test_numeric_roundtrip(self, tmp_path):
        values = np.array([1, -2, 3], dtype=np.int64)
        path = tmp_path / "c.int"
        path.write_bytes(seg.encode_values(dt.INT, values))
        rows, _ = seg.complete_rows(dt.INT, str(path))
        assert rows == 3
        out = seg.read_rows(dt.INT, str(path), 1, 2)
        assert out.tolist() == [-2, 3]
        assert out.flags.owndata and out.flags.writeable

    def test_string_roundtrip_with_nil(self, tmp_path):
        values = np.array(["a", None, "", "héllo"], dtype=object)
        path = tmp_path / "c.str"
        path.write_bytes(seg.encode_values(dt.STRING, values))
        rows, clean = seg.complete_rows(dt.STRING, str(path))
        assert rows == 4 and clean == path.stat().st_size
        out = seg.read_rows(dt.STRING, str(path), 0, 4)
        assert out.tolist() == ["a", None, "", "héllo"]

    def test_string_scan_stops_at_partial_frame(self):
        buf = seg.encode_values(
            dt.STRING, np.array(["ab", "cdef"], dtype=object))
        rows, clean = seg.scan_strings(buf[:-2], len(buf))
        assert rows == 1
        assert clean == 4 + 2  # length prefix + "ab"

    def test_complete_rows_ignores_trailing_garbage(self, tmp_path):
        values = np.arange(4, dtype=np.int64)
        path = tmp_path / "c.int"
        path.write_bytes(seg.encode_values(dt.INT, values) + b"\x01\x02")
        rows, clean = seg.complete_rows(dt.INT, str(path))
        assert rows == 4 and clean == 32

    def test_missing_file_is_empty(self, tmp_path):
        assert seg.complete_rows(dt.INT, str(tmp_path / "nope")) == (0, 0)

    def test_fault_injector_trips_once(self, tmp_path):
        fault = FaultInjector(10)
        assert fault.take(6) == 6 and not fault.tripped
        path = tmp_path / "partial"
        with open(path, "wb") as f:
            with pytest.raises(InjectedCrash):
                seg.faulty_write(f, b"x" * 8, fault)
        assert fault.tripped
        assert path.stat().st_size == 4  # partial write: budget remainder

    def test_fault_injector_from_env(self, monkeypatch):
        monkeypatch.delenv(CRASH_ENV, raising=False)
        assert FaultInjector.from_env() is None
        monkeypatch.setenv(CRASH_ENV, "123")
        fault = FaultInjector.from_env()
        assert fault is not None and fault.budget_bytes == 123


# ---------------------------------------------------------------------------
# the stream log: append/read, rolling, truncation, recovery
# ---------------------------------------------------------------------------


class TestStreamLog:
    def make(self, tmp_path, inline=True, **kw):
        kw.setdefault("segment_rows", 8)
        kw.setdefault("durability", "fsync")
        return StreamLog(str(tmp_path / "s"), "s", SCHEMA,
                         inline=inline, **kw)

    def test_roundtrip_and_offsets(self, tmp_path):
        log = self.make(tmp_path)
        cols, ts = batch(0, 5)
        assert log.append(cols, ts) == (0, 5)
        cols2, ts2 = batch(5, 4)
        assert log.append(cols2, ts2) == (5, 9)
        assert log.next_offset == 9 and log.durable_offset == 9
        out, arrival = log.read(3, 7)
        assert out["k"].tolist() == [3, 4, 5, 6]
        assert out["tag"].tolist() == [None, "t4", "t5", None]
        assert arrival.tolist() == [0, 0, 50, 50]
        log.close()

    def test_segments_roll_and_seal(self, tmp_path):
        log = self.make(tmp_path)
        for i in range(3):
            cols, ts = batch(i * 8, 8)
            log.append(cols, ts)
        stats = log.stats()
        assert stats["segments"] == 4  # 3 sealed + fresh tail
        log.close()
        # clean reopen: everything durable, nothing torn
        log2 = self.make(tmp_path)
        assert log2.recovered and log2.torn_rows == 0
        assert log2.next_offset == 24
        out, _ = log2.read(0, 24)
        assert out["k"].tolist() == list(range(24))
        log2.close()

    def test_group_commit_flush_barrier(self, tmp_path):
        log = self.make(tmp_path, inline=False)
        for i in range(4):
            cols, ts = batch(i * 3, 3)
            log.append(cols, ts)
        assert log.flush() == 12
        assert log.durable_offset == 12
        assert log.stats()["groups"] >= 1
        log.close()

    def test_torn_tail_truncates_to_min_complete_rows(self, tmp_path):
        log = self.make(tmp_path)
        cols, ts = batch(0, 5)
        log.append(cols, ts)
        log.close()
        # chop the float column mid-row: 5 rows -> 3 complete + 4 bytes
        vpath = os.path.join(str(tmp_path / "s"), f"{0:012d}.v")
        os.truncate(vpath, 3 * 8 + 4)
        log2 = self.make(tmp_path)
        assert log2.recovered
        assert log2.next_offset == 3
        assert log2.torn_rows == 2
        out, _ = log2.read(0, 3)
        assert out["k"].tolist() == [0, 1, 2]
        # appending after recovery continues from the truncation point
        cols2, ts2 = batch(3, 2)
        assert log2.append(cols2, ts2) == (3, 5)
        log2.close()

    def test_torn_string_column_governs(self, tmp_path):
        log = self.make(tmp_path)
        cols, ts = batch(0, 4)
        log.append(cols, ts)
        log.close()
        tpath = os.path.join(str(tmp_path / "s"), f"{0:012d}.tag")
        os.truncate(tpath, os.path.getsize(tpath) - 1)
        log2 = self.make(tmp_path)
        assert log2.next_offset == 3 and log2.torn_rows == 1
        log2.close()

    def test_injected_crash_then_recovery(self, tmp_path):
        fault = FaultInjector(300)
        log = self.make(tmp_path, fault=fault)
        with pytest.raises(InjectedCrash):
            for i in range(100):
                cols, ts = batch(i * 4, 4)
                log.append(cols, ts)
        # recovery sees a prefix of whole rows, nothing invented
        log2 = self.make(tmp_path)
        n = log2.next_offset
        assert 0 <= n < 400
        out, _ = log2.read(0, n)
        assert out["k"].tolist() == list(range(n))
        log2.close()

    def test_async_writer_failure_surfaces_on_append(self, tmp_path):
        fault = FaultInjector(64)
        log = self.make(tmp_path, inline=False, fault=fault)
        cols, ts = batch(0, 8)
        log.append(cols, ts)
        with pytest.raises(StoreError):
            log.flush(timeout=5)
        with pytest.raises(StoreError):
            log.append(cols, ts)
        log.close()

    def test_truncate_to(self, tmp_path):
        log = self.make(tmp_path)
        for i in range(3):
            cols, ts = batch(i * 8, 8)
            log.append(cols, ts)
        assert log.truncate_to(10) == 14
        assert log.next_offset == 10 == log.durable_offset
        out, _ = log.read(0, 10)
        assert out["k"].tolist() == list(range(10))
        cols, ts = batch(10, 2)
        assert log.append(cols, ts) == (10, 12)
        log.close()

    def test_schema_drift_rejected(self, tmp_path):
        log = self.make(tmp_path)
        log.close()
        other = Schema.parse([("k", "INT"), ("v", "INT"),
                              ("tag", "STRING")])
        with pytest.raises(StoreError, match="columns"):
            StreamLog(str(tmp_path / "s"), "s", other, inline=True)

    def test_reserved_arrival_column_rejected(self, tmp_path):
        bad = Schema.parse([(ARRIVAL_COLUMN, "INT")])
        with pytest.raises(StoreError, match="reserved"):
            StreamLog(str(tmp_path / "x"), "x", bad, inline=True)


# ---------------------------------------------------------------------------
# basket <-> log integration
# ---------------------------------------------------------------------------


class TestBasketLog:
    def test_appends_mirror_to_log(self, tmp_path):
        basket = Basket("s", NUM_SCHEMA)
        log = StreamLog(str(tmp_path / "s"), "s", NUM_SCHEMA,
                        inline=True)
        basket.attach_log(log)
        basket.append_rows([(1, 1.0), (2, 2.0)], now=5)
        assert log.next_offset == basket.next_oid == 2
        out, arrival = log.read(0, 2)
        assert out["k"].tolist() == [1, 2]
        assert arrival.tolist() == [5, 5]
        log.close()

    def test_attach_requires_aligned_offsets(self, tmp_path):
        basket = Basket("s", NUM_SCHEMA)
        basket.append_rows([(1, 1.0)], now=0)
        log = StreamLog(str(tmp_path / "s"), "s", NUM_SCHEMA,
                        inline=True)
        with pytest.raises(StreamError, match="offset"):
            basket.attach_log(log)
        log.close()

    def test_vacuum_floor_clamps_to_durable(self, tmp_path):
        basket = Basket("s", NUM_SCHEMA)

        class StuckLog:
            next_offset = 0
            durable_offset = 0

            def append(self, columns, arrival):
                lo = self.next_offset
                self.next_offset += len(arrival)
                return lo, self.next_offset  # never durable

        basket.attach_log(StuckLog())
        basket.append_rows([(i, float(i)) for i in range(10)], now=0)
        sub = basket.subscribe("q")
        sub.read_upto = sub.released_upto = 10
        assert basket.vacuum() == 0  # nothing durable -> nothing drops
        assert basket.first_oid == 0

    def test_receptor_sheds_on_log_backlog(self):
        basket = Basket("s", NUM_SCHEMA)

        class DrowningLog:
            next_offset = 0
            durable_offset = 0

            def append(self, columns, arrival):
                lo = self.next_offset
                self.next_offset += len(arrival)
                return lo, self.next_offset

            def backlog_batches(self):
                return 99

        basket.attach_log(DrowningLog())
        receptor = SocketReceptor("r", basket, policy="shed",
                                  log_backlog_limit=4)
        assert receptor.offer([(1, 1.0)]) == 0
        assert receptor.total_shed == 1

    def test_rehydrate_restores_vacuumed_prefix(self, tmp_path):
        basket = Basket("s", NUM_SCHEMA)
        log = StreamLog(str(tmp_path / "s"), "s", NUM_SCHEMA,
                        inline=True)
        basket.attach_log(log)
        basket.append_rows([(i, float(i)) for i in range(10)], now=0)
        sub = basket.subscribe("q")
        sub.read_upto = sub.released_upto = 6
        assert basket.vacuum() == 6
        assert basket.first_oid == 6
        cols, arrival = log.read(0, 6)
        assert basket.rehydrate(0, cols, arrival) == 6
        assert basket.first_oid == 0
        assert basket.relation(0, 10).column("k").values.tolist() \
            == list(range(10))
        log.close()


# ---------------------------------------------------------------------------
# engine: checkpoint, recovery, replay registration
# ---------------------------------------------------------------------------


ROWS = [[[i, float(i)], [i + 100, float(i) * 2]] for i in range(12)]
QUERY = ("SELECT sid, sum(temp) FROM s [RANGE 4 SLIDE 2] "
         "GROUP BY sid")


def durable_engine(data_dir, **kw):
    kw.setdefault("durability", "fsync")
    kw.setdefault("log_inline", True)
    return DataCellEngine(clock=SimulatedClock(), data_dir=str(data_dir),
                          **kw)


def drive(engine, batches):
    for rows in batches:
        engine.feed("s", rows)
        engine.step(advance_ms=10)


def drain(engine, steps=12):
    for _ in range(steps):
        engine.step(advance_ms=10)


def emissions(engine, name="q"):
    return [tuple(map(tuple, sorted(rel.to_rows())))
            for _t, rel in engine.results(name).batches]


def serial_run(mode, query=QUERY, rows=ROWS):
    engine = DataCellEngine(clock=SimulatedClock())
    engine.execute("CREATE STREAM s (sid INT, temp FLOAT)")
    engine.register_continuous(query, name="q", mode=mode)
    drive(engine, rows)
    drain(engine)
    out = emissions(engine)
    engine.close()
    return out


class TestEngineRecovery:
    @pytest.mark.parametrize("mode", ["reeval", "incremental", "delta"])
    def test_crash_equivalence_at_checkpoint(self, tmp_path, mode):
        serial = serial_run(mode)
        engine = durable_engine(tmp_path)
        engine.execute("CREATE STREAM s (sid INT, temp FLOAT)")
        engine.register_continuous(QUERY, name="q", mode=mode)
        drive(engine, ROWS[:7])
        engine.checkpoint()
        pre = emissions(engine)
        saved_now = engine.now()
        del engine  # crash: no close()

        recovered = durable_engine(tmp_path)
        assert recovered.recovered
        assert recovered.now() == saved_now
        assert [q.name for q in recovered.queries()] == ["q"]
        assert recovered.continuous_query("q").mode == mode
        drive(recovered, ROWS[7:])
        drain(recovered)
        post = emissions(recovered)
        recovered.close()
        assert pre == serial[:len(pre)]
        assert post == serial[len(serial) - len(post):]
        assert len(pre) + len(post) >= len(serial)

    @pytest.mark.parametrize("mode", ["reeval", "incremental", "delta"])
    def test_uncheckpointed_tail_refires(self, tmp_path, mode):
        """A crash after un-checkpointed activity: the log has the
        admitted tuples, the cursors are older — recovery re-fires the
        tail and the refired emissions are byte-identical (overlap with
        pre-crash deliveries allowed, divergence not)."""
        serial = serial_run(mode)
        engine = durable_engine(tmp_path)
        engine.execute("CREATE STREAM s (sid INT, temp FLOAT)")
        engine.register_continuous(QUERY, name="q", mode=mode)
        drive(engine, ROWS[:4])
        engine.checkpoint()
        drive(engine, ROWS[4:8])  # admitted + logged, not checkpointed
        pre = emissions(engine)
        del engine

        recovered = durable_engine(tmp_path)
        fed = sum(len(b) for b in ROWS[:8])
        assert recovered.basket("s").next_oid == fed  # log kept it all
        drive(recovered, ROWS[8:])
        drain(recovered, steps=16)
        post = emissions(recovered)
        recovered.close()
        assert pre == serial[:len(pre)]
        assert post == serial[len(serial) - len(post):]
        assert len(pre) + len(post) >= len(serial)

    def test_recovery_without_any_checkpoint_state(self, tmp_path):
        """DDL auto-checkpoints, so even a crash right after stream
        creation leaves a recoverable definition."""
        engine = durable_engine(tmp_path)
        engine.execute("CREATE STREAM s (sid INT, temp FLOAT)")
        engine.feed("s", [[1, 1.0]])
        del engine
        recovered = durable_engine(tmp_path)
        assert recovered.recovered
        assert recovered.catalog.is_stream("s")
        recovered.close()

    def test_chained_output_stream_truncates_to_checkpoint(
            self, tmp_path):
        rows = [[[i % 3, float(i)]] for i in range(30)]

        def build(engine):
            engine.execute("CREATE STREAM s (sid INT, temp FLOAT)")
            engine.register_continuous(
                "SELECT sid, sum(temp) AS sv FROM s [RANGE 6 SLIDE 3] "
                "GROUP BY sid", name="stage1", mode="reeval",
                output_stream="mid")
            engine.register_continuous(
                "SELECT max(sv) AS m FROM mid [RANGE 3 SLIDE 3]",
                name="stage2", mode="reeval")

        engine = DataCellEngine(clock=SimulatedClock())
        build(engine)
        drive(engine, rows)
        drain(engine)
        serial1 = emissions(engine, "stage1")
        serial2 = emissions(engine, "stage2")
        engine.close()

        engine = durable_engine(tmp_path)
        build(engine)
        drive(engine, rows[:17])
        engine.checkpoint()
        drive(engine, rows[17:22])  # un-checkpointed output appends
        pre1, pre2 = emissions(engine, "stage1"), \
            emissions(engine, "stage2")
        del engine

        recovered = durable_engine(tmp_path)
        drive(recovered, rows[22:])
        drain(recovered)
        post1 = emissions(recovered, "stage1")
        post2 = emissions(recovered, "stage2")
        recovered.close()
        for serial, pre, post in ((serial1, pre1, post1),
                                  (serial2, pre2, post2)):
            assert pre == serial[:len(pre)]
            assert post == serial[len(serial) - len(post):]
            assert len(pre) + len(post) >= len(serial)

    def test_register_from_start_replays_vacuumed_history(
            self, tmp_path):
        engine = durable_engine(tmp_path)
        engine.execute("CREATE STREAM s (sid INT, temp FLOAT)")
        engine.register_continuous(QUERY, name="q", mode="reeval")
        drive(engine, ROWS)
        drain(engine)
        expected = emissions(engine)
        assert engine.basket("s").first_oid > 0  # vacuum happened
        late = engine.register_continuous(
            QUERY, name="late", mode="reeval", from_start=True)
        drain(engine, steps=20)
        assert emissions(engine, "late") == expected
        assert late.streams == ["s"]
        engine.close()

    def test_read_stream_range_splices_log_and_memory(self, tmp_path):
        engine = durable_engine(tmp_path)
        engine.execute("CREATE STREAM s (sid INT, temp FLOAT)")
        engine.register_continuous(QUERY, name="q", mode="reeval")
        drive(engine, ROWS)
        drain(engine)
        basket = engine.basket("s")
        assert basket.first_oid > 0
        parts = engine.read_stream_range("s", 0, basket.next_oid)
        prev = 0
        rows = []
        for lo, hi, rel in parts:
            assert lo == prev
            prev = hi
            rows.extend(rel.to_rows())
        assert prev == basket.next_oid
        flat = [r for b in ROWS for r in b]
        assert [list(r) for r in rows] == flat
        engine.close()

    def test_catalog_tables_survive_restart(self, tmp_path):
        engine = durable_engine(tmp_path)
        engine.execute("CREATE STREAM s (sid INT, temp FLOAT)")
        engine.execute("CREATE TABLE rooms (sid INT, room STRING)")
        engine.execute("INSERT INTO rooms VALUES (1, 'lab')")
        engine.checkpoint()
        del engine
        recovered = durable_engine(tmp_path)
        assert recovered.query("SELECT room FROM rooms").to_rows() \
            == [("lab",)]
        recovered.close()

    def test_log_stats_and_monitor_pane(self, tmp_path):
        engine = durable_engine(tmp_path)
        engine.execute("CREATE STREAM s (sid INT, temp FLOAT)")
        engine.feed("s", [[1, 1.0]])
        engine.checkpoint()
        stats = engine.log_stats()
        assert stats["durability"] == "fsync"
        assert stats["streams"]["s"]["next_offset"] == 1
        assert stats["checkpoints"] >= 1
        assert "network" not in engine.monitor.log()
        assert "s: next=1" in engine.monitor.log()
        assert "log" in engine.network_stats()
        engine.close()
        plain = DataCellEngine(clock=SimulatedClock())
        assert "off" in plain.monitor.log()
        plain.close()

    def test_durability_off_writes_nothing(self, tmp_path):
        engine = DataCellEngine(clock=SimulatedClock(),
                                data_dir=str(tmp_path),
                                durability="off")
        engine.execute("CREATE STREAM s (sid INT, temp FLOAT)")
        engine.feed("s", [[1, 1.0]])
        engine.close()
        assert not os.path.exists(os.path.join(str(tmp_path),
                                               "state.json"))


# ---------------------------------------------------------------------------
# hypothesis: crash at an arbitrary point is invisible in the output
# ---------------------------------------------------------------------------


@st.composite
def crash_case(draw):
    n = draw(st.integers(8, 24))
    rows = [[[draw(st.integers(0, 2)), float(draw(st.integers(-5, 5)))]]
            for _ in range(n)]
    size = draw(st.integers(2, 8))
    # incremental mode needs equal basic windows: slide | size
    slide = draw(st.sampled_from(
        [d for d in range(1, size + 1) if size % d == 0]))
    crash_at = draw(st.integers(1, n - 1))
    ckpt_at = draw(st.integers(0, crash_at))
    mode = draw(st.sampled_from(["reeval", "incremental", "delta"]))
    return rows, size, slide, crash_at, ckpt_at, mode


class TestPropertyCrashEquivalence:
    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(crash_case())
    def test_recovered_emissions_match_serial(self, tmp_path_factory,
                                              case):
        rows, size, slide, crash_at, ckpt_at, mode = case
        query = (f"SELECT sid, count(*), sum(temp) FROM s "
                 f"[RANGE {size} SLIDE {slide}] GROUP BY sid")
        serial = serial_run(mode, query=query, rows=rows)

        data_dir = tmp_path_factory.mktemp("store")
        engine = durable_engine(data_dir)
        engine.execute("CREATE STREAM s (sid INT, temp FLOAT)")
        engine.register_continuous(query, name="q", mode=mode)
        drive(engine, rows[:ckpt_at])
        engine.checkpoint()
        drive(engine, rows[ckpt_at:crash_at])
        pre = emissions(engine)
        del engine  # crash

        recovered = durable_engine(data_dir)
        assert recovered.basket("s").next_oid == \
            sum(len(b) for b in rows[:crash_at])
        drive(recovered, rows[crash_at:])
        drain(recovered, steps=16)
        post = emissions(recovered)
        recovered.close()
        assert pre == serial[:len(pre)]
        assert post == serial[len(serial) - len(post):]
        assert len(pre) + len(post) >= len(serial)


# ---------------------------------------------------------------------------
# network: replay-on-subscribe, ack resume, tail reconnect
# ---------------------------------------------------------------------------


@pytest.fixture
def served(tmp_path):
    from repro.net.server import DataCellServer

    engine = DataCellEngine(clock=WallClock(), data_dir=str(tmp_path),
                            durability="async",
                            checkpoint_interval_s=0.25)
    engine.execute("CREATE STREAM s (k INT, v FLOAT)")
    server = DataCellServer(engine, step_interval_s=0.002)
    server.start()
    yield engine, server
    server.stop()
    engine.close()


def ingest_range(client, lo, hi, chunk=10):
    for i in range(lo, hi, chunk):
        client.ingest("s", [[j, float(j)]
                            for j in range(i, min(i + chunk, hi))])


def collect_rows(client, want_rows, timeout=8.0):
    got = []
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline \
            and sum(b.row_count for b in got) < want_rows:
        got.extend(client.results(max_batches=10, timeout=0.5))
    return got


class TestNetReplay:
    def test_replay_then_live_no_gap_no_duplicate(self, served):
        from repro.net.client import DataCellClient

        _engine, server = served
        with DataCellClient(port=server.port) as producer:
            ingest_range(producer, 0, 50)
            time.sleep(0.3)  # history drains into basket + log
            with DataCellClient(port=server.port) as consumer:
                consumer.subscribe_stream("s", from_offset=0)
                ingest_range(producer, 50, 80)  # live, mid-replay
                got = collect_rows(consumer, 80)
                ks = [r[0] for b in got for r in b.rows]
                assert ks == list(range(80))  # no gap, no duplicate
                prev = 0
                for b in got:
                    assert b.offset == prev
                    prev = b.end
                assert any(b.replay for b in got)
                assert not got[-1].replay  # spliced into live

    def test_acked_offset_tracked_serverside(self, served):
        from repro.net.client import DataCellClient

        _engine, server = served
        with DataCellClient(port=server.port) as producer:
            ingest_range(producer, 0, 30)
            time.sleep(0.3)
            with DataCellClient(port=server.port) as consumer:
                consumer.subscribe_stream("s", from_offset=0)
                collect_rows(consumer, 30)
                assert consumer.stream_offsets["s"] == 30
                time.sleep(0.2)  # let the server see the acks
                stats = consumer.stats()["net"]["connections"]
                subs = [s for c in stats
                        for s in c.get("stream_subscriptions", [])]
                assert subs and subs[0]["acked"] == 30
                assert subs[0]["replay_rows"] == 30

    def test_reconnect_resumes_from_last_offset(self, served):
        from repro.net.client import DataCellClient

        _engine, server = served
        with DataCellClient(port=server.port) as producer:
            ingest_range(producer, 0, 40)
            time.sleep(0.3)
            consumer = DataCellClient(port=server.port)
            consumer.subscribe_stream("s", from_offset=0)
            collect_rows(consumer, 40)
            resume_at = consumer.stream_offsets["s"]
            consumer.close()  # drop mid-stream
            ingest_range(producer, 40, 60)
            with DataCellClient(port=server.port) as consumer2:
                consumer2.subscribe_stream("s", from_offset=resume_at)
                got = collect_rows(consumer2, 60 - resume_at)
                ks = [r[0] for b in got for r in b.rows]
                assert ks == list(range(resume_at, 60))

    def test_live_only_subscription_skips_history(self, served):
        from repro.net.client import DataCellClient

        _engine, server = served
        with DataCellClient(port=server.port) as producer:
            ingest_range(producer, 0, 20)
            time.sleep(0.3)
            with DataCellClient(port=server.port) as consumer:
                consumer.subscribe_stream("s")  # from the head
                ingest_range(producer, 20, 30)
                got = collect_rows(consumer, 10, timeout=5.0)
                ks = [r[0] for b in got for r in b.rows]
                assert ks == list(range(20, 30))
                assert not any(b.replay for b in got)


class TestTailReconnect:
    def test_backoff_schedule(self):
        from repro.net.cli import _backoff_s

        assert _backoff_s(0) == pytest.approx(0.2)
        assert _backoff_s(1) == pytest.approx(0.4)
        assert _backoff_s(10) == 5.0  # capped

    def test_tail_reconnects_and_resumes(self, served, monkeypatch):
        """Drive the tail loop with an injected connect factory: first
        connection dies after the replay batch, the second resumes from
        the delivered offset."""
        from repro.net import cli as net_cli
        from repro.net.client import DataCellClient

        _engine, server = served
        with DataCellClient(port=server.port) as producer:
            ingest_range(producer, 0, 25)
            time.sleep(0.3)

            attempts = []

            def factory():
                attempts.append(1)
                if len(attempts) == 2:
                    from repro.errors import NetError
                    raise NetError("injected outage", code="connect")
                client = DataCellClient(port=server.port,
                                        timeout_s=5.0)
                if len(attempts) == 1:
                    # die after one batch: like a real drop, later
                    # results() calls see closed=True and yield nothing
                    orig = client.results

                    def dying(*a, **kw):
                        if client.closed:
                            return []
                        out = orig(*a, **kw)
                        if out:
                            client.close()
                        return out
                    client.results = dying
                return client

            monkeypatch.setattr(net_cli.time, "sleep", lambda s: None)
            out = io.StringIO()
            args = net_cli._build_parser().parse_args(
                ["tail", "s", "--port", str(server.port),
                 "--from", "start", "--reconnect", "--count", "3",
                 "--timeout", "3"])
            rc = net_cli._cmd_tail(args, out, connect_factory=factory)
            assert rc == 0
            text = out.getvalue()
            assert len(attempts) >= 3  # initial + failed + resumed
            assert "retry 1/" in text or "connection lost" in text \
                or text.count("subscribed to stream") >= 2
            # the resumed subscription starts past offset 0
            assert "from offset 25" in text or "[0,25)" in text


class TestServeCli:
    def test_serve_with_data_dir_recovers(self, tmp_path):
        from repro.net import cli as net_cli

        script = tmp_path / "init.sql"
        script.write_text("CREATE STREAM s (k INT, v FLOAT);\n")
        data_dir = tmp_path / "data"
        out = io.StringIO()
        rc = net_cli.main(
            ["serve", "--port", "0", "--script", str(script),
             "--data-dir", str(data_dir), "--duration", "0.2"],
            out=out)
        assert rc == 0
        assert (data_dir / "state.json").exists()
        out2 = io.StringIO()
        rc = net_cli.main(
            ["serve", "--port", "0", "--data-dir", str(data_dir),
             "--duration", "0.2"], out=out2)
        assert rc == 0
        assert "recovered" in out2.getvalue()


# ---------------------------------------------------------------------------
# retention: durable floor, clamped reads, truncate-by-age / bytes
# ---------------------------------------------------------------------------


class TestRetention:
    def make(self, tmp_path, **kw):
        kw.setdefault("segment_rows", 8)
        kw.setdefault("durability", "fsync")
        return StreamLog(str(tmp_path / "s"), "s", SCHEMA,
                         inline=True, **kw)

    def fill(self, log, segments=3):
        # segment arrivals: 0, 80, 160, ... (batch stamps ts = 10 * lo)
        for i in range(segments):
            cols, ts = batch(i * 8, 8)
            log.append(cols, ts)

    def test_noop_without_knobs(self, tmp_path):
        log = self.make(tmp_path)
        self.fill(log)
        assert log.apply_retention(now_ms=10 ** 9) == 0
        assert log.durable_floor == 0
        log.close()

    def test_retain_bytes_drops_oldest_sealed(self, tmp_path):
        log = self.make(tmp_path, retain_bytes=0)
        self.fill(log)
        assert log.durable_floor == 0
        assert log.apply_retention(now_ms=0) == 24
        assert log.durable_floor == 24
        stats = log.stats()
        assert stats["retention_truncations"] == 1
        assert stats["retention_rows"] == 24
        # dropped segment files are gone from disk
        assert not os.path.exists(
            os.path.join(str(tmp_path / "s"), f"{0:012d}.k"))
        # appends continue past the floor
        cols, ts = batch(24, 2)
        assert log.append(cols, ts) == (24, 26)
        log.close()

    def test_retain_ms_drops_aged_segments(self, tmp_path):
        log = self.make(tmp_path, retain_ms=100)
        self.fill(log)  # last arrivals per segment: 0, 80, 160
        assert log.apply_retention(now_ms=200) == 16
        assert log.durable_floor == 16
        # the young segment and the tail survive and read strictly
        out, _ = log.read(16, 24)
        assert out["k"].tolist() == list(range(16, 24))
        log.close()

    def test_read_clamped_lags_strict_read_raises(self, tmp_path):
        log = self.make(tmp_path, retain_ms=100)
        self.fill(log)
        log.apply_retention(now_ms=200)
        cols, arrival, actual_lo = log.read_clamped(0, 24)
        assert actual_lo == 16
        assert cols["k"].tolist() == list(range(16, 24))
        assert arrival.tolist() == [160] * 8
        with pytest.raises(StoreError, match="retention floor"):
            log.read(0, 24)
        # a fully-discarded range comes back empty, never an error
        _cols, arr, lo = log.read_clamped(0, 10)
        assert len(arr) == 0 and lo == 10
        log.close()

    def test_protect_offset_and_tail_pin_segments(self, tmp_path):
        log = self.make(tmp_path, retain_bytes=0)
        self.fill(log)
        # protect offset 12 pins the segment [8,16) and everything above
        assert log.apply_retention(now_ms=0, protect_offset=12) == 8
        assert log.durable_floor == 8
        # unprotected, the sealed rest drops — but never the open tail
        assert log.apply_retention(now_ms=0) == 16
        assert log.durable_floor == 24
        assert log.apply_retention(now_ms=0) == 0
        log.close()

    def test_reopen_after_retention_keeps_floor(self, tmp_path):
        log = self.make(tmp_path, retain_ms=100)
        self.fill(log)
        log.apply_retention(now_ms=200)
        log.close()
        log2 = self.make(tmp_path)
        assert log2.durable_floor == 16
        assert log2.next_offset == 24
        out, _ = log2.read(16, 24)
        assert out["k"].tolist() == list(range(16, 24))
        with pytest.raises(StoreError):
            log2.read(0, 24)
        log2.close()

    def test_knob_validation(self, tmp_path):
        with pytest.raises(StoreError, match="retain_ms"):
            self.make(tmp_path, retain_ms=-1)
        with pytest.raises(StoreError, match="retain_bytes"):
            self.make(tmp_path, retain_bytes=-1)


# ---------------------------------------------------------------------------
# close(): a wedged writer must not leave a clean manifest behind
# ---------------------------------------------------------------------------


class TestCloseWedgedWriter:
    def test_close_timeout_records_failure_skips_manifest(
            self, tmp_path):
        log = StreamLog(str(tmp_path / "s"), "s", SCHEMA,
                        inline=False, segment_rows=8,
                        durability="fsync")
        cols, ts = batch(0, 4)
        log.append(cols, ts)
        log.flush()
        manifest = tmp_path / "s" / "manifest.json"
        before = manifest.read_text()

        class WedgedWriter:
            def join(self, timeout=None):
                pass

            def is_alive(self):
                return True

        real = log._writer
        log._writer = WedgedWriter()
        log.close(timeout=0.01)
        assert isinstance(log.failed, StoreError)
        assert "close timeout" in str(log.failed)
        # no clean manifest while the writer may still be appending
        assert manifest.read_text() == before
        # real shutdown (the loop saw _stop) for cleanup; the failure
        # sticks, so the manifest stays dirty and the next open runs
        # the torn-tail scan instead of trusting it
        log._writer = real
        log.close()
        assert manifest.read_text() == before
        log2 = StreamLog(str(tmp_path / "s"), "s", SCHEMA,
                         inline=True, segment_rows=8,
                         durability="fsync")
        assert log2.next_offset == 4
        log2.close()


# ---------------------------------------------------------------------------
# paged window binder: zero-copy views over sealed segments
# ---------------------------------------------------------------------------


def memmap_backed(values):
    base = np.asarray(values)
    while isinstance(base, np.ndarray):
        if isinstance(base, np.memmap):
            return True
        base = base.base
    return False


class TestPagedWindowBinder:
    def make(self, tmp_path, segments=4, **kw):
        log = StreamLog(str(tmp_path / "s"), "s", SCHEMA, inline=True,
                        segment_rows=8, durability="fsync", **kw)
        for i in range(segments):
            cols, ts = batch(i * 8, 8)
            log.append(cols, ts)
        return log, PagedWindowBinder(log, SCHEMA)

    def test_single_segment_window_is_zero_copy(self, tmp_path):
        log, pager = self.make(tmp_path)
        rel = pager.relation(8, 16)
        assert rel.row_count == 8
        k = rel.column("k")
        assert k.hseqbase == 8
        assert k.values.tolist() == list(range(8, 16))
        # fixed-width columns inside one sealed segment stay views
        # over the segment file, no copy
        assert memmap_backed(k.values)
        assert memmap_backed(rel.column("v").values)
        # strings have no fixed stride: copying fallback
        assert not memmap_backed(rel.column("tag").values)
        pager.relation(8, 16)
        assert pager.stats()["map_hits"] > 0
        log.close()

    def test_multi_segment_window_stitches(self, tmp_path):
        log, pager = self.make(tmp_path)
        rel = pager.relation(5, 21)
        assert rel.column("k").values.tolist() == list(range(5, 21))
        tags = rel.column("tag").values
        assert list(tags[:2]) == ["t5", None]  # nils round-trip
        assert rel.column("k").hseqbase == 5
        log.close()

    def test_clamps_to_floor_and_durable(self, tmp_path):
        log, pager = self.make(tmp_path, retain_ms=100)
        log.apply_retention(now_ms=200)  # drops [0,16)
        assert pager.floor == 16
        rel = pager.relation(0, 10 ** 6)
        assert rel.column("k").values.tolist() == list(range(16, 32))
        assert rel.column("k").hseqbase == 16
        log.close()

    def test_arrival_and_oid_at_or_after(self, tmp_path):
        log, pager = self.make(tmp_path)
        arr = np.asarray(pager.arrival(4, 20))
        assert arr.tolist() == [0] * 4 + [80] * 8 + [160] * 4
        # per-segment arrivals: [0,8)=0 [8,16)=80 [16,24)=160 [24,32)=240
        assert pager.oid_at_or_after(0, 32) == 0
        assert pager.oid_at_or_after(1, 32) == 8
        assert pager.oid_at_or_after(80, 32) == 8
        assert pager.oid_at_or_after(161, 32) == 24
        assert pager.oid_at_or_after(241, 32) == 32  # nothing newer
        log.close()

    def test_map_cache_is_bounded(self, tmp_path):
        log, pager = self.make(tmp_path, segments=6)
        pager.max_mapped_segments = 2
        for base in range(0, 48, 8):
            pager.relation(base, base + 8)
        stats = pager.stats()
        # 2 segments * (3 columns + __ts) entries at most
        assert stats["mapped_files"] <= 2 * 4
        assert stats["paged_reads"] == 6
        assert stats["paged_rows"] == 48
        log.close()


# ---------------------------------------------------------------------------
# basket paging: windows below first_oid read through the binder
# ---------------------------------------------------------------------------


def paged_basket(tmp_path, vacuum_upto=24):
    basket = Basket("s", SCHEMA)
    log = StreamLog(str(tmp_path / "s"), "s", SCHEMA, inline=True,
                    segment_rows=8, durability="fsync")
    basket.attach_log(log)
    basket.attach_pager(PagedWindowBinder(log, SCHEMA))
    rows = [(i, i * 0.5, f"t{i}" if i % 3 else None)
            for i in range(32)]
    for i in range(4):
        basket.append_rows(rows[i * 8:(i + 1) * 8], now=80 * i)
    if vacuum_upto:
        sub = basket.subscribe("gc")
        sub.read_upto = sub.released_upto = vacuum_upto
        assert basket.vacuum() == vacuum_upto
        basket.unsubscribe("gc")
    return basket, log


class TestBasketPaging:
    def test_relation_below_first_oid_pages_and_merges(self, tmp_path):
        basket, log = paged_basket(tmp_path)
        assert basket.first_oid == 24
        rel = basket.relation(4, 28)
        assert rel.column("k").values.tolist() == list(range(4, 28))
        assert rel.column("tag").values[2] is None  # oid 6: nil
        assert basket.pager.stats()["paged_reads"] >= 1
        assert basket.first_oid == 24  # paged, never rehydrated
        log.close()

    def test_history_floor_and_clamp(self, tmp_path):
        basket, log = paged_basket(tmp_path)
        assert basket.history_floor() == 0
        assert basket.clamp_range(0, None) == (0, 32)
        log.close()

    def test_arrival_slice_spans_history(self, tmp_path):
        basket, log = paged_basket(tmp_path)
        arr, (lo, hi) = basket.arrival_slice(0, 32)
        assert (lo, hi) == (0, 32)
        assert np.asarray(arr).tolist() == \
            sum(([80 * i] * 8 for i in range(4)), [])
        log.close()

    def test_oid_at_or_after_pages(self, tmp_path):
        basket, log = paged_basket(tmp_path)
        # memory holds [24,32) only; earlier arrivals resolve via the
        # log's __ts segments instead of snapping to first_oid
        assert basket.oid_at_or_after(0) == 0
        assert basket.oid_at_or_after(81) == 16
        assert basket.oid_at_or_after(240) == 24
        log.close()

    def test_subscribe_from_start_reaches_floor(self, tmp_path):
        basket, log = paged_basket(tmp_path)
        sub = basket.subscribe("replay", from_start=True)
        assert sub.read_upto == 0  # not clamped to first_oid
        log.close()


# ---------------------------------------------------------------------------
# engine: retention + replay-gap contract, paged from_start
# ---------------------------------------------------------------------------


def retained_engine(tmp_path):
    """Durable engine with aggressive retention: feed ROWS through a
    standing query so vacuum + retention truncate a real prefix."""
    engine = durable_engine(tmp_path, segment_rows=4, retain_bytes=0,
                            checkpoint_interval_s=10 ** 6)
    engine.execute("CREATE STREAM s (sid INT, temp FLOAT)")
    engine.register_continuous(QUERY, name="q", mode="reeval")
    drive(engine, ROWS)
    drain(engine)
    dropped = engine.apply_retention()
    assert dropped.get("s", 0) > 0
    floor = engine.basket("s").history_floor()
    assert floor > 0
    return engine, floor


class TestEngineRetention:
    def test_from_offset_below_floor_raises_replay_gap(self, tmp_path):
        engine, floor = retained_engine(tmp_path)
        with pytest.raises(ReplayGap) as exc:
            engine.register_continuous(QUERY, name="late",
                                       mode="reeval", from_offset=0)
        assert exc.value.requested == 0
        assert exc.value.floor == floor
        # the gap did not half-register anything
        assert [q.name for q in engine.queries()] == ["q"]
        # at or above the floor the same registration is fine
        engine.register_continuous(QUERY, name="late", mode="reeval",
                                   from_offset=floor)
        engine.close()

    def test_from_start_lags_to_floor(self, tmp_path):
        engine, floor = retained_engine(tmp_path)
        first_before = engine.basket("s").first_oid
        expected = emissions(engine, "q")
        engine.register_continuous(QUERY, name="late", mode="reeval",
                                   from_start=True)
        drain(engine, steps=20)
        got = emissions(engine, "late")
        # fires from the oldest retained offset, converging on the
        # same windows the live query saw
        assert got and got[-1] == expected[-1]
        assert engine.basket("s").first_oid >= first_before
        engine.close()

    def test_rehydrate_gap_detected(self, tmp_path):
        engine, floor = retained_engine(tmp_path)
        basket = engine.basket("s")
        with pytest.raises(ReplayGap) as exc:
            engine._rehydrate_stream("s", 0)
        assert exc.value.floor == floor
        assert basket.first_oid > floor  # nothing silently rehydrated
        # acknowledging the gap pulls back the surviving suffix with
        # an honest base: first_oid lands on the floor, not below
        first = basket.first_oid
        n = engine._rehydrate_stream("s", 0, allow_gap=True)
        assert n == first - floor
        assert basket.first_oid == floor
        rel = basket.relation(floor, first)
        assert rel.row_count == n
        engine.close()

    def test_read_stream_range_lags_to_floor(self, tmp_path):
        engine, floor = retained_engine(tmp_path)
        hi = engine.basket("s").next_oid
        parts = engine.read_stream_range("s", 0, hi)
        assert parts[0][0] == floor  # skipped, not raised
        prev = floor
        rows = 0
        for lo, phi, rel in parts:
            assert lo == prev
            rows += rel.row_count
            prev = phi
        assert prev == hi and rows == hi - floor
        engine.close()

    def test_from_start_pages_without_rehydration(self, tmp_path):
        """The tentpole contract: a from_start replay over a vacuumed
        basket reads history straight out of the log — byte-identical
        emissions, no rehydration into basket memory."""
        engine = durable_engine(tmp_path, segment_rows=4)
        engine.execute("CREATE STREAM s (sid INT, temp FLOAT)")
        engine.register_continuous(QUERY, name="q", mode="reeval")
        drive(engine, ROWS)
        drain(engine)
        expected = emissions(engine)
        basket = engine.basket("s")
        assert basket.first_oid > 0  # vacuum happened
        first_before = basket.first_oid
        engine.register_continuous(QUERY, name="late", mode="reeval",
                                   from_start=True)
        drain(engine, steps=24)
        assert emissions(engine, "late") == expected
        assert basket.first_oid >= first_before  # never rehydrated
        assert basket.pager.stats()["paged_reads"] > 0
        engine.close()

    def test_retention_stats_and_log_pane(self, tmp_path):
        engine, _floor = retained_engine(tmp_path)
        stats = engine.log_stats()
        assert stats["retain_bytes"] == 0
        assert stats["retention_rows_dropped"] > 0
        s = stats["streams"]["s"]
        assert s["durable_floor"] > 0
        assert s["retention_truncations"] >= 1
        assert "pager" in s
        pane = engine.monitor.log()
        assert "retention [" in pane
        assert "floor=" in pane and "truncations=" in pane
        engine.close()


# ---------------------------------------------------------------------------
# network: a subscriber below the retention floor lags, not dies
# ---------------------------------------------------------------------------


class TestNetRetention:
    def test_subscribe_from_zero_lags_to_floor(self, tmp_path):
        from repro.net.client import DataCellClient
        from repro.net.server import DataCellServer

        # inline log: appends persist synchronously, so each 10-row
        # ingest batch seals its own segment (group commit would fold
        # the whole backlog into one unprotectable segment)
        engine = DataCellEngine(clock=WallClock(),
                                data_dir=str(tmp_path),
                                durability="async", log_inline=True,
                                segment_rows=8, retain_bytes=0,
                                checkpoint_interval_s=10 ** 6)
        engine.execute("CREATE STREAM s (k INT, v FLOAT)")
        # a sliding window holds the last stretch in the basket, so
        # retention truncates a strict prefix of the log
        engine.register_continuous(
            "SELECT k, v FROM s [RANGE 16 SLIDE 8]", name="w",
            mode="reeval")
        server = DataCellServer(engine, step_interval_s=0.002)
        server.start()
        try:
            with DataCellClient(port=server.port) as producer:
                ingest_range(producer, 0, 64)
                deadline = time.monotonic() + 5.0
                while time.monotonic() < deadline \
                        and engine.basket("s").first_oid < 48:
                    time.sleep(0.05)
                engine.checkpoint()  # flush the async writer
                dropped = engine.apply_retention()
                assert dropped.get("s", 0) > 0
                floor = engine.basket("s").history_floor()
                assert floor > 0
                with DataCellClient(port=server.port) as consumer:
                    consumer.subscribe_stream("s", from_offset=0)
                    ingest_range(producer, 64, 80)
                    got = []
                    deadline = time.monotonic() + 8.0
                    while time.monotonic() < deadline:
                        got.extend(consumer.results(max_batches=10,
                                                    timeout=0.5))
                        if got and got[-1].end == 80:
                            break
                    ks = [r[0] for b in got for r in b.rows]
                    # connection survived; delivery starts at the
                    # floor and is gapless from there on
                    assert got[0].offset == floor
                    assert ks == list(range(floor, 80))
                    time.sleep(0.2)  # let the server see the acks
                    stats = consumer.stats()["net"]["connections"]
                    subs = [sub for c in stats for sub in
                            c.get("stream_subscriptions", [])]
                    assert subs and subs[0]["skipped_rows"] == floor
        finally:
            server.stop()
            engine.close()

    def test_fully_truncated_history_counts_skipped_rows(
            self, tmp_path):
        from repro.net.client import DataCellClient
        from repro.net.server import DataCellServer

        # a per-slide-releasing query lets retention drop *every*
        # sealed segment: the pump's replay chunks then come back
        # entirely empty (no partial clamp), which must still be
        # accounted as skipped rows
        engine = DataCellEngine(clock=WallClock(),
                                data_dir=str(tmp_path),
                                durability="async", log_inline=True,
                                segment_rows=8, retain_bytes=0,
                                checkpoint_interval_s=10 ** 6)
        engine.execute("CREATE STREAM s (k INT, v FLOAT)")
        engine.register_continuous(
            "SELECT k, v FROM s [RANGE 8 SLIDE 8]", name="w",
            mode="reeval")
        server = DataCellServer(engine, step_interval_s=0.002)
        server.start()
        try:
            with DataCellClient(port=server.port) as producer:
                # chunk == segment_rows: every segment seals exactly
                # full, so retention can drop all 64 rows
                ingest_range(producer, 0, 64, chunk=8)
                deadline = time.monotonic() + 5.0
                while time.monotonic() < deadline \
                        and engine.basket("s").first_oid < 64:
                    time.sleep(0.05)
                engine.checkpoint()
                engine.apply_retention()
                floor = engine.basket("s").history_floor()
                assert floor == 64  # nothing retained below the head
                with DataCellClient(port=server.port) as consumer:
                    consumer.subscribe_stream("s", from_offset=0)
                    ingest_range(producer, 64, 72)
                    got = []
                    deadline = time.monotonic() + 8.0
                    while time.monotonic() < deadline:
                        got.extend(consumer.results(max_batches=10,
                                                    timeout=0.5))
                        if got and got[-1].end == 72:
                            break
                    assert got and got[0].offset == 64
                    time.sleep(0.2)
                    stats = consumer.stats()["net"]["connections"]
                    subs = [sub for c in stats for sub in
                            c.get("stream_subscriptions", [])]
                    assert subs and subs[0]["skipped_rows"] == 64
        finally:
            server.stop()
            engine.close()


# ---------------------------------------------------------------------------
# network: teardown of abruptly dropped subscribers, server kill mid-tail
# ---------------------------------------------------------------------------


class TestTeardownOnDrop:
    def test_abrupt_drop_mid_replay_joins_pump_and_folds(self, served):
        """A client vanishing mid-replay (socket closed, no goodbye)
        must have its pump task joined, its basket tap removed and its
        delivered counters folded into the server totals."""
        from repro.net.client import DataCellClient

        engine, server = served
        with DataCellClient(port=server.port) as producer:
            ingest_range(producer, 0, 3000, chunk=500)
        time.sleep(0.3)
        basket = engine.basket("s")
        taps_before = len(basket._taps)
        consumer = DataCellClient(port=server.port)
        consumer.subscribe_stream("s", from_offset=0)
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline \
                and len(basket._taps) != taps_before + 1:
            time.sleep(0.02)
        assert len(basket._taps) == taps_before + 1
        got = collect_rows(consumer, 1)  # at least one replay batch
        assert got
        # vanish abruptly: raw socket close, no UNSUBSCRIBE, no close()
        consumer._stream.sock.close()
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline \
                and server._snapshot_conns():
            time.sleep(0.02)
        assert server._snapshot_conns() == []   # conn torn down
        assert len(basket._taps) == taps_before  # pump tap released
        totals = server.net_stats()["totals"]
        assert totals["delivered_batches"] >= len(got)
        assert totals["delivered_rows"] >= \
            sum(b.row_count for b in got)


class TestServerKillMidTail:
    def test_kill_and_restart_resumes_no_duplicates(self, tmp_path):
        """Kill the live server socket under a `repro tail
        --reconnect` loop, restart on the same port with the same
        engine: the tail resumes from the last delivered offset and
        every row arrives exactly once."""
        import threading

        from repro.net import cli as net_cli
        from repro.net.client import DataCellClient
        from repro.net.server import DataCellServer

        engine = DataCellEngine(clock=WallClock(),
                                data_dir=str(tmp_path),
                                durability="async",
                                checkpoint_interval_s=0.25)
        engine.execute("CREATE STREAM s (k INT, v FLOAT)")
        server1 = DataCellServer(engine, step_interval_s=0.002)
        server1.start()
        port = server1.port
        with DataCellClient(port=port) as producer:
            ingest_range(producer, 0, 40)
        time.sleep(0.3)

        out = io.StringIO()
        rc = []

        def run_tail():
            rc.append(net_cli.main(
                ["tail", "s", "--port", str(port), "--from", "start",
                 "--reconnect", "--count", "999", "--timeout", "2.0",
                 "--max-retries", "60"], out=out))

        thread = threading.Thread(target=run_tail, daemon=True)
        thread.start()
        deadline = time.monotonic() + 8.0
        while time.monotonic() < deadline \
                and "39, 39.0" not in out.getvalue():
            time.sleep(0.05)
        assert "39, 39.0" in out.getvalue()  # replay fully delivered

        server1.stop()  # the socket dies mid-tail
        # rows arriving while the edge is down land in the log/basket
        engine.feed("s", [[k, float(k)] for k in range(40, 70)])
        server2 = DataCellServer(engine, host="127.0.0.1", port=port,
                                 step_interval_s=0.002)
        server2.start()
        try:
            with DataCellClient(port=port) as producer:
                ingest_range(producer, 70, 80)
            thread.join(30.0)
            assert not thread.is_alive()
            assert rc == [0]
        finally:
            server2.stop()
            engine.close()
        text = out.getvalue()
        # the loop reconnected and resumed past offset 0
        assert text.count("subscribed to stream 's'") >= 2
        assert "from offset 0" in text
        ks = [int(line.strip().split(",")[0])
              for line in text.splitlines() if line.startswith("  ")]
        assert ks == list(range(80))  # exactly once: no dup, no gap
