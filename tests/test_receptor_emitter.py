"""Unit tests for receptors, emitters, sinks and stream sources."""

import pytest

from repro.core.basket import Basket
from repro.core.emitter import (CallbackSink, CollectingSink, Emitter,
                                NullSink)
from repro.core.receptor import Receptor
from repro.errors import StreamError
from repro.mal.relation import Relation
from repro.storage import Schema
from repro.streams.source import (GeneratorSource, ListSource, RateSource,
                                  merge_sources)


@pytest.fixture
def basket():
    return Basket("s", Schema.parse([("k", "INT")]))


class TestSources:
    def test_list_source(self):
        src = ListSource([(0, (1,)), (5, (2,))])
        assert list(src) == [(0, (1,)), (5, (2,))]
        assert len(src) == 2

    def test_list_source_rejects_regression(self):
        with pytest.raises(StreamError):
            ListSource([(5, (1,)), (0, (2,))])

    def test_rate_source_timestamps(self):
        src = RateSource([(1,), (2,), (3,)], rate=10, start_ms=100)
        assert [ts for ts, _row in src] == [100, 200, 300]

    def test_rate_source_positive_rate(self):
        with pytest.raises(StreamError):
            RateSource([], rate=0)

    def test_generator_source_replayable(self):
        src = GeneratorSource(lambda: iter([(0, (1,))]))
        assert list(src) == list(src)

    def test_merge_sources_time_ordered(self):
        a = ListSource([(0, ("a",)), (10, ("a2",))])
        b = ListSource([(5, ("b",))])
        merged = list(merge_sources(a, b))
        assert [row[0] for _ts, row in merged] == ["a", "b", "a2"]


class TestReceptor:
    def test_pump_respects_timestamps(self, basket):
        receptor = Receptor("r", basket,
                            ListSource([(0, (1,)), (10, (2,)),
                                        (20, (3,))]))
        assert receptor.pump(now=10) == 2
        assert len(basket) == 2
        assert receptor.pump(now=10) == 0
        assert receptor.pump(now=20) == 1
        assert receptor.exhausted

    def test_pump_batches_same_timestamp(self, basket):
        receptor = Receptor("r", basket,
                            ListSource([(5, (1,)), (5, (2,))]))
        assert receptor.pump(now=5) == 2
        assert basket.arrival_slice(0, 2).tolist() == [5, 5]

    def test_next_event_time(self, basket):
        receptor = Receptor("r", basket, ListSource([(7, (1,))]))
        assert receptor.next_event_time() == 7
        receptor.pump(7)
        assert receptor.next_event_time() is None

    def test_paused_pump_is_noop(self, basket):
        receptor = Receptor("r", basket, ListSource([(0, (1,))]))
        receptor.pause()
        assert receptor.pump(0) == 0
        receptor.resume()
        assert receptor.pump(0) == 1

    def test_feed_direct(self, basket):
        receptor = Receptor("r", basket)
        assert receptor.feed([(1,), (2,)], now=3) == 2
        assert receptor.total_ingested == 2

    def test_feed_paused_raises(self, basket):
        receptor = Receptor("r", basket)
        receptor.pause()
        with pytest.raises(StreamError):
            receptor.feed([(1,)], now=0)

    def test_sourceless_receptor_exhausted(self, basket):
        assert Receptor("r", basket).exhausted


def _rel(rows):
    return Relation.from_rows(Schema.parse([("x", "INT")]),
                              [(r,) for r in rows])


class TestEmitter:
    def test_collecting_sink(self):
        emitter = Emitter("q")
        sink = CollectingSink()
        emitter.add_sink(sink)
        emitter.deliver(_rel([1, 2]), now=5)
        emitter.deliver(_rel([3]), now=9)
        assert sink.rows() == [(1,), (2,), (3,)]
        assert sink.latest().to_rows() == [(3,)]
        assert len(sink) == 2
        assert emitter.total_batches == 2
        assert emitter.total_rows == 3
        assert emitter.last_delivery_time == 9

    def test_callback_sink(self):
        seen = []
        emitter = Emitter("q")
        emitter.add_sink(CallbackSink(lambda rel, now: seen.append(
            (now, rel.row_count))))
        emitter.deliver(_rel([1]), now=4)
        assert seen == [(4, 1)]

    def test_null_sink(self):
        emitter = Emitter("q")
        emitter.add_sink(NullSink())
        emitter.deliver(_rel([1]), now=0)  # no exception, nothing kept

    def test_multiple_sinks_all_notified(self):
        emitter = Emitter("q")
        a, b = CollectingSink(), CollectingSink()
        emitter.add_sink(a)
        emitter.add_sink(b)
        emitter.deliver(_rel([1]), now=0)
        assert len(a) == 1 and len(b) == 1

    def test_clear(self):
        sink = CollectingSink()
        sink.deliver(_rel([1]), 0)
        sink.clear()
        assert sink.latest() is None
