"""Unit tests for receptors, emitters, sinks and stream sources."""

import pytest

from repro.core.basket import Basket
from repro.core.emitter import (CallbackSink, CollectingSink, Emitter,
                                NullSink)
from repro.core.receptor import Receptor
from repro.errors import StreamError
from repro.mal.relation import Relation
from repro.storage import Schema
from repro.streams.source import (GeneratorSource, ListSource, RateSource,
                                  merge_sources)


@pytest.fixture
def basket():
    return Basket("s", Schema.parse([("k", "INT")]))


class TestSources:
    def test_list_source(self):
        src = ListSource([(0, (1,)), (5, (2,))])
        assert list(src) == [(0, (1,)), (5, (2,))]
        assert len(src) == 2

    def test_list_source_rejects_regression(self):
        with pytest.raises(StreamError):
            ListSource([(5, (1,)), (0, (2,))])

    def test_rate_source_timestamps(self):
        src = RateSource([(1,), (2,), (3,)], rate=10, start_ms=100)
        assert [ts for ts, _row in src] == [100, 200, 300]

    def test_rate_source_positive_rate(self):
        with pytest.raises(StreamError):
            RateSource([], rate=0)

    def test_generator_source_replayable(self):
        src = GeneratorSource(lambda: iter([(0, (1,))]))
        assert list(src) == list(src)

    def test_merge_sources_time_ordered(self):
        a = ListSource([(0, ("a",)), (10, ("a2",))])
        b = ListSource([(5, ("b",))])
        merged = list(merge_sources(a, b))
        assert [row[0] for _ts, row in merged] == ["a", "b", "a2"]


class TestReceptor:
    def test_pump_respects_timestamps(self, basket):
        receptor = Receptor("r", basket,
                            ListSource([(0, (1,)), (10, (2,)),
                                        (20, (3,))]))
        assert receptor.pump(now=10) == 2
        assert len(basket) == 2
        assert receptor.pump(now=10) == 0
        assert receptor.pump(now=20) == 1
        assert receptor.exhausted

    def test_pump_batches_same_timestamp(self, basket):
        receptor = Receptor("r", basket,
                            ListSource([(5, (1,)), (5, (2,))]))
        assert receptor.pump(now=5) == 2
        assert basket.arrival_slice(0, 2)[0].tolist() == [5, 5]

    def test_next_event_time(self, basket):
        receptor = Receptor("r", basket, ListSource([(7, (1,))]))
        assert receptor.next_event_time() == 7
        receptor.pump(7)
        assert receptor.next_event_time() is None

    def test_paused_pump_is_noop(self, basket):
        receptor = Receptor("r", basket, ListSource([(0, (1,))]))
        receptor.pause()
        assert receptor.pump(0) == 0
        receptor.resume()
        assert receptor.pump(0) == 1

    def test_feed_direct(self, basket):
        receptor = Receptor("r", basket)
        assert receptor.feed([(1,), (2,)], now=3) == 2
        assert receptor.total_ingested == 2

    def test_feed_paused_raises(self, basket):
        receptor = Receptor("r", basket)
        receptor.pause()
        with pytest.raises(StreamError):
            receptor.feed([(1,)], now=0)

    def test_sourceless_receptor_exhausted(self, basket):
        assert Receptor("r", basket).exhausted


def _rel(rows):
    return Relation.from_rows(Schema.parse([("x", "INT")]),
                              [(r,) for r in rows])


class TestEmitter:
    def test_collecting_sink(self):
        emitter = Emitter("q")
        sink = CollectingSink()
        emitter.add_sink(sink)
        emitter.deliver(_rel([1, 2]), now=5)
        emitter.deliver(_rel([3]), now=9)
        assert sink.rows() == [(1,), (2,), (3,)]
        assert sink.latest().to_rows() == [(3,)]
        assert len(sink) == 2
        assert emitter.total_batches == 2
        assert emitter.total_rows == 3
        assert emitter.last_delivery_time == 9

    def test_callback_sink(self):
        seen = []
        emitter = Emitter("q")
        emitter.add_sink(CallbackSink(lambda rel, now: seen.append(
            (now, rel.row_count))))
        emitter.deliver(_rel([1]), now=4)
        assert seen == [(4, 1)]

    def test_null_sink(self):
        emitter = Emitter("q")
        emitter.add_sink(NullSink())
        emitter.deliver(_rel([1]), now=0)  # no exception, nothing kept

    def test_multiple_sinks_all_notified(self):
        emitter = Emitter("q")
        a, b = CollectingSink(), CollectingSink()
        emitter.add_sink(a)
        emitter.add_sink(b)
        emitter.deliver(_rel([1]), now=0)
        assert len(a) == 1 and len(b) == 1

    def test_clear(self):
        sink = CollectingSink()
        sink.deliver(_rel([1]), 0)
        sink.clear()
        assert sink.latest() is None

    def test_remove_sink(self):
        emitter = Emitter("q")
        sink = CollectingSink()
        emitter.add_sink(sink)
        emitter.remove_sink(sink)
        emitter.deliver(_rel([1]), now=0)
        assert len(sink) == 0
        emitter.remove_sink(sink)  # removing twice is a no-op


class TestCollectingSinkRing:
    def test_unbounded_by_default(self):
        sink = CollectingSink()
        for i in range(5):
            sink.deliver(_rel([i]), now=i)
        assert len(sink) == 5 and sink.dropped_batches == 0

    def test_ring_drops_oldest(self):
        sink = CollectingSink(max_batches=2)
        for i in range(5):
            sink.deliver(_rel([i]), now=i)
        assert len(sink) == 2
        assert sink.dropped_batches == 3
        assert sink.rows() == [(3,), (4,)]  # oldest evicted first
        assert sink.latest().to_rows() == [(4,)]

    def test_set_max_batches_trims_retroactively(self):
        sink = CollectingSink()
        for i in range(4):
            sink.deliver(_rel([i]), now=i)
        sink.set_max_batches(2)
        assert sink.rows() == [(2,), (3,)]
        sink.set_max_batches(None)  # unbound again
        sink.deliver(_rel([9]), now=9)
        assert len(sink) == 3

    def test_bad_bound_rejected(self):
        with pytest.raises(ValueError):
            CollectingSink(max_batches=0)


class TestReceptorPauseResume:
    def test_pause_mid_stream_resumes_where_left(self, basket):
        receptor = Receptor("r", basket,
                            ListSource([(0, (1,)), (5, (2,)),
                                        (10, (3,))]))
        assert receptor.pump(now=0) == 1
        receptor.pause()
        assert receptor.pump(now=20) == 0  # nothing lost, nothing read
        assert not receptor.exhausted
        receptor.resume()
        assert receptor.pump(now=20) == 2
        assert receptor.exhausted
        assert receptor.total_ingested == 3

    def test_pause_is_idempotent(self, basket):
        receptor = Receptor("r", basket, ListSource([(0, (1,))]))
        receptor.pause()
        receptor.pause()
        receptor.resume()
        receptor.resume()
        assert receptor.pump(0) == 1


class TestThreadedReceptorLifecycle:
    def _make(self, basket, rows=((0, (1,)),)):
        from repro.core.clock import WallClock
        from repro.core.receptor import ThreadedReceptor

        return ThreadedReceptor("r", basket, ListSource(list(rows)),
                                WallClock())

    def test_double_start_rejected(self, basket):
        receptor = self._make(basket)
        receptor.start()
        try:
            with pytest.raises(StreamError):
                receptor.start()
        finally:
            receptor.stop()

    def test_stop_before_start_is_noop(self, basket):
        self._make(basket).stop()

    def test_stop_idempotent(self, basket):
        receptor = self._make(basket)
        receptor.start()
        receptor.stop()
        receptor.stop()  # second stop is a no-op
        with pytest.raises(StreamError):
            receptor.start()  # a stopped receptor is not restartable

    def test_delivers_then_exhausts(self, basket):
        import time

        receptor = self._make(basket, rows=[(0, (1,)), (0, (2,))])
        receptor.start()
        deadline = time.monotonic() + 5.0
        while not receptor.exhausted and time.monotonic() < deadline:
            time.sleep(0.01)
        receptor.stop()
        assert receptor.exhausted
        assert len(basket) == 2

    def test_pause_holds_ingestion(self, basket):
        import time

        receptor = self._make(basket, rows=[(0, (1,))])
        receptor.pause()
        receptor.start()
        time.sleep(0.1)
        assert len(basket) == 0  # paused thread sits on the event
        receptor.resume()
        deadline = time.monotonic() + 5.0
        while len(basket) == 0 and time.monotonic() < deadline:
            time.sleep(0.01)
        receptor.stop()
        assert len(basket) == 1
