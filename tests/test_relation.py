"""Unit tests for the Relation container."""

import numpy as np
import pytest

from repro.errors import KernelError
from repro.mal.bat import BAT
from repro.mal.relation import Relation
from repro.storage import types as dt
from repro.storage.schema import Schema


@pytest.fixture
def rel():
    return Relation([
        ("a", BAT.from_values(dt.INT, [1, 2, 3])),
        ("s", BAT.from_values(dt.STRING, ["x", None, "z"], coerce=True)),
    ])


class TestConstruction:
    def test_from_rows(self):
        schema = Schema.parse([("a", "INT"), ("b", "FLOAT")])
        rel = Relation.from_rows(schema, [(1, 2.0), (None, None)])
        assert rel.to_rows() == [(1, 2.0), (None, None)]

    def test_from_rows_empty(self):
        schema = Schema.parse([("a", "INT")])
        rel = Relation.from_rows(schema, [])
        assert rel.row_count == 0
        assert rel.names == ["a"]

    def test_empty(self):
        schema = Schema.parse([("a", "INT"), ("b", "STRING")])
        rel = Relation.empty(schema)
        assert rel.row_count == 0 and rel.names == ["a", "b"]

    def test_duplicate_column_rejected(self, rel):
        with pytest.raises(KernelError):
            rel.add("a", BAT.from_values(dt.INT, [1, 2, 3]))

    def test_length_mismatch_rejected(self, rel):
        with pytest.raises(KernelError):
            rel.add("b", BAT.from_values(dt.INT, [1]))

    def test_names_lowercased(self):
        rel = Relation([("A", BAT.from_values(dt.INT, [1]))])
        assert rel.names == ["a"]
        assert rel.column("A").tolist() == [1]


class TestAccess:
    def test_row_count(self, rel):
        assert len(rel) == 3 and rel.row_count == 3

    def test_contains(self, rel):
        assert "a" in rel and "missing" not in rel

    def test_missing_column(self, rel):
        with pytest.raises(KernelError):
            rel.column("zz")

    def test_schema_roundtrip(self, rel):
        schema = rel.schema()
        assert schema.names == ["a", "s"]
        assert schema.types == [dt.INT, dt.STRING]

    def test_row(self, rel):
        assert rel.row(1) == (2, None)

    def test_to_dict(self, rel):
        assert rel.to_dict() == {"a": [1, 2, 3], "s": ["x", None, "z"]}


class TestDerivation:
    def test_take(self, rel):
        out = rel.take(np.array([2, 0], dtype=np.int64))
        assert out.to_rows() == [(3, "z"), (1, "x")]

    def test_select_columns(self, rel):
        out = rel.select_columns(["s"])
        assert out.names == ["s"]

    def test_renamed(self, rel):
        out = rel.renamed(["x", "y"])
        assert out.names == ["x", "y"]
        assert out.column("x").tolist() == [1, 2, 3]

    def test_renamed_wrong_count(self, rel):
        with pytest.raises(KernelError):
            rel.renamed(["only_one"])

    def test_concat(self, rel):
        both = rel.concat(rel)
        assert both.row_count == 6
        assert both.to_rows()[:3] == rel.to_rows()

    def test_concat_name_mismatch(self, rel):
        other = rel.renamed(["a", "t"])
        with pytest.raises(KernelError):
            rel.concat(other)

    def test_concat_does_not_mutate(self, rel):
        rel.concat(rel)
        assert rel.row_count == 3

    def test_slice_rows(self, rel):
        assert rel.slice_rows(1, 3).to_rows() == [(2, None), (3, "z")]


class TestPretty:
    def test_header_and_null(self, rel):
        text = rel.pretty()
        assert "a" in text and "NULL" in text

    def test_truncation_notice(self):
        rel = Relation([("a", BAT.from_values(dt.INT, list(range(50))))])
        assert "more rows" in rel.pretty(limit=10)
