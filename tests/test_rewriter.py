"""Unit tests for the continuous-plan rewriter (the DataCell rewrite)."""

import pytest

from repro.core.rewriter import (plan_diff, rewrite_summary,
                                 rewrite_to_continuous)
from repro.mal.compiler import compile_plan
from repro.sql import compile_select
from repro.storage import Schema


@pytest.fixture
def catalog(emp_catalog):
    emp_catalog.create_stream("s", Schema.parse(
        [("k", "INT"), ("v", "FLOAT")]))
    return emp_catalog


def continuous(catalog, sql, name="datacell.q"):
    prog = compile_plan(compile_select(sql, catalog))
    return prog, rewrite_to_continuous(prog, ["s"], name)


class TestRewrite:
    def test_kind_becomes_factory(self, catalog):
        _one, cont = continuous(catalog, "SELECT k FROM s [RANGE 4]")
        assert cont.kind == "factory"
        assert cont.pretty().startswith("factory datacell.q();")

    def test_stream_binds_redirected(self, catalog):
        one, cont = continuous(catalog,
                               "SELECT k, v FROM s [RANGE 4 SLIDE 2]")
        assert "basket.bind" in cont.opcodes()
        assert not any(
            i.opcode == "sql.bind" and i.args[0].value == "s"
            for i in cont.instructions)

    def test_table_binds_untouched(self, catalog):
        sql = ("SELECT e.k FROM s [RANGE 4] e, dept d "
               "WHERE e.k = d.budget")
        one, cont = continuous(catalog, sql)
        table_binds = [i for i in cont.instructions
                       if i.opcode == "sql.bind"]
        assert table_binds, "dept columns must stay sql.bind"
        assert all(i.args[0].value == "dept" for i in table_binds)

    def test_lock_drain_unlock_brackets(self, catalog):
        _one, cont = continuous(catalog, "SELECT k FROM s [RANGE 4]")
        ops = cont.opcodes()
        assert ops[0] == "basket.lock"
        assert ops[-2:] == ["basket.drain", "basket.unlock"]

    def test_result_becomes_basket_emit(self, catalog):
        _one, cont = continuous(catalog, "SELECT k FROM s [RANGE 4]")
        assert "basket.emit" in cont.opcodes()
        assert "sql.resultSet" not in cont.opcodes()

    def test_original_program_untouched(self, catalog):
        one, _cont = continuous(catalog, "SELECT k FROM s [RANGE 4]")
        assert one.kind == "query"
        assert "basket.lock" not in one.opcodes()

    def test_multi_stream_brackets(self, catalog):
        catalog.create_stream("s2", Schema.parse([("k", "INT")]))
        prog = compile_plan(compile_select(
            "SELECT a.k FROM s [RANGE 4] a, s2 [RANGE 4] b "
            "WHERE a.k = b.k", catalog))
        cont = rewrite_to_continuous(prog, ["s", "s2"])
        assert cont.opcodes().count("basket.lock") == 2
        assert cont.opcodes().count("basket.unlock") == 2


class TestDiffAndSummary:
    def test_diff_has_both_columns(self, catalog):
        one, cont = continuous(catalog, "SELECT k FROM s [RANGE 4]")
        diff = plan_diff(one, cont)
        assert "-- one-time plan --" in diff
        assert "-- continuous plan --" in diff
        assert "basket.bind" in diff

    def test_summary(self, catalog):
        one, cont = continuous(catalog, "SELECT k, v FROM s [RANGE 4]")
        summary = rewrite_summary(one, cont)
        assert summary["kind"] == "factory"
        assert summary["binds_redirected"] == 2
        assert summary["baskets_locked"] == 1
        assert summary["after_ops"] > summary["before_ops"]
