"""Unit tests for kernel selections (candidate-list producers)."""

import numpy as np
import pytest

from repro.errors import KernelError
from repro.mal import kernel as K
from repro.mal.bat import BAT
from repro.storage import types as dt


@pytest.fixture
def ints():
    return BAT.from_values(dt.INT, [5, 2, None, 9, 2, 7], coerce=True)


@pytest.fixture
def floats():
    return BAT.from_values(dt.FLOAT, [1.5, None, 3.5, -2.0], coerce=True)


@pytest.fixture
def strings():
    return BAT.from_values(dt.STRING,
                           ["apple", "banana", None, "apricot", "fig"],
                           coerce=True)


class TestSelectRange:
    def test_closed_range(self, ints):
        assert K.select_range(ints, 2, 7).tolist() == [0, 1, 4, 5]

    def test_open_low(self, ints):
        assert K.select_range(ints, 2, 7,
                              low_inclusive=False).tolist() == [0, 5]

    def test_open_high(self, ints):
        assert K.select_range(ints, 2, 7,
                              high_inclusive=False).tolist() == [0, 1, 4]

    def test_unbounded_low(self, ints):
        assert K.select_range(ints, None, 5).tolist() == [0, 1, 4]

    def test_unbounded_high(self, ints):
        assert K.select_range(ints, 7, None).tolist() == [3, 5]

    def test_unbounded_both_excludes_nil(self, ints):
        assert K.select_range(ints, None, None).tolist() == [0, 1, 3, 4, 5]

    def test_anti(self, ints):
        # anti of [2,7] keeps values outside, never nil
        assert K.select_range(ints, 2, 7, anti=True).tolist() == [3]

    def test_with_candidates(self, ints):
        cand = np.array([0, 3, 4], dtype=np.int64)
        assert K.select_range(ints, 2, 7, cand=cand).tolist() == [0, 4]

    def test_float_range(self, floats):
        assert K.select_range(floats, 0.0, 3.5).tolist() == [0, 2]

    def test_string_range(self, strings):
        assert K.select_range(strings, "apple",
                              "banana").tolist() == [0, 1, 3]


class TestThetaSelect:
    @pytest.mark.parametrize("op,expected", [
        ("==", [1, 4]), ("!=", [0, 3, 5]), ("<", []),
        ("<=", [1, 4]), (">", [0, 3, 5]), (">=", [0, 1, 3, 4, 5]),
    ])
    def test_ops(self, ints, op, expected):
        assert K.theta_select(ints, op, 2).tolist() == expected

    def test_nil_constant_selects_nothing(self, ints):
        assert K.theta_select(ints, "==", None).tolist() == []

    def test_bad_operator(self, ints):
        with pytest.raises(KernelError):
            K.theta_select(ints, "~", 2)

    def test_with_candidates(self, ints):
        cand = np.array([1, 3], dtype=np.int64)
        assert K.theta_select(ints, ">", 1, cand=cand).tolist() == [1, 3]

    def test_string_equality(self, strings):
        assert K.theta_select(strings, "==", "fig").tolist() == [4]


class TestMaskSelect:
    def test_keeps_true_only(self):
        mask = BAT.from_array(dt.BOOLEAN,
                              np.array([1, 0, -1, 1], dtype=np.int8))
        assert K.mask_select(mask).tolist() == [0, 3]

    def test_requires_boolean(self, ints):
        with pytest.raises(KernelError):
            K.mask_select(ints)

    def test_with_candidates(self):
        mask = BAT.from_array(dt.BOOLEAN,
                              np.array([1, 1], dtype=np.int8))
        cand = np.array([5, 9], dtype=np.int64)
        assert K.mask_select(mask, cand).tolist() == [5, 9]


class TestNilSelect:
    def test_is_null(self, ints):
        assert K.nil_select(ints).tolist() == [2]

    def test_is_not_null(self, ints):
        assert K.nil_select(ints, anti=True).tolist() == [0, 1, 3, 4, 5]

    def test_strings(self, strings):
        assert K.nil_select(strings).tolist() == [2]


class TestInSelect:
    def test_numeric(self, ints):
        assert K.in_select(ints, [2, 9]).tolist() == [1, 3, 4]

    def test_anti_excludes_nil(self, ints):
        assert K.in_select(ints, [2, 9], anti=True).tolist() == [0, 5]

    def test_strings(self, strings):
        assert K.in_select(strings, ["fig", "apple"]).tolist() == [0, 4]

    def test_none_items_ignored(self, ints):
        assert K.in_select(ints, [2, None]).tolist() == [1, 4]

    def test_empty_needles(self, ints):
        assert K.in_select(ints, []).tolist() == []


class TestLikeSelect:
    def test_prefix(self, strings):
        assert K.like_select(strings, "ap%").tolist() == [0, 3]

    def test_underscore(self, strings):
        assert K.like_select(strings, "f_g").tolist() == [4]

    def test_contains(self, strings):
        assert K.like_select(strings, "%an%").tolist() == [1]

    def test_anti(self, strings):
        assert K.like_select(strings, "ap%", anti=True).tolist() == [1, 4]

    def test_requires_string(self, ints):
        with pytest.raises(KernelError):
            K.like_select(ints, "a%")

    def test_regex_metachars_escaped(self):
        bat = BAT.from_values(dt.STRING, ["a.c", "abc"], coerce=True)
        assert K.like_select(bat, "a.c").tolist() == [0]

    def test_full_match_required(self, strings):
        # 'fig' should not match pattern 'f'
        assert K.like_select(strings, "f").tolist() == []


class TestFetch:
    def test_fetch_values(self, ints):
        cand = np.array([3, 5], dtype=np.int64)
        assert K.fetch(ints, cand).tolist() == [9, 7]

    def test_fetch_preserves_nil(self, ints):
        cand = np.array([2], dtype=np.int64)
        assert K.fetch(ints, cand).tolist() == [None]

    def test_const_column(self):
        out = K.const_column(dt.INT, 7, 3)
        assert out.tolist() == [7, 7, 7]

    def test_const_column_nil(self):
        assert K.const_column(dt.FLOAT, None, 2).tolist() == [None, None]

    def test_const_column_string(self):
        assert K.const_column(dt.STRING, "x", 2).tolist() == ["x", "x"]


class TestCandidateAlgebra:
    def test_intersect(self):
        a = np.array([1, 3, 5], dtype=np.int64)
        b = np.array([3, 4, 5], dtype=np.int64)
        assert K.cand_intersect(a, b).tolist() == [3, 5]

    def test_union(self):
        a = np.array([1, 3], dtype=np.int64)
        b = np.array([2, 3], dtype=np.int64)
        assert K.cand_union(a, b).tolist() == [1, 2, 3]

    def test_difference(self):
        a = np.array([1, 2, 3], dtype=np.int64)
        b = np.array([2], dtype=np.int64)
        assert K.cand_difference(a, b).tolist() == [1, 3]
