"""Randomized SQL generation: every generated query must agree across
(a) the tree executor on the unoptimized plan, (b) the tree executor on
the optimized plan, and (c) the MAL interpreter — the strongest
whole-stack consistency check in the suite."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mal.compiler import compile_plan
from repro.mal.interpreter import MALContext, execute
from repro.sql import compile_select
from repro.sql.executor import ExecutionContext, PlanExecutor
from repro.storage import Schema
from repro.storage.catalog import Catalog

NUM_COLS = ["id", "salary"]
STR_COLS = ["dept"]
AGGS = ["count(*)", "count(salary)", "sum(salary)", "avg(salary)",
        "min(id)", "max(salary)", "stddev(salary)"]


def fresh_catalog() -> Catalog:
    catalog = Catalog()
    emp = catalog.create_table("emp", Schema.parse(
        [("id", "INT"), ("dept", "STRING"), ("salary", "FLOAT")]))
    emp.insert_rows([
        (1, "a", 100.0), (2, "a", 200.0), (3, "b", 50.0),
        (4, None, None), (5, "b", 150.0), (6, "c", 100.0),
        (7, None, 75.0), (8, "a", None),
    ])
    dept = catalog.create_table("dept", Schema.parse(
        [("name", "STRING"), ("budget", "INT")]))
    dept.insert_rows([("a", 1000), ("b", 500), ("c", 250), (None, 9)])
    return catalog


@st.composite
def scalar_expr(draw):
    base = draw(st.sampled_from(NUM_COLS))
    shape = draw(st.sampled_from(
        ["{c}", "{c} + 1", "{c} * 2", "{c} - id", "abs({c})",
         "{c} / 4", "coalesce({c}, 0)"]))
    return shape.format(c=base)


@st.composite
def predicate(draw):
    kind = draw(st.sampled_from(
        ["num_cmp", "str_eq", "is_null", "in_list", "like", "between"]))
    if kind == "num_cmp":
        col = draw(st.sampled_from(NUM_COLS))
        op = draw(st.sampled_from(["<", "<=", ">", ">=", "=", "<>"]))
        value = draw(st.integers(0, 200))
        return f"{col} {op} {value}"
    if kind == "str_eq":
        value = draw(st.sampled_from(["a", "b", "zz"]))
        return f"dept = '{value}'"
    if kind == "is_null":
        col = draw(st.sampled_from(NUM_COLS + STR_COLS))
        negate = "NOT " if draw(st.booleans()) else ""
        return f"{col} IS {negate}NULL"
    if kind == "in_list":
        return "id IN (1, 3, 5, 7)"
    if kind == "like":
        return draw(st.sampled_from(
            ["dept LIKE 'a%'", "dept NOT LIKE '%b%'"]))
    low = draw(st.integers(0, 100))
    return f"salary BETWEEN {low} AND {low + 80}"


@st.composite
def simple_query(draw):
    """SELECT exprs FROM emp [WHERE ...] [ORDER BY 1, id] [LIMIT n]."""
    exprs = draw(st.lists(scalar_expr(), min_size=1, max_size=3))
    sql = "SELECT " + ", ".join(exprs) + " FROM emp"
    if draw(st.booleans()):
        conjuncts = draw(st.lists(predicate(), min_size=1, max_size=2))
        joiner = draw(st.sampled_from([" AND ", " OR "]))
        sql += " WHERE " + joiner.join(conjuncts)
    sql += " ORDER BY 1, id"
    if draw(st.booleans()):
        sql += f" LIMIT {draw(st.integers(1, 6))}"
    return sql


@st.composite
def aggregate_query(draw):
    aggs = draw(st.lists(st.sampled_from(AGGS), min_size=1, max_size=3,
                         unique=True))
    group = draw(st.booleans())
    if group:
        sql = ("SELECT dept, " + ", ".join(aggs)
               + " FROM emp")
        if draw(st.booleans()):
            sql += " WHERE " + draw(predicate())
        sql += " GROUP BY dept"
        if draw(st.booleans()):
            sql += " HAVING count(*) >= 1"
        sql += " ORDER BY dept"
    else:
        sql = "SELECT " + ", ".join(aggs) + " FROM emp"
        if draw(st.booleans()):
            sql += " WHERE " + draw(predicate())
    return sql


@st.composite
def join_query(draw):
    join_kind = draw(st.sampled_from(["comma", "on", "left"]))
    if join_kind == "comma":
        sql = ("SELECT e.id, d.budget FROM emp e, dept d "
               "WHERE e.dept = d.name")
        if draw(st.booleans()):
            sql += " AND e.salary > 60"
    elif join_kind == "on":
        sql = ("SELECT e.id, d.budget FROM emp e JOIN dept d "
               "ON e.dept = d.name")
    else:
        sql = ("SELECT e.id, d.budget FROM emp e LEFT JOIN dept d "
               "ON e.dept = d.name")
    sql += " ORDER BY e.id, d.budget"
    return sql


def norm(rows):
    out = []
    for row in rows:
        out.append(tuple(round(v, 9) if isinstance(v, float) else v
                         for v in row))
    return out


def assert_all_paths_agree(sql):
    catalog = fresh_catalog()
    optimized = compile_select(sql, catalog, optimize=True)
    raw = compile_select(sql, catalog, optimize=False)
    a = PlanExecutor(ExecutionContext(catalog)).execute(raw).to_rows()
    b = PlanExecutor(
        ExecutionContext(catalog)).execute(optimized).to_rows()
    c = execute(compile_plan(optimized), MALContext(catalog)).to_rows()
    assert norm(a) == norm(b), (sql, a, b)
    assert norm(b) == norm(c), (sql, b, c)


class TestQueryFuzz:
    @settings(max_examples=60, deadline=None)
    @given(simple_query())
    def test_simple_queries(self, sql):
        assert_all_paths_agree(sql)

    @settings(max_examples=60, deadline=None)
    @given(aggregate_query())
    def test_aggregate_queries(self, sql):
        assert_all_paths_agree(sql)

    @settings(max_examples=20, deadline=None)
    @given(join_query())
    def test_join_queries(self, sql):
        assert_all_paths_agree(sql)

    @settings(max_examples=25, deadline=None)
    @given(simple_query(), simple_query())
    def test_union_of_random_queries(self, a, b):
        # strip ORDER BY/LIMIT (not allowed inside union branches)
        core_a = a.split(" ORDER BY")[0]
        core_b = b.split(" ORDER BY")[0]
        catalog = fresh_catalog()
        width_a = len(compile_select(core_a, catalog).schema)
        width_b = len(compile_select(core_b, catalog).schema)
        if width_a != width_b:
            return  # column counts must match
        assert_all_paths_agree(
            f"{core_a} UNION ALL {core_b} ORDER BY 1")
