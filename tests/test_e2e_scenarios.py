"""End-to-end scenario tests mirroring the demo's storylines:
multi-query networks, pause/resume, failure injection, hybrid
stream+table processing, clocks."""

import pytest

from repro.core.clock import WallClock
from repro.core.engine import DataCellEngine
from repro.core.receptor import ThreadedReceptor
from repro.streams.source import ListSource, RateSource


class TestMultiQueryNetwork:
    def test_many_queries_one_stream(self, engine):
        for threshold in range(5):
            engine.register_continuous(
                f"SELECT sid FROM sensors WHERE temp > {threshold * 10}",
                name=f"q{threshold}")
        engine.attach_source("sensors", RateSource(
            [(i, float(i)) for i in range(50)], rate=1000))
        engine.run_until_drained()
        assert not engine.scheduler.failed
        for threshold in range(5):
            rows = engine.results(f"q{threshold}").rows()
            assert len(rows) == 50 - threshold * 10 - 1
        # every tuple consumed by all five queries, then dropped
        assert len(engine.basket("sensors")) == 0

    def test_mixed_modes_one_stream(self, engine):
        inc = engine.register_continuous(
            "SELECT count(*) FROM sensors [RANGE 10 SLIDE 5]",
            mode="incremental", name="inc")
        ree = engine.register_continuous(
            "SELECT count(*) FROM sensors [RANGE 10 SLIDE 5]",
            mode="reeval", name="ree")
        engine.attach_source("sensors", RateSource(
            [(i, float(i)) for i in range(30)], rate=1000))
        engine.run_until_drained()
        assert engine.results("inc").rows() == engine.results(
            "ree").rows()

    def test_one_time_query_while_standing_queries_run(self, engine):
        engine.register_continuous(
            "SELECT sid FROM sensors [RANGE 1000]", name="retainer")
        engine.feed("sensors", [(1, 10.0), (2, 20.0)])
        engine.step()
        rows = engine.query("SELECT count(*), max(temp) "
                            "FROM sensors").to_rows()
        assert rows == [(2, 20.0)]


class TestPauseResumeScenario:
    def test_paused_query_catches_up(self, engine):
        engine.register_continuous(
            "SELECT count(*) FROM sensors [RANGE 5]", name="q")
        engine.feed("sensors", [(i, 0.0) for i in range(5)])
        engine.step()
        assert len(engine.results("q")) == 1
        engine.pause_query("q")
        engine.feed("sensors", [(i, 0.0) for i in range(10)])
        engine.step()
        assert len(engine.results("q")) == 1
        engine.resume_query("q")
        engine.step()
        # catches up on both missed windows
        assert len(engine.results("q")) == 3

    def test_paused_stream_buffers_at_source(self, engine):
        engine.register_continuous("SELECT sid FROM sensors", name="q")
        engine.attach_source("sensors", ListSource(
            [(0, (1, 1.0)), (10, (2, 2.0))]))
        engine.pause_stream("sensors")
        engine.step(advance_ms=20)
        assert engine.results("q").rows() == []
        engine.resume_stream("sensors")
        engine.step()
        assert engine.results("q").rows() == [(1,), (2,)]


class TestFailureInjection:
    def test_failing_query_quarantined_others_continue(self, engine):
        # division by zero yields NULL (not an error), so force a
        # failure through a query whose factory we sabotage
        bad = engine.register_continuous("SELECT sid FROM sensors",
                                         name="bad")
        good = engine.register_continuous("SELECT temp FROM sensors",
                                          name="good")

        def explode(now):
            raise RuntimeError("injected")

        bad.factory._evaluate = explode
        engine.feed("sensors", [(1, 1.0)])
        engine.step()
        assert bad.factory.state == "failed"
        assert engine.results("good").rows() == [(1.0,)]
        assert engine.scheduler.failed
        # failed factory no longer blocks the basket forever
        engine.remove_query("bad")
        engine.feed("sensors", [(2, 2.0)])
        engine.step()
        assert len(engine.basket("sensors")) == 0

    def test_malformed_rows_rejected_without_corruption(self, engine):
        with pytest.raises(Exception):
            engine.feed("sensors", [(1,)])  # wrong arity
        engine.feed("sensors", [(1, 1.0)])
        assert engine.query("SELECT count(*) FROM sensors"
                            ).to_rows() == [(1,)]


class TestOutOfOrderAndEdgeCases:
    def test_empty_stream_run(self, engine):
        engine.register_continuous("SELECT sid FROM sensors", name="q")
        engine.run_until_drained()
        assert engine.results("q").rows() == []

    def test_source_slower_than_windows(self, engine):
        engine.register_continuous(
            "SELECT count(*) FROM sensors [RANGE 2 SECONDS "
            "SLIDE 1 SECONDS]", name="q")
        engine.attach_source("sensors", ListSource(
            [(0, (1, 1.0)), (3500, (2, 2.0))]))
        engine.run_for(5000, step_ms=100)
        counts = [r[0] for r in engine.results("q").rows()]
        assert counts[0] == 1   # window [0, 2000)
        assert 1 in counts and 0 in counts  # quiet middle windows

    def test_burst_arrivals_same_timestamp(self, engine):
        engine.register_continuous(
            "SELECT count(*) FROM sensors [RANGE 10]", name="q")
        engine.attach_source("sensors", ListSource(
            [(5, (i, 0.0)) for i in range(25)]))
        engine.run_until_drained()
        assert engine.results("q").rows() == [(10,), (10,)]


class TestThreadedLiveMode:
    def test_threaded_receptor_delivers(self, engine):
        clock = WallClock()
        live = DataCellEngine(clock=clock)
        live.execute("CREATE STREAM s (k INT)")
        live.register_continuous("SELECT k FROM s", name="q")
        receptor = ThreadedReceptor(
            "r", live.basket("s"),
            RateSource([(i,) for i in range(20)], rate=2000),
            clock)
        receptor.start()
        import time

        deadline = time.monotonic() + 2.0
        rows = []
        while time.monotonic() < deadline and len(rows) < 20:
            live.scheduler.step()
            rows = live.results("q").rows()
            time.sleep(0.005)
        receptor.stop()
        assert [r[0] for r in rows] == list(range(20))


class TestPersistentIntegration:
    def test_snapshot_roundtrip_through_engine(self, engine, tmp_path):
        from repro.storage.persistence import load_catalog, save_catalog

        engine.execute("CREATE TABLE results (sid INT, n INT)")
        engine.execute("INSERT INTO results VALUES (1, 10)")
        save_catalog(engine.catalog, str(tmp_path))
        fresh = DataCellEngine()
        load_catalog(str(tmp_path), into=fresh.catalog)
        assert fresh.query("SELECT * FROM results").to_rows() == \
            [(1, 10)]
        # streams come back as definitions; recreate the basket side
        assert fresh.catalog.has_stream("sensors")
