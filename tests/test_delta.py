"""Z-set delta execution (:mod:`repro.core.delta`): unit tests for the
delta bounds, weighted kernels, the min/max extreme bag, plus
engine-level coverage of the fallback ladder, non-divisible slides,
time-window retraction storms, fingerprint chaining and the recycler
admission/decay knobs that ride along in this change."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.basket import Basket
from repro.core.delta import _ExtremeBag
from repro.core.engine import DataCellEngine
from repro.core.incremental import UnsupportedIncremental
from repro.core.recycler import REUSE_DECAY_SCANS, Recycler
from repro.core.windows import WindowSpec, WindowState
from repro.errors import WindowError
from repro.mal import kernel as K
from repro.mal.bat import BAT
from repro.storage import Schema
from repro.storage import types as dt
from repro.streams.source import ListSource, RateSource


# ---------------------------------------------------------------------------
# delta bounds: the Z-set difference of consecutive windows
# ---------------------------------------------------------------------------


@pytest.fixture
def basket():
    return Basket("s", Schema.parse([("k", "INT")]))


def fill(basket, n, start_ts=0, step_ts=0):
    for i in range(n):
        basket.append_rows([(i,)], now=start_ts + i * step_ts)


class TestDeltaBounds:
    def test_first_firing_is_all_arrivals(self, basket):
        sub = basket.subscribe("q")
        state = WindowState(WindowSpec("tuple", 4, 2), basket, sub)
        fill(basket, 4)
        window, arrive, expire = state.delta_bounds(0)
        assert window == (0, 4)
        assert arrive == (0, 4)
        assert expire[0] == expire[1]

    def test_sliding_diff(self, basket):
        sub = basket.subscribe("q")
        state = WindowState(WindowSpec("tuple", 4, 2), basket, sub)
        fill(basket, 6)
        state.advance(0, retain_expired=True)
        window, arrive, expire = state.delta_bounds(0)
        assert window == (2, 6)
        assert arrive == (4, 6)
        assert expire == (0, 2)

    def test_expiry_slice_stays_readable(self, basket):
        """The retraction slice [plo, lo) must survive the advance
        that follows the previous firing (retain_expired=True)."""
        sub = basket.subscribe("q")
        state = WindowState(WindowSpec("tuple", 4, 2), basket, sub)
        fill(basket, 6)
        state.advance(0, retain_expired=True)
        basket.vacuum()
        _, _, (elo, ehi) = state.delta_bounds(0)
        lo, hi = basket.clamp_range(elo, ehi)
        assert (lo, hi) == (elo, ehi)  # nothing clamped away
        assert basket.relation(elo, ehi).row_count == ehi - elo

    def test_eager_release_frees_expiry_slice(self, basket):
        """Without retain_expired the old slice is gone — documents
        why reeval/incremental cursors cannot feed the delta mode."""
        sub = basket.subscribe("q")
        state = WindowState(WindowSpec("tuple", 4, 2), basket, sub)
        fill(basket, 6)
        state.advance(0)
        basket.vacuum()
        _, _, (elo, ehi) = state.delta_bounds(0)
        assert basket.clamp_range(elo, ehi) != (elo, ehi)

    def test_tumbling_has_no_overlap(self, basket):
        sub = basket.subscribe("q")
        state = WindowState(WindowSpec("tuple", 3), basket, sub)
        fill(basket, 6)
        state.advance(0, retain_expired=True)
        window, arrive, expire = state.delta_bounds(0)
        assert window == (3, 6)
        assert arrive == (3, 6)
        assert expire == (0, 3)

    def test_unwindowed_has_no_delta_bounds(self, basket):
        sub = basket.subscribe("q")
        state = WindowState(WindowSpec.none(), basket, sub)
        with pytest.raises(WindowError):
            state.delta_bounds(0)


# ---------------------------------------------------------------------------
# weighted kernels
# ---------------------------------------------------------------------------


class TestWeightedKernels:
    def test_weighted_count_signed(self):
        gids = np.array([0, 0, 1, 0], dtype=np.int64)
        w = np.array([1, 1, 1, -1], dtype=np.int64)
        assert K.weighted_count(gids, w, 2).tolist() == [1, 1]

    def test_weighted_count_empty(self):
        assert K.weighted_count(np.empty(0, np.int64),
                                np.empty(0, np.int64), 3).tolist() \
            == [0, 0, 0]

    def test_weighted_sum_skips_nil(self):
        bat = BAT.from_values(dt.FLOAT, [1.0, None, 3.0, 1.0],
                              coerce=True)
        gids = np.array([0, 0, 0, 0], dtype=np.int64)
        w = np.array([1, 1, 1, -1], dtype=np.int64)
        sums, counts = K.weighted_sum(bat, gids, w, 1)
        assert sums.tolist() == [3.0]
        assert counts.tolist() == [1]

    def test_weighted_moments_retraction_cancels(self):
        bat = BAT.from_values(dt.FLOAT, [2.0, 4.0, 4.0])
        gids = np.zeros(3, dtype=np.int64)
        w = np.array([1, 1, -1], dtype=np.int64)
        n, s, ss = K.weighted_moments(bat, gids, w, 1)
        assert n.tolist() == [1.0]
        assert s.tolist() == [2.0]
        assert ss.tolist() == [4.0]

    def test_zset_consolidate_cancels_pairs(self):
        keys = BAT.from_values(dt.INT, [7, 7, 8, 8, 9])
        w = np.array([1, -1, 1, 1, -1], dtype=np.int64)
        reps, sums = K.zset_consolidate([keys], w)
        out = {int(keys.values[r]): int(s)
               for r, s in zip(reps.tolist(), sums.tolist())}
        assert out == {8: 2, 9: -1}

    def test_zset_consolidate_empty(self):
        reps, sums = K.zset_consolidate([], np.empty(0, np.int64))
        assert reps.tolist() == [] and sums.tolist() == []


# ---------------------------------------------------------------------------
# min/max extreme bag
# ---------------------------------------------------------------------------


class TestExtremeBag:
    def test_tracks_max_without_rescan(self):
        counter = [0]
        bag = _ExtremeBag(take_min=False, rescan_counter=counter)
        for v in (1.0, 5.0, 3.0):
            bag.add(v, 1)
        assert bag.current() == 5.0
        assert counter[0] == 0

    def test_retracting_extreme_forces_rescan(self):
        counter = [0]
        bag = _ExtremeBag(take_min=False, rescan_counter=counter)
        for v in (1.0, 5.0, 3.0):
            bag.add(v, 1)
        bag.add(5.0, -1)
        assert bag.current() == 3.0
        assert counter[0] == 1

    def test_retracting_non_extreme_is_free(self):
        counter = [0]
        bag = _ExtremeBag(take_min=True, rescan_counter=counter)
        for v in (1.0, 5.0, 3.0):
            bag.add(v, 1)
        bag.add(5.0, -1)
        assert bag.current() == 1.0
        assert counter[0] == 0

    def test_transient_negative_multiplicity(self):
        """Within one firing the expiry side may apply before the
        arrival side; a value dipping below zero and coming back must
        not corrupt the extreme."""
        counter = [0]
        bag = _ExtremeBag(take_min=False, rescan_counter=counter)
        bag.add(5.0, 1)
        bag.add(7.0, -1)   # cross-term retraction arrives first
        bag.add(7.0, 1)    # cancelled: net weight zero
        assert bag.current() == 5.0
        bag.add(7.0, 1)    # now a real insert
        assert bag.current() == 7.0
        bag.add(7.0, -1)   # dips to zero while cached as extreme
        bag.add(7.0, 1)
        assert bag.current() == 7.0
        bag.add(7.0, -1)   # retract it for real
        assert bag.current() == 5.0

    def test_duplicate_values_need_full_retraction(self):
        counter = [0]
        bag = _ExtremeBag(take_min=False, rescan_counter=counter)
        bag.add(9.0, 2)
        bag.add(1.0, 1)
        bag.add(9.0, -1)
        assert bag.current() == 9.0   # one copy still live
        bag.add(9.0, -1)
        assert bag.current() == 1.0


# ---------------------------------------------------------------------------
# engine-level: mode resolution, fallback ladder, non-divisible slides
# ---------------------------------------------------------------------------


def normalize(row):
    """Round floats: running Z-set sums are not associative with the
    full-window sums reeval computes (tiny addends can be absorbed),
    and ``+ 0.0`` folds a cancelled ``-0.0`` into ``+0.0``."""
    return tuple(round(v, 6) + 0.0 if isinstance(v, float) else v
                 for v in row)


def run_engine(rows, query, mode, **engine_kwargs):
    engine = DataCellEngine(**engine_kwargs)
    engine.execute("CREATE STREAM s (k INT, v FLOAT)")
    q = engine.register_continuous(query, mode=mode, name="q")
    engine.attach_source("s", RateSource(rows, rate=100000))
    engine.run_until_drained()
    assert not engine.scheduler.failed, engine.scheduler.failed
    batches = [sorted(map(repr, map(normalize, r.to_rows())))
               for _t, r in engine.results("q").batches]
    return engine, q.mode, batches


ROWS = [(i % 4, float((i * 7) % 23)) for i in range(60)]


class TestModeResolution:
    def test_non_divisible_slide_delta_only(self):
        query = ("SELECT k, count(*), sum(v) FROM s [RANGE 10 SLIDE 3] "
                 "GROUP BY k")
        with pytest.raises(UnsupportedIncremental):
            run_engine(ROWS, query, "incremental")
        _, m1, r1 = run_engine(ROWS, query, "reeval")
        _, m3, r3 = run_engine(ROWS, query, "delta")
        assert m3 == "delta"
        assert r1 == r3
        assert len(r3) == (60 - 10) // 3 + 1

    def test_delta_falls_back_to_reeval(self):
        # DISTINCT aggregates have no mergeable/delta state
        query = ("SELECT k, count(DISTINCT v) FROM s [RANGE 10 SLIDE 5] "
                 "GROUP BY k")
        _, mode, _ = run_engine(ROWS, query, "delta")
        assert mode == "reeval"

    def test_delta_on_unwindowed_falls_back(self):
        _, mode, _ = run_engine(ROWS, "SELECT k, v FROM s WHERE v > 3",
                                "delta")
        assert mode == "reeval"

    def test_auto_still_prefers_incremental(self):
        query = "SELECT count(*) FROM s [RANGE 10 SLIDE 5]"
        _, mode, _ = run_engine(ROWS, query, "auto")
        assert mode == "incremental"


class TestTimeWindowRetractions:
    def drive(self, mode):
        """A burst followed by silence: each slide retracts most of the
        window while adding little — the retraction-heavy shrink path."""
        engine = DataCellEngine()
        engine.execute("CREATE STREAM s (k INT, v FLOAT)")
        q = engine.register_continuous(
            "SELECT k, count(*), sum(v), min(v), max(v) FROM s "
            "[RANGE 4 SECONDS SLIDE 1 SECONDS] GROUP BY k",
            mode=mode, name="q")
        events = [(i * 10, (i % 3, float(i))) for i in range(100)]
        events += [(6000 + i * 500, (i % 2, float(i))) for i in range(4)]
        engine.attach_source("s", ListSource(events))
        engine.run_for(14000, step_ms=100)
        assert not engine.scheduler.failed, engine.scheduler.failed
        return q.mode, [sorted(map(repr, r.to_rows()))
                        for _t, r in engine.results("q").batches]

    def test_shrinking_windows_agree(self):
        m1, r1 = self.drive("reeval")
        m3, r3 = self.drive("delta")
        assert m1 == "reeval" and m3 == "delta"
        assert r1 == r3
        # the storyline actually exercised shrink-to-empty windows
        assert any(not batch for batch in r3)


# ---------------------------------------------------------------------------
# hypothesis: three-way equivalence on retraction-heavy geometries
# ---------------------------------------------------------------------------


@st.composite
def delta_case(draw):
    n = draw(st.integers(10, 60))
    rows = [(draw(st.integers(0, 3)),
             draw(st.one_of(st.none(),
                            st.floats(-20, 20, allow_nan=False))))
            for _ in range(n)]
    size = draw(st.integers(2, 16))
    slide = draw(st.integers(1, size))  # any slide <= size, divisible
    return rows, size, slide            # or not


class TestPropertyDeltaEquivalence:
    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(delta_case())
    def test_random_geometries_agree(self, case):
        rows, size, slide = case
        query = (f"SELECT k, count(*), count(v), sum(v), avg(v), "
                 f"min(v), max(v) FROM s [RANGE {size} SLIDE {slide}] "
                 f"GROUP BY k")
        _, _, r1 = run_engine(rows, query, "reeval")
        _, m3, r3 = run_engine(rows, query, "delta")
        assert m3 == "delta"
        assert r1 == r3

    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(delta_case())
    def test_random_select_project_agree(self, case):
        rows, size, slide = case
        query = (f"SELECT k, v * 2 FROM s [RANGE {size} SLIDE {slide}] "
                 f"WHERE v > 0")
        _, _, r1 = run_engine(rows, query, "reeval")
        _, m3, r3 = run_engine(rows, query, "delta")
        assert m3 == "delta"
        assert r1 == r3


# ---------------------------------------------------------------------------
# satellite: fingerprint chaining from incremental/delta emissions
# ---------------------------------------------------------------------------


class TestEmitFingerprints:
    def chained_engine(self, mode):
        engine = DataCellEngine(recycler_enabled=True)
        engine.execute("CREATE STREAM s (k INT, v FLOAT)")
        engine.register_continuous(
            "SELECT k, sum(v) sv FROM s [RANGE 10 SLIDE 5] GROUP BY k",
            mode=mode, name="stage1", output_stream="mid")
        engine.register_continuous(
            "SELECT k, sv FROM mid WHERE sv > 0", mode="reeval",
            name="stage2")
        rows = [(i % 4, float(i % 7)) for i in range(200)]
        # slow enough that the stages interleave: each stage1 emission
        # is scanned by stage2 before the next one lands, so the
        # stamped oid range matches the downstream window exactly
        engine.attach_source("s", RateSource(rows, rate=5000))
        engine.run_until_drained()
        assert not engine.scheduler.failed, engine.scheduler.failed
        return engine

    @pytest.mark.parametrize("mode", ["incremental", "delta"])
    def test_emissions_are_stamped_and_chain(self, mode):
        engine = self.chained_engine(mode)
        assert engine.continuous_query("stage1").mode == mode
        stats = engine.recycler.stats()
        assert stats["chain_stamped"] > 0
        assert stats["chain_hits"] > 0
        assert engine.results("stage2").rows()  # results flowed through


# ---------------------------------------------------------------------------
# satellite: recycler admission floor + reuse decay
# ---------------------------------------------------------------------------


def int_payload(n=64):
    return np.arange(n, dtype=np.int64)


class TestRecyclerAdmission:
    def test_cheap_results_rejected(self):
        rec = Recycler(min_cost_ms=5.0)
        key = rec.instruction_key("fp", [("s", 0, 10)])
        rec.store(key, int_payload(), cost_ms=0.01)
        assert rec.lookup(key) == (False, None)
        assert rec.stats()["admission_rejects"] == 1

    def test_expensive_results_admitted(self):
        rec = Recycler(min_cost_ms=5.0)
        key = rec.instruction_key("fp", [("s", 0, 10)])
        rec.store(key, int_payload(), cost_ms=50.0)
        assert rec.lookup(key)[0] is True
        assert rec.stats()["admission_rejects"] == 0

    def test_zero_floor_admits_everything(self):
        rec = Recycler()
        key = rec.instruction_key("fp", [("s", 0, 10)])
        rec.store(key, int_payload(), cost_ms=0.0)
        assert rec.lookup(key)[0] is True

    def test_engine_knob_reaches_recycler(self):
        engine = DataCellEngine(recycler_enabled=True,
                                recycler_min_cost_ms=1e9)
        engine.execute("CREATE STREAM s (k INT, v FLOAT)")
        engine.register_continuous(
            "SELECT k, v FROM s WHERE v > 0", mode="reeval", name="q")
        engine.attach_source(
            "s", RateSource([(i % 3, float(i)) for i in range(100)],
                            rate=100000))
        engine.run_until_drained()
        stats = engine.recycler.stats()
        assert stats["min_cost_ms"] == 1e9
        assert stats["admission_rejects"] > 0
        assert stats["entries"] == 0


class TestReuseDecay:
    def test_decay_halves_reuse_counters(self):
        rec = Recycler()
        key = rec.instruction_key("fp", [("s", 0, 10)])
        rec.store(key, int_payload(), cost_ms=1.0)
        for _ in range(8):
            rec.lookup(key)
        entry = rec._entries[key]
        assert entry.reuses == 8
        for _ in range(REUSE_DECAY_SCANS):
            rec.evict_dead({})
        assert entry.reuses == 4
        assert rec.stats()["reuse_decays"] == 1

    def test_decay_runs_even_when_empty(self):
        rec = Recycler()
        for _ in range(REUSE_DECAY_SCANS):
            rec.evict_dead({})
        assert rec.stats()["reuse_decays"] == 1


# ---------------------------------------------------------------------------
# basket conservation + monitor pane
# ---------------------------------------------------------------------------


class TestDeltaHousekeeping:
    def test_basket_release_lags_one_window(self):
        engine = DataCellEngine()
        engine.execute("CREATE STREAM s (k INT, v FLOAT)")
        engine.register_continuous(
            "SELECT k, sum(v) FROM s [RANGE 10 SLIDE 5] GROUP BY k",
            mode="delta", name="q")
        engine.attach_source("s", RateSource(ROWS, rate=100000))
        engine.run_until_drained()
        basket = engine.basket("s")
        assert basket.total_in == 60
        assert basket.total_in == basket.total_dropped + len(basket)
        # delta retains the window plus the next retraction slice
        assert len(basket) <= 10 + 5

    def test_monitor_surfaces_delta_state(self):
        engine = DataCellEngine()
        engine.execute("CREATE STREAM s (k INT, v FLOAT)")
        engine.register_continuous(
            "SELECT k, sum(v), min(v) FROM s [RANGE 10 SLIDE 5] "
            "GROUP BY k", mode="delta", name="q")
        engine.attach_source("s", RateSource(ROWS, rate=100000))
        engine.run_until_drained()
        pane = engine.monitor.analysis()
        assert "delta: in=" in pane
        inter = engine.monitor.intermediates("q")
        assert "aggregate state" in inter or "group" in inter

    def test_delta_stats_exposed(self):
        engine = DataCellEngine()
        engine.execute("CREATE STREAM s (k INT, v FLOAT)")
        q = engine.register_continuous(
            "SELECT k, min(v) FROM s [RANGE 10 SLIDE 5] GROUP BY k",
            mode="delta", name="q")
        engine.attach_source("s", RateSource(ROWS, rate=100000))
        engine.run_until_drained()
        stats = q.factory.stats()
        assert stats["delta_rows_in"] > 0
        assert stats["delta_state_rows"] >= 0
        assert stats["delta_state_bytes"] > 0
