"""Unit tests for the SQL tokenizer."""

import pytest

from repro.errors import LexerError
from repro.sql.lexer import tokenize


def kinds(text):
    return [(t.kind, t.value) for t in tokenize(text)[:-1]]


class TestBasics:
    def test_keywords_case_insensitive(self):
        assert kinds("SELECT select SeLeCt") == [
            ("KEYWORD", "select")] * 3

    def test_identifiers_lowercased(self):
        assert kinds("MyTable") == [("IDENT", "mytable")]

    def test_quoted_identifier_preserved(self):
        assert kinds('"MyCol"') == [("IDENT", "MyCol")]

    def test_eof_token(self):
        tokens = tokenize("select")
        assert tokens[-1].kind == "EOF"

    def test_punctuation(self):
        assert [k for k, _v in kinds("( ) , . ; [ ]")] == ["PUNCT"] * 7


class TestNumbers:
    def test_integer(self):
        assert kinds("42") == [("NUMBER", 42)]

    def test_float(self):
        assert kinds("4.25") == [("NUMBER", 4.25)]

    def test_leading_dot(self):
        assert kinds(".5") == [("NUMBER", 0.5)]

    def test_scientific(self):
        assert kinds("1e3 2.5E-1") == [("NUMBER", 1000.0),
                                       ("NUMBER", 0.25)]

    def test_int_stays_int(self):
        value = tokenize("7")[0].value
        assert isinstance(value, int)


class TestStrings:
    def test_simple(self):
        assert kinds("'hello'") == [("STRING", "hello")]

    def test_quote_escape(self):
        assert kinds("'it''s'") == [("STRING", "it's")]

    def test_empty(self):
        assert kinds("''") == [("STRING", "")]

    def test_unterminated(self):
        with pytest.raises(LexerError):
            tokenize("'oops")


class TestOperators:
    def test_multichar_greedy(self):
        assert kinds("<= >= <> !=") == [
            ("OP", "<="), ("OP", ">="), ("OP", "<>"), ("OP", "!=")]

    def test_arith(self):
        assert [v for _k, v in kinds("+ - * / %")] == \
            ["+", "-", "*", "/", "%"]

    def test_concat_op(self):
        assert kinds("a || b") == [("IDENT", "a"), ("OP", "||"),
                                   ("IDENT", "b")]


class TestComments:
    def test_line_comment(self):
        assert kinds("select -- comment\n 1") == [
            ("KEYWORD", "select"), ("NUMBER", 1)]

    def test_block_comment(self):
        assert kinds("select /* x\ny */ 1") == [
            ("KEYWORD", "select"), ("NUMBER", 1)]

    def test_unterminated_block(self):
        with pytest.raises(LexerError):
            tokenize("select /* oops")


class TestErrors:
    def test_unknown_character(self):
        with pytest.raises(LexerError) as err:
            tokenize("select @")
        assert err.value.position == 7


class TestTokenHelpers:
    def test_is_keyword(self):
        token = tokenize("select")[0]
        assert token.is_keyword("select")
        assert not token.is_keyword("from")

    def test_matches(self):
        token = tokenize("42")[0]
        assert token.matches("NUMBER")
        assert token.matches("NUMBER", 42)
        assert not token.matches("NUMBER", 43)
