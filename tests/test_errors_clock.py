"""Tests for the exception hierarchy, the clocks, and the monitor's
intermediates pane."""

import time

import pytest

from repro import errors
from repro.core.clock import SimulatedClock, WallClock
from repro.errors import StreamError
from repro.streams.source import RateSource


class TestExceptionHierarchy:
    def test_all_derive_from_base(self):
        for name in ("SQLError", "LexerError", "ParseError", "BindError",
                     "TypeMismatchError", "CatalogError", "KernelError",
                     "MALError", "StreamError", "WindowError",
                     "SchedulerError", "FactoryError",
                     "PersistenceError"):
            cls = getattr(errors, name)
            assert issubclass(cls, errors.DataCellError)

    def test_catch_all_surface(self):
        """One except clause covers every library failure mode."""
        from repro.core.engine import DataCellEngine

        engine = DataCellEngine()
        failures = 0
        for bad in ("SELEKT 1;", "SELECT x FROM nope",
                    "CREATE TABLE t (a BLOBBY)"):
            try:
                engine.execute(bad)
            except errors.DataCellError:
                failures += 1
        assert failures == 3

    def test_factory_error_carries_context(self):
        err = errors.FactoryError("boom", "q7", cause=ValueError("x"))
        assert err.query_name == "q7"
        assert isinstance(err.cause, ValueError)

    def test_lexer_error_position(self):
        err = errors.LexerError("bad", position=5)
        assert err.position == 5


class TestSimulatedClock:
    def test_starts_at_zero(self):
        assert SimulatedClock().now() == 0

    def test_advance(self):
        clock = SimulatedClock(100)
        assert clock.advance(50) == 150
        assert clock.now() == 150

    def test_no_backwards(self):
        clock = SimulatedClock()
        with pytest.raises(StreamError):
            clock.advance(-1)
        with pytest.raises(StreamError):
            clock.set(-5)

    def test_set_forward(self):
        clock = SimulatedClock()
        clock.set(1000)
        assert clock.now() == 1000


class TestWallClock:
    def test_monotone_and_anchored(self):
        clock = WallClock()
        first = clock.now()
        assert first >= 0
        time.sleep(0.01)
        assert clock.now() >= first


class TestIntermediatesPane:
    def test_incremental_caches_visible(self, engine):
        engine.register_continuous(
            "SELECT sid, sum(temp) FROM sensors [RANGE 8 SLIDE 4] "
            "GROUP BY sid", name="q", mode="incremental")
        engine.attach_source("sensors", RateSource(
            [(i % 2, 1.0) for i in range(10)], rate=100000))
        engine.run_until_drained()
        pane = engine.monitor.intermediates("q")
        assert "partial states" in pane
        assert "basket sensors" in pane

    def test_reeval_notes_no_cache(self, engine):
        engine.register_continuous(
            "SELECT sid FROM sensors [RANGE 8 SLIDE 4]", name="q",
            mode="reeval")
        pane = engine.monitor.intermediates("q")
        assert "re-evaluation mode" in pane

    def test_join_pair_cache_visible(self):
        from repro.core.engine import DataCellEngine

        engine = DataCellEngine()
        engine.execute("CREATE STREAM a (k INT)")
        engine.execute("CREATE STREAM b (k INT)")
        engine.register_continuous(
            "SELECT x.k FROM a [RANGE 4 SLIDE 2] x, b [RANGE 4 SLIDE 2]"
            " y WHERE x.k = y.k", name="j", mode="incremental")
        engine.feed("a", [(i,) for i in range(6)])
        engine.feed("b", [(i,) for i in range(6)])
        engine.step()
        pane = engine.monitor.intermediates("j")
        assert "join-pair cache" in pane
        assert "slice cache" in pane
