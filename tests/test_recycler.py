"""The shared-work layer: structural fingerprints + the intermediate
recycler.

Covers fingerprint canonicalization (SSA-name independence, constant
and stream sensitivity, recyclability verdicts), the recycler's LRU /
invalidation mechanics, and the end-to-end equivalence guarantee:
recycler-on and recycler-off engines emit byte-identical results for
the same workload (filter fleets, windowed aggregates, joins).
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.basket import Basket
from repro.core.engine import DataCellEngine
from repro.core.recycler import (Recycler, payload_nbytes,
                                 payloads_equal)
from repro.mal.bat import BAT
from repro.mal.fingerprint import (fingerprint_program,
                                   program_fingerprint, shared_prefix)
from repro.mal.program import Const, Instruction, MALProgram, Var
from repro.mal.relation import Relation
from repro.storage import types as dt
from repro.storage.schema import Schema
from repro.streams.source import RateSource


def filter_program(stream="s", column="v", threshold=1.5, offset=0):
    """A hand-built select-project factory body with controllable SSA
    numbering (*offset*) so renaming invariance can be exercised."""
    p = MALProgram(kind="factory")
    b, c, o = (f"X_{offset + i}" for i in range(1, 4))
    p.append(Instruction([b], "basket.bind",
                         [Const(stream), Const(column)]))
    p.append(Instruction([c], "algebra.thetaselect",
                         [Var(b), Const(threshold), Const(">")]))
    p.append(Instruction([o], "algebra.projection", [Var(c), Var(b)]))
    p.append(Instruction([], "sql.resultSet", [Var(o)]))
    return p


class TestFingerprint:
    def test_ssa_renaming_invariant(self):
        a = fingerprint_program(filter_program(offset=0))
        b = fingerprint_program(filter_program(offset=40))
        assert [i.fp for i in a if i] == [i.fp for i in b if i]
        assert program_fingerprint(filter_program(offset=0)) == \
            program_fingerprint(filter_program(offset=40))

    def test_constant_sensitivity(self):
        a = fingerprint_program(filter_program(threshold=1.5))
        b = fingerprint_program(filter_program(threshold=2.5))
        assert a[0].fp == b[0].fp        # same bind
        assert a[1].fp != b[1].fp        # different select constant
        assert a[2].fp != b[2].fp        # lineage difference propagates

    def test_constant_type_sensitivity(self):
        a = fingerprint_program(filter_program(threshold=1))
        b = fingerprint_program(filter_program(threshold=1.0))
        assert a[1].fp != b[1].fp

    def test_stream_sensitivity_and_scoping(self):
        a = fingerprint_program(filter_program(stream="s"))
        b = fingerprint_program(filter_program(stream="s2"))
        assert a[0].fp != b[0].fp
        assert a[1].streams == frozenset({"s"})
        assert b[1].streams == frozenset({"s2"})

    def test_side_effects_and_binds_not_recyclable(self):
        infos = fingerprint_program(filter_program())
        assert infos[3] is None                  # resultSet
        assert not infos[0].recyclable           # basket.bind (anchor)
        assert infos[1].recyclable and infos[2].recyclable

    def test_table_bind_taints_downstream(self):
        p = MALProgram(kind="factory")
        p.append(Instruction(["T_1"], "sql.bind",
                             [Const("dim"), Const("label")]))
        p.append(Instruction(["T_2"], "algebra.projection",
                             [Var("T_1"), Var("T_1")]))
        infos = fingerprint_program(p)
        assert not infos[0].recyclable
        assert not infos[1].recyclable

    def test_unknown_var_not_recyclable(self):
        p = MALProgram(kind="factory")
        p.append(Instruction(["Y_1"], "algebra.projection",
                             [Var("never_bound"), Var("never_bound")]))
        assert not fingerprint_program(p)[0].recyclable

    def test_shared_prefix_across_fleet(self):
        fleet = [filter_program(threshold=5.0, offset=i * 10)
                 for i in range(4)]
        common = shared_prefix(fleet)
        infos = fingerprint_program(fleet[0])
        assert infos[1].fp in common and infos[2].fp in common
        # an outlier constant shares no recyclable instruction
        fleet.append(filter_program(threshold=9.0, offset=99))
        assert shared_prefix(fleet) == []
        assert shared_prefix([]) == []

    def test_engine_program_fingerprints_match_across_queries(self):
        engine = DataCellEngine()
        engine.execute("CREATE STREAM s (k INT, v FLOAT)")
        q1 = engine.register_continuous("SELECT k FROM s WHERE v > 1",
                                        name="a")
        q2 = engine.register_continuous("SELECT k FROM s WHERE v > 1",
                                        name="b")
        q3 = engine.register_continuous("SELECT k FROM s WHERE v > 2",
                                        name="c")
        fp = q1.continuous_program.fingerprint()
        assert fp == q2.continuous_program.fingerprint()
        assert fp != q3.continuous_program.fingerprint()


def int_bat(values):
    return BAT.from_values(dt.INT, list(values))


class TestRecyclerMechanics:
    def test_window_slice_shared_object(self):
        basket = Basket("s", Schema.parse([("k", "INT")]))
        basket.append_rows([(1,), (2,)], now=0)
        rec = Recycler()
        rel1, rng1 = rec.window_slice(basket, 0, 2)
        rel2, rng2 = rec.window_slice(basket, None, None)
        assert rel1 is rel2                       # one materialization
        assert rng1 == rng2 == (0, 2)
        assert rec.stats()["slice_hits"] == 1
        assert rec.stats()["slice_misses"] == 1

    def test_lookup_store_roundtrip(self):
        rec = Recycler()
        key = rec.instruction_key("abcd", [("s", 0, 10)])
        assert rec.lookup(key) == (False, None)
        rec.store(key, int_bat([1, 2, 3]))
        found, value = rec.lookup(key)
        assert found and value.values.tolist() == [1, 2, 3]
        stats = rec.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1

    def test_key_is_range_sensitive(self):
        rec = Recycler()
        k1 = rec.instruction_key("abcd", [("s", 0, 10)])
        k2 = rec.instruction_key("abcd", [("s", 10, 20)])
        assert k1 != k2
        # range order never matters
        k3 = rec.instruction_key("abcd", [("s", 0, 5), ("t", 0, 5)])
        k4 = rec.instruction_key("abcd", [("t", 0, 5), ("s", 0, 5)])
        assert k3 == k4

    def test_lru_eviction_under_byte_budget(self):
        one_kb = np.zeros(128, dtype=np.int64)
        rec = Recycler(budget_bytes=3 * one_kb.nbytes)
        keys = [rec.instruction_key(f"fp{i}", [("s", i, i + 1)])
                for i in range(5)]
        for key in keys:
            rec.store(key, one_kb.copy())
        assert len(rec) == 3
        assert rec.stats()["evictions"] == 2
        assert rec.bytes_used <= rec.budget_bytes
        # the oldest entries were the victims
        assert rec.lookup(keys[0])[0] is False
        assert rec.lookup(keys[4])[0] is True

    def test_lru_recency_protects_entries(self):
        item = np.zeros(128, dtype=np.int64)
        rec = Recycler(budget_bytes=2 * item.nbytes)
        k = [rec.instruction_key(f"fp{i}", [("s", i, i + 1)])
             for i in range(3)]
        rec.store(k[0], item.copy())
        rec.store(k[1], item.copy())
        rec.lookup(k[0])                  # refresh: k[1] becomes LRU
        rec.store(k[2], item.copy())
        assert rec.lookup(k[0])[0] is True
        assert rec.lookup(k[1])[0] is False

    def test_oversized_payload_not_cached(self):
        rec = Recycler(budget_bytes=64)
        key = rec.instruction_key("big", [("s", 0, 1)])
        rec.store(key, np.zeros(1024, dtype=np.int64))
        assert len(rec) == 0

    def test_evict_dead_drops_vacuumed_windows(self):
        rec = Recycler()
        old = rec.instruction_key("fp", [("s", 0, 10)])
        live = rec.instruction_key("fp", [("s", 10, 20)])
        straddle = rec.instruction_key("fp", [("s", 5, 15)])
        for key in (old, live, straddle):
            rec.store(key, int_bat([1]))
        assert rec.evict_dead({"s": 10}) == 1
        assert rec.lookup(old)[0] is False
        assert rec.lookup(live)[0] is True
        assert rec.lookup(straddle)[0] is True
        assert rec.stats()["invalidations"] == 1

    def test_evict_dead_needs_all_ranges_dead(self):
        rec = Recycler()
        key = rec.instruction_key("fp", [("s", 0, 10), ("t", 0, 10)])
        rec.store(key, int_bat([1]))
        assert rec.evict_dead({"s": 50}) == 0     # t still unknown/live
        assert rec.evict_dead({"s": 50, "t": 50}) == 1

    def test_purge_basket(self):
        rec = Recycler()
        basket = Basket("s", Schema.parse([("k", "INT")]))
        basket.append_rows([(1,)], now=0)
        rec.window_slice(basket, None, None)
        rec.store(rec.instruction_key("fp", [("s", 0, 1)]), int_bat([1]))
        rec.store(rec.instruction_key("fp", [("t", 0, 1)]), int_bat([2]))
        assert rec.purge_basket("s") == 2          # slice + instruction
        assert len(rec) == 1
        assert rec.bytes_used == payload_nbytes(int_bat([2]))

    def test_disabled_recycler_is_inert(self):
        rec = Recycler(enabled=False)
        basket = Basket("s", Schema.parse([("k", "INT")]))
        basket.append_rows([(1,)], now=0)
        rel1, _ = rec.window_slice(basket, None, None)
        rel2, _ = rec.window_slice(basket, None, None)
        assert rel1 is not rel2
        key = rec.instruction_key("fp", [("s", 0, 1)])
        rec.store(key, int_bat([1]))
        assert rec.lookup(key) == (False, None)
        assert len(rec) == 0

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            Recycler(policy="mru")

    def test_payload_nbytes_shapes(self):
        arr = np.zeros(10, dtype=np.int64)
        assert payload_nbytes(arr) == 80
        assert payload_nbytes(int_bat([1, 2])) == 16
        rel = Relation([("a", int_bat([1, 2])), ("b", int_bat([3, 4]))])
        assert payload_nbytes(rel) == 32
        assert payload_nbytes((arr, arr)) == 160
        assert payload_nbytes(None) == 64

    def test_payloads_equal(self):
        assert payloads_equal(int_bat([1, 2]), int_bat([1, 2]))
        assert not payloads_equal(int_bat([1, 2]), int_bat([1, 3]))
        nan = np.array([1.0, float("nan")])
        assert payloads_equal(nan, nan.copy())
        svals = np.array(["a", None], dtype=object)
        assert payloads_equal(svals, svals.copy())
        assert not payloads_equal(np.zeros(2), np.zeros(3))
        assert payloads_equal((1, 2.0), (1, 2.0))
        assert not payloads_equal(int_bat([1]), np.array([1]))


class TestBenefitPolicy:
    """Benefit-density eviction (cost × reuses / bytes) vs plain LRU,
    on sequences where the two policies disagree."""

    def _keys(self, rec, n):
        return [rec.instruction_key(f"fp{i}", [("s", i, i + 1)])
                for i in range(n)]

    def test_costly_entry_survives_cheap_newcomer(self):
        # LRU would evict the oldest entry; benefit keeps the one that
        # is expensive to recompute and sheds the near-free newcomer
        item = np.zeros(128, dtype=np.int64)
        rec = Recycler(budget_bytes=2 * item.nbytes, policy="benefit")
        k = self._keys(rec, 3)
        rec.store(k[0], item.copy(), cost_ms=50.0)   # oldest, costly
        rec.store(k[1], item.copy(), cost_ms=0.001)  # newer, near-free
        rec.store(k[2], item.copy(), cost_ms=1.0)
        assert rec.lookup(k[0])[0] is True
        assert rec.lookup(k[1])[0] is False
        assert rec.stats()["eviction_reasons"]["benefit"] == 1

        lru = Recycler(budget_bytes=2 * item.nbytes, policy="lru")
        lru.store(k[0], item.copy(), cost_ms=50.0)
        lru.store(k[1], item.copy(), cost_ms=0.001)
        lru.store(k[2], item.copy(), cost_ms=1.0)
        assert lru.lookup(k[0])[0] is False          # recency only
        assert lru.lookup(k[1])[0] is True
        assert lru.stats()["eviction_reasons"]["lru"] == 1

    def test_reuses_raise_density(self):
        # equal cost and size: the reused entry outranks the idle one
        # even though it is older
        item = np.zeros(128, dtype=np.int64)
        rec = Recycler(budget_bytes=2 * item.nbytes, policy="benefit")
        k = self._keys(rec, 3)
        rec.store(k[0], item.copy(), cost_ms=1.0)
        rec.store(k[1], item.copy(), cost_ms=1.0)
        assert rec.lookup(k[0])[0] is True            # reuse bumps k0
        rec.store(k[2], item.copy(), cost_ms=1.0)
        assert rec.lookup(k[0])[0] is True
        assert rec.lookup(k[1])[0] is False

    def test_smaller_payload_wins_at_equal_cost(self):
        # same cost, same reuse: the big entry has the lower density
        big = np.zeros(256, dtype=np.int64)
        small = np.zeros(32, dtype=np.int64)
        rec = Recycler(budget_bytes=2 * big.nbytes, policy="benefit")
        k = self._keys(rec, 3)
        rec.store(k[0], small.copy(), cost_ms=1.0)
        rec.store(k[1], big.copy(), cost_ms=1.0)
        rec.store(k[2], big.copy(), cost_ms=1.0)      # over budget
        assert rec.lookup(k[0])[0] is True
        assert rec.lookup(k[1])[0] is False

    def test_zero_cost_entries_degrade_to_lru_order(self):
        # without cost accounting every density is 0.0; the strictly-
        # less victim scan then keeps the recency order, so stores
        # without timings behave exactly like the lru policy
        item = np.zeros(128, dtype=np.int64)
        rec = Recycler(budget_bytes=2 * item.nbytes, policy="benefit")
        k = self._keys(rec, 3)
        for key in k:
            rec.store(key, item.copy())
        assert rec.lookup(k[0])[0] is False
        assert rec.lookup(k[1])[0] is True
        assert rec.lookup(k[2])[0] is True

    def test_hit_accounting(self):
        rec = Recycler(policy="benefit")
        key = rec.instruction_key("fp", [("s", 0, 4)])
        rec.store(key, int_bat([1, 2, 3, 4]), cost_ms=2.0)
        rec.lookup(key)
        rec.lookup(key)
        stats = rec.stats()
        assert stats["bytes_saved"] == 2 * payload_nbytes(
            int_bat([1, 2, 3, 4]))
        assert stats["cost_saved_ms"] == pytest.approx(4.0)


class TestChainAdoption:
    """Fingerprint flow across a stage boundary: output baskets stamp
    emitted ranges and the recycler adopts the payload as the slice."""

    def test_adopt_slice_resolves_downstream_scan(self):
        rec = Recycler()
        basket = Basket("mid", Schema.parse([("k", "INT")]))
        rel = Relation([("k", int_bat([1, 2]))])
        lo, hi = basket.append_stamped(rel, now=0, fp="feedbeef")
        rec.adopt_slice("mid", lo, hi, rel, "feedbeef", cost_ms=5.0)
        got, rng = rec.window_slice(basket, lo, hi)
        assert got is rel                  # the emit payload itself
        assert rng == (lo, hi)
        stats = rec.stats()
        assert stats["chain_stamped"] == 1
        assert stats["chain_hits"] == 1
        assert stats["slice_hits"] == 1
        assert stats["slice_misses"] == 0
        assert stats["cost_saved_ms"] == pytest.approx(5.0)

    def test_adopt_empty_range_is_noop(self):
        rec = Recycler()
        rec.adopt_slice("mid", 3, 3, Relation([("k", int_bat([]))]),
                        "fp")
        assert len(rec) == 0
        assert rec.stats()["chain_stamped"] == 0

    def test_partial_range_still_materializes(self):
        # a downstream window that covers only part of the emitted
        # range misses the adopted entry and materializes normally
        rec = Recycler()
        basket = Basket("mid", Schema.parse([("k", "INT")]))
        rel = Relation([("k", int_bat([1, 2, 3]))])
        lo, hi = basket.append_stamped(rel, now=0, fp="fp")
        rec.adopt_slice("mid", lo, hi, rel, "fp", cost_ms=1.0)
        got, rng = rec.window_slice(basket, lo + 1, hi)
        assert got is not rel
        assert got.to_rows() == [(2,), (3,)]
        assert rng == (lo + 1, hi)
        assert rec.stats()["chain_hits"] == 0

    def test_basket_range_stamps(self):
        basket = Basket("mid", Schema.parse([("k", "INT")]))
        r1 = Relation([("k", int_bat([1, 2]))])
        r2 = Relation([("k", int_bat([3]))])
        assert basket.append_stamped(r1, now=0, fp="aa") == (0, 2)
        assert basket.append_stamped(r2, now=1, fp="bb") == (2, 3)
        assert basket.range_stamp(0, 2) == "aa"
        assert basket.range_stamp(2, 3) == "bb"
        assert basket.range_stamp(0, 3) is None     # not one append
        assert basket.stats()["stamps"] == 2
        # vacuum trims stamps whose range is entirely dropped
        sub = basket.subscribe("q", from_start=True)
        sub.release(2)
        assert basket.vacuum() == 2
        assert basket.range_stamps() == [(2, 3, "bb")]

    def test_chained_network_stage_boundary_hits(self):
        """End to end: a two-stage chained network resolves the
        downstream stage's scan of the output basket as a recycler
        chain hit, and the emitted results match a recycler-off run."""

        def setup(engine):
            engine.execute("CREATE STREAM s (k INT, v FLOAT)")
            engine.register_continuous(
                "SELECT k, v FROM s WHERE v > 0", name="stage1",
                mode="reeval", output_stream="mid")
            engine.register_continuous(
                "SELECT k, v FROM mid WHERE v > 1", name="stage2",
                mode="reeval")
            rows = [(i % 4, float(i % 5) - 1.0) for i in range(300)]
            engine.attach_source("s", RateSource(rows, rate=20000))
            return ["stage1", "stage2"]

        on_engine = DataCellEngine(recycler_enabled=True)
        names = setup(on_engine)
        on_engine.run_until_drained()
        assert not on_engine.scheduler.failed
        stats = on_engine.recycler.stats()
        assert stats["chain_stamped"] > 0
        assert stats["chain_hits"] > 0
        mid = on_engine.basket("mid")
        assert mid.total_in > 0
        assert run_workload(False, setup) == emitted(on_engine, names)


# ---------------------------------------------------------------------------
# engine-level invalidation + counters
# ---------------------------------------------------------------------------


class TestEngineIntegration:
    def run_fleet(self, **engine_kwargs):
        engine = DataCellEngine(**engine_kwargs)
        engine.execute("CREATE STREAM s (k INT, v FLOAT)")
        for i in range(4):
            engine.register_continuous(
                f"SELECT k, v FROM s WHERE v > {i % 2}", name=f"q{i}")
        rows = [(i, float(i % 5)) for i in range(200)]
        engine.attach_source("s", RateSource(rows, rate=100000))
        engine.run_until_drained()
        assert not engine.scheduler.failed, engine.scheduler.failed
        return engine

    def test_hits_and_network_stats(self):
        engine = self.run_fleet()
        stats = engine.scheduler.network_stats()["recycler"]
        assert stats["hits"] > 0 and stats["slice_hits"] > 0
        assert "recycler [on]" in engine.monitor.analysis()

    def test_vacuum_invalidates_dead_windows(self):
        engine = self.run_fleet()
        stats = engine.recycler.stats()
        # unwindowed queries release eagerly: all drained windows died
        assert stats["invalidations"] > 0
        assert len(engine.recycler) == 0

    def test_drop_stream_purges(self):
        engine = DataCellEngine()
        engine.execute("CREATE STREAM s (k INT, v FLOAT)")
        engine.register_continuous("SELECT k FROM s WHERE v > 0",
                                      name="q")
        engine.feed("s", [(1, 1.0), (2, 0.0)])
        engine.step(10)
        # pin an artificial live entry so the purge has work to do
        engine.recycler.store(
            engine.recycler.instruction_key("fp", [("s", 0, 99)]),
            int_bat([1]))
        engine.remove_query("q")
        engine.execute("DROP STREAM s")
        assert all("s" not in {r[0] for r in e.ranges}
                   for e in engine.recycler._entries.values())

    def test_disabled_engine_runs_without_recycler(self):
        engine = self.run_fleet(recycler_enabled=False)
        stats = engine.recycler.stats()
        assert stats["hits"] == 0 and stats["slice_hits"] == 0
        assert "recycler [off]" in engine.monitor.analysis()
        assert "recycler" not in engine.scheduler.network_stats()

    def test_verify_mode_clean_run(self):
        # equivalence mode: every hit is re-executed and compared; any
        # stale or wrongly-shared value fails the factory
        engine = self.run_fleet(recycler_verify=True)
        assert engine.recycler.stats()["hits"] > 0


# ---------------------------------------------------------------------------
# recycler-on == recycler-off equivalence (byte-identical emissions)
# ---------------------------------------------------------------------------


SENSOR_DDL = ("CREATE STREAM sensors (sensor_id INT, room INT, "
              "temperature FLOAT, humidity FLOAT)")


def emitted(engine, names):
    """Per-query emission log: (fire time, rows) pairs, unrounded."""
    return {name: [(t, r.to_rows()) for t, r in
                   engine.results(name).batches] for name in names}


def run_workload(recycler_enabled, setup, policy="benefit"):
    engine = DataCellEngine(recycler_enabled=recycler_enabled,
                            recycler_policy=policy)
    names = setup(engine)
    engine.run_until_drained()
    assert not engine.scheduler.failed, engine.scheduler.failed
    return emitted(engine, names)


def assert_recycler_transparent(setup):
    """Emissions must be byte-identical with the recycler off, on with
    LRU eviction, and on with benefit-density eviction."""
    off = run_workload(False, setup)
    for policy in ("lru", "benefit"):
        assert run_workload(True, setup, policy=policy) == off, policy


def sensor_rows_det(n):
    return [(i % 8, i % 4, float((i * 7) % 30), float(i % 100) / 2)
            for i in range(n)]


class TestEquivalence:
    def test_e2_filter_fleet(self):
        def setup(engine):
            engine.execute(SENSOR_DDL)
            for i in range(12):
                engine.register_continuous(
                    f"SELECT sensor_id, temperature FROM sensors "
                    f"WHERE temperature > {10 + (i % 4)}", name=f"q{i}")
            engine.attach_source(
                "sensors", RateSource(sensor_rows_det(2000), rate=50000))
            return [f"q{i}" for i in range(12)]

        assert_recycler_transparent(setup)

    def test_e3_windowed_aggregates(self):
        def setup(engine):
            engine.execute(SENSOR_DDL)
            for i, name in enumerate(["a", "b"]):
                engine.register_continuous(
                    "SELECT room, count(*), sum(temperature), "
                    "avg(humidity) FROM sensors "
                    "[RANGE 300 SLIDE 100] GROUP BY room ORDER BY room",
                    name=name, mode="reeval")
            engine.register_continuous(
                "SELECT min(temperature), max(temperature) FROM "
                "sensors [RANGE 200 SLIDE 50]", name="c", mode="reeval")
            engine.attach_source(
                "sensors", RateSource(sensor_rows_det(1500), rate=50000))
            return ["a", "b", "c"]

        assert_recycler_transparent(setup)

    def test_e5_joins(self):
        def setup(engine):
            engine.execute(SENSOR_DDL)
            engine.execute("CREATE STREAM alerts (room INT, level INT)")
            engine.execute(
                "CREATE TABLE rooms (room INT, name VARCHAR(8))")
            engine.execute("INSERT INTO rooms VALUES (0,'lab'), "
                           "(1,'hall'), (2,'attic'), (3,'cellar')")
            for name in ("j1", "j2"):
                engine.register_continuous(
                    "SELECT r.name, count(*) FROM sensors "
                    "[RANGE 200 SLIDE 100] s, rooms r "
                    "WHERE s.room = r.room GROUP BY r.name "
                    "ORDER BY r.name", name=name, mode="reeval")
            engine.register_continuous(
                "SELECT s.sensor_id, a.level FROM sensors "
                "[RANGE 100 SLIDE 50] s, alerts [RANGE 100 SLIDE 50] a "
                "WHERE s.room = a.room AND s.temperature > 12",
                name="j3", mode="reeval")
            engine.attach_source(
                "sensors", RateSource(sensor_rows_det(1000), rate=50000))
            engine.attach_source(
                "alerts", RateSource([(i % 4, i % 3) for i in range(500)],
                                     rate=25000))
            return ["j1", "j2", "j3"]

        assert_recycler_transparent(setup)

    @settings(max_examples=12, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(st.data())
    def test_property_random_streams_and_windows(self, data):
        n = data.draw(st.integers(20, 120), label="rows")
        rows = [(data.draw(st.integers(0, 3)),
                 data.draw(st.one_of(
                     st.none(),
                     st.floats(-50, 50, allow_nan=False))))
                for _ in range(n)]
        slide = data.draw(st.integers(1, 8), label="slide")
        size = slide * data.draw(st.integers(1, 5), label="factor")
        windowed = data.draw(st.booleans(), label="windowed")
        window = f" [RANGE {size} SLIDE {slide}]" if windowed else ""
        queries = [
            f"SELECT k, count(*), sum(v) FROM s{window} GROUP BY k "
            f"ORDER BY k",
            f"SELECT k, v FROM s{window} WHERE v > 0",
            f"SELECT k, v FROM s{window} WHERE v > 0",   # exact twin
        ]

        def setup(engine):
            engine.execute("CREATE STREAM s (k INT, v FLOAT)")
            for i, sql in enumerate(queries):
                engine.register_continuous(sql, name=f"q{i}",
                                           mode="reeval")
            engine.attach_source("s", RateSource(rows, rate=10000))
            return [f"q{i}" for i in range(len(queries))]

        assert_recycler_transparent(setup)

    @settings(max_examples=8, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(st.data())
    def test_property_chained_networks_policies_agree(self, data):
        """off == lru == benefit over randomized chained networks:
        a head stage feeding an output basket, a random fan-out of
        downstream consumers (some sharing identical plans), random
        thresholds and stream contents."""
        n = data.draw(st.integers(20, 100), label="rows")
        rows = [(data.draw(st.integers(0, 3)),
                 data.draw(st.floats(-20, 50, allow_nan=False)))
                for _ in range(n)]
        t_head = data.draw(st.integers(-5, 5), label="t_head")
        fanout = data.draw(st.integers(1, 3), label="fanout")
        tails = [data.draw(st.integers(-5, 5), label=f"t_tail{i}")
                 for i in range(fanout)]

        def setup(engine):
            engine.execute("CREATE STREAM s (k INT, v FLOAT)")
            engine.register_continuous(
                f"SELECT k, v FROM s WHERE v > {t_head}", name="head",
                mode="reeval", output_stream="mid")
            names = ["head"]
            for i, t in enumerate(tails):
                engine.register_continuous(
                    f"SELECT k, v FROM mid WHERE v > {t}",
                    name=f"tail{i}", mode="reeval")
                names.append(f"tail{i}")
            engine.attach_source("s", RateSource(rows, rate=10000))
            return names

        assert_recycler_transparent(setup)


class TestBudgetAutotuner:
    """The adaptive budget: grow on eviction churn, shrink when idle,
    never leave the [floor, ceiling] bracket."""

    def _active(self, recycler, evictions, hits):
        """Synthesize one adaptation window's worth of cache events."""
        recycler.evictions += evictions
        recycler.hits += hits

    def test_grows_on_thrash(self):
        r = Recycler(budget_bytes=8192, autotune=True)
        self._active(r, evictions=300, hits=10)
        r.autotune_tick()
        assert r.budget_bytes == 16384
        assert r.budget_grows == 1
        assert r.budget_trajectory == [8192, 16384]

    def test_no_decision_below_activity_window(self):
        r = Recycler(budget_bytes=8192, autotune=True)
        self._active(r, evictions=100, hits=10)
        r.autotune_tick()
        assert r.budget_bytes == 8192

    def test_never_exceeds_ceiling(self):
        r = Recycler(budget_bytes=8192, autotune=True,
                     autotune_ceiling_bytes=20000)
        for _ in range(10):
            self._active(r, evictions=300, hits=0)
            r.autotune_tick()
        assert r.budget_bytes <= 20000

    def test_shrinks_back_to_floor_when_idle(self):
        from repro.core.recycler import AUTOTUNE_SHRINK_WINDOWS

        r = Recycler(budget_bytes=8192, autotune=True)
        self._active(r, evictions=300, hits=10)
        r.autotune_tick()
        assert r.budget_bytes == 16384
        # one idle window is not enough (hysteresis: shrinking on the
        # first idle window would oscillate against the thrash signal)
        self._active(r, evictions=0, hits=300)
        r.autotune_tick()
        assert r.budget_bytes == 16384
        # a sustained idle streak walks it back to the floor
        for _ in range(AUTOTUNE_SHRINK_WINDOWS):
            self._active(r, evictions=0, hits=300)
            r.autotune_tick()
        assert r.budget_bytes == 8192
        assert r.budget_shrinks == 1
        # and never below the configured floor
        for _ in range(AUTOTUNE_SHRINK_WINDOWS + 1):
            self._active(r, evictions=0, hits=300)
            r.autotune_tick()
        assert r.budget_bytes == 8192

    def test_low_churn_window_holds_budget(self):
        r = Recycler(budget_bytes=8192, autotune=True)
        # a trickle of evictions (under a quarter of the window, fewer
        # than hits) is healthy steady-state turnover, not thrash
        self._active(r, evictions=30, hits=300)
        r.autotune_tick()
        assert r.budget_bytes == 8192
        assert r.budget_grows == 0 and r.budget_shrinks == 0

    def test_off_by_default(self):
        r = Recycler(budget_bytes=8192)
        self._active(r, evictions=1000, hits=0)
        r.autotune_tick()
        assert r.budget_bytes == 8192
        assert not r.autotune

    def test_engine_autotunes_starved_budget(self):
        """An 8 KB budget under a multi-query workload must tune
        itself up (the E11c pathology: thousands of evictions at a
        budget too small to hold one window slice)."""
        engine = DataCellEngine(recycler_budget_bytes=8192,
                                recycler_autotune=True)
        engine.execute("CREATE STREAM s (k INT, v FLOAT)")
        for i in range(6):
            engine.register_continuous(
                "SELECT k, sum(v) FROM s [RANGE 32 SLIDE 8] "
                "GROUP BY k", mode="reeval", name=f"q{i}")
        rows = [(i % 4, float(i % 23)) for i in range(2000)]
        engine.attach_source("s", RateSource(rows, rate=100000))
        engine.run_until_drained()
        assert not engine.scheduler.failed, engine.scheduler.failed
        assert engine.recycler.budget_grows >= 1
        assert engine.recycler.budget_bytes > 8192
        stats = engine.recycler.stats()
        assert stats["budget_trajectory"][0] == 8192


class TestAdmissionCensus:
    """Registration-time sharing census + per-fingerprint net-benefit
    verdicts: the machinery that keeps recycler-on from paying
    store/probe overhead on work nothing will ever reuse."""

    def _resolve_cheap_lifecycles(self, rec, fp, n):
        """Store *n* entries under *fp* with negligible recompute cost,
        never hit them, and resolve them via dead eviction — the
        fastest route to a trusted "not worth caching" verdict."""
        for i in range(n):
            key = rec.instruction_key(fp, [("s", i, i + 1)])
            rec.store(key, int_bat([i]), cost_ms=0.00001)
        rec.evict_dead({"s": n + 1})

    def test_census_refcounts(self):
        rec = Recycler()
        rec.retain_fps(["a", "b"])
        rec.retain_fps(["a"])
        assert rec._fp_refs == {"a": 2, "b": 1}
        rec.release_fps(["a"])
        assert rec._fp_refs == {"a": 1, "b": 1}
        rec.release_fps(["a", "b"])
        assert rec._fp_refs == {}

    def test_census_version_bumps_on_structural_change(self):
        rec = Recycler()
        v0 = rec.census_version
        rec.retain_fps(["a"])
        v1 = rec.census_version
        assert v1 > v0
        rec.release_fps(["a"])
        assert rec.census_version > v1

    def test_censused_unshared_fp_is_skipped(self):
        rec = Recycler()
        rec.retain_fps(["solo"])
        assert not rec.should_attempt("solo")
        assert rec.stats()["cold_skips"] == 1

    def test_censused_shared_fp_is_attempted(self):
        rec = Recycler()
        rec.retain_fps(["dup"])
        rec.retain_fps(["dup"])
        assert rec.should_attempt("dup")

    def test_uncensused_falls_back_to_cold_store_cutoff(self):
        from repro.core.recycler import COLD_FP_STORES
        rec = Recycler()
        for i in range(COLD_FP_STORES):
            key = rec.instruction_key("cold", [("s", i, i + 1)])
            assert rec.should_attempt("cold")
            rec.store(key, int_bat([i]))
        assert not rec.should_attempt("cold")
        # one observed reuse whitelists the fingerprint again
        hot_key = rec.instruction_key("hot", [("s", 0, 1)])
        rec.store(hot_key, int_bat([1]))
        assert rec.lookup(hot_key)[0]
        assert rec.should_attempt("hot")

    def test_plan_gate_closes_only_when_all_fps_unshared(self):
        rec = Recycler()
        rec.retain_fps(["x", "y"])
        before = rec.plan_skips
        assert not rec.plan_should_recycle(["x", "y"])
        assert rec.plan_skips == before + 1
        rec.retain_fps(["y"])           # second consumer shares y
        assert rec.plan_should_recycle(["x", "y"])

    def test_plan_gate_open_without_census(self):
        rec = Recycler()
        assert rec.plan_should_recycle(["anything"])

    def test_cheap_verdict_retires_shared_fp(self):
        from repro.core.recycler import FP_VERDICT_MIN_ENTRIES
        rec = Recycler()
        rec.retain_fps(["cheap"])
        rec.retain_fps(["cheap"])
        assert rec.should_attempt("cheap")
        version = rec.census_version
        self._resolve_cheap_lifecycles(rec, "cheap",
                                       FP_VERDICT_MIN_ENTRIES)
        assert not rec.should_attempt("cheap")
        assert not rec.plan_should_recycle(["cheap"])
        # the verdict re-opened every cached plan gate
        assert rec.census_version > version

    def test_costly_reused_fp_stays_admitted(self):
        from repro.core.recycler import FP_VERDICT_MIN_ENTRIES
        rec = Recycler()
        rec.retain_fps(["rich"])
        rec.retain_fps(["rich"])
        for i in range(FP_VERDICT_MIN_ENTRIES):
            key = rec.instruction_key("rich", [("s", i, i + 1)])
            rec.store(key, int_bat([i]), cost_ms=5.0)
            assert rec.lookup(key)[0]           # hit: credits 5ms saved
        rec.evict_dead({"s": FP_VERDICT_MIN_ENTRIES + 1})
        assert rec.should_attempt("rich")
        assert rec.plan_should_recycle(["rich"])

    def test_verdict_sticky_across_decay(self):
        from repro.core.recycler import (FP_VERDICT_MIN_ENTRIES,
                                         REUSE_DECAY_SCANS)
        rec = Recycler()
        rec.retain_fps(["cheap"])
        rec.retain_fps(["cheap"])
        self._resolve_cheap_lifecycles(rec, "cheap",
                                       FP_VERDICT_MIN_ENTRIES)
        assert not rec.should_attempt("cheap")
        for _ in range(2 * REUSE_DECAY_SCANS):
            rec.evict_dead({})
        assert rec.reuse_decays >= 2
        # magnitude decay must not re-open a trusted cheap verdict
        assert not rec.should_attempt("cheap")

    def test_new_consumer_resets_verdicts(self):
        from repro.core.recycler import FP_VERDICT_MIN_ENTRIES
        rec = Recycler()
        rec.retain_fps(["cheap"])
        rec.retain_fps(["cheap"])
        self._resolve_cheap_lifecycles(rec, "cheap",
                                       FP_VERDICT_MIN_ENTRIES)
        assert not rec.should_attempt("cheap")
        # a third consumer changes the economics: probation restarts
        rec.retain_fps(["cheap"])
        assert rec.should_attempt("cheap")

    def test_engine_registers_and_releases_census(self):
        engine = DataCellEngine()
        engine.execute("CREATE STREAM s (k INT, v FLOAT)")
        q = engine.register_continuous(
            "SELECT k, v FROM s WHERE v > 1", mode="reeval", name="q0")
        fps = q.factory.recycle_fps
        assert fps, "plan has no recyclable fingerprints"
        assert all(engine.recycler._fp_refs.get(fp) for fp in fps)
        engine.remove_query("q0")
        assert not any(engine.recycler._fp_refs.get(fp) for fp in fps)

    def test_attempt_mode_snapshots_admission(self):
        rec = Recycler()
        assert rec.attempt_mode("fp_uncensused") == 2
        rec.retain_fps(["fp_shared", "fp_solo"])
        rec.retain_fps(["fp_shared"])
        assert rec.attempt_mode("fp_shared") == 1
        assert rec.attempt_mode("fp_solo") == 0
        # a ledger retirement flips the snapshot answer and bumps
        # census_version so cached masks get rebuilt
        before = rec.census_version
        from repro.core.recycler import FP_VERDICT_MIN_ENTRIES
        self._resolve_cheap_lifecycles(rec, "fp_shared",
                                       FP_VERDICT_MIN_ENTRIES)
        assert rec.census_version > before
        assert rec.attempt_mode("fp_shared") == 0

    def test_compiled_factory_gate_mask_skips_retired_steps(self):
        engine = DataCellEngine()
        engine.execute("CREATE STREAM s (k INT, v FLOAT)")
        for i in range(2):
            engine.register_continuous(
                "SELECT k, v * 2 FROM s [RANGE 8 SLIDE 8] WHERE v > 1",
                mode="reeval", name=f"q{i}")
        rows = [(i % 3, float(i % 7)) for i in range(800)]
        engine.attach_source("s", RateSource(rows, rate=100000))
        engine.run_until_drained()
        for f in engine.scheduler.factories:
            if f.compiled is None or not f.recycle_fps:
                continue
            assert f._gate_modes is not None
            assert len(f._gate_modes) == len(f.compiled.steps)
            # every fingerprint is censused here, so no step should
            # be left on the per-fire should_attempt path
            assert 2 not in f._gate_modes

    def test_single_query_plan_gate_avoids_all_cache_work(self):
        engine = DataCellEngine()
        engine.execute("CREATE STREAM s (k INT, v FLOAT)")
        engine.register_continuous(
            "SELECT k, v * 2 FROM s [RANGE 8 SLIDE 8] WHERE v > 1",
            mode="reeval", name="q0")
        rows = [(i % 3, float(i % 7)) for i in range(400)]
        engine.attach_source("s", RateSource(rows, rate=100000))
        engine.run_until_drained()
        stats = engine.recycler.stats()
        assert stats["hits"] == 0 and stats["misses"] == 0
        assert stats["plan_skips"] >= 1
