"""Randomized end-to-end engine tests: arbitrary interleavings of
ingestion, clock advances, pause/resume and query removal must never
corrupt invariants (conservation, equivalence, no silent failures)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.engine import DataCellEngine

ACTIONS = st.lists(
    st.one_of(
        st.tuples(st.just("feed"), st.integers(1, 6)),
        st.tuples(st.just("advance"), st.integers(1, 200)),
        st.tuples(st.just("pause"), st.just(0)),
        st.tuples(st.just("resume"), st.just(0)),
        st.tuples(st.just("onetime"), st.just(0)),
    ),
    min_size=3, max_size=25)


def build_engine():
    engine = DataCellEngine()
    engine.execute("CREATE STREAM s (k INT, v FLOAT)")
    engine.register_continuous(
        "SELECT k FROM s", name="plain")
    engine.register_continuous(
        "SELECT count(*), sum(v) FROM s [RANGE 6 SLIDE 3]",
        name="win", mode="incremental")
    return engine


class TestRandomInterleavings:
    @given(ACTIONS)
    @settings(max_examples=40, deadline=None)
    def test_invariants_hold(self, actions):
        engine = build_engine()
        fed = 0
        paused = False
        for action, arg in actions:
            if action == "feed":
                engine.feed("s", [(fed + i, float(i)) for i in
                                  range(arg)])
                fed += arg
                engine.step()
            elif action == "advance":
                engine.step(advance_ms=arg)
            elif action == "pause":
                engine.pause_query("win")
                paused = True
            elif action == "resume":
                engine.resume_query("win")
                paused = False
            elif action == "onetime":
                engine.query("SELECT count(*) FROM s")
        engine.resume_query("win")
        engine.step()
        # 1. nothing failed silently
        assert not engine.scheduler.failed
        # 2. the plain query saw every tuple exactly once, in order
        assert [k for k, in engine.results("plain").rows()] == \
            list(range(fed))
        # 3. windows fired exactly floor((fed - 6)/3) + 1 times
        expected = (fed - 6) // 3 + 1 if fed >= 6 else 0
        assert len(engine.results("win").batches) == expected
        # 4. every window counted exactly the window size
        assert all(r.to_rows()[0][0] == 6
                   for _t, r in engine.results("win").batches)
        # 5. basket conservation
        basket = engine.basket("s")
        assert basket.total_in == basket.total_dropped + len(basket)

    @given(ACTIONS)
    @settings(max_examples=20, deadline=None)
    def test_removal_mid_stream_is_safe(self, actions):
        engine = build_engine()
        fed = 0
        removed = False
        for i, (action, arg) in enumerate(actions):
            if action == "feed":
                engine.feed("s", [(fed + j, 0.0) for j in range(arg)])
                fed += arg
                engine.step()
            if i == len(actions) // 2 and not removed:
                engine.remove_query("win")
                removed = True
        engine.step()
        assert not engine.scheduler.failed
        assert [k for k, in engine.results("plain").rows()] == \
            list(range(fed))
        basket = engine.basket("s")
        assert basket.total_in == basket.total_dropped + len(basket)


class TestRandomJoin2Streams:
    @given(st.lists(st.tuples(st.integers(0, 1), st.integers(1, 5)),
                    min_size=2, max_size=20),
           st.integers(1, 3))
    @settings(max_examples=20, deadline=None)
    def test_two_stream_join_modes_agree(self, bursts, slide):
        window = slide * 2

        def run(mode):
            engine = DataCellEngine()
            engine.execute("CREATE STREAM a (k INT)")
            engine.execute("CREATE STREAM b (k INT)")
            q = engine.register_continuous(
                f"SELECT x.k, count(*) FROM a [RANGE {window} "
                f"SLIDE {slide}] x, b [RANGE {window} SLIDE {slide}] y "
                f"WHERE x.k = y.k GROUP BY x.k ORDER BY x.k",
                mode=mode)
            counters = [0, 0]
            for which, n in bursts:
                stream = "a" if which == 0 else "b"
                engine.feed(stream, [((counters[which] + i) % 3,)
                                     for i in range(n)])
                counters[which] += n
                engine.step()
            engine.step()
            assert not engine.scheduler.failed
            return [rel.to_rows() for _t, rel in
                    engine.results(q.name).batches]

        assert run("reeval") == run("incremental")
