"""Tests for the scaled Linear Road substrate: generator, oracle
computations, and the DataCell queries over it."""

import pytest

from repro.core.engine import DataCellEngine
from repro.streams.linearroad import (POSITION_SCHEMA, Accident,
                                      LinearRoadConfig,
                                      LinearRoadGenerator,
                                      detect_stopped_cars, expected_tolls,
                                      reference_segment_stats, toll)
from repro.streams.source import ListSource


@pytest.fixture(scope="module")
def run():
    gen = LinearRoadGenerator(LinearRoadConfig(cars=60, duration_s=90,
                                               seed=5))
    events = gen.events()
    return gen, events


class TestGenerator:
    def test_deterministic(self):
        a = LinearRoadGenerator(LinearRoadConfig(seed=3)).events()
        b = LinearRoadGenerator(LinearRoadConfig(seed=3)).events()
        assert a == b

    def test_report_shape(self, run):
        _gen, events = run
        ts_prev = 0
        for ts, (car, speed, xway, lane, direction, seg, pos) in events:
            assert ts >= ts_prev
            ts_prev = ts
            assert speed >= 0.0
            assert direction in (0, 1)
            assert 0 <= seg < 10
            assert 0 <= lane <= 2

    def test_accidents_recorded(self, run):
        gen, events = run
        assert gen.accidents
        for acc in gen.accidents:
            assert acc.end_ms > acc.start_ms

    def test_accident_cars_emit_zero_speed(self, run):
        gen, events = run
        acc = gen.accidents[0]
        stopped = [row for ts, row in events
                   if acc.start_ms <= ts < acc.end_ms
                   and row[2] == acc.xway and row[4] == acc.direction
                   and row[5] == acc.seg and row[1] == 0.0]
        assert stopped

    def test_congestion_near_accident(self, run):
        """Cars upstream of an active accident crawl (speed <= 15)."""
        gen, events = run
        acc = gen.accidents[0]
        crawl = [row[1] for ts, row in events
                 if acc.start_ms <= ts < acc.end_ms
                 and row[2] == acc.xway and row[4] == acc.direction
                 and row[5] == acc.seg and 0 < row[1]]
        assert crawl and max(crawl) <= 15.0

    def test_timescale_compresses(self):
        slow = LinearRoadConfig(timescale=1.0)
        fast = LinearRoadConfig(timescale=0.1)
        assert fast.scale_ms(10) == slow.scale_ms(10) // 10
        assert fast.response_constraint_ms == 500


class TestTollFormula:
    def test_free_flow_no_toll(self):
        assert toll(60.0, 100, accident=False) == 0

    def test_congested_toll(self):
        assert toll(20.0, 80, accident=False) == 2 * (80 - 50) ** 2

    def test_accident_suspends_toll(self):
        assert toll(20.0, 80, accident=True) == 0

    def test_few_cars_no_toll(self):
        assert toll(20.0, 10, accident=False) == 0

    def test_custom_threshold(self):
        assert toll(20.0, 15, accident=False, car_threshold=10) == 50


class TestOracles:
    def test_reference_stats_window_math(self):
        events = [(0, (1, 10.0, 0, 0, 0, 2, 0)),
                  (500, (2, 30.0, 0, 0, 0, 2, 0)),
                  (1500, (1, 50.0, 0, 0, 0, 3, 0))]
        stats = reference_segment_stats(events, 1000, 1000)
        assert stats[0][0] == 1000
        assert stats[0][1][(0, 0, 2)] == (20.0, 2)
        assert stats[1][1][(0, 0, 3)] == (50.0, 1)

    def test_distinct_cars_counted_once(self):
        events = [(0, (1, 10.0, 0, 0, 0, 2, 0)),
                  (100, (1, 20.0, 0, 0, 0, 2, 50))]
        stats = reference_segment_stats(events, 1000, 1000)
        assert stats[0][1][(0, 0, 2)][1] == 1

    def test_detect_stopped_cars(self):
        events = [(i * 1000, (7, 0.0, 0, 0, 0, 1, 500))
                  for i in range(4)]
        detections = detect_stopped_cars(events)
        assert detections == [(3000, 7, (0, 0, 1))]

    def test_moving_car_not_detected(self):
        events = [(i * 1000, (7, 10.0, 0, 0, 0, 1, 500 + i))
                  for i in range(6)]
        assert detect_stopped_cars(events) == []

    def test_expected_tolls_blocked_by_accident(self):
        stats = [(1000, {(0, 0, 2): (20.0, 60)})]
        acc = Accident(0, 0, 4, 0, 5000)  # 2 segments downstream
        tolls = expected_tolls(stats, [acc])
        assert tolls[0][1][(0, 0, 2)] == 0
        tolls = expected_tolls(stats, [])
        assert tolls[0][1][(0, 0, 2)] == 200


class TestDataCellIntegration:
    def test_segment_stats_query_matches_oracle(self, run):
        gen, events = run
        engine = DataCellEngine()
        engine.execute(POSITION_SCHEMA)
        q = engine.register_continuous(
            "SELECT xway, dir, seg, avg(speed) lav, count(*) n "
            "FROM position [RANGE 30 SECONDS SLIDE 30 SECONDS] "
            "GROUP BY xway, dir, seg", name="segstats")
        engine.attach_source("position", ListSource(events))
        engine.run_for(gen.config.scale_ms(gen.config.duration_s) + 1,
                       step_ms=500)
        assert not engine.scheduler.failed
        oracle = reference_segment_stats(events, 30000, 30000)
        batches = engine.results("segstats").batches
        assert len(batches) >= len(oracle) - 1
        for (t, rel), (ot, expected) in zip(batches, oracle):
            assert t == ot
            got = {(x, d, s): (lav, n)
                   for x, d, s, lav, n in rel.to_rows()}
            assert set(got) == set(expected)
            for key, (lav, _distinct) in expected.items():
                assert got[key][0] == pytest.approx(lav)

    def test_stopped_car_query_fires(self, run):
        gen, events = run
        engine = DataCellEngine()
        engine.execute(POSITION_SCHEMA)
        q = engine.register_continuous(
            "SELECT car, count(*) c FROM position "
            "[RANGE 12 SECONDS SLIDE 3 SECONDS] WHERE speed = 0 "
            "GROUP BY car HAVING count(*) >= 4", name="stopped")
        engine.attach_source("position", ListSource(events))
        engine.run_for(gen.config.scale_ms(gen.config.duration_s) + 1,
                       step_ms=500)
        assert not engine.scheduler.failed
        detected = {row[0] for row in engine.results("stopped").rows()}
        oracle = {car for _t, car, _loc in detect_stopped_cars(events)}
        # every oracle detection must be found by the standing query
        assert oracle <= detected
