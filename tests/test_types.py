"""Unit tests for the type system and nil semantics."""

import math

import numpy as np
import pytest

from repro.errors import TypeMismatchError
from repro.storage import types as dt


class TestLookup:
    def test_by_name_basic(self):
        assert dt.DataType.by_name("INT") is dt.INT
        assert dt.DataType.by_name("float") is dt.FLOAT

    @pytest.mark.parametrize("alias,expected", [
        ("INTEGER", dt.INT), ("BIGINT", dt.INT), ("SMALLINT", dt.INT),
        ("DOUBLE", dt.FLOAT), ("REAL", dt.FLOAT), ("DECIMAL", dt.FLOAT),
        ("VARCHAR", dt.STRING), ("TEXT", dt.STRING), ("CHAR", dt.STRING),
        ("BOOL", dt.BOOLEAN),
    ])
    def test_aliases(self, alias, expected):
        assert dt.DataType.by_name(alias) is expected

    def test_unknown_type_raises(self):
        with pytest.raises(TypeMismatchError):
            dt.DataType.by_name("blob")

    def test_equality_and_hash(self):
        assert dt.INT == dt.DataType.by_name("integer")
        assert hash(dt.INT) == hash(dt.DataType.by_name("INT"))
        assert dt.INT != dt.FLOAT


class TestNil:
    def test_is_nil_none(self):
        for t in (dt.INT, dt.FLOAT, dt.STRING, dt.BOOLEAN, dt.TIMESTAMP):
            assert dt.is_nil(t, None)

    def test_int_nil_sentinel(self):
        assert dt.is_nil(dt.INT, dt.INT_NIL)
        assert not dt.is_nil(dt.INT, 0)

    def test_float_nil_is_nan(self):
        assert dt.is_nil(dt.FLOAT, float("nan"))
        assert not dt.is_nil(dt.FLOAT, 0.0)

    def test_bool_nil(self):
        assert dt.is_nil(dt.BOOLEAN, -1)
        assert not dt.is_nil(dt.BOOLEAN, 0)

    def test_nil_mask_int(self):
        values = np.array([1, dt.INT_NIL, 3], dtype=np.int64)
        assert dt.nil_mask(dt.INT, values).tolist() == [False, True, False]

    def test_nil_mask_float(self):
        values = np.array([1.0, np.nan], dtype=np.float64)
        assert dt.nil_mask(dt.FLOAT, values).tolist() == [False, True]

    def test_nil_mask_string(self):
        values = np.array(["a", None], dtype=object)
        assert dt.nil_mask(dt.STRING, values).tolist() == [False, True]


class TestCoerce:
    def test_none_maps_to_nil(self):
        assert dt.coerce_value(dt.INT, None) == dt.INT_NIL
        assert math.isnan(dt.coerce_value(dt.FLOAT, None))
        assert dt.coerce_value(dt.STRING, None) is None
        assert dt.coerce_value(dt.BOOLEAN, None) == -1

    def test_int_accepts_integral_float(self):
        assert dt.coerce_value(dt.INT, 3.0) == 3

    def test_int_rejects_fractional_float(self):
        with pytest.raises(TypeMismatchError):
            dt.coerce_value(dt.INT, 3.5)

    def test_int_accepts_bool(self):
        assert dt.coerce_value(dt.INT, True) == 1

    def test_float_widens_int(self):
        assert dt.coerce_value(dt.FLOAT, 7) == 7.0

    def test_string_rejects_number(self):
        with pytest.raises(TypeMismatchError):
            dt.coerce_value(dt.STRING, 1)

    def test_boolean_accepts_bool_and_int01(self):
        assert dt.coerce_value(dt.BOOLEAN, True) == 1
        assert dt.coerce_value(dt.BOOLEAN, 0) == 0

    def test_boolean_rejects_other_ints(self):
        with pytest.raises(TypeMismatchError):
            dt.coerce_value(dt.BOOLEAN, 2)

    def test_float_rejects_string(self):
        with pytest.raises(TypeMismatchError):
            dt.coerce_value(dt.FLOAT, "abc")


class TestFromStorage:
    def test_roundtrip_none(self):
        for t in (dt.INT, dt.FLOAT, dt.STRING, dt.BOOLEAN):
            assert dt.from_storage(t, dt.coerce_value(t, None)) is None

    def test_bool_back_to_python_bool(self):
        assert dt.from_storage(dt.BOOLEAN, np.int8(1)) is True
        assert dt.from_storage(dt.BOOLEAN, np.int8(0)) is False

    def test_numpy_scalars_become_python(self):
        out = dt.from_storage(dt.INT, np.int64(5))
        assert out == 5 and type(out) is int
        out = dt.from_storage(dt.FLOAT, np.float64(5.5))
        assert out == 5.5 and type(out) is float


class TestCommonType:
    def test_same(self):
        assert dt.common_type(dt.INT, dt.INT) is dt.INT

    def test_int_float_widen(self):
        assert dt.common_type(dt.INT, dt.FLOAT) is dt.FLOAT
        assert dt.common_type(dt.FLOAT, dt.INT) is dt.FLOAT

    def test_string_int_incompatible(self):
        with pytest.raises(TypeMismatchError):
            dt.common_type(dt.STRING, dt.INT)


class TestInfer:
    @pytest.mark.parametrize("value,expected", [
        (True, dt.BOOLEAN), (1, dt.INT), (1.5, dt.FLOAT),
        ("x", dt.STRING),
    ])
    def test_infer(self, value, expected):
        assert dt.infer_type(value) is expected

    def test_bool_not_int(self):
        # bool is a subclass of int in Python; it must stay BOOLEAN
        assert dt.infer_type(True) is dt.BOOLEAN

    def test_infer_rejects_objects(self):
        with pytest.raises(TypeMismatchError):
            dt.infer_type(object())
