"""Tests for LEFT OUTER JOIN and UNION [ALL] across the whole stack."""

import pytest

from repro.errors import BindError
from repro.mal.compiler import compile_plan
from repro.mal.interpreter import MALContext, execute
from repro.sql import ast, compile_select
from repro.sql.executor import ExecutionContext, PlanExecutor
from repro.sql.parser import parse
from repro.sql.plan import FilterNode, JoinNode, UnionNode, walk_plan
from tests.conftest import run_select


class TestParser:
    def test_left_join(self):
        stmt = parse("SELECT a FROM t LEFT JOIN u ON t.a = u.a")
        assert stmt.from_items[1].join_type == "left"

    def test_left_outer_join(self):
        stmt = parse("SELECT a FROM t LEFT OUTER JOIN u ON t.a = u.a")
        assert stmt.from_items[1].join_type == "left"

    def test_union_all(self):
        stmt = parse("SELECT a FROM t UNION ALL SELECT b FROM u")
        assert isinstance(stmt, ast.UnionStmt)
        assert not stmt.distinct
        assert len(stmt.selects) == 2

    def test_union_distinct(self):
        stmt = parse("SELECT a FROM t UNION SELECT b FROM u")
        assert stmt.distinct

    def test_union_order_limit_bind_to_compound(self):
        stmt = parse("SELECT a FROM t UNION ALL SELECT b FROM u "
                     "ORDER BY 1 LIMIT 3")
        assert stmt.limit == 3
        assert len(stmt.order_by) == 1
        assert all(not s.order_by for s in stmt.selects)

    def test_three_way_union(self):
        stmt = parse("SELECT a FROM t UNION ALL SELECT a FROM t "
                     "UNION ALL SELECT a FROM t")
        assert len(stmt.selects) == 3


class TestLeftJoinSemantics:
    def test_unmatched_rows_nil_padded(self, emp_catalog):
        rows = run_select(emp_catalog,
                          "SELECT e.id, d.city FROM emp e "
                          "LEFT JOIN dept d ON e.dept = d.name "
                          "ORDER BY e.id")
        assert rows == [(1, "ams"), (2, "ams"), (3, "rot"),
                        (4, None), (5, "rot")]

    def test_anti_join_pattern(self, emp_catalog):
        rows = run_select(emp_catalog,
                          "SELECT e.id FROM emp e LEFT JOIN dept d "
                          "ON e.dept = d.name WHERE d.name IS NULL")
        assert rows == [(4,)]

    def test_duplicate_matches_still_multiply(self, emp_catalog):
        emp_catalog.table("dept").insert_rows([("a", "ext", 7)])
        rows = run_select(emp_catalog,
                          "SELECT e.id FROM emp e LEFT JOIN dept d "
                          "ON e.dept = d.name WHERE e.id = 1")
        assert rows == [(1,), (1,)]

    def test_right_side_filter_stays_above(self, emp_catalog):
        plan = compile_select(
            "SELECT e.id FROM emp e LEFT JOIN dept d "
            "ON e.dept = d.name WHERE d.budget > 600", emp_catalog)
        join = [n for n in walk_plan(plan) if isinstance(n, JoinNode)][0]
        # the budget filter must NOT be below the preserved join's right
        right_filters = [n for n in walk_plan(join.right)
                         if isinstance(n, FilterNode)]
        assert not right_filters
        rows = PlanExecutor(
            ExecutionContext(emp_catalog)).execute(plan).to_rows()
        assert rows == [(1,), (2,)]

    def test_left_side_filter_still_pushes(self, emp_catalog):
        plan = compile_select(
            "SELECT e.id FROM emp e LEFT JOIN dept d "
            "ON e.dept = d.name WHERE e.salary > 120", emp_catalog)
        join = [n for n in walk_plan(plan) if isinstance(n, JoinNode)][0]
        left_filters = [n for n in walk_plan(join.left)
                        if isinstance(n, FilterNode)]
        assert left_filters

    def test_requires_equality_on(self, emp_catalog):
        with pytest.raises(BindError):
            compile_select("SELECT e.id FROM emp e LEFT JOIN dept d "
                           "ON e.salary > d.budget", emp_catalog)

    def test_extra_on_conditions_rejected(self, emp_catalog):
        with pytest.raises(BindError, match="WHERE"):
            compile_select(
                "SELECT e.id FROM emp e LEFT JOIN dept d "
                "ON e.dept = d.name AND d.budget > 0", emp_catalog)

    def test_mal_path_agrees(self, emp_catalog):
        plan = compile_select(
            "SELECT e.id, d.city, d.budget FROM emp e LEFT JOIN dept d "
            "ON e.dept = d.name ORDER BY e.id", emp_catalog)
        tree = PlanExecutor(
            ExecutionContext(emp_catalog)).execute(plan).to_rows()
        mal = execute(compile_plan(plan),
                      MALContext(emp_catalog)).to_rows()
        assert tree == mal
        assert (4, None, None) in tree


class TestUnionSemantics:
    def test_union_all_keeps_duplicates(self, emp_catalog):
        rows = run_select(emp_catalog,
                          "SELECT dept FROM emp WHERE id = 1 "
                          "UNION ALL SELECT dept FROM emp WHERE id = 2")
        assert rows == [("a",), ("a",)]

    def test_union_dedups(self, emp_catalog):
        rows = run_select(emp_catalog,
                          "SELECT dept FROM emp WHERE id = 1 "
                          "UNION SELECT dept FROM emp WHERE id = 2")
        assert rows == [("a",)]

    def test_type_coercion_across_branches(self, emp_catalog):
        rows = run_select(emp_catalog,
                          "SELECT id FROM emp WHERE id = 1 "
                          "UNION ALL SELECT salary FROM emp "
                          "WHERE id = 3")
        assert rows == [(1.0,), (50.0,)]

    def test_incompatible_types_rejected(self, emp_catalog):
        with pytest.raises(Exception):
            compile_select("SELECT id FROM emp UNION ALL "
                           "SELECT dept FROM emp", emp_catalog)

    def test_column_count_mismatch(self, emp_catalog):
        with pytest.raises(BindError, match="columns"):
            compile_select("SELECT id FROM emp UNION ALL "
                           "SELECT id, dept FROM emp", emp_catalog)

    def test_names_from_first_branch(self, emp_catalog):
        plan = compile_select("SELECT id AS x FROM emp UNION ALL "
                              "SELECT budget FROM dept", emp_catalog)
        assert plan.schema.names == ["x"]

    def test_order_by_position_and_limit(self, emp_catalog):
        rows = run_select(emp_catalog,
                          "SELECT id FROM emp UNION ALL "
                          "SELECT budget FROM dept "
                          "ORDER BY 1 DESC LIMIT 3")
        assert rows == [(1000,), (500,), (250,)]

    def test_union_node_in_plan(self, emp_catalog):
        plan = compile_select("SELECT id FROM emp UNION ALL "
                              "SELECT budget FROM dept", emp_catalog)
        assert any(isinstance(n, UnionNode) for n in walk_plan(plan))

    def test_aggregates_inside_branches(self, emp_catalog):
        rows = run_select(emp_catalog,
                          "SELECT count(*) FROM emp "
                          "UNION ALL SELECT count(*) FROM dept")
        assert rows == [(5,), (3,)]

    def test_mal_path_agrees(self, emp_catalog):
        plan = compile_select(
            "SELECT dept FROM emp UNION SELECT name FROM dept "
            "ORDER BY 1", emp_catalog)
        tree = PlanExecutor(
            ExecutionContext(emp_catalog)).execute(plan).to_rows()
        mal = execute(compile_plan(plan),
                      MALContext(emp_catalog)).to_rows()
        assert tree == mal


class TestStreamingWithNewOperators:
    def test_left_join_continuous_both_modes(self, engine):
        from repro.streams.source import RateSource

        results = {}
        for mode in ("reeval", "incremental"):
            from repro.core.engine import DataCellEngine

            eng = DataCellEngine()
            eng.execute("CREATE STREAM s (sid INT, temp FLOAT)")
            eng.execute("CREATE TABLE rooms (sid INT, room VARCHAR(8))")
            eng.execute("INSERT INTO rooms VALUES (0,'a'), (1,'b')")
            q = eng.register_continuous(
                "SELECT r.room, count(*) c FROM s [RANGE 8 SLIDE 4] t "
                "LEFT JOIN rooms r ON t.sid = r.sid "
                "GROUP BY r.room ORDER BY r.room", mode=mode)
            assert q.mode == mode
            rows = [(i % 4, float(i)) for i in range(32)]
            eng.attach_source("s", RateSource(rows, rate=100000))
            eng.run_until_drained()
            assert not eng.scheduler.failed
            results[mode] = [r.to_rows() for _t, r in
                             eng.results(q.name).batches]
        assert results["reeval"] == results["incremental"]
        # unmatched sensors (sid 2, 3) appear under the NULL room
        assert any(row[0] is None for batch in results["reeval"]
                   for row in batch)

    def test_union_of_two_streams_continuous(self, engine):
        engine.execute("CREATE STREAM sensors2 (sid INT, temp FLOAT)")
        q = engine.register_continuous(
            "SELECT sid, temp FROM sensors WHERE temp > 5 "
            "UNION ALL SELECT sid, temp FROM sensors2 WHERE temp > 5",
            name="merged")
        assert q.mode == "reeval"
        engine.feed("sensors", [(1, 10.0), (2, 1.0)])
        engine.feed("sensors2", [(3, 20.0)])
        engine.step()
        assert sorted(engine.results("merged").rows()) == \
            [(1, 10.0), (3, 20.0)]


class TestChainedQueryNetworks:
    def test_two_stage_network(self, engine):
        from repro.streams.source import RateSource

        engine.register_continuous(
            "SELECT sid, avg(temp) AS avg_temp FROM sensors "
            "[RANGE 10 SLIDE 5] GROUP BY sid",
            name="stage1", output_stream="averages")
        engine.register_continuous(
            "SELECT sid, avg_temp FROM averages WHERE avg_temp > 20",
            name="stage2")
        rows = [(i % 2, 10.0 + (i % 2) * 20) for i in range(40)]
        engine.attach_source("sensors", RateSource(rows, rate=100000))
        engine.run_until_drained()
        assert not engine.scheduler.failed
        alerts = engine.results("stage2").rows()
        assert alerts and all(sid == 1 for sid, _a in alerts)

    def test_output_stream_schema_matches_query(self, engine):
        engine.register_continuous(
            "SELECT sid, count(*) AS n FROM sensors [RANGE 4] "
            "GROUP BY sid", name="q", output_stream="counts")
        schema = engine.catalog.stream("counts").schema
        assert schema.names == ["sid", "n"]

    def test_output_stream_queryable_one_time(self, engine):
        engine.register_continuous(
            "SELECT sid FROM sensors", name="q",
            output_stream="derived")
        engine.feed("sensors", [(7, 1.0)])
        engine.step()
        assert engine.query("SELECT * FROM derived").to_rows() == [(7,)]

    def test_output_stream_schema_collision(self, engine):
        from repro.errors import StreamError

        # an existing stream with a different schema cannot be reused
        with pytest.raises(StreamError):
            engine.register_continuous(
                "SELECT sid FROM sensors", name="q",
                output_stream="sensors")

    def test_output_stream_reuse_with_matching_schema(self, engine):
        # a pre-existing, schema-compatible stream is reused (this is
        # what snapshot restore relies on)
        engine.execute("CREATE STREAM sink (sid INT)")
        engine.register_continuous("SELECT sid FROM sensors",
                                   name="q", output_stream="sink")
        engine.feed("sensors", [(3, 1.0)])
        engine.step()
        assert engine.query("SELECT * FROM sink").to_rows() == [(3,)]

    def test_three_stage_cascade_single_step(self, engine):
        engine.register_continuous("SELECT sid FROM sensors",
                                   name="a", output_stream="s1")
        engine.register_continuous("SELECT sid FROM s1",
                                   name="b", output_stream="s2")
        engine.register_continuous("SELECT sid FROM s2", name="c")
        engine.feed("sensors", [(5, 1.0)])
        engine.step()  # one step: the cascade must reach stage 3
        assert engine.results("c").rows() == [(5,)]
