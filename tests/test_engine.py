"""Integration tests for the DataCellEngine facade."""

import pytest

from repro.core.incremental import UnsupportedIncremental
from repro.errors import BindError, CatalogError, StreamError
from repro.streams.source import ListSource, RateSource


class TestDDL:
    def test_create_table_and_insert(self, engine):
        engine.execute("CREATE TABLE t (a INT, s VARCHAR(8))")
        assert engine.execute(
            "INSERT INTO t VALUES (1, 'x'), (2, NULL)") == 2
        assert engine.query("SELECT * FROM t").to_rows() == \
            [(1, "x"), (2, None)]

    def test_create_index_via_sql(self, engine):
        engine.execute("CREATE INDEX ON rooms (sid)")
        assert engine.catalog.table("rooms").index_on("sid") is not None

    def test_drop_table(self, engine):
        engine.execute("CREATE TABLE t (a INT)")
        engine.execute("DROP TABLE t")
        with pytest.raises(CatalogError):
            engine.catalog.table("t")

    def test_create_stream_makes_basket(self, engine):
        engine.execute("CREATE STREAM s2 (x INT)")
        assert engine.basket("s2").schema.names == ["x"]

    def test_drop_stream(self, engine):
        engine.execute("CREATE STREAM s2 (x INT)")
        engine.execute("DROP STREAM s2")
        with pytest.raises(CatalogError):
            engine.basket("s2")

    def test_drop_stream_with_bound_query_rejected(self, engine):
        engine.register_continuous("SELECT sid FROM sensors", name="q")
        with pytest.raises(StreamError):
            engine.execute("DROP STREAM sensors")

    def test_insert_column_subset(self, engine):
        engine.execute("CREATE TABLE t (a INT, b INT, c INT)")
        engine.execute("INSERT INTO t (c, a) VALUES (3, 1)")
        assert engine.query("SELECT * FROM t").to_rows() == [(1, None, 3)]

    def test_insert_expression_values(self, engine):
        engine.execute("CREATE TABLE t (a INT)")
        engine.execute("INSERT INTO t VALUES (2 + 3 * 4)")
        assert engine.query("SELECT a FROM t").to_rows() == [(14,)]

    def test_insert_select(self, engine):
        engine.execute("CREATE TABLE t (sid INT)")
        engine.execute("INSERT INTO t SELECT sid FROM rooms "
                       "WHERE sid > 0")
        assert engine.query("SELECT * FROM t ORDER BY sid").to_rows() == \
            [(1,), (2,)]

    def test_execute_script(self, engine):
        results = engine.execute_script(
            "CREATE TABLE t (a INT); INSERT INTO t VALUES (1); "
            "SELECT a FROM t")
        assert results[1] == 1
        assert results[2].to_rows() == [(1,)]


class TestStreamsAndOneTimeQueries:
    def test_insert_into_stream_via_sql(self, engine):
        engine.execute("INSERT INTO sensors VALUES (1, 20.5)")
        assert engine.query("SELECT * FROM sensors").to_rows() == \
            [(1, 20.5)]

    def test_feed(self, engine):
        engine.feed("sensors", [(1, 20.0), (2, 21.0)])
        assert engine.query(
            "SELECT count(*) FROM sensors").to_rows() == [(2,)]

    def test_one_time_join_stream_table(self, engine):
        engine.feed("sensors", [(1, 20.0)])
        rows = engine.query(
            "SELECT r.room, s.temp FROM sensors s, rooms r "
            "WHERE s.sid = r.sid").to_rows()
        assert rows == [("office", 20.0)]

    def test_query_rejects_non_select(self, engine):
        with pytest.raises(BindError):
            engine.query("CREATE TABLE t (a INT)")

    def test_pause_resume_stream(self, engine):
        receptor = engine.attach_source(
            "sensors", ListSource([(0, (1, 1.0)), (5, (2, 2.0))]))
        engine.pause_stream("sensors")
        engine.step(advance_ms=10)
        assert len(engine.basket("sensors")) == 0
        engine.resume_stream("sensors")
        engine.step()
        assert len(engine.basket("sensors")) == 2


class TestContinuousQueries:
    def test_register_and_results(self, engine):
        q = engine.register_continuous(
            "SELECT sid, temp FROM sensors WHERE temp > 25")
        engine.feed("sensors", [(1, 20.0), (2, 30.0)])
        engine.step()
        assert engine.results(q.name).rows() == [(2, 30.0)]

    def test_auto_names_unique(self, engine):
        a = engine.register_continuous("SELECT sid FROM sensors")
        b = engine.register_continuous("SELECT temp FROM sensors")
        assert a.name != b.name

    def test_duplicate_name_rejected(self, engine):
        engine.register_continuous("SELECT sid FROM sensors", name="q")
        with pytest.raises(StreamError):
            engine.register_continuous("SELECT sid FROM sensors",
                                       name="q")

    def test_requires_stream(self, engine):
        with pytest.raises(BindError):
            engine.register_continuous("SELECT sid FROM rooms")

    def test_requires_select(self, engine):
        with pytest.raises(BindError):
            engine.register_continuous("CREATE TABLE t (a INT)")

    def test_same_stream_twice_rejected(self, engine):
        with pytest.raises(StreamError):
            engine.register_continuous(
                "SELECT a.sid FROM sensors a, sensors b "
                "WHERE a.sid = b.sid")

    def test_mode_auto_plain_is_reeval(self, engine):
        q = engine.register_continuous("SELECT sid FROM sensors")
        assert q.mode == "reeval"

    def test_mode_auto_sliding_is_incremental(self, engine):
        q = engine.register_continuous(
            "SELECT avg(temp) FROM sensors [RANGE 4 SLIDE 2]")
        assert q.mode == "incremental"

    def test_mode_incremental_unsupported_raises(self, engine):
        with pytest.raises(UnsupportedIncremental):
            engine.register_continuous(
                "SELECT count(DISTINCT sid) FROM sensors [RANGE 4]",
                mode="incremental")

    def test_mode_auto_falls_back(self, engine):
        q = engine.register_continuous(
            "SELECT count(DISTINCT sid) FROM sensors [RANGE 4]",
            mode="auto")
        assert q.mode == "reeval"

    def test_unknown_mode(self, engine):
        with pytest.raises(StreamError):
            engine.register_continuous("SELECT sid FROM sensors",
                                       mode="warp")

    def test_non_divisible_window_falls_back(self, engine):
        q = engine.register_continuous(
            "SELECT count(*) FROM sensors [RANGE 10 SLIDE 3]")
        assert q.mode == "reeval"

    def test_remove_query(self, engine):
        q = engine.register_continuous("SELECT sid FROM sensors",
                                       name="q")
        engine.remove_query("q")
        assert engine.queries() == []
        assert engine.basket("sensors").subscriptions() == []
        with pytest.raises(StreamError):
            engine.remove_query("q")

    def test_removed_query_stops_blocking_drain(self, engine):
        slow = engine.register_continuous(
            "SELECT sid FROM sensors [RANGE 100]", name="slow")
        fast = engine.register_continuous(
            "SELECT sid FROM sensors", name="fast")
        engine.feed("sensors", [(1, 1.0)])
        engine.step()
        # the windowed query retains the tuple until its window passes
        assert len(engine.basket("sensors")) == 1
        engine.remove_query("slow")
        # with only the fast consumer left the prefix drains
        assert len(engine.basket("sensors")) == 0

    def test_pause_resume_query(self, engine):
        q = engine.register_continuous(
            "SELECT sid FROM sensors", name="q")
        engine.pause_query("q")
        engine.feed("sensors", [(1, 1.0)])
        engine.step()
        assert len(engine.results("q").rows()) == 0
        engine.resume_query("q")
        engine.step()
        assert engine.results("q").rows() == [(1,)]

    def test_subscribe_callback(self, engine):
        seen = []
        engine.register_continuous("SELECT sid FROM sensors", name="q")
        engine.subscribe("q", lambda rel, now: seen.extend(rel.to_rows()))
        engine.feed("sensors", [(7, 1.0)])
        engine.step()
        assert seen == [(7,)]

    def test_hybrid_query_sees_table_updates(self, engine):
        q = engine.register_continuous(
            "SELECT r.room FROM sensors s, rooms r WHERE s.sid = r.sid",
            mode="reeval", name="q")
        engine.feed("sensors", [(0, 1.0)])
        engine.step()
        engine.execute("INSERT INTO rooms VALUES (9, 'attic')")
        engine.feed("sensors", [(9, 2.0)])
        engine.step()
        assert engine.results("q").rows() == [("lab",), ("attic",)]


class TestWindowedEndToEnd:
    def test_tumbling_counts(self, engine):
        q = engine.register_continuous(
            "SELECT count(*) FROM sensors [RANGE 3]", name="q")
        engine.attach_source("sensors", RateSource(
            [(i, float(i)) for i in range(7)], rate=1000))
        engine.run_until_drained()
        assert engine.results("q").rows() == [(3,), (3,)]

    def test_sliding_window_series(self, engine):
        q = engine.register_continuous(
            "SELECT sum(temp) FROM sensors [RANGE 4 SLIDE 2]", name="q")
        engine.attach_source("sensors", RateSource(
            [(i, 1.0) for i in range(8)], rate=1000))
        engine.run_until_drained()
        assert engine.results("q").rows() == [(4.0,), (4.0,), (4.0,)]

    def test_batching_knobs_delay_firing(self, engine):
        q = engine.register_continuous(
            "SELECT sid FROM sensors", name="q", mode="reeval",
            min_batch=5, max_delay_ms=100)
        engine.feed("sensors", [(1, 1.0)])
        engine.step()
        assert len(engine.results("q")) == 0  # below batch, young
        engine.step(advance_ms=150)
        assert len(engine.results("q")) == 1  # delay constraint kicked in

    def test_min_batch_trigger(self, engine):
        q = engine.register_continuous(
            "SELECT sid FROM sensors", name="q", mode="reeval",
            min_batch=3)
        engine.feed("sensors", [(1, 1.0), (2, 1.0)])
        engine.step()
        assert len(engine.results("q")) == 0
        engine.feed("sensors", [(3, 1.0)])
        engine.step()
        assert engine.results("q").rows() == [(1,), (2,), (3,)]


class TestExplain:
    def test_explain_sql_text(self, engine):
        text = engine.explain("SELECT sid FROM sensors [RANGE 4]")
        assert "StreamScan" in text and "function user.explain" in text

    def test_explain_registered_query(self, engine):
        engine.register_continuous(
            "SELECT avg(temp) FROM sensors [RANGE 4 SLIDE 2]", name="q")
        text = engine.explain("q")
        assert "continuous plan" in text
        assert "incremental split" in text

    def test_explain_rejects_ddl(self, engine):
        with pytest.raises(BindError):
            engine.explain("CREATE TABLE t (a INT)")
