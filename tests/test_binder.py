"""Unit tests for semantic analysis (the binder)."""

import pytest

from repro.errors import BindError
from repro.sql.binder import Binder, Scope
from repro.sql.expressions import (BoundAgg, BoundCase,
                                   BoundCompare, BoundLiteral)
from repro.sql.parser import parse
from repro.storage import types as dt
from repro.storage.schema import Schema


@pytest.fixture
def scope():
    s = Scope()
    s.add_source("t", Schema.parse(
        [("a", "INT"), ("b", "FLOAT"), ("s", "STRING")]))
    s.add_source("u", Schema.parse([("a", "INT"), ("x", "STRING")]))
    return s


def bind(scope, text, allow_aggregates=False):
    expr = parse(f"SELECT {text} FROM t").items[0].expr
    return Binder(scope, allow_aggregates).bind(expr)


class TestResolution:
    def test_qualified(self, scope):
        out = bind(scope, "t.a")
        assert out.key == "t.a" and out.dtype is dt.INT

    def test_unqualified_unique(self, scope):
        assert bind(scope, "b").key == "t.b"

    def test_ambiguous(self, scope):
        with pytest.raises(BindError, match="ambiguous"):
            bind(scope, "a")

    def test_unknown(self, scope):
        with pytest.raises(BindError, match="unknown column"):
            bind(scope, "zz")

    def test_unknown_qualified(self, scope):
        with pytest.raises(BindError):
            bind(scope, "t.zz")

    def test_duplicate_alias_rejected(self, scope):
        with pytest.raises(BindError):
            scope.add_source("t", Schema.parse([("q", "INT")]))


class TestTyping:
    def test_arith_widens(self, scope):
        assert bind(scope, "t.a + t.b").dtype is dt.FLOAT

    def test_division_float(self, scope):
        assert bind(scope, "t.a / 2").dtype is dt.FLOAT

    def test_compare_boolean(self, scope):
        out = bind(scope, "t.a > 1")
        assert isinstance(out, BoundCompare) and out.dtype is dt.BOOLEAN

    def test_string_number_compare_rejected(self, scope):
        with pytest.raises(BindError):
            bind(scope, "t.s > 1")

    def test_string_arith_rejected(self, scope):
        with pytest.raises(BindError):
            bind(scope, "t.s * 2")

    def test_concat_typed_string(self, scope):
        assert bind(scope, "t.s || 'x'").dtype is dt.STRING

    def test_unary_minus_folds_literal(self, scope):
        out = bind(scope, "-5")
        assert isinstance(out, BoundLiteral) and out.value == -5

    def test_unary_minus_non_numeric(self, scope):
        with pytest.raises(BindError):
            bind(scope, "-t.s")


class TestNullHandling:
    def test_null_compare_adopts_type(self, scope):
        out = bind(scope, "t.a = NULL")
        assert out.right.dtype is dt.INT

    def test_null_arith_adopts_type(self, scope):
        out = bind(scope, "t.b + NULL")
        assert out.dtype is dt.FLOAT

    def test_between_desugars(self, scope):
        out = bind(scope, "t.a BETWEEN 1 AND 5")
        assert out.dtype is dt.BOOLEAN
        # desugared to (a >= 1) AND (a <= 5)
        assert "AND" in out.sql()


class TestInList:
    def test_constants_coerced(self, scope):
        out = bind(scope, "t.b IN (1, 2.5)")
        assert out.values == [1.0, 2.5]

    def test_non_constant_rejected(self, scope):
        with pytest.raises(BindError, match="constants"):
            bind(scope, "t.a IN (t.b)")

    def test_null_item_kept(self, scope):
        out = bind(scope, "t.a IN (1, NULL)")
        assert out.values == [1, None]


class TestCase:
    def test_branch_type_unified(self, scope):
        out = bind(scope, "CASE WHEN t.a > 0 THEN 1 ELSE 2.5 END")
        assert isinstance(out, BoundCase) and out.dtype is dt.FLOAT

    def test_null_branches_ignored_for_type(self, scope):
        out = bind(scope, "CASE WHEN t.a > 0 THEN NULL ELSE 'x' END")
        assert out.dtype is dt.STRING

    def test_all_null_defaults_string(self, scope):
        out = bind(scope, "CASE WHEN t.a > 0 THEN NULL END")
        assert out.dtype is dt.STRING

    def test_incompatible_branches(self, scope):
        with pytest.raises(BindError):
            bind(scope, "CASE WHEN t.a > 0 THEN 1 ELSE 'x' END")


class TestAggregates:
    def test_agg_allowed(self, scope):
        out = bind(scope, "sum(t.a)", allow_aggregates=True)
        assert isinstance(out, BoundAgg) and out.dtype is dt.INT

    def test_avg_always_float(self, scope):
        assert bind(scope, "avg(t.a)",
                    allow_aggregates=True).dtype is dt.FLOAT

    def test_count_star(self, scope):
        out = bind(scope, "count(*)", allow_aggregates=True)
        assert out.arg is None and out.dtype is dt.INT

    def test_agg_rejected_in_where_context(self, scope):
        with pytest.raises(BindError, match="not allowed"):
            bind(scope, "sum(t.a)", allow_aggregates=False)

    def test_nested_agg_rejected(self, scope):
        with pytest.raises(BindError, match="nested"):
            bind(scope, "sum(avg(t.a))", allow_aggregates=True)

    def test_sum_of_string_rejected(self, scope):
        with pytest.raises(BindError):
            bind(scope, "sum(t.s)", allow_aggregates=True)

    def test_min_of_string_allowed(self, scope):
        out = bind(scope, "min(t.s)", allow_aggregates=True)
        assert out.dtype is dt.STRING

    def test_agg_wrong_arity(self, scope):
        with pytest.raises(BindError):
            bind(scope, "sum(t.a, t.b)", allow_aggregates=True)


class TestFunctions:
    def test_unknown_function(self, scope):
        with pytest.raises(BindError, match="unknown function"):
            bind(scope, "frobnicate(t.a)")

    def test_arity_check(self, scope):
        with pytest.raises(BindError):
            bind(scope, "abs(t.a, t.b)")

    def test_result_type(self, scope):
        assert bind(scope, "length(t.s)").dtype is dt.INT
        assert bind(scope, "abs(t.a)").dtype is dt.INT
        assert bind(scope, "sqrt(t.a)").dtype is dt.FLOAT

    def test_distinct_on_scalar_rejected(self, scope):
        with pytest.raises(BindError):
            bind(scope, "abs(DISTINCT t.a)")

    def test_like_on_number_rejected(self, scope):
        with pytest.raises(BindError):
            bind(scope, "t.a LIKE 'x%'")
