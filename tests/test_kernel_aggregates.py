"""Unit tests for grouped/scalar aggregates and the column calculator."""

import numpy as np
import pytest

from repro.errors import KernelError
from repro.mal import kernel as K
from repro.mal.bat import BAT
from repro.storage import types as dt


def grouped(values, groups, ngroups=None):
    gids = np.asarray(groups, dtype=np.int64)
    n = (int(gids.max()) + 1 if len(gids) else 0) \
        if ngroups is None else ngroups
    return gids, n


class TestGroupedAggregates:
    def test_count_star(self):
        gids, n = grouped(None, [0, 0, 1])
        assert K.agg_count(gids, n).tolist() == [2, 1]

    def test_count_column_skips_nil(self):
        bat = BAT.from_values(dt.INT, [1, None, 3], coerce=True)
        gids, n = grouped(None, [0, 0, 1])
        assert K.agg_count(gids, n, bat).tolist() == [1, 1]

    def test_sum_int_stays_int(self):
        bat = BAT.from_values(dt.INT, [1, 2, 3])
        gids, n = grouped(None, [0, 0, 1])
        out = K.agg_sum(bat, gids, n)
        assert out.dtype is dt.INT
        assert out.tolist() == [3, 3]

    def test_sum_skips_nil(self):
        bat = BAT.from_values(dt.FLOAT, [1.0, None, 3.0], coerce=True)
        gids, n = grouped(None, [0, 0, 0])
        assert K.agg_sum(bat, gids, n).tolist() == [4.0]

    def test_sum_empty_group_is_nil(self):
        bat = BAT.from_values(dt.INT, [1])
        gids, n = grouped(None, [0], ngroups=2)
        assert K.agg_sum(bat, gids, n).tolist() == [1, None]

    def test_sum_rejects_strings(self):
        bat = BAT.from_values(dt.STRING, ["a"], coerce=True)
        gids, n = grouped(None, [0])
        with pytest.raises(KernelError):
            K.agg_sum(bat, gids, n)

    def test_avg(self):
        bat = BAT.from_values(dt.INT, [1, 3, 10])
        gids, n = grouped(None, [0, 0, 1])
        assert K.agg_avg(bat, gids, n).tolist() == [2.0, 10.0]

    def test_avg_empty_group_is_nil(self):
        bat = BAT.from_values(dt.FLOAT, [])
        gids, n = grouped(None, [], ngroups=1)
        assert K.agg_avg(bat, gids, n).tolist() == [None]

    def test_min_max_int(self):
        bat = BAT.from_values(dt.INT, [5, 2, 9, None], coerce=True)
        gids, n = grouped(None, [0, 0, 1, 1])
        assert K.agg_min(bat, gids, n).tolist() == [2, 9]
        assert K.agg_max(bat, gids, n).tolist() == [5, 9]

    def test_min_max_all_nil_group(self):
        bat = BAT.from_values(dt.INT, [None], coerce=True)
        gids, n = grouped(None, [0])
        assert K.agg_min(bat, gids, n).tolist() == [None]
        assert K.agg_max(bat, gids, n).tolist() == [None]

    def test_min_max_strings(self):
        bat = BAT.from_values(dt.STRING, ["b", "a", None], coerce=True)
        gids, n = grouped(None, [0, 0, 0])
        assert K.agg_min(bat, gids, n).tolist() == ["a"]
        assert K.agg_max(bat, gids, n).tolist() == ["b"]

    def test_empty_weights_regression(self):
        # numpy's bincount returns int64 for empty weights; make sure
        # the FLOAT path survives an empty basic window
        bat = BAT.from_values(dt.FLOAT, [])
        gids, n = grouped(None, [], ngroups=1)
        assert K.agg_sum(bat, gids, n).tolist() == [None]

    def test_length_mismatch(self):
        bat = BAT.from_values(dt.INT, [1, 2])
        with pytest.raises(KernelError):
            K.agg_sum(bat, np.array([0], dtype=np.int64), 1)


class TestScalarAggregates:
    def test_count(self):
        bat = BAT.from_values(dt.INT, [1, None, 3], coerce=True)
        assert K.scalar_agg("count", bat) == 2

    def test_sum_int(self):
        bat = BAT.from_values(dt.INT, [1, 2])
        out = K.scalar_agg("sum", bat)
        assert out == 3 and isinstance(out, int)

    def test_avg(self):
        bat = BAT.from_values(dt.FLOAT, [1.0, 3.0])
        assert K.scalar_agg("avg", bat) == 2.0

    def test_min_max(self):
        bat = BAT.from_values(dt.INT, [4, 1, 9])
        assert K.scalar_agg("min", bat) == 1
        assert K.scalar_agg("max", bat) == 9

    def test_empty_input(self):
        bat = BAT.from_values(dt.INT, [])
        assert K.scalar_agg("count", bat) == 0
        assert K.scalar_agg("sum", bat) is None
        assert K.scalar_agg("min", bat) is None

    def test_unknown_op(self):
        bat = BAT.from_values(dt.INT, [1])
        with pytest.raises(KernelError):
            K.scalar_agg("median", bat)


class TestCalcArith:
    def test_add_int(self):
        a = BAT.from_values(dt.INT, [1, 2])
        out = K.calc_arith("+", a, 10)
        assert out.dtype is dt.INT and out.tolist() == [11, 12]

    def test_nil_propagates(self):
        a = BAT.from_values(dt.INT, [1, None], coerce=True)
        assert K.calc_arith("+", a, 1).tolist() == [2, None]

    def test_div_always_float(self):
        a = BAT.from_values(dt.INT, [7])
        out = K.calc_arith("/", a, 2)
        assert out.dtype is dt.FLOAT and out.tolist() == [3.5]

    def test_div_by_zero_is_nil(self):
        a = BAT.from_values(dt.INT, [7, 8])
        b = BAT.from_values(dt.INT, [0, 2])
        assert K.calc_arith("/", a, b).tolist() == [None, 4.0]

    def test_mod_by_zero_is_nil(self):
        a = BAT.from_values(dt.INT, [7])
        assert K.calc_arith("%", a, 0).tolist() == [None]

    def test_mixed_int_float_widens(self):
        a = BAT.from_values(dt.INT, [1])
        b = BAT.from_values(dt.FLOAT, [0.5])
        out = K.calc_arith("+", a, b)
        assert out.dtype is dt.FLOAT and out.tolist() == [1.5]

    def test_string_concat(self):
        a = BAT.from_values(dt.STRING, ["x", None], coerce=True)
        b = BAT.from_values(dt.STRING, ["y", "z"], coerce=True)
        assert K.calc_arith("+", a, b).tolist() == ["xy", None]

    def test_string_mul_rejected(self):
        a = BAT.from_values(dt.STRING, ["x"], coerce=True)
        with pytest.raises(KernelError):
            K.calc_arith("*", a, a)

    def test_length_mismatch(self):
        a = BAT.from_values(dt.INT, [1])
        b = BAT.from_values(dt.INT, [1, 2])
        with pytest.raises(KernelError):
            K.calc_arith("+", a, b)

    def test_neg(self):
        a = BAT.from_values(dt.INT, [1, None], coerce=True)
        assert K.calc_neg(a).tolist() == [-1, None]


class TestCalcCompare:
    def test_three_valued_result(self):
        a = BAT.from_values(dt.INT, [1, 5, None], coerce=True)
        out = K.calc_cmp(">", a, 2)
        assert out.dtype is dt.BOOLEAN
        assert out.values.tolist() == [0, 1, -1]

    def test_string_compare(self):
        a = BAT.from_values(dt.STRING, ["a", "c", None], coerce=True)
        out = K.calc_cmp("<", a, "b")
        assert out.values.tolist() == [1, 0, -1]

    def test_string_vs_number_rejected(self):
        a = BAT.from_values(dt.STRING, ["a"], coerce=True)
        with pytest.raises(KernelError):
            K.calc_cmp("==", a, 1)

    def test_int_float_compare(self):
        a = BAT.from_values(dt.INT, [1, 2])
        b = BAT.from_values(dt.FLOAT, [1.0, 2.5])
        assert K.calc_cmp("==", a, b).values.tolist() == [1, 0]


class TestKleeneLogic:
    def tvl(self, *vals):
        return BAT.from_array(dt.BOOLEAN, np.array(vals, dtype=np.int8))

    def test_and_truth_table(self):
        a = self.tvl(1, 1, 1, 0, 0, 0, -1, -1, -1)
        b = self.tvl(1, 0, -1, 1, 0, -1, 1, 0, -1)
        assert K.calc_and(a, b).values.tolist() == \
            [1, 0, -1, 0, 0, 0, -1, 0, -1]

    def test_or_truth_table(self):
        a = self.tvl(1, 1, 1, 0, 0, 0, -1, -1, -1)
        b = self.tvl(1, 0, -1, 1, 0, -1, 1, 0, -1)
        assert K.calc_or(a, b).values.tolist() == \
            [1, 1, 1, 1, 0, -1, 1, -1, -1]

    def test_not(self):
        a = self.tvl(1, 0, -1)
        assert K.calc_not(a).values.tolist() == [0, 1, -1]

    def test_isnil_two_valued(self):
        a = BAT.from_values(dt.INT, [1, None], coerce=True)
        assert K.calc_isnil(a).values.tolist() == [0, 1]


class TestCast:
    def test_int_to_float(self):
        a = BAT.from_values(dt.INT, [1, None], coerce=True)
        out = K.calc_cast(a, dt.FLOAT)
        assert out.dtype is dt.FLOAT and out.tolist() == [1.0, None]

    def test_float_to_int_truncates(self):
        a = BAT.from_values(dt.FLOAT, [1.9, None], coerce=True)
        assert K.calc_cast(a, dt.INT).tolist() == [1, None]

    def test_to_string(self):
        a = BAT.from_values(dt.INT, [42, None], coerce=True)
        assert K.calc_cast(a, dt.STRING).tolist() == ["42", None]

    def test_string_to_int(self):
        a = BAT.from_values(dt.STRING, ["12", None], coerce=True)
        assert K.calc_cast(a, dt.INT).tolist() == [12, None]

    def test_string_to_float(self):
        a = BAT.from_values(dt.STRING, ["1.5"], coerce=True)
        assert K.calc_cast(a, dt.FLOAT).tolist() == [1.5]

    def test_to_boolean(self):
        a = BAT.from_values(dt.INT, [0, 3, None], coerce=True)
        assert K.calc_cast(a, dt.BOOLEAN).tolist() == [False, True, None]

    def test_identity_cast_copies(self):
        a = BAT.from_values(dt.INT, [1])
        out = K.calc_cast(a, dt.INT)
        out.append(2)
        assert len(a) == 1

    def test_boolean_to_string(self):
        a = BAT.from_array(dt.BOOLEAN, np.array([1, 0], dtype=np.int8))
        assert K.calc_cast(a, dt.STRING).tolist() == ["true", "false"]
