"""Unit tests for the synthetic workload generators."""


from repro.streams import generators as G


class TestSensorRows:
    def test_shape_and_types(self):
        rows = G.sensor_rows(100, sensors=8, rooms=4)
        assert len(rows) == 100
        for sid, room, temp, humidity in rows:
            assert 0 <= sid < 8
            assert room == sid % 4
            assert temp is None or isinstance(temp, float)
            assert 30.0 <= humidity <= 70.0

    def test_deterministic_by_seed(self):
        assert G.sensor_rows(50, seed=1) == G.sensor_rows(50, seed=1)
        assert G.sensor_rows(50, seed=1) != G.sensor_rows(50, seed=2)

    def test_contains_nulls(self):
        rows = G.sensor_rows(5000)
        assert any(r[2] is None for r in rows)

    def test_temperatures_plausible(self):
        rows = G.sensor_rows(2000)
        temps = [r[2] for r in rows if r[2] is not None]
        assert all(0.0 < t < 40.0 for t in temps)


class TestWeblogRows:
    def test_shape(self):
        rows = G.weblog_rows(200)
        for client, url, status, size, latency in rows:
            assert url.startswith("/")
            assert status in (200, 301, 404, 500)
            assert size >= 200 and latency >= 1.0

    def test_popularity_skew(self):
        rows = G.weblog_rows(5000)
        from collections import Counter

        counts = Counter(r[1] for r in rows)
        most = counts.most_common()
        assert most[0][1] > 3 * most[-1][1]

    def test_errors_are_slow(self):
        rows = G.weblog_rows(20000)
        ok = [r[4] for r in rows if r[2] == 200]
        err = [r[4] for r in rows if r[2] == 500]
        assert err and sum(err) / len(err) > sum(ok) / len(ok)


class TestNetflowRows:
    def test_shape(self):
        rows = G.netflow_rows(200)
        for src, dst, port, proto, packets, size in rows:
            assert proto in (6, 17)
            assert packets >= 1 and size > 0

    def test_attackers_present_and_fanout(self):
        rows = G.netflow_rows(5000, attackers=2)
        attacker_rows = [r for r in rows if r[0] >= 10_000]
        assert attacker_rows
        # scan-shaped: many distinct low ports
        ports = {r[2] for r in attacker_rows}
        assert len(ports) > 50
        assert all(p < 1024 for p in ports)


class TestTickRows:
    def test_prices_positive_and_walk(self):
        rows = G.tick_rows(500)
        assert all(r[1] > 0 for r in rows)
        symbols = {r[0] for r in rows}
        assert symbols == {"ACME", "GLOB", "INIT", "UMBR", "WAYN"}


class TestRooms:
    def test_reference_rooms(self):
        rooms = G.reference_rooms(4)
        assert len(rooms) == 4
        assert rooms[0][1] == "lab"
