"""Tests for the interactive DataCell shell."""

import io


from repro.cli import DataCellShell


def run_shell(script: str) -> str:
    out = io.StringIO()
    shell = DataCellShell(out=out)
    shell.run(io.StringIO(script), interactive=False)
    return out.getvalue()


class TestSQLExecution:
    def test_ddl_and_select(self):
        out = run_shell(
            "CREATE TABLE t (a INT);\n"
            "INSERT INTO t VALUES (1), (2);\n"
            "SELECT a FROM t ORDER BY a DESC;\n")
        assert "CREATE TABLE t" in out
        assert "(2 rows)" in out
        assert "| 2 |" in out

    def test_multiline_statement(self):
        out = run_shell(
            "CREATE TABLE t (a INT);\n"
            "SELECT a\n"
            "FROM t;\n")
        assert "(0 rows)" in out

    def test_sql_error_reported_not_fatal(self):
        out = run_shell(
            "SELECT nope FROM nowhere;\n"
            "CREATE TABLE t (a INT);\n")
        assert "error:" in out
        assert "CREATE TABLE t" in out


class TestDotCommands:
    def test_unknown_command(self):
        out = run_shell(".bogus\n")
        assert "unknown command" in out

    def test_help(self):
        assert ".register" in run_shell(".help\n")

    def test_quit_stops(self):
        out = run_shell(".quit\nCREATE TABLE t (a INT);\n")
        assert "CREATE TABLE" not in out

    def test_register_feed_results(self):
        out = run_shell(
            "CREATE STREAM s (k INT, v FLOAT);\n"
            ".register alerts SELECT k, v FROM s WHERE v > 10;\n"
            ".feed s 1, 20.5\n"
            ".feed s 2, 3.0\n"
            ".results alerts 2\n")
        assert "registered 'alerts'" in out
        assert "20.5" in out          # first batch passed the filter
        assert "3.0" not in out       # second tuple filtered out

    def test_register_with_mode(self):
        out = run_shell(
            "CREATE STREAM s (k INT);\n"
            ".register q reeval SELECT k FROM s;\n")
        assert "(reeval mode)" in out

    def test_register_usage_error(self):
        assert "usage:" in run_shell(".register onlyname\n")

    def test_queries_listing(self):
        out = run_shell(
            "CREATE STREAM s (k INT);\n"
            ".register q SELECT k FROM s;\n"
            ".queries\n")
        assert "q [reeval]" in out

    def test_remove(self):
        out = run_shell(
            "CREATE STREAM s (k INT);\n"
            ".register q SELECT k FROM s;\n"
            ".remove q\n"
            ".queries\n")
        assert "removed 'q'" in out
        assert "(no standing queries)" in out

    def test_pause_resume_query(self):
        out = run_shell(
            "CREATE STREAM s (k INT);\n"
            ".register q SELECT k FROM s;\n"
            ".pause q\n"
            ".feed s 7\n"
            ".results q\n"
            ".resume q\n"
            ".step\n"
            ".results q\n")
        assert "paused 'q'" in out
        first, second = out.split("resumed 'q'")
        assert "(no results yet)" in first
        assert "| 7 |" in second

    def test_pause_stream(self):
        out = run_shell(
            "CREATE STREAM s (k INT);\n"
            ".pause s\n")
        assert "paused 's'" in out

    def test_network_and_analysis(self):
        out = run_shell(
            "CREATE STREAM s (k INT);\n"
            ".register q SELECT k FROM s;\n"
            ".network\n"
            ".analysis\n")
        assert "query network" in out
        assert "network totals" in out

    def test_explain(self):
        out = run_shell(
            "CREATE STREAM s (k INT);\n"
            ".explain SELECT k FROM s [RANGE 4];\n")
        assert "StreamScan" in out

    def test_run_advances_clock(self):
        out = run_shell(
            "CREATE STREAM s (k INT);\n"
            ".run 500\n")
        assert "ran 500ms" in out

    def test_feed_parses_literals(self):
        out = run_shell(
            "CREATE STREAM s (k INT, name VARCHAR(8), v FLOAT);\n"
            ".register q SELECT k, name, v FROM s;\n"
            ".feed s 1, 'abc', null\n"
            ".results q\n")
        assert "abc" in out
        assert "NULL" in out

    def test_sample(self):
        out = run_shell("CREATE STREAM s (k INT);\n.sample\n")
        assert "1 samples" in out


class TestScriptMode:
    def test_main_runs_script(self, tmp_path):
        from repro.cli import main

        script = tmp_path / "script.sql"
        script.write_text(
            "CREATE TABLE t (a INT);\n"
            "INSERT INTO t VALUES (42);\n"
            "SELECT a FROM t;\n")
        assert main([str(script)]) == 0


class TestExplainStatement:
    def test_sql_level_explain(self):
        out = run_shell(
            "CREATE STREAM s (k INT);\n"
            "EXPLAIN SELECT k FROM s [RANGE 4];\n")
        assert "StreamScan" in out and "sql.resultSet" in out

    def test_explain_requires_select(self):
        out = run_shell("EXPLAIN CREATE TABLE t (a INT);\n")
        assert "error:" in out


class TestIntermediatesCommand:
    def test_intermediates_pane(self):
        out = run_shell(
            "CREATE STREAM s (k INT, v FLOAT);\n"
            ".register q incremental SELECT k, sum(v) FROM s "
            "[RANGE 4 SLIDE 2] GROUP BY k;\n"
            ".feed s 1, 1.0\n"
            ".feed s 1, 2.0\n"
            ".intermediates q\n")
        assert "partial states" in out

    def test_intermediates_usage(self):
        assert "usage:" in run_shell(".intermediates\n")


class TestSaveRestoreCommands:
    def test_roundtrip_through_shell(self, tmp_path):
        directory = str(tmp_path / "snap")
        out = run_shell(
            "CREATE STREAM s (k INT);\n"
            ".register q SELECT k FROM s;\n"
            f".save {directory}\n")
        assert "saved engine state" in out
        out2 = run_shell(
            f".restore {directory}\n"
            ".queries\n")
        assert "restored engine" in out2
        assert "q [reeval]" in out2

    def test_usage_lines(self):
        assert "usage: .save" in run_shell(".save\n")
        assert "usage: .restore" in run_shell(".restore\n")
