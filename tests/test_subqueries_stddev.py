"""Tests for IN/NOT IN subqueries (semi/anti joins) and the
stddev/variance aggregates."""

import statistics

import pytest

from repro.core.engine import DataCellEngine
from repro.errors import BindError
from repro.mal.compiler import compile_plan
from repro.mal.interpreter import MALContext, execute
from repro.sql import compile_select
from repro.sql.executor import ExecutionContext, PlanExecutor
from repro.sql.plan import JoinNode, walk_plan
from repro.streams.source import RateSource
from tests.conftest import run_select


class TestInSubquery:
    def test_semi_join(self, emp_catalog):
        rows = run_select(emp_catalog,
                          "SELECT id FROM emp WHERE dept IN "
                          "(SELECT name FROM dept) ORDER BY id")
        assert rows == [(1,), (2,), (3,), (5,)]

    def test_anti_join(self, emp_catalog):
        rows = run_select(emp_catalog,
                          "SELECT id FROM emp WHERE dept NOT IN "
                          "(SELECT name FROM dept WHERE budget < 600)")
        # NULL dept never qualifies; 'a' is in the subquery? budget
        # 1000 -> no; so 'a' rows qualify, 'b' rows (500) do not
        assert rows == [(1,), (2,)]

    def test_filtered_subquery(self, emp_catalog):
        rows = run_select(emp_catalog,
                          "SELECT id FROM emp WHERE dept IN "
                          "(SELECT name FROM dept WHERE city = 'rot')")
        assert rows == [(3,), (5,)]

    def test_combines_with_other_conjuncts(self, emp_catalog):
        rows = run_select(emp_catalog,
                          "SELECT id FROM emp WHERE dept IN "
                          "(SELECT name FROM dept) AND salary > 120")
        assert rows == [(2,), (5,)]

    def test_null_operand_never_qualifies(self, emp_catalog):
        rows = run_select(emp_catalog,
                          "SELECT id FROM emp WHERE dept IN "
                          "(SELECT name FROM dept)")
        assert (4,) not in rows

    def test_not_in_with_null_in_subquery_is_empty(self, emp_catalog):
        emp_catalog.create_table(
            "vals", __import__("repro.storage", fromlist=["Schema"]
                               ).Schema.parse([("v", "STRING")]))
        emp_catalog.table("vals").insert_rows([("a",), (None,)])
        rows = run_select(emp_catalog,
                          "SELECT id FROM emp WHERE dept NOT IN "
                          "(SELECT v FROM vals)")
        assert rows == []

    def test_plan_has_semi_join(self, emp_catalog):
        plan = compile_select("SELECT id FROM emp WHERE dept IN "
                              "(SELECT name FROM dept)", emp_catalog)
        joins = [n for n in walk_plan(plan) if isinstance(n, JoinNode)]
        assert joins[0].join_type == "semi"
        assert plan.schema.names == ["id"]

    def test_mal_path_agrees(self, emp_catalog):
        for q in ("SELECT id FROM emp WHERE dept IN "
                  "(SELECT name FROM dept) ORDER BY id",
                  "SELECT id FROM emp WHERE dept NOT IN "
                  "(SELECT name FROM dept) ORDER BY id"):
            plan = compile_select(q, emp_catalog)
            tree = PlanExecutor(
                ExecutionContext(emp_catalog)).execute(plan).to_rows()
            mal = execute(compile_plan(plan),
                          MALContext(emp_catalog)).to_rows()
            assert tree == mal

    def test_multi_column_subquery_rejected(self, emp_catalog):
        with pytest.raises(BindError, match="single-column"):
            compile_select("SELECT id FROM emp WHERE dept IN "
                           "(SELECT name, city FROM dept)", emp_catalog)

    def test_type_mismatch_rejected(self, emp_catalog):
        with pytest.raises(BindError):
            compile_select("SELECT id FROM emp WHERE id IN "
                           "(SELECT name FROM dept)", emp_catalog)

    def test_under_or_rejected(self, emp_catalog):
        with pytest.raises(BindError, match="top-level"):
            compile_select(
                "SELECT id FROM emp WHERE id = 1 OR dept IN "
                "(SELECT name FROM dept)", emp_catalog)

    def test_streaming_semi_join(self):
        engine = DataCellEngine()
        engine.execute("CREATE STREAM s (sid INT, temp FLOAT)")
        engine.execute("CREATE TABLE watchlist (sid INT)")
        engine.execute("INSERT INTO watchlist VALUES (1), (3)")
        q = engine.register_continuous(
            "SELECT sid, temp FROM s WHERE sid IN "
            "(SELECT sid FROM watchlist)", name="watched")
        engine.feed("s", [(1, 10.0), (2, 20.0), (3, 30.0)])
        engine.step()
        assert engine.results("watched").rows() == [(1, 10.0),
                                                    (3, 30.0)]

    def test_incremental_semi_join_modes_agree(self):
        def run(mode):
            engine = DataCellEngine()
            engine.execute("CREATE STREAM s (sid INT, temp FLOAT)")
            engine.execute("CREATE TABLE watchlist (sid INT)")
            engine.execute("INSERT INTO watchlist VALUES (0), (2)")
            q = engine.register_continuous(
                "SELECT sid, count(*) c FROM s [RANGE 8 SLIDE 4] "
                "WHERE sid IN (SELECT sid FROM watchlist) "
                "GROUP BY sid ORDER BY sid", mode=mode)
            assert q.mode == mode
            rows = [(i % 4, float(i)) for i in range(32)]
            engine.attach_source("s", RateSource(rows, rate=100000))
            engine.run_until_drained()
            assert not engine.scheduler.failed
            return [r.to_rows() for _t, r in
                    engine.results(q.name).batches]

        assert run("reeval") == run("incremental")


class TestStddevVariance:
    def test_grouped_matches_statistics_module(self, emp_catalog):
        rows = run_select(emp_catalog,
                          "SELECT dept, stddev(salary), "
                          "variance(salary) FROM emp "
                          "WHERE dept IS NOT NULL "
                          "GROUP BY dept ORDER BY dept")
        a_sd = statistics.stdev([100.0, 200.0])
        b_var = statistics.variance([50.0, 150.0])
        assert rows[0][1] == pytest.approx(a_sd)
        assert rows[1][2] == pytest.approx(b_var)

    def test_scalar(self, emp_catalog):
        rows = run_select(emp_catalog,
                          "SELECT stddev(salary) FROM emp")
        expected = statistics.stdev([100.0, 200.0, 50.0, 150.0])
        assert rows[0][0] == pytest.approx(expected)

    def test_single_value_is_null(self, emp_catalog):
        rows = run_select(emp_catalog,
                          "SELECT stddev(salary) FROM emp WHERE id = 1")
        assert rows == [(None,)]

    def test_non_numeric_rejected(self, emp_catalog):
        with pytest.raises(BindError):
            compile_select("SELECT stddev(dept) FROM emp", emp_catalog)

    def test_mal_agrees(self, emp_catalog):
        plan = compile_select(
            "SELECT dept, stddev(salary) FROM emp GROUP BY dept "
            "ORDER BY dept", emp_catalog)
        tree = PlanExecutor(
            ExecutionContext(emp_catalog)).execute(plan).to_rows()
        mal = execute(compile_plan(plan),
                      MALContext(emp_catalog)).to_rows()
        assert tree == mal

    def test_incremental_modes_agree(self):
        def run(mode):
            engine = DataCellEngine()
            engine.execute("CREATE STREAM s (g INT, v FLOAT)")
            q = engine.register_continuous(
                "SELECT g, stddev(v), variance(v) FROM s "
                "[RANGE 20 SLIDE 5] GROUP BY g ORDER BY g", mode=mode)
            rows = [(i % 3, float((i * 13) % 17)) for i in range(80)]
            engine.attach_source("s", RateSource(rows, rate=100000))
            engine.run_until_drained()
            assert not engine.scheduler.failed
            out = []
            for _t, rel in engine.results(q.name).batches:
                out.append([tuple(round(v, 9) if isinstance(v, float)
                                  else v for v in row)
                            for row in rel.to_rows()])
            return out

        assert run("reeval") == run("incremental")

    def test_all_null_group(self, emp_catalog):
        rows = run_select(emp_catalog,
                          "SELECT variance(salary) FROM emp "
                          "WHERE dept IS NULL")
        assert rows == [(None,)]
