"""Tests for the live (wall-clock, threaded) runtime mode."""

import time

import pytest

from repro.core.clock import WallClock
from repro.core.engine import DataCellEngine
from repro.core.live import LiveRunner
from repro.errors import StreamError
from repro.streams.source import RateSource


def live_engine():
    engine = DataCellEngine(clock=WallClock())
    engine.execute("CREATE STREAM s (k INT, v FLOAT)")
    return engine


class TestLiveRunner:
    def test_requires_wall_clock(self):
        engine = DataCellEngine()  # simulated clock
        with pytest.raises(StreamError):
            LiveRunner(engine)

    def test_end_to_end_delivery(self):
        engine = live_engine()
        engine.register_continuous("SELECT k, v FROM s WHERE v > 0.5",
                                   name="q")
        runner = LiveRunner(engine)
        rows = [(i, float(i % 2)) for i in range(40)]
        runner.attach("s", RateSource(rows, rate=2000))
        runner.start()
        assert runner.wait_drained(timeout_s=5.0)
        runner.stop()
        got = engine.results("q").rows()
        assert len(got) == 20
        assert all(v == 1.0 for _k, v in got)
        assert not engine.scheduler.failed

    def test_windowed_query_live(self):
        engine = live_engine()
        engine.register_continuous(
            "SELECT count(*) FROM s [RANGE 10]", name="q",
            mode="incremental")
        runner = LiveRunner(engine)
        runner.attach("s", RateSource([(i, 0.0) for i in range(30)],
                                      rate=3000))
        with runner:
            assert runner.wait_drained(timeout_s=5.0)
        assert engine.results("q").rows() == [(10,), (10,), (10,)]

    def test_two_streams_concurrent(self):
        engine = live_engine()
        engine.execute("CREATE STREAM s2 (k INT, v FLOAT)")
        engine.register_continuous("SELECT k FROM s", name="a")
        engine.register_continuous("SELECT k FROM s2", name="b")
        runner = LiveRunner(engine)
        runner.attach("s", RateSource([(i, 0.0) for i in range(25)],
                                      rate=2500))
        runner.attach("s2", RateSource([(i, 0.0) for i in range(25)],
                                       rate=2500))
        runner.start()
        assert runner.wait_drained(timeout_s=5.0)
        runner.stop()
        assert len(engine.results("a").rows()) == 25
        assert len(engine.results("b").rows()) == 25

    def test_attach_after_start_rejected(self):
        engine = live_engine()
        runner = LiveRunner(engine)
        runner.start()
        try:
            with pytest.raises(StreamError):
                runner.attach("s", RateSource([(1, 0.0)], rate=10))
        finally:
            runner.stop()

    def test_stop_idempotent(self):
        engine = live_engine()
        runner = LiveRunner(engine)
        runner.start()
        runner.stop()
        runner.stop()  # second stop is a no-op

    def test_double_start_rejected(self):
        engine = live_engine()
        runner = LiveRunner(engine)
        runner.start()
        try:
            with pytest.raises(StreamError):
                runner.start()
        finally:
            runner.stop()

    def test_stop_drains_chained_network(self):
        """stop() must flush chained output_stream networks: a firing in
        the final step can enable a downstream factory, so a single step
        is not enough — the bounded drain loop runs until no transition
        is enabled."""
        engine = live_engine()
        engine.register_continuous("SELECT k, v FROM s", name="q1",
                                   output_stream="mid")
        engine.register_continuous("SELECT k FROM mid", name="q2")
        runner = LiveRunner(engine)
        runner.attach("s", RateSource([(i, 1.0) for i in range(50)],
                                      rate=5000))
        runner.start()
        time.sleep(0.03)  # stop mid-stream, tuples in flight
        runner.stop()
        ingested = sum(r.total_ingested for r in runner._receptors)
        # everything ingested before stop flowed through both stages
        assert len(engine.results("q2").rows()) == ingested
        assert not engine.scheduler.enabled_transitions()

    def test_drain_scheduler_bounded(self):
        from repro.core.live import drain_scheduler

        engine = live_engine()
        steps = drain_scheduler(engine.scheduler, max_steps=8)
        assert steps == 1  # idle net quiesces on the first step

    def test_conservation_under_concurrency(self):
        engine = live_engine()
        engine.register_continuous("SELECT k FROM s", name="q")
        runner = LiveRunner(engine)
        runner.attach("s", RateSource([(i, 0.0) for i in range(200)],
                                      rate=20000))
        runner.start()
        assert runner.wait_drained(timeout_s=5.0)
        runner.stop()
        basket = engine.basket("s")
        assert basket.total_in == 200
        assert basket.total_in == basket.total_dropped + len(basket)
        rows = engine.results("q").rows()
        assert [k for k, in rows] == list(range(200))
