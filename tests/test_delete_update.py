"""Tests for DELETE and UPDATE statements."""

import pytest

from repro.core.engine import DataCellEngine
from repro.errors import BindError, CatalogError, KernelError


@pytest.fixture
def db():
    engine = DataCellEngine()
    engine.execute("CREATE TABLE emp (id INT, dept VARCHAR(8), "
                   "salary FLOAT)")
    engine.execute("INSERT INTO emp VALUES "
                   "(1,'a',100.0), (2,'a',200.0), (3,'b',50.0), "
                   "(4,NULL,NULL), (5,'b',150.0)")
    return engine


class TestDelete:
    def test_delete_where(self, db):
        assert db.execute("DELETE FROM emp WHERE salary < 120") == 2
        assert db.query("SELECT id FROM emp ORDER BY id").to_rows() == \
            [(2,), (4,), (5,)]

    def test_delete_all(self, db):
        assert db.execute("DELETE FROM emp") == 5
        assert db.query("SELECT count(*) FROM emp").to_rows() == [(0,)]

    def test_delete_none_matching(self, db):
        assert db.execute("DELETE FROM emp WHERE id > 100") == 0

    def test_null_rows_not_matched_by_comparison(self, db):
        db.execute("DELETE FROM emp WHERE salary >= 0")
        ids = [r[0] for r in db.query("SELECT id FROM emp").to_rows()]
        assert ids == [4]

    def test_delete_unknown_table(self, db):
        with pytest.raises(CatalogError):
            db.execute("DELETE FROM nope")

    def test_delete_with_in_predicate(self, db):
        assert db.execute(
            "DELETE FROM emp WHERE dept IN ('a')") == 2

    def test_index_survives_delete(self, db):
        db.execute("CREATE INDEX ON emp (id)")
        db.execute("DELETE FROM emp WHERE id = 1")
        table = db.catalog.table("emp")
        assert table.index_lookup("id", 2).tolist() == [0]


class TestUpdate:
    def test_update_constant(self, db):
        assert db.execute(
            "UPDATE emp SET salary = 0 WHERE dept = 'b'") == 2
        rows = db.query("SELECT id, salary FROM emp "
                        "WHERE dept = 'b' ORDER BY id").to_rows()
        assert rows == [(3, 0.0), (5, 0.0)]

    def test_update_expression_references_old_values(self, db):
        db.execute("UPDATE emp SET salary = salary * 2 WHERE id <= 2")
        rows = db.query("SELECT salary FROM emp WHERE id <= 2 "
                        "ORDER BY id").to_rows()
        assert rows == [(200.0,), (400.0,)]

    def test_update_all_rows(self, db):
        assert db.execute("UPDATE emp SET dept = 'x'") == 5
        depts = {r[0] for r in db.query(
            "SELECT DISTINCT dept FROM emp").to_rows()}
        assert depts == {"x"}

    def test_multi_assignment_uses_pre_update_rows(self, db):
        db.execute("CREATE TABLE p (a INT, b INT)")
        db.execute("INSERT INTO p VALUES (1, 2)")
        db.execute("UPDATE p SET a = b, b = a")
        assert db.query("SELECT a, b FROM p").to_rows() == [(2, 1)]

    def test_update_to_null(self, db):
        db.execute("UPDATE emp SET dept = NULL WHERE id = 1")
        assert db.query("SELECT dept FROM emp WHERE id = 1"
                        ).to_rows() == [(None,)]

    def test_update_coerces_int_to_float(self, db):
        db.execute("UPDATE emp SET salary = 42 WHERE id = 3")
        assert db.query("SELECT salary FROM emp WHERE id = 3"
                        ).to_rows() == [(42.0,)]

    def test_update_incompatible_type_rejected(self, db):
        with pytest.raises((BindError, KernelError)):
            db.execute("UPDATE emp SET salary = 'abc'")

    def test_update_unknown_column(self, db):
        with pytest.raises((BindError, CatalogError)):
            db.execute("UPDATE emp SET nope = 1")

    def test_index_rebuilt_after_update(self, db):
        db.execute("CREATE INDEX ON emp (dept)")
        db.execute("UPDATE emp SET dept = 'z' WHERE id = 1")
        table = db.catalog.table("emp")
        assert table.index_lookup("dept", "z").tolist() == [0]
        assert table.index_lookup("dept", "a").tolist() == [1]

    def test_standing_queries_see_updated_dimension(self, db):
        db.execute("CREATE STREAM s (id INT)")
        db.register_continuous(
            "SELECT e.dept FROM s t, emp e WHERE t.id = e.id",
            name="q", mode="reeval")
        db.feed("s", [(1,)])
        db.step()
        db.execute("UPDATE emp SET dept = 'new' WHERE id = 1")
        db.feed("s", [(1,)])
        db.step()
        assert db.results("q").rows() == [("a",), ("new",)]


class TestParserForDML:
    def test_delete_parses(self):
        from repro.sql import ast
        from repro.sql.parser import parse

        stmt = parse("DELETE FROM t WHERE a > 1")
        assert isinstance(stmt, ast.DeleteStmt)
        assert stmt.table == "t" and stmt.where is not None

    def test_update_parses(self):
        from repro.sql import ast
        from repro.sql.parser import parse

        stmt = parse("UPDATE t SET a = 1, b = a + 2 WHERE c = 3")
        assert isinstance(stmt, ast.UpdateStmt)
        assert [c for c, _e in stmt.assignments] == ["a", "b"]

    def test_update_requires_set(self):
        from repro.errors import ParseError
        from repro.sql.parser import parse

        with pytest.raises(ParseError):
            parse("UPDATE t a = 1")
