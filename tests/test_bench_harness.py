"""Tests for the benchmark harness and reporting helpers."""

import pytest

from repro.bench.harness import (ResultTable, run_windowed_query, speedup,
                                 time_callable)
from repro.bench.reporting import (compare_runs, load_json, save_json,
                                   to_markdown)


class TestResultTable:
    def make(self):
        table = ResultTable("demo", ["n", "ms"])
        table.add(1, 0.5)
        table.add(2, 0.25)
        return table

    def test_render_aligned(self):
        text = self.make().render()
        assert "== demo ==" in text
        assert "0.5000" in text

    def test_add_arity_checked(self):
        with pytest.raises(ValueError):
            self.make().add(1)

    def test_as_dicts(self):
        assert self.make().as_dicts()[0] == {"n": 1, "ms": 0.5}


class TestHelpers:
    def test_speedup(self):
        assert speedup(10.0, 2.0) == 5.0
        assert speedup(1.0, 0.0) == float("inf")

    def test_time_callable_returns_result(self):
        seconds, result = time_callable(lambda: 42, repeats=2, warmup=1)
        assert result == 42 and seconds >= 0.0

    def test_run_windowed_query_contract(self):
        out = run_windowed_query(
            [(i, float(i)) for i in range(30)],
            "CREATE STREAM s (k INT, v FLOAT)", "s",
            "SELECT k, sum(v) FROM s [RANGE 10 SLIDE 5] GROUP BY k",
            mode="incremental")
        assert out["mode"] == "incremental"
        assert out["fires"] == 5
        assert out["tuples_in"] == 30
        assert out["batches"]


class TestReporting:
    def make(self):
        table = ResultTable("t1", ["x", "y"])
        table.add(1, 2.0)
        return table

    def test_markdown(self):
        md = to_markdown(self.make())
        assert md.startswith("### t1")
        assert "| x | y |" in md
        assert "| 1 | 2.0000 |" in md

    def test_json_roundtrip(self, tmp_path):
        path = str(tmp_path / "run.json")
        save_json([self.make()], path)
        loaded = load_json(path)
        assert loaded[0]["title"] == "t1"
        assert loaded[0]["rows"] == [[1, 2.0]]

    def test_compare_runs_flags_drift(self):
        before = [{"title": "t1", "columns": ["x", "y"],
                   "rows": [[1, 2.0]]}]
        after = [{"title": "t1", "columns": ["x", "y"],
                  "rows": [[1, 10.0]]}]
        findings = compare_runs(before, after, tolerance=0.5)
        assert findings and "t1 / y" in findings[0]

    def test_compare_runs_quiet_within_tolerance(self):
        run = [{"title": "t1", "columns": ["x"], "rows": [[2.0]]}]
        assert compare_runs(run, run) == []
