"""Tests for the monitoring panes (the demo's GUI, textually)."""

import pytest

from repro.streams.source import RateSource


@pytest.fixture
def busy_engine(engine):
    engine.register_continuous(
        "SELECT sid, avg(temp) FROM sensors [RANGE 10 SLIDE 5] "
        "GROUP BY sid", name="winq")
    engine.register_continuous(
        "SELECT sid FROM sensors WHERE temp > 50", name="alerts")
    engine.attach_source("sensors", RateSource(
        [(i % 3, float(i)) for i in range(40)], rate=1000))
    engine.run_until_drained()
    return engine


class TestNetworkPane:
    def test_lists_all_components(self, busy_engine):
        text = busy_engine.monitor.network()
        assert "receptor sensors_r0" in text
        assert "basket sensors" in text
        assert "factory winq" in text
        assert "factory alerts" in text
        assert "emitter winq" in text

    def test_shows_subscriptions(self, busy_engine):
        text = busy_engine.monitor.network()
        assert "bound by winq" in text
        assert "released@" in text

    def test_shows_paused_state(self, busy_engine):
        busy_engine.pause_query("alerts")
        text = busy_engine.monitor.network()
        assert "(paused)" in text


class TestAnalysisPane:
    def test_per_factory_lines(self, busy_engine):
        text = busy_engine.monitor.analysis()
        assert "winq:" in text and "alerts:" in text
        assert "ms/fire" in text
        assert "network totals" in text

    def test_cache_stats_for_incremental(self, busy_engine):
        text = busy_engine.monitor.analysis()
        assert "slices_computed" in text


class TestPlansPane:
    def test_plan_dump(self, busy_engine):
        text = busy_engine.monitor.plans("winq")
        assert "logical plan" in text
        assert "StreamScan" in text
        assert "-- continuous plan --" in text

    def test_incremental_split_shown(self, busy_engine):
        text = busy_engine.monitor.plans("winq")
        assert "incremental split" in text


class TestSampling:
    def test_sample_and_timeseries(self, busy_engine):
        busy_engine.monitor.sample()
        busy_engine.feed("sensors", [(1, 1.0)])
        busy_engine.monitor.sample()
        series = busy_engine.monitor.timeseries("sensors",
                                                metric="total_in")
        assert len(series) == 2
        assert series[1][1] == series[0][1] + 1

    def test_timeseries_sums_all_baskets(self, busy_engine):
        busy_engine.monitor.sample()
        series = busy_engine.monitor.timeseries(metric="total_in")
        assert series[0][1] == 40

    def test_report_combines_panes(self, busy_engine):
        report = busy_engine.monitor.report()
        assert "query network" in report and "analysis" in report
