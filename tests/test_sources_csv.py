"""Tests for CSVSource and time-based stream-stream joins (coverage
gaps)."""


from repro.core.engine import DataCellEngine
from repro.streams.source import CSVSource, RateSource


class TestCSVSource:
    def make_csv(self, tmp_path, text):
        path = tmp_path / "data.csv"
        path.write_text(text)
        return str(path)

    def test_reads_rows_with_converters(self, tmp_path):
        path = self.make_csv(tmp_path,
                             "sid,temp\n1,20.5\n2,21.0\n")
        src = CSVSource(path, [int, float], rate=10)
        events = list(src)
        assert events == [(0, [1, 20.5]), (100, [2, 21.0])]

    def test_empty_cells_become_none(self, tmp_path):
        path = self.make_csv(tmp_path, "sid,temp\n1,\n")
        src = CSVSource(path, [int, float], rate=10)
        assert list(src)[0][1] == [1, None]

    def test_no_header(self, tmp_path):
        path = self.make_csv(tmp_path, "1,2.0\n")
        src = CSVSource(path, [int, float], rate=10,
                        skip_header=False)
        assert len(list(src)) == 1

    def test_replayable(self, tmp_path):
        path = self.make_csv(tmp_path, "a\n1\n2\n")
        src = CSVSource(path, [int], rate=5)
        assert list(src) == list(src)

    def test_feeds_engine(self, tmp_path):
        path = self.make_csv(tmp_path,
                             "sid,temp\n1,30.0\n2,10.0\n3,40.0\n")
        engine = DataCellEngine()
        engine.execute("CREATE STREAM s (sid INT, temp FLOAT)")
        engine.register_continuous("SELECT sid FROM s WHERE temp > 20",
                                   name="q")
        engine.attach_source("s", CSVSource(path, [int, float],
                                            rate=1000))
        engine.run_until_drained()
        assert engine.results("q").rows() == [(1,), (3,)]


class TestTimeWindowJoins:
    """Stream-stream joins under time-based windows, both modes."""

    def run(self, mode):
        engine = DataCellEngine()
        engine.execute("CREATE STREAM a (k INT, v FLOAT)")
        engine.execute("CREATE STREAM b (k INT, w INT)")
        q = engine.register_continuous(
            "SELECT x.k, count(*) n FROM "
            "a [RANGE 2 SECONDS SLIDE 1 SECONDS] x, "
            "b [RANGE 2 SECONDS SLIDE 1 SECONDS] y "
            "WHERE x.k = y.k GROUP BY x.k ORDER BY x.k", mode=mode)
        assert q.mode == mode
        engine.attach_source("a", RateSource(
            [(i % 3, float(i)) for i in range(40)], rate=10))
        engine.attach_source("b", RateSource(
            [(i % 3, i) for i in range(40)], rate=10))
        engine.run_for(6000, step_ms=100)
        assert not engine.scheduler.failed
        return [(t, rel.to_rows()) for t, rel in
                engine.results(q.name).batches]

    def test_modes_agree(self):
        assert self.run("reeval") == self.run("incremental")

    def test_fires_at_time_boundaries(self):
        batches = self.run("incremental")
        assert [t for t, _r in batches] == [2000, 3000, 4000, 5000, 6000]
