"""Integration tests: one-time SQL through the plan executor."""


from repro.sql import compile_select
from repro.sql.executor import ExecutionContext, PlanExecutor
from tests.conftest import run_select


class TestProjection:
    def test_simple(self, emp_catalog):
        rows = run_select(emp_catalog, "SELECT id FROM emp")
        assert rows == [(1,), (2,), (3,), (4,), (5,)]

    def test_expression(self, emp_catalog):
        rows = run_select(emp_catalog,
                          "SELECT id * 10 + 1 FROM emp WHERE id <= 2")
        assert rows == [(11,), (21,)]

    def test_constant_select(self, emp_catalog):
        rows = run_select(emp_catalog, "SELECT 42 FROM emp LIMIT 2")
        assert rows == [(42,), (42,)]

    def test_null_propagation(self, emp_catalog):
        rows = run_select(emp_catalog, "SELECT salary + 1 FROM emp "
                                       "WHERE id = 4")
        assert rows == [(None,)]

    def test_string_concat(self, emp_catalog):
        rows = run_select(emp_catalog,
                          "SELECT dept || '!' FROM emp WHERE id = 1")
        assert rows == [("a!",)]


class TestFilters:
    def test_range(self, emp_catalog):
        rows = run_select(emp_catalog,
                          "SELECT id FROM emp WHERE salary "
                          "BETWEEN 100 AND 200")
        assert rows == [(1,), (2,), (5,)]

    def test_nulls_never_match(self, emp_catalog):
        rows = run_select(emp_catalog,
                          "SELECT id FROM emp WHERE salary > 0 "
                          "OR salary <= 0")
        assert [r[0] for r in rows] == [1, 2, 3, 5]

    def test_not_with_null_stays_excluded(self, emp_catalog):
        # NOT (salary > 0) is UNKNOWN for the NULL row -> excluded
        rows = run_select(emp_catalog,
                          "SELECT id FROM emp WHERE NOT (salary > 0)")
        assert rows == []

    def test_is_null(self, emp_catalog):
        rows = run_select(emp_catalog,
                          "SELECT id FROM emp WHERE dept IS NULL")
        assert rows == [(4,)]

    def test_in_list(self, emp_catalog):
        rows = run_select(emp_catalog,
                          "SELECT id FROM emp WHERE dept IN ('b')")
        assert rows == [(3,), (5,)]

    def test_not_in_with_null_item(self, emp_catalog):
        # x NOT IN (..., NULL) is never TRUE
        rows = run_select(emp_catalog,
                          "SELECT id FROM emp WHERE dept NOT IN "
                          "('a', NULL)")
        assert rows == []

    def test_like(self, emp_catalog):
        rows = run_select(emp_catalog,
                          "SELECT id FROM emp WHERE dept LIKE 'a%'")
        assert rows == [(1,), (2,)]

    def test_case_in_projection(self, emp_catalog):
        rows = run_select(emp_catalog,
                          "SELECT CASE WHEN salary >= 150 THEN 'hi' "
                          "WHEN salary >= 100 THEN 'mid' ELSE 'lo' END "
                          "FROM emp WHERE salary IS NOT NULL")
        assert [r[0] for r in rows] == ["mid", "hi", "lo", "hi"]


class TestJoins:
    def test_equi_join(self, emp_catalog):
        rows = run_select(emp_catalog,
                          "SELECT e.id, d.city FROM emp e, dept d "
                          "WHERE e.dept = d.name ORDER BY e.id")
        assert rows == [(1, "ams"), (2, "ams"), (3, "rot"), (5, "rot")]

    def test_join_on_syntax(self, emp_catalog):
        rows = run_select(emp_catalog,
                          "SELECT e.id FROM emp e JOIN dept d "
                          "ON e.dept = d.name AND d.budget >= 1000 "
                          "ORDER BY e.id")
        assert rows == [(1,), (2,)]

    def test_cross_join(self, emp_catalog):
        rows = run_select(emp_catalog,
                          "SELECT e.id FROM emp e CROSS JOIN dept d")
        assert len(rows) == 15

    def test_null_keys_drop_out(self, emp_catalog):
        rows = run_select(emp_catalog,
                          "SELECT e.id FROM emp e, dept d "
                          "WHERE e.dept = d.name")
        assert (4,) not in rows

    def test_self_join(self, emp_catalog):
        rows = run_select(emp_catalog,
                          "SELECT a.id, b.id FROM emp a, emp b "
                          "WHERE a.dept = b.dept AND a.id < b.id "
                          "ORDER BY a.id, b.id")
        assert rows == [(1, 2), (3, 5)]


class TestAggregation:
    def test_group_by(self, emp_catalog):
        rows = run_select(emp_catalog,
                          "SELECT dept, count(*), sum(salary) FROM emp "
                          "GROUP BY dept ORDER BY dept")
        assert rows == [(None, 1, None), ("a", 2, 300.0),
                        ("b", 2, 200.0)]

    def test_scalar_aggregates(self, emp_catalog):
        rows = run_select(emp_catalog,
                          "SELECT count(*), count(salary), min(salary), "
                          "max(salary), avg(salary) FROM emp")
        assert rows == [(5, 4, 50.0, 200.0, 125.0)]

    def test_scalar_aggregate_empty_input(self, emp_catalog):
        rows = run_select(emp_catalog,
                          "SELECT count(*), sum(salary) FROM emp "
                          "WHERE id > 100")
        assert rows == [(0, None)]

    def test_group_by_empty_input(self, emp_catalog):
        rows = run_select(emp_catalog,
                          "SELECT dept, count(*) FROM emp "
                          "WHERE id > 100 GROUP BY dept")
        assert rows == []

    def test_having(self, emp_catalog):
        rows = run_select(emp_catalog,
                          "SELECT dept FROM emp GROUP BY dept "
                          "HAVING sum(salary) > 250")
        assert rows == [("a",)]

    def test_count_distinct(self, emp_catalog):
        rows = run_select(emp_catalog,
                          "SELECT count(DISTINCT dept) FROM emp")
        assert rows == [(2,)]

    def test_group_expr(self, emp_catalog):
        rows = run_select(emp_catalog,
                          "SELECT id % 2, count(*) FROM emp "
                          "GROUP BY id % 2 ORDER BY 1")
        assert rows == [(0, 2), (1, 3)]

    def test_aggregate_arithmetic_in_select(self, emp_catalog):
        rows = run_select(emp_catalog,
                          "SELECT max(salary) - min(salary) FROM emp")
        assert rows == [(150.0,)]


class TestOrderingLimiting:
    def test_order_desc_with_null_last(self, emp_catalog):
        rows = run_select(emp_catalog,
                          "SELECT id FROM emp ORDER BY salary DESC")
        # nils sort first ascending, hence last when descending
        assert rows == [(2,), (5,), (1,), (3,), (4,)]

    def test_multi_key(self, emp_catalog):
        rows = run_select(emp_catalog,
                          "SELECT id FROM emp ORDER BY dept, salary DESC")
        assert rows == [(4,), (2,), (1,), (5,), (3,)]

    def test_limit_offset(self, emp_catalog):
        rows = run_select(emp_catalog,
                          "SELECT id FROM emp ORDER BY id "
                          "LIMIT 2 OFFSET 1")
        assert rows == [(2,), (3,)]

    def test_distinct(self, emp_catalog):
        rows = run_select(emp_catalog, "SELECT DISTINCT dept FROM emp")
        assert rows == [("a",), ("b",), (None,)]

    def test_distinct_multi_column(self, emp_catalog):
        rows = run_select(emp_catalog,
                          "SELECT DISTINCT dept, salary > 100 FROM emp")
        assert len(rows) == 5


class TestIndexedFilterPath:
    def test_index_probe_used_and_correct(self, emp_catalog):
        emp_catalog.table("emp").create_index("id", "sorted")
        plan = compile_select("SELECT id, dept FROM emp WHERE id >= 4",
                              emp_catalog)
        ctx = ExecutionContext(emp_catalog)
        rows = PlanExecutor(ctx).execute(plan).to_rows()
        assert rows == [(4, None), (5, "b")]
        assert ctx.stats.get("index_probes", 0) == 1

    def test_hash_index_equality(self, emp_catalog):
        emp_catalog.table("emp").create_index("dept", "hash")
        plan = compile_select("SELECT id FROM emp WHERE dept = 'b'",
                              emp_catalog)
        ctx = ExecutionContext(emp_catalog)
        rows = PlanExecutor(ctx).execute(plan).to_rows()
        assert rows == [(3,), (5,)]
        assert ctx.stats.get("index_probes", 0) == 1

    def test_index_with_extra_conjunct(self, emp_catalog):
        emp_catalog.table("emp").create_index("dept", "hash")
        plan = compile_select(
            "SELECT id FROM emp WHERE dept = 'b' AND salary > 100",
            emp_catalog)
        ctx = ExecutionContext(emp_catalog)
        assert PlanExecutor(ctx).execute(plan).to_rows() == [(5,)]


class TestFunctionsInQueries:
    def test_round_and_abs(self, emp_catalog):
        rows = run_select(emp_catalog,
                          "SELECT abs(-id), round(salary / 3, 1) "
                          "FROM emp WHERE id = 1")
        assert rows == [(1, 33.3)]

    def test_upper_lower(self, emp_catalog):
        rows = run_select(emp_catalog,
                          "SELECT upper(dept), lower('ABC') FROM emp "
                          "WHERE id = 1")
        assert rows == [("A", "abc")]

    def test_coalesce(self, emp_catalog):
        rows = run_select(emp_catalog,
                          "SELECT coalesce(dept, 'none') FROM emp "
                          "ORDER BY id")
        assert [r[0] for r in rows] == ["a", "a", "b", "none", "b"]

    def test_cast_in_query(self, emp_catalog):
        rows = run_select(emp_catalog,
                          "SELECT CAST(salary AS INT) FROM emp "
                          "WHERE id = 1")
        assert rows == [(100,)]
