"""Unit tests for the Petri-net scheduler."""

import pytest

from repro.core.basket import Basket
from repro.core.clock import SimulatedClock, WallClock
from repro.core.emitter import Emitter
from repro.core.factory import FAILED, Factory
from repro.core.receptor import Receptor
from repro.core.scheduler import PetriNetScheduler
from repro.errors import SchedulerError
from repro.storage import Schema
from repro.streams.source import ListSource


class StubFactory(Factory):
    """Fires whenever its basket has unread tuples; consumes them all."""

    def __init__(self, name, basket, fail_after=None):
        super().__init__(name, {basket.name: basket}, Emitter(name))
        self.basket = basket
        self.sub = basket.subscribe(name)
        self.fail_after = fail_after

    def enabled(self, now):
        return self.state == "running" \
            and self.basket.next_oid > self.sub.read_upto

    def _evaluate(self, now):
        if self.fail_after is not None and self.fires >= self.fail_after:
            raise ValueError("boom")
        lo, hi = self.sub.read_upto, self.basket.next_oid
        out = self.basket.relation(lo, hi)
        self.sub.read_upto = hi
        self.sub.release(hi)
        self.tuples_in += out.row_count
        return out


@pytest.fixture
def net():
    clock = SimulatedClock()
    scheduler = PetriNetScheduler(clock)
    basket = Basket("s", Schema.parse([("k", "INT")]))
    scheduler.add_basket(basket)
    return scheduler, basket, clock


class TestRegistration:
    def test_duplicate_basket(self, net):
        scheduler, basket, _clock = net
        with pytest.raises(SchedulerError):
            scheduler.add_basket(Basket("s", basket.schema))

    def test_remove_factory(self, net):
        scheduler, basket, _clock = net
        scheduler.add_factory(StubFactory("f", basket))
        scheduler.remove_factory("f")
        assert scheduler.factories == []


class TestStep:
    def test_pump_fire_vacuum(self, net):
        scheduler, basket, _clock = net
        scheduler.add_receptor(Receptor(
            "r", basket, ListSource([(0, (1,)), (0, (2,))])))
        factory = StubFactory("f", basket)
        scheduler.add_factory(factory)
        out = scheduler.step()
        assert out == {"ingested": 2, "fired": 1, "dropped": 2}
        assert factory.rows_out == 2
        assert len(basket) == 0

    def test_nothing_to_do(self, net):
        scheduler, _basket, _clock = net
        assert scheduler.step() == {"ingested": 0, "fired": 0,
                                    "dropped": 0}

    def test_paused_net_is_inert(self, net):
        scheduler, basket, _clock = net
        scheduler.add_receptor(Receptor("r", basket,
                                        ListSource([(0, (1,))])))
        scheduler.paused = True
        assert scheduler.step()["ingested"] == 0
        scheduler.paused = False
        assert scheduler.step()["ingested"] == 1

    def test_multiple_factories_share_basket(self, net):
        scheduler, basket, _clock = net
        scheduler.add_receptor(Receptor("r", basket,
                                        ListSource([(0, (1,))])))
        f1 = StubFactory("f1", basket)
        f2 = StubFactory("f2", basket)
        scheduler.add_factory(f1)
        scheduler.add_factory(f2)
        out = scheduler.step()
        assert out["fired"] == 2
        # tuple dropped only after BOTH consumed it
        assert out["dropped"] == 1

    def test_failed_factory_quarantined(self, net):
        scheduler, basket, _clock = net
        scheduler.add_receptor(Receptor(
            "r", basket, ListSource([(0, (1,)), (10, (2,))])))
        bad = StubFactory("bad", basket, fail_after=0)
        scheduler.add_factory(bad)
        scheduler.step()
        assert bad.state == FAILED
        assert len(scheduler.failed) == 1
        # the net keeps running without it
        scheduler.clock.advance(10)
        out = scheduler.step()
        assert out["fired"] == 0
        assert bad not in scheduler.enabled_transitions()


class TestRunners:
    def test_run_for_advances_clock(self, net):
        scheduler, basket, clock = net
        scheduler.add_receptor(Receptor(
            "r", basket, ListSource([(5, (1,)), (25, (2,))])))
        scheduler.add_factory(StubFactory("f", basket))
        totals = scheduler.run_for(30, step_ms=10)
        assert totals["ingested"] == 2
        assert clock.now() == 30

    def test_run_for_needs_simulated_clock(self):
        scheduler = PetriNetScheduler(WallClock())
        with pytest.raises(SchedulerError):
            scheduler.run_for(10)

    def test_run_for_rejects_bad_step(self, net):
        scheduler, _basket, _clock = net
        with pytest.raises(SchedulerError):
            scheduler.run_for(10, step_ms=0)

    def test_run_until_drained(self, net):
        scheduler, basket, _clock = net
        scheduler.add_receptor(Receptor(
            "r", basket, ListSource([(0, (1,)), (1000, (2,))])))
        factory = StubFactory("f", basket)
        scheduler.add_factory(factory)
        totals = scheduler.run_until_drained()
        assert totals["ingested"] == 2
        assert factory.fires == 2

    def test_run_until_drained_skips_to_event_times(self, net):
        scheduler, basket, clock = net
        scheduler.add_receptor(Receptor(
            "r", basket, ListSource([(1_000_000, (1,))])))
        scheduler.add_factory(StubFactory("f", basket))
        totals = scheduler.run_until_drained(max_steps=10)
        assert totals["ingested"] == 1
        assert clock.now() >= 1_000_000


class TestStats:
    def test_network_stats_shape(self, net):
        scheduler, basket, _clock = net
        scheduler.add_factory(StubFactory("f", basket))
        scheduler.step()
        stats = scheduler.network_stats()
        assert "s" in stats["baskets"]
        assert "f" in stats["factories"]
        assert stats["steps"] == 1


class TestLivelockGuard:
    def test_nonquiescing_network_raises(self, net):
        """A factory that is always enabled but never consumes must be
        detected instead of hanging the step loop."""
        scheduler, basket, _clock = net

        class Greedy(StubFactory):
            def enabled(self, now):
                return True

            def _evaluate(self, now):
                return None

        scheduler.add_factory(Greedy("greedy", basket))
        with pytest.raises(SchedulerError, match="quiesce"):
            scheduler.step()
