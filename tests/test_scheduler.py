"""Unit tests for the Petri-net scheduler."""

import pytest

from repro.core.basket import Basket
from repro.core.clock import SimulatedClock, WallClock
from repro.core.emitter import Emitter
from repro.core.factory import FAILED, Factory
from repro.core.receptor import Receptor
from repro.core.scheduler import PetriNetScheduler
from repro.errors import SchedulerError
from repro.storage import Schema
from repro.streams.source import ListSource


class StubFactory(Factory):
    """Fires whenever its basket has unread tuples; consumes them all."""

    def __init__(self, name, basket, fail_after=None):
        super().__init__(name, {basket.name: basket}, Emitter(name))
        self.basket = basket
        self.sub = basket.subscribe(name)
        self.fail_after = fail_after

    def enabled(self, now):
        return self.state == "running" \
            and self.basket.next_oid > self.sub.read_upto

    def _evaluate(self, now):
        if self.fail_after is not None and self.fires >= self.fail_after:
            raise ValueError("boom")
        lo, hi = self.sub.read_upto, self.basket.next_oid
        out = self.basket.relation(lo, hi)
        self.tuples_in += out.row_count
        return out, hi

    def _commit(self, now, consumed):
        self.sub.read_upto = consumed
        self.sub.release(consumed)


@pytest.fixture
def net():
    clock = SimulatedClock()
    scheduler = PetriNetScheduler(clock)
    basket = Basket("s", Schema.parse([("k", "INT")]))
    scheduler.add_basket(basket)
    return scheduler, basket, clock


class TestRegistration:
    def test_duplicate_basket(self, net):
        scheduler, basket, _clock = net
        with pytest.raises(SchedulerError):
            scheduler.add_basket(Basket("s", basket.schema))

    def test_remove_factory(self, net):
        scheduler, basket, _clock = net
        scheduler.add_factory(StubFactory("f", basket))
        scheduler.remove_factory("f")
        assert scheduler.factories == []

    def test_mixed_case_basket_registered_and_removed(self, net):
        """A basket whose name somehow kept mixed case must still be
        registered and removed under the lowercase key."""
        scheduler, _basket, _clock = net
        rogue = Basket("t", Schema.parse([("k", "INT")]))
        rogue.name = "MixedCase"  # simulate a non-normalizing builder
        scheduler.add_basket(rogue)
        assert "mixedcase" in scheduler.baskets
        scheduler.remove_basket("MixedCase")
        assert "mixedcase" not in scheduler.baskets


class TestStep:
    def test_pump_fire_vacuum(self, net):
        scheduler, basket, _clock = net
        scheduler.add_receptor(Receptor(
            "r", basket, ListSource([(0, (1,)), (0, (2,))])))
        factory = StubFactory("f", basket)
        scheduler.add_factory(factory)
        out = scheduler.step()
        assert out == {"ingested": 2, "fired": 1, "dropped": 2}
        assert factory.rows_out == 2
        assert len(basket) == 0

    def test_nothing_to_do(self, net):
        scheduler, _basket, _clock = net
        assert scheduler.step() == {"ingested": 0, "fired": 0,
                                    "dropped": 0}

    def test_paused_net_still_pumps_receptors(self, net):
        """Pause holds back firing, not arrival: stepping a paused net
        keeps draining receptors into baskets so no in-flight event is
        lost, but fires nothing and vacuums nothing."""
        scheduler, basket, _clock = net
        scheduler.add_receptor(Receptor("r", basket,
                                        ListSource([(0, (1,))])))
        factory = StubFactory("f", basket)
        scheduler.add_factory(factory)
        scheduler.paused = True
        out = scheduler.step()
        assert out == {"ingested": 1, "fired": 0, "dropped": 0}
        # the tuple accumulated in the basket while paused
        assert len(basket) == 1
        assert factory.fires == 0
        scheduler.paused = False
        out = scheduler.step()
        assert out["fired"] == 1
        assert factory.rows_out == 1

    def test_multiple_factories_share_basket(self, net):
        scheduler, basket, _clock = net
        scheduler.add_receptor(Receptor("r", basket,
                                        ListSource([(0, (1,))])))
        f1 = StubFactory("f1", basket)
        f2 = StubFactory("f2", basket)
        scheduler.add_factory(f1)
        scheduler.add_factory(f2)
        out = scheduler.step()
        assert out["fired"] == 2
        # tuple dropped only after BOTH consumed it
        assert out["dropped"] == 1

    def test_failed_factory_quarantined(self, net):
        scheduler, basket, _clock = net
        scheduler.add_receptor(Receptor(
            "r", basket, ListSource([(0, (1,)), (10, (2,))])))
        bad = StubFactory("bad", basket, fail_after=0)
        scheduler.add_factory(bad)
        scheduler.step()
        assert bad.state == FAILED
        assert len(scheduler.failed) == 1
        # the net keeps running without it
        scheduler.clock.advance(10)
        out = scheduler.step()
        assert out["fired"] == 0
        assert bad not in scheduler.enabled_transitions()


class TestRunners:
    def test_run_for_advances_clock(self, net):
        scheduler, basket, clock = net
        scheduler.add_receptor(Receptor(
            "r", basket, ListSource([(5, (1,)), (25, (2,))])))
        scheduler.add_factory(StubFactory("f", basket))
        totals = scheduler.run_for(30, step_ms=10)
        assert totals["ingested"] == 2
        assert clock.now() == 30

    def test_run_for_needs_simulated_clock(self):
        scheduler = PetriNetScheduler(WallClock())
        with pytest.raises(SchedulerError):
            scheduler.run_for(10)

    def test_run_for_rejects_bad_step(self, net):
        scheduler, _basket, _clock = net
        with pytest.raises(SchedulerError):
            scheduler.run_for(10, step_ms=0)

    def test_run_until_drained(self, net):
        scheduler, basket, _clock = net
        scheduler.add_receptor(Receptor(
            "r", basket, ListSource([(0, (1,)), (1000, (2,))])))
        factory = StubFactory("f", basket)
        scheduler.add_factory(factory)
        totals = scheduler.run_until_drained()
        assert totals["ingested"] == 2
        assert factory.fires == 2

    def test_run_until_drained_skips_to_event_times(self, net):
        scheduler, basket, clock = net
        scheduler.add_receptor(Receptor(
            "r", basket, ListSource([(1_000_000, (1,))])))
        scheduler.add_factory(StubFactory("f", basket))
        totals = scheduler.run_until_drained(max_steps=10)
        assert totals["ingested"] == 1
        assert clock.now() >= 1_000_000


class TestStats:
    def test_network_stats_shape(self, net):
        scheduler, basket, _clock = net
        scheduler.add_factory(StubFactory("f", basket))
        scheduler.step()
        stats = scheduler.network_stats()
        assert "s" in stats["baskets"]
        assert "f" in stats["factories"]
        assert stats["steps"] == 1


class Greedy(StubFactory):
    """Always enabled, never consumes — the livelock/burst pathology."""

    def enabled(self, now):
        return True

    def _evaluate(self, now):
        return None, None

    def _commit(self, now, consumed):
        return None


class TestLivelockGuard:
    def test_nonquiescing_network_raises(self, net):
        """A factory that is always enabled but never consumes must be
        detected instead of hanging the step loop."""
        scheduler, basket, _clock = net
        scheduler.add_factory(Greedy("greedy", basket))
        with pytest.raises(SchedulerError, match="quiesce"):
            scheduler.step()

    def test_burst_guard_message_names_factory(self, net):
        scheduler, basket, _clock = net
        scheduler.add_factory(Greedy("greedy", basket))
        with pytest.raises(SchedulerError, match="greedy"):
            scheduler.step()

    def test_burst_guard_in_parallel_mode(self):
        clock = SimulatedClock()
        scheduler = PetriNetScheduler(clock, parallel_workers=2)
        basket = Basket("s", Schema.parse([("k", "INT")]))
        scheduler.add_basket(basket)
        scheduler.add_factory(Greedy("g1", basket))
        scheduler.add_factory(Greedy("g2", basket))
        try:
            with pytest.raises(SchedulerError, match="quiesce"):
                scheduler.step()
        finally:
            scheduler.shutdown()


class TestFailureBookkeeping:
    def test_failed_factories_skipped_in_enabled_transitions(self, net):
        scheduler, basket, _clock = net
        scheduler.add_receptor(Receptor("r", basket,
                                        ListSource([(0, (1,))])))
        bad = StubFactory("bad", basket, fail_after=0)
        good = StubFactory("good", basket)
        scheduler.add_factory(bad)
        scheduler.add_factory(good)
        scheduler.step()
        assert bad.state == FAILED
        basket.append_rows([(2,)], now=0)
        enabled = scheduler.enabled_transitions()
        assert bad not in enabled and good in enabled

    def test_failed_list_is_bounded(self):
        """A persistently failing factory must not grow the error list
        without limit; the total keeps counting."""
        clock = SimulatedClock()
        scheduler = PetriNetScheduler(clock, max_failed_kept=5)
        basket = Basket("s", Schema.parse([("k", "INT")]))
        scheduler.add_basket(basket)

        class Phoenix(StubFactory):
            def _evaluate(self, now):
                raise ValueError("boom")

        for i in range(12):
            phoenix = Phoenix(f"p{i}", basket)
            scheduler.add_factory(phoenix)
            basket.append_rows([(i,)], now=0)
            scheduler.step()
            scheduler.remove_factory(phoenix.name)
            basket.unsubscribe(phoenix.name)
        assert scheduler.failed_total == 12
        assert len(scheduler.failed) == 5
        stats = scheduler.network_stats()
        assert stats["failed_total"] == 12
        assert len(stats["failed"]) == 5


class OutBasketFactory(StubFactory):
    """Stub with an explicit write set (simulates output_stream)."""

    def __init__(self, name, basket, out_basket):
        super().__init__(name, basket)
        self.out_basket = out_basket

    def write_streams(self):
        return [self.out_basket.name]


class TestWavePartitioning:
    def _net(self, workers=2):
        clock = SimulatedClock()
        scheduler = PetriNetScheduler(clock, parallel_workers=workers)
        schema = Schema.parse([("k", "INT")])
        return scheduler, schema

    def test_readers_share_a_wave(self):
        scheduler, schema = self._net()
        basket = Basket("s", schema)
        scheduler.add_basket(basket)
        factories = [StubFactory(f"f{i}", basket) for i in range(4)]
        waves = scheduler._partition_waves(factories)
        assert len(waves) == 1 and len(waves[0]) == 4

    def test_writer_separated_from_readers(self):
        scheduler, schema = self._net()
        src = Basket("src", schema)
        out = Basket("out", schema)
        for basket in (src, out):
            scheduler.add_basket(basket)
        upstream = OutBasketFactory("up", src, out)
        downstream = StubFactory("down", out)
        sibling = StubFactory("sib", src)
        waves = scheduler._partition_waves([upstream, downstream,
                                            sibling])
        # writer fires before its reader; the unrelated reader of src
        # shares the writer's wave
        assert waves[0] == [upstream, sibling]
        assert waves[1] == [downstream]

    def test_conflicting_writers_keep_list_order(self):
        scheduler, schema = self._net()
        src = Basket("src", schema)
        out = Basket("out", schema)
        for basket in (src, out):
            scheduler.add_basket(basket)
        w1 = OutBasketFactory("w1", src, out)
        w2 = OutBasketFactory("w2", src, out)
        waves = scheduler._partition_waves([w1, w2])
        assert waves == [[w1], [w2]]

    def test_parallel_step_fires_and_counts_waves(self):
        scheduler, schema = self._net(workers=3)
        basket = Basket("s", schema)
        scheduler.add_basket(basket)
        scheduler.add_receptor(Receptor(
            "r", basket, ListSource([(0, (1,)), (0, (2,))])))
        factories = [StubFactory(f"f{i}", basket) for i in range(3)]
        for factory in factories:
            scheduler.add_factory(factory)
        try:
            out = scheduler.step()
        finally:
            scheduler.shutdown()
        assert out == {"ingested": 2, "fired": 3, "dropped": 2}
        pstats = scheduler.parallel_stats()
        assert pstats["workers"] == 3
        assert pstats["waves"] >= 1
        assert pstats["max_wave_width"] == 3
        assert pstats["parallel_fires"] == 3
        assert scheduler.network_stats()["parallel"]["waves"] >= 1

    def test_parallel_failure_quarantines_only_that_factory(self):
        scheduler, schema = self._net(workers=2)
        basket = Basket("s", schema)
        scheduler.add_basket(basket)
        scheduler.add_receptor(Receptor(
            "r", basket, ListSource([(0, (1,))])))
        bad = StubFactory("bad", basket, fail_after=0)
        good = StubFactory("good", basket)
        scheduler.add_factory(bad)
        scheduler.add_factory(good)
        try:
            out = scheduler.step()
        finally:
            scheduler.shutdown()
        assert bad.state == FAILED
        assert good.state == "running"
        assert out["fired"] == 1
        assert scheduler.failed_total == 1

    def test_fatal_wave_outcome_settles_siblings_first(self):
        """A fatal (non-FactoryError) burst outcome used to be
        re-raised while iterating the wave's outcomes, dropping the
        fire counts of its wave-mates and leaving their FactoryErrors
        unrecorded. Every outcome must settle before the fatal one is
        re-raised."""

        class FatalFactory(StubFactory):
            def __init__(self, name, basket):
                super().__init__(name, basket)
                self._enabled_calls = 0

            def enabled(self, now):
                # survive the scheduler's enabled-list scan, then wedge
                # inside the worker's burst loop
                self._enabled_calls += 1
                if self._enabled_calls > 1:
                    raise RuntimeError("wedged")
                return super().enabled(now)

        scheduler, schema = self._net(workers=3)
        basket = Basket("s", schema)
        scheduler.add_basket(basket)
        fatal = FatalFactory("fatal", basket)
        bad = StubFactory("bad", basket, fail_after=0)
        good = StubFactory("good", basket)
        for factory in (fatal, bad, good):
            scheduler.add_factory(factory)
        basket.append_rows([(1,)], now=0)
        try:
            with pytest.raises(RuntimeError, match="wedged"):
                scheduler.step()
        finally:
            scheduler.shutdown()
        # wave-mates settled despite the fatal outcome listed first:
        # the quarantine was recorded and the good factory's work kept
        assert bad.state == FAILED
        assert scheduler.failed_total == 1
        assert good.fires == 1

    def test_resolve_workers(self):
        assert PetriNetScheduler._resolve_workers(None) == 1
        assert PetriNetScheduler._resolve_workers(1) == 1
        assert PetriNetScheduler._resolve_workers(3) == 3
        assert PetriNetScheduler._resolve_workers(0) >= 1
        assert PetriNetScheduler._resolve_workers("auto") >= 1
        with pytest.raises(SchedulerError):
            PetriNetScheduler._resolve_workers(-2)

    def test_resolve_workers_rejects_bool(self):
        """bool is an int subtype: True == 1 would silently run the net
        serially when the caller asked for parallelism, and False == 0
        would silently mean 'auto'."""
        with pytest.raises(SchedulerError):
            PetriNetScheduler._resolve_workers(True)
        with pytest.raises(SchedulerError):
            PetriNetScheduler._resolve_workers(False)
