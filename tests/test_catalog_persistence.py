"""Unit tests for the catalog and snapshot persistence."""

import os

import pytest

from repro.errors import CatalogError, PersistenceError
from repro.storage import Schema
from repro.storage.catalog import Catalog
from repro.storage.persistence import load_catalog, save_catalog


@pytest.fixture
def catalog():
    cat = Catalog()
    t = cat.create_table("t", Schema.parse(
        [("a", "INT"), ("s", "STRING"), ("f", "FLOAT")]))
    t.insert_rows([(1, "x", 1.5), (2, None, None)])
    cat.create_stream("s", Schema.parse([("k", "INT"), ("v", "FLOAT")]))
    return cat


class TestCatalog:
    def test_table_lookup(self, catalog):
        assert catalog.table("T").name == "t"
        assert catalog.has_table("t")
        assert not catalog.has_table("nope")

    def test_stream_lookup(self, catalog):
        assert catalog.stream("s").schema.names == ["k", "v"]
        assert catalog.is_stream("s")
        assert not catalog.is_stream("t")

    def test_schema_of_either(self, catalog):
        assert catalog.schema_of("t").names == ["a", "s", "f"]
        assert catalog.schema_of("s").names == ["k", "v"]

    def test_schema_of_missing(self, catalog):
        with pytest.raises(CatalogError):
            catalog.schema_of("zz")

    def test_name_collision_table_stream(self, catalog):
        with pytest.raises(CatalogError):
            catalog.create_stream("t", Schema.parse([("x", "INT")]))
        with pytest.raises(CatalogError):
            catalog.create_table("s", Schema.parse([("x", "INT")]))

    def test_drop(self, catalog):
        catalog.drop_table("t")
        assert not catalog.has_table("t")
        with pytest.raises(CatalogError):
            catalog.drop_table("t")
        catalog.drop_stream("s")
        with pytest.raises(CatalogError):
            catalog.drop_stream("s")

    def test_listing(self, catalog):
        assert [t.name for t in catalog.tables()] == ["t"]
        assert [s.name for s in catalog.streams()] == ["s"]


class TestPersistence:
    def test_roundtrip(self, catalog, tmp_path):
        save_catalog(catalog, str(tmp_path))
        loaded = load_catalog(str(tmp_path))
        assert loaded.table("t").to_rows() == catalog.table("t").to_rows()
        assert loaded.stream("s").schema.names == ["k", "v"]

    def test_roundtrip_empty_table(self, tmp_path):
        cat = Catalog()
        cat.create_table("empty", Schema.parse([("a", "INT")]))
        save_catalog(cat, str(tmp_path))
        assert load_catalog(str(tmp_path)).table("empty").row_count == 0

    def test_missing_snapshot(self, tmp_path):
        with pytest.raises(PersistenceError):
            load_catalog(str(tmp_path / "nothing"))

    def test_missing_column_file(self, catalog, tmp_path):
        save_catalog(catalog, str(tmp_path))
        os.remove(tmp_path / "t" / "a.npy")
        with pytest.raises(PersistenceError):
            load_catalog(str(tmp_path))

    def test_bad_version(self, catalog, tmp_path):
        save_catalog(catalog, str(tmp_path))
        manifest = tmp_path / "catalog.json"
        manifest.write_text(manifest.read_text().replace(
            '"version": 1', '"version": 99'))
        with pytest.raises(PersistenceError):
            load_catalog(str(tmp_path))

    def test_load_into_existing(self, catalog, tmp_path):
        save_catalog(catalog, str(tmp_path))
        target = Catalog()
        target.create_table("other", Schema.parse([("x", "INT")]))
        load_catalog(str(tmp_path), into=target)
        assert target.has_table("other") and target.has_table("t")
