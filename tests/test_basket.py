"""Unit tests for baskets: ingestion, subscriptions, draining."""

import pytest

from repro.core.basket import Basket
from repro.errors import StreamError
from repro.storage import Schema


@pytest.fixture
def basket():
    return Basket("s", Schema.parse([("k", "INT"), ("v", "FLOAT")]))


class TestIngestion:
    def test_append_rows(self, basket):
        assert basket.append_rows([(1, 1.0), (2, None)], now=10) == 2
        assert len(basket) == 2
        assert basket.total_in == 2

    def test_append_empty(self, basket):
        assert basket.append_rows([], now=0) == 0

    def test_wrong_width(self, basket):
        with pytest.raises(StreamError):
            basket.append_rows([(1,)], now=0)

    def test_values_coerced(self, basket):
        basket.append_rows([(1.0, 2)], now=0)
        assert basket.relation().to_rows() == [(1, 2.0)]

    def test_paused_rejects(self, basket):
        basket.paused = True
        with pytest.raises(StreamError):
            basket.append_rows([(1, 1.0)], now=0)

    def test_high_water(self, basket):
        basket.append_rows([(i, 0.0) for i in range(5)], now=0)
        assert basket.high_water == 5

    def test_append_relation(self, basket):
        from repro.mal.relation import Relation

        rel = Relation.from_rows(basket.schema, [(7, 7.0)])
        assert basket.append_relation(rel, now=1) == 1
        assert basket.relation().to_rows() == [(7, 7.0)]


class TestOids:
    def test_oid_range(self, basket):
        basket.append_rows([(1, 1.0), (2, 2.0)], now=0)
        assert basket.first_oid == 0 and basket.next_oid == 2

    def test_relation_slice_by_oid(self, basket):
        basket.append_rows([(i, float(i)) for i in range(5)], now=0)
        rel = basket.relation(1, 3)
        assert rel.to_rows() == [(1, 1.0), (2, 2.0)]

    def test_oids_stable_after_drain(self, basket):
        basket.append_rows([(i, float(i)) for i in range(5)], now=0)
        sub = basket.subscribe("q", from_start=True)
        sub.release(3)
        assert basket.vacuum() == 3
        assert basket.first_oid == 3
        assert basket.relation(3, 5).to_rows() == [(3, 3.0), (4, 4.0)]

    def test_relation_clamps_to_live_range(self, basket):
        basket.append_rows([(1, 1.0)], now=0)
        assert basket.relation(-5, 100).row_count == 1

    def test_arrival_slice(self, basket):
        basket.append_rows([(1, 1.0)], now=5)
        basket.append_rows([(2, 2.0)], now=9)
        arr, (lo, hi) = basket.arrival_slice(0, 2)
        assert arr.tolist() == [5, 9]
        assert (lo, hi) == (0, 2)

    def test_arrival_slice_reports_clamped_range(self, basket):
        # after a partial vacuum a stale lo_oid falls below first_oid;
        # the returned bounds tell the caller which oids the array
        # actually covers (arr[i] is the arrival of lo + i)
        for i in range(5):
            basket.append_rows([(i, float(i))], now=10 + i)
        sub = basket.subscribe("q", from_start=True)
        sub.release(3)
        assert basket.vacuum() == 3
        arr, (lo, hi) = basket.arrival_slice(0, 5)
        assert (lo, hi) == (3, 5)
        assert arr.tolist() == [13, 14]
        # fully vacuumed range: empty array, collapsed bounds
        arr, (lo, hi) = basket.arrival_slice(0, 2)
        assert arr.tolist() == []
        assert lo == hi == 3

    def test_oid_at_or_after(self, basket):
        basket.append_rows([(1, 1.0)], now=5)
        basket.append_rows([(2, 2.0)], now=9)
        assert basket.oid_at_or_after(6) == 1
        assert basket.oid_at_or_after(5) == 0
        assert basket.oid_at_or_after(100) == 2


class TestSubscriptions:
    def test_new_subscriber_starts_at_head(self, basket):
        basket.append_rows([(1, 1.0)], now=0)
        sub = basket.subscribe("q")
        assert sub.read_upto == 1

    def test_from_start_replays(self, basket):
        basket.append_rows([(1, 1.0)], now=0)
        sub = basket.subscribe("q", from_start=True)
        assert sub.read_upto == 0

    def test_duplicate_name_rejected(self, basket):
        basket.subscribe("q")
        with pytest.raises(StreamError):
            basket.subscribe("q")

    def test_unsubscribe(self, basket):
        basket.subscribe("q")
        basket.unsubscribe("q")
        assert basket.subscriptions() == []

    def test_release_monotone(self, basket):
        sub = basket.subscribe("q")
        sub.release(5)
        sub.release(3)  # no-op backwards
        assert sub.released_upto == 5


class TestVacuum:
    def test_no_subscribers_keeps_everything(self, basket):
        basket.append_rows([(1, 1.0)], now=0)
        assert basket.vacuum() == 0
        assert len(basket) == 1

    def test_drains_min_released(self, basket):
        basket.append_rows([(i, 0.0) for i in range(10)], now=0)
        a = basket.subscribe("a", from_start=True)
        b = basket.subscribe("b", from_start=True)
        a.release(7)
        b.release(4)
        assert basket.vacuum() == 4
        assert basket.total_dropped == 4
        b.release(7)
        assert basket.vacuum() == 3

    def test_conservation(self, basket):
        basket.append_rows([(i, 0.0) for i in range(10)], now=0)
        sub = basket.subscribe("q", from_start=True)
        sub.release(6)
        basket.vacuum()
        assert basket.total_in == basket.total_dropped + len(basket)


class TestLocking:
    def test_lock_unlock(self, basket):
        basket.lock("q1")
        assert basket.locked_by == "q1"
        basket.unlock("q1")
        assert basket.locked_by is None

    def test_reentrant(self, basket):
        basket.lock("q1")
        basket.lock("q1")
        basket.unlock("q1")
        basket.unlock("q1")


class TestStats:
    def test_stats_keys(self, basket):
        basket.append_rows([(1, 1.0)], now=0)
        stats = basket.stats()
        assert stats == {"size": 1, "total_in": 1, "total_dropped": 0,
                         "high_water": 1, "subscribers": 0, "stamps": 0}
