"""Property-based tests for window accounting and scheduler liveness.

These are the invariants the whole incremental machinery rests on: the
basic-window partition must tile the stream exactly, window
compositions must cover precisely the window extent, and the scheduler
must make progress under arbitrary arrival patterns.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.basket import Basket
from repro.core.engine import DataCellEngine
from repro.core.windows import BasicWindowTracker, WindowSpec, WindowState
from repro.storage import Schema


def make_basket():
    return Basket("s", Schema.parse([("k", "INT")]))


@st.composite
def arrival_pattern(draw):
    """A list of (advance_ms, burst_size) ingest steps."""
    steps = draw(st.lists(
        st.tuples(st.integers(0, 300), st.integers(0, 12)),
        min_size=1, max_size=30))
    return steps


class TestTupleTrackerProperties:
    @given(st.integers(1, 10), st.integers(1, 6), arrival_pattern())
    @settings(max_examples=60, deadline=None)
    def test_basic_windows_tile_the_stream(self, slide, nbasic, steps):
        spec = WindowSpec("tuple", slide * nbasic, slide)
        basket = make_basket()
        sub = basket.subscribe("q")
        tracker = BasicWindowTracker(spec, basket, sub)
        seen = []
        now = 0
        for advance, burst in steps:
            now += advance
            basket.append_rows([(i,) for i in range(burst)], now)
            seen.extend(tracker.new_basic_windows(now))
        # contiguous, slide-sized, non-overlapping, in order
        for idx, (j, lo, hi) in enumerate(seen):
            assert j == idx
            assert hi - lo == slide
            assert lo == idx * slide
        # everything below the last processed bound was released
        if seen:
            assert sub.released_upto == seen[-1][2]

    @given(st.integers(1, 8), st.integers(1, 5), st.integers(0, 40))
    @settings(max_examples=60, deadline=None)
    def test_composition_covers_window_exactly(self, slide, nbasic, n):
        spec = WindowSpec("tuple", slide * nbasic, slide)
        basket = make_basket()
        sub = basket.subscribe("q")
        tracker = BasicWindowTracker(spec, basket, sub)
        basket.append_rows([(i,) for i in range(n)], now=0)
        bws = {j: (lo, hi)
               for j, lo, hi in tracker.new_basic_windows(0)}
        fired = 0
        while tracker.ready(0):
            k, composition = tracker.window_composition()
            los = [bws[j][0] for j in composition if j in bws]
            his = [bws[j][1] for j in composition if j in bws]
            assert min(los) == k * slide
            assert max(his) == k * slide + spec.size
            tracker.advance()
            fired += 1
        expected = max((n - spec.size) // slide + 1, 0) if n >= spec.size \
            else 0
        assert fired == expected


class TestReevalWindowProperties:
    @given(st.integers(1, 8), st.integers(1, 5), st.integers(0, 50))
    @settings(max_examples=60, deadline=None)
    def test_slices_match_sliding_semantics(self, slide, nbasic, n):
        spec = WindowSpec("tuple", slide * nbasic, slide)
        basket = make_basket()
        sub = basket.subscribe("q")
        state = WindowState(spec, basket, sub)
        basket.append_rows([(i,) for i in range(n)], now=0)
        fires = 0
        while state.ready(0):
            lo, hi = state.slice_bounds(0)
            assert lo == fires * slide
            assert hi - lo == spec.size
            state.advance(0)
            fires += 1
        # retention: released tuples are exactly those before the next
        # window's start
        assert sub.released_upto == fires * slide


class TestSchedulerLiveness:
    @given(arrival_pattern())
    @settings(max_examples=25, deadline=None)
    def test_every_tuple_processed_exactly_once(self, steps):
        engine = DataCellEngine()
        engine.execute("CREATE STREAM s (k INT)")
        q = engine.register_continuous("SELECT k FROM s", name="q")
        total = 0
        for advance, burst in steps:
            if advance:
                engine.step(advance_ms=advance)
            if burst:
                engine.feed("s", [(total + i,) for i in range(burst)])
                total += burst
        engine.step()
        rows = engine.results("q").rows()
        assert [k for k, in rows] == list(range(total))
        assert not engine.scheduler.failed

    @given(arrival_pattern(), st.integers(2, 8))
    @settings(max_examples=25, deadline=None)
    def test_windowed_conservation(self, steps, window):
        engine = DataCellEngine()
        engine.execute("CREATE STREAM s (k INT)")
        engine.register_continuous(
            f"SELECT count(*) FROM s [RANGE {window}]", name="q",
            mode="incremental")
        total = 0
        for advance, burst in steps:
            if advance:
                engine.step(advance_ms=advance)
            if burst:
                engine.feed("s", [(i,) for i in range(burst)])
                total += burst
        engine.step()
        counts = [r[0] for r in engine.results("q").rows()]
        assert all(c == window for c in counts)
        assert len(counts) == total // window
        basket = engine.basket("s")
        assert basket.total_in == basket.total_dropped + len(basket)
