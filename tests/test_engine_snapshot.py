"""Tests for full-engine snapshot save/restore."""

import pytest

from repro.core.engine import DataCellEngine
from repro.streams.source import RateSource


@pytest.fixture
def running_engine():
    engine = DataCellEngine()
    engine.execute("CREATE TABLE rooms (sid INT, room VARCHAR(8))")
    engine.execute("INSERT INTO rooms VALUES (0,'a'), (1,'b')")
    engine.execute("CREATE STREAM sensors (sid INT, temp FLOAT)")
    engine.register_continuous(
        "SELECT sid, avg(temp) a FROM sensors [RANGE 8 SLIDE 4] "
        "GROUP BY sid", name="winq", mode="incremental")
    engine.register_continuous(
        "SELECT sid, temp FROM sensors WHERE temp > 5",
        name="alerts", min_batch=2, max_delay_ms=100)
    engine.register_continuous(
        "SELECT sid FROM sensors", name="chain",
        output_stream="derived")
    engine.attach_source("sensors", RateSource(
        [(i % 2, float(i)) for i in range(20)], rate=100000))
    engine.run_until_drained()
    return engine


class TestSaveRestore:
    def test_tables_roundtrip(self, running_engine, tmp_path):
        running_engine.save(str(tmp_path))
        restored = DataCellEngine.restore(str(tmp_path))
        assert restored.query("SELECT * FROM rooms ORDER BY sid"
                              ).to_rows() == [(0, "a"), (1, "b")]

    def test_queries_reregistered_with_knobs(self, running_engine,
                                             tmp_path):
        running_engine.save(str(tmp_path))
        restored = DataCellEngine.restore(str(tmp_path))
        names = {q.name for q in restored.queries()}
        assert names == {"winq", "alerts", "chain"}
        assert restored.continuous_query("winq").mode == "incremental"
        alerts = restored.continuous_query("alerts").factory
        assert alerts.min_batch == 2 and alerts.max_delay_ms == 100

    def test_clock_resumes(self, running_engine, tmp_path):
        before = running_engine.now()
        running_engine.save(str(tmp_path))
        restored = DataCellEngine.restore(str(tmp_path))
        assert restored.now() == before

    def test_basket_contents_survive(self, running_engine, tmp_path):
        # leave un-drained tuples behind by pausing the queries first
        running_engine.pause_query("winq")
        running_engine.feed("sensors", [(9, 99.0)])
        running_engine.save(str(tmp_path))
        restored = DataCellEngine.restore(str(tmp_path))
        rows = restored.query("SELECT sid, temp FROM sensors").to_rows()
        assert (9, 99.0) in rows

    def test_oids_preserved(self, running_engine, tmp_path):
        first = running_engine.basket("sensors").first_oid
        running_engine.save(str(tmp_path))
        restored = DataCellEngine.restore(str(tmp_path))
        basket = restored.basket("sensors")
        assert basket.first_oid == first
        assert basket.total_in == 20

    def test_output_stream_rewired(self, running_engine, tmp_path):
        running_engine.save(str(tmp_path))
        restored = DataCellEngine.restore(str(tmp_path))
        # feeding the restored engine flows through the chained network
        restored.feed("sensors", [(7, 1.0)])
        restored.step()
        derived = restored.query("SELECT * FROM derived").to_rows()
        assert (7,) in derived

    def test_restored_engine_processes_new_data(self, running_engine,
                                                tmp_path):
        running_engine.save(str(tmp_path))
        restored = DataCellEngine.restore(str(tmp_path))
        restored.feed("sensors", [(1, 50.0), (1, 2.0)])
        restored.step()
        assert restored.results("alerts").rows() == [(1, 50.0)]
        assert not restored.scheduler.failed

    def test_restored_windows_fire(self, running_engine, tmp_path):
        running_engine.save(str(tmp_path))
        restored = DataCellEngine.restore(str(tmp_path))
        restored.attach_source("sensors", RateSource(
            [(0, 1.0)] * 16, rate=100000))
        restored.run_until_drained()
        batches = restored.results("winq").batches
        assert len(batches) >= 3
        assert batches[-1][1].to_rows() == [(0, 1.0)]
