"""Unit tests for kernel joins, grouping, sorting and distinct."""

import numpy as np
import pytest

from repro.errors import KernelError
from repro.mal import kernel as K
from repro.mal.bat import BAT
from repro.storage import types as dt


class TestHashJoin:
    def test_basic(self):
        l = BAT.from_values(dt.INT, [1, 2, 3])
        r = BAT.from_values(dt.INT, [2, 3, 4])
        lp, rp = K.hashjoin(l, r)
        assert list(zip(lp.tolist(), rp.tolist())) == [(1, 0), (2, 1)]

    def test_duplicates_produce_all_pairs(self):
        l = BAT.from_values(dt.INT, [1, 1])
        r = BAT.from_values(dt.INT, [1, 1, 1])
        lp, rp = K.hashjoin(l, r)
        assert len(lp) == 6

    def test_nil_never_matches(self):
        l = BAT.from_values(dt.INT, [None, 1], coerce=True)
        r = BAT.from_values(dt.INT, [None, 1], coerce=True)
        lp, rp = K.hashjoin(l, r)
        assert list(zip(lp.tolist(), rp.tolist())) == [(1, 1)]

    def test_string_join(self):
        l = BAT.from_values(dt.STRING, ["a", "b", None], coerce=True)
        r = BAT.from_values(dt.STRING, ["b", "c"], coerce=True)
        lp, rp = K.hashjoin(l, r)
        assert list(zip(lp.tolist(), rp.tolist())) == [(1, 0)]

    def test_result_ordered_by_left(self):
        l = BAT.from_values(dt.INT, [3, 1, 2])
        r = BAT.from_values(dt.INT, [2, 3, 1])
        lp, rp = K.hashjoin(l, r)
        assert lp.tolist() == sorted(lp.tolist())

    def test_with_candidates(self):
        l = BAT.from_values(dt.INT, [1, 2, 3, 4])
        r = BAT.from_values(dt.INT, [2, 4])
        lcand = np.array([0, 1], dtype=np.int64)  # only values 1, 2
        lp, rp = K.hashjoin(l, r, lcand=lcand)
        assert list(zip(lp.tolist(), rp.tolist())) == [(1, 0)]

    def test_empty_side(self):
        l = BAT.from_values(dt.INT, [])
        r = BAT.from_values(dt.INT, [1, 2])
        lp, rp = K.hashjoin(l, r)
        assert len(lp) == 0 and len(rp) == 0

    def test_matches_nested_loop_oracle(self):
        rng = np.random.RandomState(11)
        lv = rng.randint(0, 10, 50).tolist()
        rv = rng.randint(0, 10, 40).tolist()
        l = BAT.from_values(dt.INT, lv)
        r = BAT.from_values(dt.INT, rv)
        lp, rp = K.hashjoin(l, r)
        got = sorted(zip(lp.tolist(), rp.tolist()))
        expected = sorted((i, j) for i, a in enumerate(lv)
                          for j, b in enumerate(rv) if a == b)
        assert got == expected


class TestHashTableReuse:
    def test_build_then_probe(self):
        build = BAT.from_values(dt.INT, [1, 2, 2, None], coerce=True)
        table = K.build_hash_table(build)
        probe = BAT.from_values(dt.INT, [2, 3, None], coerce=True)
        pp, bp = K.probe_hash_table(table, probe)
        assert list(zip(pp.tolist(), bp.tolist())) == [(0, 1), (0, 2)]

    def test_probe_with_candidates(self):
        build = BAT.from_values(dt.INT, [5])
        table = K.build_hash_table(build)
        probe = BAT.from_values(dt.INT, [5, 5])
        cand = np.array([1], dtype=np.int64)
        pp, bp = K.probe_hash_table(table, probe, cand)
        assert pp.tolist() == [1]


class TestGrouping:
    def test_factorize_numeric(self):
        bat = BAT.from_values(dt.INT, [5, 2, 5, None, 2], coerce=True)
        gids, reps = K.factorize(bat)
        # groups numbered by first appearance
        assert gids.tolist() == [0, 1, 0, 2, 1]
        assert reps.tolist() == [0, 1, 3]

    def test_factorize_strings_with_nil(self):
        bat = BAT.from_values(dt.STRING, ["a", None, "a", "b"],
                              coerce=True)
        gids, reps = K.factorize(bat)
        assert gids.tolist() == [0, 1, 0, 2]

    def test_subgroup_single(self):
        bat = BAT.from_values(dt.INT, [1, 1, 2])
        gids, reps, n = K.subgroup(bat, None)
        assert n == 2 and gids.tolist() == [0, 0, 1]

    def test_subgroup_refinement(self):
        a = BAT.from_values(dt.INT, [1, 1, 2, 2])
        b = BAT.from_values(dt.STRING, ["x", "y", "x", "x"], coerce=True)
        gids, _, n1 = K.subgroup(a, None)
        gids2, reps2, n2 = K.subgroup(b, gids)
        assert n2 == 3
        assert gids2.tolist() == [0, 1, 2, 2]

    def test_subgroup_length_mismatch(self):
        a = BAT.from_values(dt.INT, [1, 2])
        with pytest.raises(KernelError):
            K.subgroup(a, np.array([0], dtype=np.int64))

    def test_empty_input(self):
        bat = BAT.from_values(dt.INT, [])
        gids, reps, n = K.subgroup(bat, None)
        assert n == 0 and len(gids) == 0


class TestDistinct:
    def test_single_column(self):
        bat = BAT.from_values(dt.INT, [3, 1, 3, None, 1], coerce=True)
        assert K.distinct([bat]).tolist() == [0, 1, 3]

    def test_multi_column(self):
        a = BAT.from_values(dt.INT, [1, 1, 2, 1])
        b = BAT.from_values(dt.INT, [9, 9, 9, 8])
        assert K.distinct([a, b]).tolist() == [0, 2, 3]

    def test_needs_columns(self):
        with pytest.raises(KernelError):
            K.distinct([])


class TestSort:
    def test_ascending_nils_first(self):
        bat = BAT.from_values(dt.INT, [3, None, 1], coerce=True)
        assert K.sort_positions([bat], [False]).tolist() == [1, 2, 0]

    def test_descending(self):
        bat = BAT.from_values(dt.INT, [3, 1, 2])
        assert K.sort_positions([bat], [True]).tolist() == [0, 2, 1]

    def test_multi_key(self):
        a = BAT.from_values(dt.INT, [1, 2, 1, 2])
        b = BAT.from_values(dt.INT, [9, 8, 7, 6])
        order = K.sort_positions([a, b], [False, True])
        assert order.tolist() == [0, 2, 1, 3]

    def test_string_sort(self):
        bat = BAT.from_values(dt.STRING, ["b", None, "a"], coerce=True)
        assert K.sort_positions([bat], [False]).tolist() == [1, 2, 0]

    def test_stability(self):
        a = BAT.from_values(dt.INT, [1, 1, 1])
        order = K.sort_positions([a], [False])
        assert order.tolist() == [0, 1, 2]

    def test_float_with_nan(self):
        bat = BAT.from_values(dt.FLOAT, [2.0, None, 1.0], coerce=True)
        assert K.sort_positions([bat], [False]).tolist() == [1, 2, 0]

    def test_needs_keys(self):
        with pytest.raises(KernelError):
            K.sort_positions([], [])


class TestSliceCandidates:
    def test_offset_limit(self):
        cand = np.arange(10, dtype=np.int64)
        assert K.slice_candidates(cand, 2, 3).tolist() == [2, 3, 4]

    def test_no_limit(self):
        cand = np.arange(5, dtype=np.int64)
        assert K.slice_candidates(cand, 3, None).tolist() == [3, 4]

    def test_limit_past_end(self):
        cand = np.arange(3, dtype=np.int64)
        assert K.slice_candidates(cand, 1, 100).tolist() == [1, 2]
