"""Property-based tests (hypothesis) for the bulk kernel.

These check algebraic laws against brute-force Python oracles: the
kernel is the foundation everything else trusts.
"""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.mal import kernel as K
from repro.mal.bat import BAT
from repro.storage import types as dt

ints_with_nulls = st.lists(
    st.one_of(st.integers(-50, 50), st.none()), max_size=60)
floats_with_nulls = st.lists(
    st.one_of(st.floats(-100, 100, allow_nan=False), st.none()),
    max_size=60)
small_strings = st.lists(
    st.one_of(st.text(alphabet="abc", max_size=3), st.none()),
    max_size=40)


def int_bat(values):
    return BAT.from_values(dt.INT, values, coerce=True)


class TestSelectionLaws:
    @given(ints_with_nulls, st.integers(-50, 50), st.integers(-50, 50))
    def test_select_matches_oracle(self, values, low, high):
        low, high = min(low, high), max(low, high)
        got = K.select_range(int_bat(values), low, high).tolist()
        expected = [i for i, v in enumerate(values)
                    if v is not None and low <= v <= high]
        assert got == expected

    @given(ints_with_nulls, st.integers(-50, 50))
    def test_select_and_anti_partition_non_nil(self, values, low):
        bat = int_bat(values)
        sel = set(K.select_range(bat, low, None).tolist())
        anti = set(K.select_range(bat, low, None, anti=True).tolist())
        non_nil = {i for i, v in enumerate(values) if v is not None}
        assert sel | anti == non_nil
        assert sel & anti == set()

    @given(ints_with_nulls, st.integers(-50, 50))
    def test_theta_eq_equals_in_single(self, values, needle):
        bat = int_bat(values)
        assert K.theta_select(bat, "==", needle).tolist() == \
            K.in_select(bat, [needle]).tolist()

    @given(ints_with_nulls, st.integers(-50, 50), st.integers(-50, 50))
    def test_select_fetch_composition(self, values, low, high):
        """fetch(select(x)) returns exactly the qualifying values."""
        low, high = min(low, high), max(low, high)
        bat = int_bat(values)
        cand = K.select_range(bat, low, high)
        fetched = K.fetch(bat, cand).tolist()
        assert fetched == [v for v in values
                           if v is not None and low <= v <= high]

    @given(ints_with_nulls, st.integers(-50, 50), st.integers(-50, 50))
    def test_candidate_chaining_equals_conjunction(self, values, a, b):
        bat = int_bat(values)
        chained = K.theta_select(bat, "<=", b,
                                 cand=K.theta_select(bat, ">=", a))
        direct = K.select_range(bat, a, b)
        assert chained.tolist() == direct.tolist()


class TestJoinLaws:
    @given(st.lists(st.integers(0, 8), max_size=30),
           st.lists(st.integers(0, 8), max_size=30))
    def test_join_matches_nested_loop(self, lv, rv):
        lp, rp = K.hashjoin(BAT.from_values(dt.INT, lv),
                            BAT.from_values(dt.INT, rv))
        got = sorted(zip(lp.tolist(), rp.tolist()))
        expected = sorted((i, j) for i, a in enumerate(lv)
                          for j, b in enumerate(rv) if a == b)
        assert got == expected

    @given(st.lists(st.integers(0, 8), max_size=30),
           st.lists(st.integers(0, 8), max_size=30))
    def test_join_symmetric(self, lv, rv):
        l = BAT.from_values(dt.INT, lv)
        r = BAT.from_values(dt.INT, rv)
        lp1, rp1 = K.hashjoin(l, r)
        rp2, lp2 = K.hashjoin(r, l)
        assert sorted(zip(lp1.tolist(), rp1.tolist())) == \
            sorted(zip(lp2.tolist(), rp2.tolist()))

    @given(st.lists(st.integers(0, 5), max_size=25),
           st.lists(st.integers(0, 5), max_size=25))
    def test_prebuilt_table_equals_join(self, lv, rv):
        l = BAT.from_values(dt.INT, lv)
        r = BAT.from_values(dt.INT, rv)
        table = K.build_hash_table(r)
        pp, bp = K.probe_hash_table(table, l)
        lp, rp = K.hashjoin(l, r)
        assert sorted(zip(pp.tolist(), bp.tolist())) == \
            sorted(zip(lp.tolist(), rp.tolist()))


class TestGroupingLaws:
    @given(ints_with_nulls)
    def test_group_partition(self, values):
        """Group ids partition the rows; representatives are first rows."""
        bat = int_bat(values)
        gids, reps, n = K.subgroup(bat, None)
        if values:
            assert len(gids) == len(values)
            assert sorted(set(gids.tolist())) == list(range(n))
            for g in range(n):
                members = [i for i, gg in enumerate(gids) if gg == g]
                assert reps[g] == members[0]

    @given(ints_with_nulls, floats_with_nulls)
    def test_grouped_sum_matches_dict_oracle(self, keys, vals):
        n = min(len(keys), len(vals))
        keys, vals = keys[:n], vals[:n]
        kbat = int_bat(keys)
        vbat = BAT.from_values(dt.FLOAT, vals, coerce=True)
        gids, reps, ngroups = K.subgroup(kbat, None)
        sums = K.agg_sum(vbat, gids, ngroups).tolist() if n else []
        oracle = {}
        for k, v in zip(keys, vals):
            oracle.setdefault(k, []).append(v)
        for g in range(ngroups):
            key = keys[int(reps[g])]
            expected = [v for v in oracle[key] if v is not None]
            if expected:
                assert sums[g] == pytest.approx(sum(expected))
            else:
                assert sums[g] is None

    @given(small_strings)
    def test_distinct_matches_set_oracle(self, values):
        bat = BAT.from_values(dt.STRING, values, coerce=True)
        got = [values[i] for i in K.distinct([bat])] if values else []
        seen = []
        for v in values:
            if v not in seen:
                seen.append(v)
        assert got == seen


class TestSortLaws:
    @given(ints_with_nulls)
    def test_sort_is_permutation_and_ordered(self, values):
        bat = int_bat(values)
        order = K.sort_positions([bat], [False]) if values else []
        assert sorted(order) == list(range(len(values)))
        key = [float("-inf") if values[i] is None else values[i]
               for i in order]
        assert key == sorted(key)

    @given(ints_with_nulls)
    def test_descending_reverses_comparable_values(self, values):
        bat = int_bat(values)
        if not values:
            return
        asc = K.sort_positions([bat], [False])
        desc = K.sort_positions([bat], [True])
        asc_vals = [values[i] for i in asc if values[i] is not None]
        desc_vals = [values[i] for i in desc if values[i] is not None]
        assert asc_vals == list(reversed(desc_vals))


class TestThreeValuedLogic:
    tvl_lists = st.lists(st.sampled_from([1, 0, -1]), min_size=1,
                         max_size=30)

    @staticmethod
    def tvl(values):
        return BAT.from_array(dt.BOOLEAN,
                              np.array(values, dtype=np.int8))

    @given(tvl_lists)
    def test_double_negation(self, values):
        a = self.tvl(values)
        assert K.calc_not(K.calc_not(a)).values.tolist() == values

    @given(tvl_lists)
    def test_de_morgan(self, values):
        a = self.tvl(values)
        b = self.tvl(list(reversed(values)))
        lhs = K.calc_not(K.calc_and(a, b)).values.tolist()
        rhs = K.calc_or(K.calc_not(a), K.calc_not(b)).values.tolist()
        assert lhs == rhs

    @given(tvl_lists)
    def test_and_commutes(self, values):
        a = self.tvl(values)
        b = self.tvl(list(reversed(values)))
        assert K.calc_and(a, b).values.tolist() == \
            K.calc_and(b, a).values.tolist()


class TestArithmeticLaws:
    @given(ints_with_nulls, st.integers(-20, 20))
    def test_add_sub_roundtrip(self, values, c):
        bat = int_bat(values)
        out = K.calc_arith("-", K.calc_arith("+", bat, c), c)
        assert out.tolist() == bat.tolist()

    @given(floats_with_nulls)
    def test_nil_absorbs(self, values):
        bat = BAT.from_values(dt.FLOAT, values, coerce=True)
        out = K.calc_arith("*", bat, K.const_column(dt.FLOAT, None,
                                                    len(bat)))
        assert all(v is None for v in out.tolist())

    @given(ints_with_nulls)
    def test_cast_roundtrip_through_string(self, values):
        bat = int_bat(values)
        back = K.calc_cast(K.calc_cast(bat, dt.STRING), dt.INT)
        assert back.tolist() == bat.tolist()
