"""Unit tests for the SQL parser."""

import pytest

from repro.errors import ParseError
from repro.sql import ast
from repro.sql.parser import parse, parse_script


class TestSelectBasics:
    def test_star(self):
        stmt = parse("SELECT * FROM t")
        assert isinstance(stmt.items[0].expr, ast.Star)
        assert stmt.from_items[0].ref.name == "t"

    def test_columns_and_aliases(self):
        stmt = parse("SELECT a, b AS bee, c cee FROM t")
        assert stmt.items[1].alias == "bee"
        assert stmt.items[2].alias == "cee"

    def test_qualified_column(self):
        stmt = parse("SELECT t.a FROM t")
        expr = stmt.items[0].expr
        assert expr == ast.ColumnRef("a", table="t")

    def test_distinct(self):
        assert parse("SELECT DISTINCT a FROM t").distinct

    def test_where(self):
        stmt = parse("SELECT a FROM t WHERE a > 5")
        assert isinstance(stmt.where, ast.BinaryOp)
        assert stmt.where.op == ">"

    def test_group_having(self):
        stmt = parse("SELECT a FROM t GROUP BY a, b HAVING count(*) > 1")
        assert len(stmt.group_by) == 2
        assert stmt.having is not None

    def test_order_limit_offset(self):
        stmt = parse("SELECT a FROM t ORDER BY a DESC, b LIMIT 5 OFFSET 2")
        assert stmt.order_by[0].descending is True
        assert stmt.order_by[1].descending is False
        assert stmt.limit == 5 and stmt.offset == 2

    def test_trailing_semicolon(self):
        parse("SELECT a FROM t;")

    def test_trailing_garbage(self):
        with pytest.raises(ParseError):
            parse("SELECT a FROM t extra stuff everywhere (")


class TestExpressions:
    def expr(self, text):
        return parse(f"SELECT {text} FROM t").items[0].expr

    def test_precedence_mul_over_add(self):
        e = self.expr("1 + 2 * 3")
        assert e.op == "+" and e.right.op == "*"

    def test_parentheses(self):
        e = self.expr("(1 + 2) * 3")
        assert e.op == "*" and e.left.op == "+"

    def test_and_or_precedence(self):
        stmt = parse("SELECT a FROM t WHERE a = 1 OR b = 2 AND c = 3")
        assert stmt.where.op == "or"
        assert stmt.where.right.op == "and"

    def test_not(self):
        stmt = parse("SELECT a FROM t WHERE NOT a = 1")
        assert isinstance(stmt.where, ast.UnaryOp)
        assert stmt.where.op == "not"

    def test_unary_minus(self):
        e = self.expr("-a")
        assert e == ast.UnaryOp("-", ast.ColumnRef("a"))

    def test_equality_normalized(self):
        stmt = parse("SELECT a FROM t WHERE a = 1 AND b <> 2")
        assert stmt.where.left.op == "=="
        assert stmt.where.right.op == "!="

    def test_between(self):
        stmt = parse("SELECT a FROM t WHERE a BETWEEN 1 AND 5")
        assert isinstance(stmt.where, ast.Between)

    def test_not_between(self):
        stmt = parse("SELECT a FROM t WHERE a NOT BETWEEN 1 AND 5")
        assert stmt.where.negated

    def test_in_list(self):
        stmt = parse("SELECT a FROM t WHERE a IN (1, 2, 3)")
        assert isinstance(stmt.where, ast.InList)
        assert len(stmt.where.items) == 3

    def test_like(self):
        stmt = parse("SELECT a FROM t WHERE s LIKE 'ab%'")
        assert isinstance(stmt.where, ast.Like)
        assert stmt.where.pattern == "ab%"

    def test_is_null(self):
        stmt = parse("SELECT a FROM t WHERE a IS NULL")
        assert isinstance(stmt.where, ast.IsNull) and not stmt.where.negated

    def test_is_not_null(self):
        stmt = parse("SELECT a FROM t WHERE a IS NOT NULL")
        assert stmt.where.negated

    def test_case(self):
        e = self.expr("CASE WHEN a > 1 THEN 'hi' ELSE 'lo' END")
        assert isinstance(e, ast.Case)
        assert len(e.whens) == 1 and e.else_ is not None

    def test_case_requires_when(self):
        with pytest.raises(ParseError):
            parse("SELECT CASE ELSE 1 END FROM t")

    def test_cast(self):
        e = self.expr("CAST(a AS FLOAT)")
        assert isinstance(e, ast.Cast) and e.type_name == "float"

    def test_function_call(self):
        e = self.expr("round(a, 2)")
        assert e == ast.FunctionCall("round",
                                     [ast.ColumnRef("a"), ast.Literal(2)])

    def test_count_star(self):
        e = self.expr("count(*)")
        assert e.name == "count"
        assert isinstance(e.args[0], ast.Star)

    def test_count_distinct(self):
        e = self.expr("count(DISTINCT a)")
        assert e.distinct

    def test_literals(self):
        stmt = parse("SELECT 1, 2.5, 'x', true, false, NULL FROM t")
        values = [i.expr.value for i in stmt.items]
        assert values == [1, 2.5, "x", True, False, None]

    def test_string_concat_op(self):
        e = self.expr("a || 'x'")
        assert e.op == "||"


class TestFromClause:
    def test_alias(self):
        stmt = parse("SELECT a FROM t AS x")
        assert stmt.from_items[0].ref.alias == "x"

    def test_implicit_alias(self):
        stmt = parse("SELECT a FROM t x")
        assert stmt.from_items[0].ref.alias == "x"

    def test_comma_join(self):
        stmt = parse("SELECT a FROM t, u")
        assert len(stmt.from_items) == 2
        assert stmt.from_items[1].join_cond is None

    def test_inner_join_on(self):
        stmt = parse("SELECT a FROM t JOIN u ON t.a = u.a")
        assert stmt.from_items[1].join_cond is not None

    def test_inner_keyword(self):
        stmt = parse("SELECT a FROM t INNER JOIN u ON t.a = u.a")
        assert len(stmt.from_items) == 2

    def test_cross_join(self):
        stmt = parse("SELECT a FROM t CROSS JOIN u")
        assert stmt.from_items[1].join_cond is None

    def test_inner_without_join(self):
        with pytest.raises(ParseError):
            parse("SELECT a FROM t INNER u")


class TestWindows:
    def test_tuple_window(self):
        stmt = parse("SELECT a FROM s [RANGE 10 SLIDE 2]")
        win = stmt.from_items[0].ref.window
        assert win == ast.WindowClause(10, 2, False)

    def test_tumbling_default(self):
        win = parse("SELECT a FROM s [RANGE 10]").from_items[0].ref.window
        assert win.slide is None

    def test_time_window(self):
        win = parse("SELECT a FROM s [RANGE 10 SECONDS SLIDE 2 SECONDS]"
                    ).from_items[0].ref.window
        assert win == ast.WindowClause(10, 2, True)

    def test_tuples_keyword(self):
        win = parse("SELECT a FROM s [RANGE 10 TUPLES]"
                    ).from_items[0].ref.window
        assert not win.time_based

    def test_mixed_units_rejected(self):
        with pytest.raises(ParseError):
            parse("SELECT a FROM s [RANGE 10 SECONDS SLIDE 2 TUPLES]")

    def test_window_with_alias(self):
        stmt = parse("SELECT a FROM s [RANGE 5] AS w")
        assert stmt.from_items[0].ref.alias == "w"


class TestDDL:
    def test_create_table(self):
        stmt = parse("CREATE TABLE t (a INT, s VARCHAR(20))")
        assert stmt == ast.CreateTableStmt("t", [("a", "int"),
                                                 ("s", "varchar")])

    def test_create_stream(self):
        stmt = parse("CREATE STREAM s (k INT, v FLOAT)")
        assert isinstance(stmt, ast.CreateStreamStmt)

    def test_create_index(self):
        stmt = parse("CREATE INDEX ON t (a) USING sorted")
        assert stmt == ast.CreateIndexStmt("t", "a", "sorted")

    def test_drop(self):
        assert parse("DROP TABLE t") == ast.DropStmt("table", "t")
        assert parse("DROP STREAM s") == ast.DropStmt("stream", "s")

    def test_drop_needs_kind(self):
        with pytest.raises(ParseError):
            parse("DROP t")

    def test_decimal_type_args(self):
        stmt = parse("CREATE TABLE t (d DECIMAL(10, 2))")
        assert stmt.columns == [("d", "decimal")]


class TestInsert:
    def test_values(self):
        stmt = parse("INSERT INTO t VALUES (1, 'x'), (2, NULL)")
        assert len(stmt.rows) == 2
        assert stmt.columns is None

    def test_column_list(self):
        stmt = parse("INSERT INTO t (a, b) VALUES (1, 2)")
        assert stmt.columns == ["a", "b"]

    def test_insert_select(self):
        stmt = parse("INSERT INTO t SELECT a FROM u")
        assert stmt.select is not None

    def test_insert_requires_body(self):
        with pytest.raises(ParseError):
            parse("INSERT INTO t")


class TestScript:
    def test_multiple_statements(self):
        stmts = parse_script(
            "CREATE TABLE t (a INT); INSERT INTO t VALUES (1); "
            "SELECT a FROM t")
        assert len(stmts) == 3

    def test_missing_semicolon(self):
        with pytest.raises(ParseError):
            parse_script("SELECT a FROM t SELECT b FROM t")

    def test_empty_script(self):
        assert parse_script("") == []
