"""Parallel firing ≡ serial firing: byte-identical emitted results.

The worker-pool scheduler (``parallel_workers > 1``) must be an
execution-strategy change only: every standing query's emission log —
firing times and row payloads — matches the serial cascade exactly, on
filter fleets, windowed aggregates, chained networks and random
hypothesis-generated workloads (the recycler on≡off property pattern
from ``test_recycler.py``, applied to the worker pool).
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.engine import DataCellEngine
from repro.streams.source import RateSource

SENSOR_DDL = ("CREATE STREAM sensors (sensor_id INT, room INT, "
              "temperature FLOAT, humidity FLOAT)")


def sensor_rows_det(n):
    return [(i % 8, i % 4, float((i * 7) % 30), float(i % 100) / 2)
            for i in range(n)]


def emitted(engine, names):
    """Per-query emission log: (fire time, rows) pairs, unrounded."""
    return {name: [(t, r.to_rows()) for t, r in
                   engine.results(name).batches] for name in names}


def run_workload(parallel_workers, setup, **engine_kwargs):
    with DataCellEngine(parallel_workers=parallel_workers,
                        **engine_kwargs) as engine:
        names = setup(engine)
        engine.run_until_drained()
        assert not engine.scheduler.failed, list(engine.scheduler.failed)
        return emitted(engine, names), engine.scheduler.parallel_stats()


def assert_parallel_transparent(setup, workers=4, **engine_kwargs):
    serial, _ = run_workload(1, setup, **engine_kwargs)
    parallel, pstats = run_workload(workers, setup, **engine_kwargs)
    assert parallel == serial
    return pstats


class TestEquivalence:
    def test_filter_fleet(self):
        def setup(engine):
            engine.execute(SENSOR_DDL)
            for i in range(12):
                engine.register_continuous(
                    f"SELECT sensor_id, temperature FROM sensors "
                    f"WHERE temperature > {10 + (i % 4)}", name=f"q{i}")
            engine.attach_source(
                "sensors", RateSource(sensor_rows_det(2000), rate=50000))
            return [f"q{i}" for i in range(12)]

        pstats = assert_parallel_transparent(setup)
        # 12 independent readers of one stream share each wave
        assert pstats["max_wave_width"] == 12
        assert pstats["parallel_fires"] > 0

    def test_filter_fleet_without_recycler(self):
        def setup(engine):
            engine.execute(SENSOR_DDL)
            for i in range(6):
                engine.register_continuous(
                    f"SELECT sensor_id FROM sensors "
                    f"WHERE temperature > {12 + i}", name=f"q{i}")
            engine.attach_source(
                "sensors", RateSource(sensor_rows_det(800), rate=50000))
            return [f"q{i}" for i in range(6)]

        assert_parallel_transparent(setup, recycler_enabled=False)

    def test_windowed_aggregates_both_modes(self):
        def setup(engine):
            engine.execute(SENSOR_DDL)
            engine.register_continuous(
                "SELECT room, count(*), sum(temperature) FROM sensors "
                "[RANGE 300 SLIDE 100] GROUP BY room ORDER BY room",
                name="re", mode="reeval")
            engine.register_continuous(
                "SELECT room, count(*), sum(temperature) FROM sensors "
                "[RANGE 300 SLIDE 100] GROUP BY room ORDER BY room",
                name="inc", mode="incremental")
            engine.register_continuous(
                "SELECT min(temperature), max(temperature) FROM "
                "sensors [RANGE 200 SLIDE 50]", name="mm", mode="reeval")
            engine.attach_source(
                "sensors", RateSource(sensor_rows_det(1500), rate=50000))
            return ["re", "inc", "mm"]

        assert_parallel_transparent(setup)

    def test_chained_network_topological(self):
        """A two-stage chained network: stage 2 reads stage 1's output
        basket, so the writer must fire in an earlier wave."""
        def setup(engine):
            engine.execute(SENSOR_DDL)
            engine.register_continuous(
                "SELECT sensor_id, room, temperature FROM sensors "
                "WHERE temperature > 10", name="stage1",
                output_stream="hot")
            engine.register_continuous(
                "SELECT room, count(*) FROM hot GROUP BY room "
                "ORDER BY room", name="stage2")
            engine.attach_source(
                "sensors", RateSource(sensor_rows_det(1200), rate=50000))
            return ["stage1", "stage2"]

        assert_parallel_transparent(setup)

    def test_two_stream_join(self):
        def setup(engine):
            engine.execute(SENSOR_DDL)
            engine.execute("CREATE STREAM alerts (room INT, level INT)")
            engine.register_continuous(
                "SELECT s.sensor_id, a.level FROM sensors "
                "[RANGE 100 SLIDE 50] s, alerts [RANGE 100 SLIDE 50] a "
                "WHERE s.room = a.room AND s.temperature > 12",
                name="j", mode="reeval")
            engine.register_continuous(
                "SELECT room, count(*) FROM alerts GROUP BY room "
                "ORDER BY room", name="agg")
            engine.attach_source(
                "sensors", RateSource(sensor_rows_det(1000), rate=50000))
            engine.attach_source(
                "alerts", RateSource([(i % 4, i % 3) for i in range(500)],
                                     rate=25000))
            return ["j", "agg"]

        assert_parallel_transparent(setup)

    def test_verify_mode_under_parallelism(self):
        """Recycler verify re-executes every hit on worker threads."""
        def setup(engine):
            engine.execute(SENSOR_DDL)
            for i in range(4):
                engine.register_continuous(
                    "SELECT sensor_id, temperature FROM sensors "
                    "WHERE temperature > 12", name=f"q{i}")
            engine.attach_source(
                "sensors", RateSource(sensor_rows_det(600), rate=50000))
            return [f"q{i}" for i in range(4)]

        assert_parallel_transparent(setup, recycler_verify=True)


class TestFailurePaths:
    def test_parallel_failure_marks_only_that_factory(self):
        with DataCellEngine(parallel_workers=4) as engine:
            engine.execute(SENSOR_DDL)
            bad = engine.register_continuous(
                "SELECT sensor_id FROM sensors", name="bad")
            engine.register_continuous(
                "SELECT temperature FROM sensors", name="good")

            def explode(now):
                raise RuntimeError("injected")

            bad.factory._evaluate = explode
            engine.feed("sensors", [(1, 0, 30.0, 40.0)])
            engine.step()
            assert bad.factory.state == "failed"
            assert engine.scheduler.failed_total == 1
            assert engine.results("good").rows() == [(30.0,)]
            # the net keeps running without the quarantined factory
            engine.feed("sensors", [(2, 1, 20.0, 30.0)])
            engine.step()
            assert engine.results("good").rows() == [(30.0,), (20.0,)]


class TestStress:
    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(st.data())
    def test_property_parallel_equals_serial(self, data):
        n = data.draw(st.integers(20, 120), label="rows")
        rows = [(data.draw(st.integers(0, 3)),
                 data.draw(st.one_of(
                     st.none(),
                     st.floats(-50, 50, allow_nan=False))))
                for _ in range(n)]
        slide = data.draw(st.integers(1, 8), label="slide")
        size = slide * data.draw(st.integers(1, 5), label="factor")
        windowed = data.draw(st.booleans(), label="windowed")
        chained = data.draw(st.booleans(), label="chained")
        workers = data.draw(st.integers(2, 6), label="workers")
        window = f" [RANGE {size} SLIDE {slide}]" if windowed else ""
        queries = [
            f"SELECT k, count(*), sum(v) FROM s{window} GROUP BY k "
            f"ORDER BY k",
            f"SELECT k, v FROM s{window} WHERE v > 0",
            f"SELECT k, v FROM s{window} WHERE v > 0",   # exact twin
        ]

        def setup(engine):
            engine.execute("CREATE STREAM s (k INT, v FLOAT)")
            names = []
            for i, sql in enumerate(queries):
                engine.register_continuous(sql, name=f"q{i}",
                                           mode="reeval")
                names.append(f"q{i}")
            if chained:
                engine.register_continuous(
                    "SELECT k, v FROM s WHERE v > 5", name="up",
                    output_stream="mid")
                engine.register_continuous(
                    "SELECT k, count(*) FROM mid GROUP BY k ORDER BY k",
                    name="down")
                names += ["up", "down"]
            engine.attach_source("s", RateSource(rows, rate=10000))
            return names

        assert_parallel_transparent(setup, workers=workers)
