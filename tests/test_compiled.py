"""Slot-compiled plan execution (repro.mal.compiler, compile section).

The contract under test: a compiled plan is *bit-for-bit* equivalent to
the interpreter — same emissions across all three execution modes, same
recycler interaction, same errors — while resolving opcodes, folding
constants and renumbering variables exactly once at registration.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.engine import DataCellEngine
from repro.errors import MALError
from repro.mal.compiler import compile_program, compile_stats
from repro.mal.fingerprint import (EmitStamper, cached_fingerprints,
                                   cached_program_fingerprint,
                                   emit_fingerprint,
                                   fingerprint_cache_stats)
from repro.mal.interpreter import MALContext, MALInterpreter, lookup_opcode
from repro.mal.program import Const, Instruction, MALProgram, Var
from repro.streams.source import RateSource

ROWS = [(i % 4, float((i * 7) % 23)) for i in range(120)]


def run_query(rows, query, mode, compile_plans, **engine_kw):
    engine = DataCellEngine(compile_plans=compile_plans, **engine_kw)
    engine.execute("CREATE STREAM s (k INT, v FLOAT)")
    q = engine.register_continuous(query, mode=mode, name="q")
    engine.attach_source("s", RateSource(rows, rate=100000))
    engine.run_until_drained()
    assert not engine.scheduler.failed, engine.scheduler.failed
    batches = [sorted(map(repr, r.to_rows()))
               for _t, r in engine.results("q").batches]
    return q.mode, batches, engine


def assert_compiled_matches_interpreted(rows, query, mode, **kw):
    m1, compiled, _ = run_query(rows, query, mode, True, **kw)
    m2, interpreted, _ = run_query(rows, query, mode, False, **kw)
    assert m1 == m2
    assert compiled == interpreted, (query, mode)
    return compiled


class TestCompiledEquivalence:
    @pytest.mark.parametrize("mode", ["reeval", "incremental", "delta"])
    def test_grouped_aggregate(self, mode):
        out = assert_compiled_matches_interpreted(
            ROWS, "SELECT k, sum(v), count(*) FROM s "
                  "[RANGE 16 SLIDE 8] GROUP BY k ORDER BY k", mode)
        assert out

    @pytest.mark.parametrize("mode", ["reeval", "incremental", "delta"])
    def test_filter_projection(self, mode):
        assert_compiled_matches_interpreted(
            ROWS, "SELECT k, v * 2 FROM s [RANGE 8 SLIDE 4] "
                  "WHERE v > 10", mode)

    @pytest.mark.parametrize("mode", ["reeval", "incremental", "delta"])
    def test_recycler_off(self, mode):
        assert_compiled_matches_interpreted(
            ROWS, "SELECT k, max(v) FROM s [RANGE 12 SLIDE 6] "
                  "GROUP BY k", mode, recycler_enabled=False)

    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(st.integers(10, 60), st.integers(1, 6), st.integers(1, 4),
           st.sampled_from([
               "SELECT k, count(*), sum(v), min(v), max(v) FROM s "
               "[RANGE {size} SLIDE {slide}] GROUP BY k ORDER BY k",
               "SELECT k, v FROM s [RANGE {size} SLIDE {slide}] "
               "WHERE v > 0",
               "SELECT count(*), avg(v) FROM s "
               "[RANGE {size} SLIDE {slide}]",
           ]))
    def test_random_plans_agree(self, n, slide, factor, template):
        rows = [(i % 3, float((i * 5) % 17) - 4.0) for i in range(n)]
        query = template.format(size=slide * factor, slide=slide)
        for mode in ("reeval", "incremental", "delta"):
            assert_compiled_matches_interpreted(rows, query, mode)


class TestSlotRenumbering:
    def test_multi_result_instruction_slots(self):
        engine = DataCellEngine()
        engine.execute("CREATE STREAM s (k INT, v FLOAT)")
        engine.register_continuous(
            "SELECT k, sum(v) FROM s [RANGE 8 SLIDE 4] GROUP BY k",
            mode="reeval", name="q")
        program = engine.scheduler.factories[0].program
        compiled = compile_program(program)
        multi = [step for step in compiled.steps
                 if step.dsts is not None]
        assert multi, "grouped plan should have a multi-result subgroup"
        assert all(len(set(step.dsts)) == len(step.dsts)
                   for step in multi)

    def test_rebinding_reuses_slot(self):
        program = MALProgram("t.rebind")
        program.append(Instruction(
            ["x"], "bat.single", [Const("int"), Const(1)]))
        program.append(Instruction(
            ["x"], "bat.single", [Const("int"), Const(2)]))
        program.append(Instruction(
            ["y"], "batcalc.add", [Var("x"), Var("x")]))
        compiled = compile_program(program)
        # both writes of x land in one slot, exactly like a dict env
        assert compiled.steps[0].dst == compiled.steps[1].dst
        assert compiled.nslots == 2
        env = {}
        MALInterpreter(MALContext(None)).run(program, env)
        assert env["y"].tolist() == [4]
        regs = [None] * compiled.nslots
        for thunk in compiled.thunks:
            thunk(MALContext(None), regs)
        assert regs[compiled.steps[2].dst].tolist() == [4]

    def test_multi_result_shape_mismatch_raises(self):
        program = MALProgram("t.badshape")
        # bat.single returns one BAT, not the 2-tuple the results ask
        program.append(Instruction(
            ["a", "b"], "bat.single", [Const("int"), Const(1)]))
        compiled = compile_program(program)
        with pytest.raises(MALError, match="expected 2 results"):
            compiled.run(MALContext(None))


class TestCompileErrors:
    def test_unknown_opcode_names_opcode_and_line(self):
        program = MALProgram("t.bad")
        program.append(Instruction(
            ["x"], "bat.single", [Const("int"), Const(1)]))
        program.append(Instruction(["y"], "nosuch.op", [Var("x")]))
        with pytest.raises(MALError) as err:
            compile_program(program)
        assert "nosuch.op" in str(err.value)
        assert "line 1" in str(err.value)

    def test_unbound_variable_names_line(self):
        program = MALProgram("t.unbound")
        program.append(Instruction(
            ["x"], "batcalc.neg", [Var("ghost")]))
        with pytest.raises(MALError) as err:
            compile_program(program)
        assert "ghost" in str(err.value)
        assert "line 0" in str(err.value)

    def test_interpreter_miss_names_opcode_and_line(self):
        program = MALProgram("t.bad")
        program.append(Instruction(["x"], "nosuch.op", []))
        with pytest.raises(MALError) as err:
            MALInterpreter(MALContext(None)).run(program)
        assert "nosuch.op" in str(err.value)
        assert "line 0" in str(err.value)

    def test_lookup_opcode_resolves_calc_once(self):
        impl = lookup_opcode("calc.abs")
        assert impl is lookup_opcode("calc.abs")

    def test_factory_falls_back_to_interpreter(self, monkeypatch):
        import repro.core.factory as factory_mod

        def boom(program):
            raise MALError("no compile today")

        monkeypatch.setattr(factory_mod, "compile_program", boom)
        before = compile_stats()["compile_fallbacks"]
        _m, batches, engine = run_query(
            ROWS, "SELECT k, sum(v) FROM s [RANGE 8 SLIDE 4] "
                  "GROUP BY k", "reeval", True)
        assert engine.scheduler.factories[0].compiled is None
        assert batches
        assert compile_stats()["compile_fallbacks"] == before + 1


class TestCompileSharing:
    def test_identical_queries_share_one_compilation(self):
        engine = DataCellEngine()
        engine.execute("CREATE STREAM s (k INT, v FLOAT)")
        for i in range(4):
            engine.register_continuous(
                "SELECT k, sum(v) FROM s [RANGE 8 SLIDE 4] GROUP BY k",
                mode="reeval", name=f"q{i}")
        compiled = [f.compiled for f in engine.scheduler.factories]
        assert all(c is not None for c in compiled)
        assert all(c is compiled[0] for c in compiled[1:])

    def test_output_alias_must_not_share(self):
        """Two plans equal in fingerprint but differing in emit column
        names (fingerprints exclude side-effect args) must compile to
        distinct programs — the alias lives in the resultSet/emit
        thunk."""
        engine = DataCellEngine()
        engine.execute("CREATE STREAM s (k INT, v FLOAT)")
        engine.register_continuous(
            "SELECT k, sum(v) AS a FROM s [RANGE 8 SLIDE 4] GROUP BY k",
            mode="reeval", name="qa")
        engine.register_continuous(
            "SELECT k, sum(v) AS b FROM s [RANGE 8 SLIDE 4] GROUP BY k",
            mode="reeval", name="qb")
        fa, fb = engine.scheduler.factories
        assert (cached_program_fingerprint(fa.program)
                == cached_program_fingerprint(fb.program))
        assert fa.compiled is not fb.compiled
        engine.attach_source("s", RateSource(ROWS, rate=100000))
        engine.run_until_drained()
        a = engine.results("qa").batches[-1][1]
        b = engine.results("qb").batches[-1][1]
        assert a.names != b.names
        assert a.to_rows() == b.to_rows()


class TestRecyclerUnderCompilation:
    def test_verify_mode_passes(self):
        _m, batches, engine = run_query(
            ROWS, "SELECT k, sum(v) FROM s [RANGE 16 SLIDE 4] "
                  "GROUP BY k", "reeval", True, recycler_verify=True)
        assert batches
        assert engine.recycler.hits + engine.recycler.slice_hits >= 0

    def test_shared_work_across_compiled_queries(self):
        engine = DataCellEngine(recycler_verify=True)
        engine.execute("CREATE STREAM s (k INT, v FLOAT)")
        for i in range(4):
            engine.register_continuous(
                "SELECT k, sum(v) FROM s [RANGE 16 SLIDE 8] "
                "GROUP BY k", mode="reeval", name=f"q{i}")
        engine.attach_source("s", RateSource(ROWS, rate=100000))
        engine.run_until_drained()
        assert not engine.scheduler.failed, engine.scheduler.failed
        # queries 2..4 hit the intermediates query 1 published
        assert engine.recycler.hits > 0
        outs = [[sorted(map(repr, r.to_rows())) for _t, r in
                 engine.results(f"q{i}").batches] for i in range(4)]
        assert all(o == outs[0] for o in outs[1:])


class TestAmortizedFingerprints:
    def test_emit_stamper_matches_emit_fingerprint(self):
        ranges = [("s", 0, 10), ("other", 3, 7), ("A", 5, 5)]
        assert (EmitStamper("deadbeef").stamp(ranges)
                == emit_fingerprint("deadbeef", ranges))

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.tuples(st.sampled_from(["s", "t", "Stream"]),
                              st.integers(0, 1 << 40),
                              st.integers(0, 1 << 40)),
                    min_size=0, max_size=4))
    def test_emit_stamper_matches_randomized(self, ranges):
        stamper = EmitStamper("plan")
        assert stamper.stamp(ranges) == emit_fingerprint("plan", ranges)
        # and the stamper is reusable across firings
        assert stamper.stamp(ranges) == emit_fingerprint("plan", ranges)
        assert stamper.stamps == 2

    def test_digest_cache_hit_on_second_use(self):
        engine = DataCellEngine()
        engine.execute("CREATE STREAM s (k INT, v FLOAT)")
        engine.register_continuous(
            "SELECT k, sum(v) FROM s [RANGE 8 SLIDE 4] GROUP BY k",
            mode="reeval", name="q")
        before = fingerprint_cache_stats()["fp_cache_hits"]
        program = engine.scheduler.factories[0].program
        first = cached_program_fingerprint(program)
        assert fingerprint_cache_stats()["fp_cache_hits"] > before
        # mutation invalidates the memo: version is part of the key
        program.append(Instruction([], "basket.drain", [Const("s")]))
        assert cached_program_fingerprint(program) != first
        assert cached_fingerprints(program)[-1] is None


class TestInterpPane:
    def test_network_stats_interp_section(self):
        _m, _b, engine = run_query(
            ROWS, "SELECT k, sum(v) FROM s [RANGE 8 SLIDE 4] "
                  "GROUP BY k", "reeval", True, interp_profile=True)
        stats = engine.network_stats()["interp"]
        assert stats["factories_compiled"] == 1
        assert stats["emit_stamps"] > 0
        assert stats["opcode_profile"]
        total_calls = sum(c["calls"] for c
                          in stats["opcode_profile"].values())
        assert total_calls > 0

    def test_monitor_interp_pane_renders(self):
        _m, _b, engine = run_query(
            ROWS, "SELECT k, sum(v) FROM s [RANGE 8 SLIDE 4] "
                  "GROUP BY k", "reeval", True)
        pane = engine.monitor.interp()
        assert "plan execution" in pane
        assert "autotuner" in pane


class TestConstFolding:
    """batcalc.const results consumed only by arithmetic/comparison
    kernels fold to bare scalar registers at compile time."""

    def test_folds_arithmetic_constants(self):
        before = compile_stats()["compile_const_folds"]
        out = assert_compiled_matches_interpreted(
            ROWS, "SELECT k, v * 3 + 1, v - 0.5 FROM s "
                  "[RANGE 8 SLIDE 8] WHERE v > 2", "reeval")
        after = compile_stats()["compile_const_folds"]
        assert out, "query emitted nothing"
        assert after > before

    def test_fold_preserves_comparison_semantics(self):
        assert_compiled_matches_interpreted(
            ROWS, "SELECT k FROM s [RANGE 8 SLIDE 8] "
                  "WHERE v >= 4 AND v <= 19", "reeval")

    def test_fold_with_recycler_on(self):
        assert_compiled_matches_interpreted(
            ROWS, "SELECT k, v * 2 + 7 FROM s [RANGE 8 SLIDE 8] "
                  "WHERE v > 1", "reeval", recycler_enabled=True)
