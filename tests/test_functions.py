"""Unit tests for the scalar function registry implementations."""

import pytest

from repro.errors import BindError, KernelError
from repro.mal.bat import BAT
from repro.sql import functions as F
from repro.storage import types as dt


def col(dtype, values):
    return BAT.from_values(dtype, values, coerce=True)


def call(name, *args):
    return F.lookup(name).impl(*args).tolist()


class TestRegistry:
    def test_lookup_case_insensitive(self):
        assert F.lookup("ABS").name == "abs"

    def test_unknown(self):
        with pytest.raises(BindError):
            F.lookup("nope")

    def test_is_aggregate(self):
        assert F.is_aggregate("SUM")
        assert not F.is_aggregate("abs")

    def test_is_scalar(self):
        assert F.is_scalar("round")
        assert not F.is_scalar("sum")

    def test_arity_bounds(self):
        fn = F.lookup("round")
        fn.check_arity(1)
        fn.check_arity(2)
        with pytest.raises(BindError):
            fn.check_arity(3)

    def test_aggregate_result_type(self):
        assert F.aggregate_result_type("count", None) is dt.INT
        assert F.aggregate_result_type("avg", dt.INT) is dt.FLOAT
        assert F.aggregate_result_type("sum", dt.FLOAT) is dt.FLOAT
        assert F.aggregate_result_type("min", dt.STRING) is dt.STRING

    def test_aggregate_type_errors(self):
        with pytest.raises(BindError):
            F.aggregate_result_type("avg", dt.STRING)
        with pytest.raises(BindError):
            F.aggregate_result_type("sum", None)


class TestNumeric:
    def test_abs(self):
        assert call("abs", col(dt.INT, [-3, None])) == [3, None]
        assert call("abs", col(dt.FLOAT, [-1.5])) == [1.5]

    def test_abs_string_rejected(self):
        with pytest.raises(KernelError):
            call("abs", col(dt.STRING, ["x"]))

    def test_sqrt(self):
        assert call("sqrt", col(dt.FLOAT, [4.0, None])) == [2.0, None]

    def test_sqrt_negative_is_nil(self):
        assert call("sqrt", col(dt.FLOAT, [-1.0])) == [None]

    def test_ln_of_zero_is_nil(self):
        assert call("ln", col(dt.FLOAT, [0.0])) == [None]

    def test_log10(self):
        assert call("log", col(dt.FLOAT, [100.0])) == [2.0]

    def test_exp(self):
        out = call("exp", col(dt.FLOAT, [0.0]))
        assert out == [1.0]

    def test_floor_ceil(self):
        assert call("floor", col(dt.FLOAT, [1.7, None])) == [1, None]
        assert call("ceil", col(dt.FLOAT, [1.2])) == [2]
        assert call("ceiling", col(dt.FLOAT, [1.2])) == [2]

    def test_sign(self):
        assert call("sign", col(dt.INT, [-5, 0, 5])) == [-1, 0, 1]

    def test_round_digits(self):
        assert call("round", col(dt.FLOAT, [1.256]),
                    col(dt.INT, [2])) == [1.26]

    def test_round_default(self):
        assert call("round", col(dt.FLOAT, [1.6, None])) == [2.0, None]

    def test_power(self):
        assert call("power", col(dt.FLOAT, [2.0, None]),
                    col(dt.FLOAT, [3.0, 1.0])) == [8.0, None]

    def test_mod(self):
        assert call("mod", col(dt.INT, [7]), col(dt.INT, [3])) == [1]


class TestStrings:
    def test_length(self):
        assert call("length", col(dt.STRING, ["abc", None])) == [3, None]

    def test_lower_upper_trim(self):
        assert call("lower", col(dt.STRING, ["AbC"])) == ["abc"]
        assert call("upper", col(dt.STRING, ["AbC"])) == ["ABC"]
        assert call("trim", col(dt.STRING, ["  x  "])) == ["x"]

    def test_string_fn_rejects_numbers(self):
        with pytest.raises(KernelError):
            call("length", col(dt.INT, [1]))

    def test_substr(self):
        s = col(dt.STRING, ["hello", None])
        assert call("substr", s, col(dt.INT, [2, 1])) == ["ello", None]

    def test_substr_with_length(self):
        s = col(dt.STRING, ["hello"])
        assert call("substr", s, col(dt.INT, [2]),
                    col(dt.INT, [3])) == ["ell"]

    def test_concat_casts(self):
        assert call("concat", col(dt.STRING, ["x"]),
                    col(dt.INT, [1])) == ["x1"]


class TestNullFunctions:
    def test_coalesce_two(self):
        assert call("coalesce", col(dt.INT, [None, 1]),
                    col(dt.INT, [2, 3])) == [2, 1]

    def test_coalesce_three(self):
        assert call("coalesce", col(dt.INT, [None]),
                    col(dt.INT, [None]), col(dt.INT, [7])) == [7]

    def test_coalesce_type_widening(self):
        types = [dt.INT, dt.FLOAT]
        assert F.lookup("coalesce").result_type(types) is dt.FLOAT

    def test_nullif_match_is_null(self):
        assert call("nullif", col(dt.INT, [1, 2]),
                    col(dt.INT, [1, 99])) == [None, 2]

    def test_nullif_strings(self):
        assert call("nullif", col(dt.STRING, ["a", "b"]),
                    col(dt.STRING, ["a", "x"])) == [None, "b"]
