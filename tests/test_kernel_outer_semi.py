"""Unit tests for the outer/semi/anti join kernel primitives and the
variance moments helper."""

import numpy as np
import pytest

from repro.mal import kernel as K
from repro.mal.bat import BAT
from repro.storage import types as dt


class TestLeftOuterPairs:
    def test_unmatched_get_minus_one(self):
        l = BAT.from_values(dt.INT, [1, 2, 3])
        r = BAT.from_values(dt.INT, [2])
        lp, rp = K.left_outer_pairs(l, r)
        assert list(zip(lp.tolist(), rp.tolist())) == \
            [(0, -1), (1, 0), (2, -1)]

    def test_every_left_position_present(self):
        l = BAT.from_values(dt.INT, [5, 5, None, 7], coerce=True)
        r = BAT.from_values(dt.INT, [5, 9])
        lp, rp = K.left_outer_pairs(l, r)
        assert sorted(set(lp.tolist())) == [0, 1, 2, 3]

    def test_duplicates_multiply_matches(self):
        l = BAT.from_values(dt.INT, [1])
        r = BAT.from_values(dt.INT, [1, 1])
        lp, rp = K.left_outer_pairs(l, r)
        assert len(lp) == 2 and -1 not in rp.tolist()

    def test_nil_left_is_unmatched(self):
        l = BAT.from_values(dt.INT, [None], coerce=True)
        r = BAT.from_values(dt.INT, [None], coerce=True)
        lp, rp = K.left_outer_pairs(l, r)
        assert rp.tolist() == [-1]

    def test_empty_right(self):
        l = BAT.from_values(dt.INT, [1, 2])
        r = BAT.from_values(dt.INT, [])
        lp, rp = K.left_outer_pairs(l, r)
        assert rp.tolist() == [-1, -1]


class TestFetchOuter:
    def test_minus_one_becomes_nil(self):
        bat = BAT.from_values(dt.INT, [10, 20])
        out = K.fetch_outer(bat, np.array([1, -1, 0], dtype=np.int64))
        assert out.tolist() == [20, None, 10]

    def test_string_column(self):
        bat = BAT.from_values(dt.STRING, ["x", "y"], coerce=True)
        out = K.fetch_outer(bat, np.array([-1, 1], dtype=np.int64))
        assert out.tolist() == [None, "y"]

    def test_no_missing_fast_path(self):
        bat = BAT.from_values(dt.FLOAT, [1.0, 2.0])
        out = K.fetch_outer(bat, np.array([0, 1], dtype=np.int64))
        assert out.tolist() == [1.0, 2.0]

    def test_empty_candidates(self):
        bat = BAT.from_values(dt.INT, [1])
        assert K.fetch_outer(bat, np.empty(0, dtype=np.int64)
                             ).tolist() == []


class TestSemiPairs:
    def test_semi(self):
        l = BAT.from_values(dt.INT, [1, 2, 3, 2])
        r = BAT.from_values(dt.INT, [2, 9])
        assert K.semi_pairs(l, r).tolist() == [1, 3]

    def test_anti(self):
        l = BAT.from_values(dt.INT, [1, 2, 3])
        r = BAT.from_values(dt.INT, [2])
        assert K.semi_pairs(l, r, anti=True).tolist() == [0, 2]

    def test_nil_left_never_qualifies(self):
        l = BAT.from_values(dt.INT, [None, 1], coerce=True)
        r = BAT.from_values(dt.INT, [1])
        assert K.semi_pairs(l, r).tolist() == [1]
        assert K.semi_pairs(l, r, anti=True).tolist() == []

    def test_anti_with_nil_right_empties(self):
        l = BAT.from_values(dt.INT, [1, 2])
        r = BAT.from_values(dt.INT, [5, None], coerce=True)
        assert K.semi_pairs(l, r, anti=True).tolist() == []
        # semi is unaffected by the right nil
        assert K.semi_pairs(l, r).tolist() == []

    def test_strings(self):
        l = BAT.from_values(dt.STRING, ["a", "b", None], coerce=True)
        r = BAT.from_values(dt.STRING, ["b"], coerce=True)
        assert K.semi_pairs(l, r).tolist() == [1]

    def test_empty_right_semi_vs_anti(self):
        l = BAT.from_values(dt.INT, [1, 2])
        r = BAT.from_values(dt.INT, [])
        assert K.semi_pairs(l, r).tolist() == []
        assert K.semi_pairs(l, r, anti=True).tolist() == [0, 1]


class TestVarianceMoments:
    def test_matches_statistics(self):
        import statistics

        values = [1.0, 4.0, 9.0, 16.0]
        var = K.variance_from_moments(
            len(values), sum(values), sum(v * v for v in values))
        assert var == pytest.approx(statistics.variance(values))

    def test_below_two_samples(self):
        assert K.variance_from_moments(1, 5.0, 25.0) is None
        assert K.variance_from_moments(0, 0.0, 0.0) is None

    def test_constant_series_clamped_to_zero(self):
        # numerically, sumsq - sum^2/n can dip below zero
        var = K.variance_from_moments(3, 3.0, 3.0000000000000004)
        assert var == 0.0 or var > 0

    def test_grouped_variance_matches_numpy(self):
        rng = np.random.RandomState(3)
        values = rng.uniform(0, 10, 30)
        gids = rng.randint(0, 3, 30)
        bat = BAT.from_array(dt.FLOAT, values)
        out = K.agg_variance(bat, gids.astype(np.int64), 3).tolist()
        for g in range(3):
            member = values[gids == g]
            assert out[g] == pytest.approx(np.var(member, ddof=1))

    def test_stddev_is_sqrt_of_variance(self):
        bat = BAT.from_array(dt.FLOAT, np.array([1.0, 2.0, 3.0]))
        gids = np.zeros(3, dtype=np.int64)
        var = K.agg_variance(bat, gids, 1).tolist()[0]
        sd = K.agg_stddev(bat, gids, 1).tolist()[0]
        assert sd == pytest.approx(var ** 0.5)
