"""Unit tests for incremental plan analysis, partial aggregation and
the cache-and-merge executor."""

import pytest

from repro.core.incremental import (IncrementalExecutor, PartialAggregator,
                                    UnsupportedIncremental,
                                    analyze_incremental)
from repro.mal.relation import Relation
from repro.sql import compile_select
from repro.sql.executor import ExecutionContext
from repro.sql.plan import AggregateNode, JoinNode, StreamScanNode
from repro.storage import Schema


@pytest.fixture
def catalog(emp_catalog):
    emp_catalog.create_stream("s", Schema.parse(
        [("k", "INT"), ("v", "FLOAT")]))
    emp_catalog.create_stream("s2", Schema.parse(
        [("k", "INT"), ("w", "INT")]))
    return emp_catalog


def analyze(catalog, sql):
    return analyze_incremental(compile_select(sql, catalog))


class TestAnalysis:
    def test_spa_query_splits_at_aggregate(self, catalog):
        a = analyze(catalog,
                    "SELECT k, sum(v) FROM s [RANGE 4 SLIDE 2] "
                    "WHERE v > 0 GROUP BY k")
        assert a.kind == "single"
        assert isinstance(a.agg, AggregateNode)
        assert any(isinstance(n, StreamScanNode)
                   for n in [a.pipeline] + a.pipeline.children)

    def test_post_merge_tail_collected(self, catalog):
        a = analyze(catalog,
                    "SELECT k, sum(v) t FROM s [RANGE 4 SLIDE 2] "
                    "GROUP BY k HAVING sum(v) > 1 ORDER BY t LIMIT 3")
        labels = [n.label() for n in a.upper]
        assert any(l.startswith("Limit") for l in labels)
        assert any(l.startswith("Sort") for l in labels)
        assert any(l.startswith("Filter") for l in labels)

    def test_no_aggregate_filters_run_per_slice(self, catalog):
        a = analyze(catalog,
                    "SELECT k, v FROM s [RANGE 4 SLIDE 2] WHERE v > 1")
        assert a.agg is None
        # the filter must have moved into the per-slice pipeline
        assert "Filter" in a.pipeline.pretty()

    def test_stream_table_join_in_pipeline(self, catalog):
        a = analyze(catalog,
                    "SELECT d.city, count(*) FROM s [RANGE 4 SLIDE 2], "
                    "dept d WHERE s.k = d.budget GROUP BY d.city")
        assert a.kind == "single"
        assert isinstance(a.pipeline, JoinNode)

    def test_two_streams_join2(self, catalog):
        a = analyze(catalog,
                    "SELECT a.k FROM s [RANGE 4 SLIDE 2] a, "
                    "s2 [RANGE 4 SLIDE 2] b WHERE a.k = b.k")
        assert a.kind == "join2"
        assert a.left_stream == "s" and a.right_stream == "s2"

    def test_describe_mentions_split(self, catalog):
        a = analyze(catalog,
                    "SELECT k, sum(v) FROM s [RANGE 4 SLIDE 2] GROUP BY k")
        text = a.describe()
        assert "per-slice pipeline" in text
        assert "blocking merge" in text


class TestAnalysisRejections:
    def test_no_stream(self, catalog):
        with pytest.raises(UnsupportedIncremental):
            analyze(catalog, "SELECT id FROM emp")

    def test_missing_window(self, catalog):
        with pytest.raises(UnsupportedIncremental):
            analyze(catalog, "SELECT k FROM s")

    def test_distinct_aggregate(self, catalog):
        with pytest.raises(UnsupportedIncremental):
            analyze(catalog, "SELECT count(DISTINCT k) FROM s [RANGE 4]")

    def test_distinct_without_aggregate_ok(self, catalog):
        a = analyze(catalog, "SELECT DISTINCT k FROM s [RANGE 4 SLIDE 2]")
        assert a.agg is None  # DISTINCT handled post-merge


def rel(rows):
    """Pipeline-output relation (qualified names, as the aggregator
    sees it)."""
    return Relation.from_rows(
        Schema.parse([("s.k", "INT"), ("s.v", "FLOAT")]), rows)


def slice_rel(rows):
    """Raw basket slice (bare column names, as baskets produce)."""
    return Relation.from_rows(
        Schema.parse([("k", "INT"), ("v", "FLOAT")]), rows)


@pytest.fixture
def aggregator(catalog):
    a = analyze(catalog,
                "SELECT k, count(*) c, sum(v) t, avg(v) a, min(v) mn, "
                "max(v) mx FROM s [RANGE 4 SLIDE 2] GROUP BY k")
    return PartialAggregator(a.agg)


class TestPartialAggregator:
    def test_partial_states(self, aggregator):
        partial = aggregator.partial(rel([(1, 2.0), (1, 4.0), (2, None)]))
        assert partial[(1,)] == [2, (6.0, 2), (6.0, 2), 2.0, 4.0]
        assert partial[(2,)] == [1, (0, 0), (0, 0), None, None]

    def test_merge(self, aggregator):
        p1 = aggregator.partial(rel([(1, 2.0)]))
        p2 = aggregator.partial(rel([(1, 10.0), (3, 1.0)]))
        merged = aggregator.merge([p1, p2])
        assert merged[(1,)] == [2, (12.0, 2), (12.0, 2), 2.0, 10.0]
        assert merged[(3,)][0] == 1

    def test_finalize(self, aggregator):
        p = aggregator.partial(rel([(1, 2.0), (1, 4.0)]))
        out = aggregator.finalize(aggregator.merge([p]))
        assert out.to_rows() == [(1, 2, 6.0, 3.0, 2.0, 4.0)]

    def test_finalize_all_nil_group(self, aggregator):
        p = aggregator.partial(rel([(1, None)]))
        out = aggregator.finalize(p)
        assert out.to_rows() == [(1, 1, None, None, None, None)]

    def test_finalize_empty_with_groups_is_empty(self, aggregator):
        out = aggregator.finalize({})
        assert out.row_count == 0
        assert out.names == aggregator.node.schema.names

    def test_scalar_aggregate_empty_window_one_row(self, catalog):
        a = analyze(catalog,
                    "SELECT count(*), sum(v) FROM s [RANGE 4 SLIDE 2]")
        agg = PartialAggregator(a.agg)
        out = agg.finalize(agg.merge([agg.partial(rel([]))]))
        assert out.to_rows() == [(0, None)]

    def test_merge_order_insensitive_totals(self, aggregator):
        p1 = aggregator.partial(rel([(1, 1.0), (2, 2.0)]))
        p2 = aggregator.partial(rel([(2, 5.0)]))
        a = aggregator.finalize(aggregator.merge([p1, p2]))
        b = aggregator.finalize(aggregator.merge([p2, p1]))
        assert sorted(a.to_rows()) == sorted(b.to_rows())


class TestExecutorCaches:
    def make_executor(self, catalog, sql, cache=True):
        analysis = analyze(catalog, sql)
        return IncrementalExecutor(analysis, ExecutionContext(catalog),
                                   cache)

    def test_single_stream_cache_and_fire(self, catalog):
        ex = self.make_executor(
            catalog, "SELECT k, sum(v) FROM s [RANGE 4 SLIDE 2] GROUP BY k")
        ex.process_basic_window("s", 0, slice_rel([(1, 1.0), (1, 2.0)]))
        ex.process_basic_window("s", 1, slice_rel([(1, 4.0)]))
        out = ex.fire({"s": [0, 1]})
        assert out.to_rows() == [(1, 7.0)]
        assert ex.slices_computed == 2

    def test_eviction(self, catalog):
        ex = self.make_executor(
            catalog, "SELECT k, sum(v) FROM s [RANGE 4 SLIDE 2] GROUP BY k")
        ex.process_basic_window("s", 0, slice_rel([(1, 1.0)]))
        ex.process_basic_window("s", 1, slice_rel([(1, 2.0)]))
        assert ex.evict({"s": 1}) == 1
        assert ex.cache_stats()["partials_cached"] == 1

    def test_concat_mode_without_aggregate(self, catalog):
        ex = self.make_executor(
            catalog, "SELECT k, v FROM s [RANGE 4 SLIDE 2] WHERE v > 1")
        ex.process_basic_window("s", 0, slice_rel([(1, 0.5), (2, 3.0)]))
        ex.process_basic_window("s", 1, slice_rel([(3, 9.0)]))
        out = ex.fire({"s": [0, 1]})
        assert out.to_rows() == [(2, 3.0), (3, 9.0)]

    def test_cached_rows_metric(self, catalog):
        ex = self.make_executor(
            catalog, "SELECT k, v FROM s [RANGE 4 SLIDE 2] WHERE v > 1")
        ex.process_basic_window("s", 0, slice_rel([(2, 3.0)]))
        assert ex.cached_intermediate_rows() == 1
