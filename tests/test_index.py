"""Unit tests for secondary indexes over BATs."""

import pytest

from repro.mal.bat import BAT
from repro.storage import types as dt
from repro.storage.index import HashIndex, SortedIndex


@pytest.fixture
def bat():
    return BAT.from_values(dt.INT, [5, 2, 5, None, 9], coerce=True)


class TestHashIndex:
    def test_lookup(self, bat):
        index = HashIndex(bat)
        assert index.lookup(5).tolist() == [0, 2]
        assert index.lookup(9).tolist() == [4]

    def test_lookup_missing(self, bat):
        assert HashIndex(bat).lookup(77).tolist() == []

    def test_nil_not_indexed(self, bat):
        index = HashIndex(bat)
        assert len(index) == 4

    def test_incremental_append(self, bat):
        index = HashIndex(bat)
        bat.extend([5], coerce=True)
        index.on_append(5, 6)
        assert index.lookup(5).tolist() == [0, 2, 5]

    def test_rebuild(self, bat):
        index = HashIndex(bat)
        index.rebuild()
        assert index.lookup(2).tolist() == [1]

    def test_string_index(self):
        bat = BAT.from_values(dt.STRING, ["b", "a", "b"], coerce=True)
        index = HashIndex(bat)
        assert index.lookup("b").tolist() == [0, 2]


class TestSortedIndex:
    def test_lookup(self, bat):
        index = SortedIndex(bat)
        assert index.lookup(5).tolist() == [0, 2]

    def test_range_inclusive(self, bat):
        index = SortedIndex(bat)
        assert index.range(2, 5).tolist() == [0, 1, 2]

    def test_range_exclusive(self, bat):
        index = SortedIndex(bat)
        assert index.range(2, 5, low_inclusive=False,
                           high_inclusive=False).tolist() == []
        assert index.range(2, 9, high_inclusive=False).tolist() == \
            [0, 1, 2]

    def test_range_open_ended(self, bat):
        index = SortedIndex(bat)
        assert index.range(None, 5).tolist() == [0, 1, 2]
        assert index.range(6, None).tolist() == [4]

    def test_lazily_refreshed_after_append(self, bat):
        index = SortedIndex(bat)
        bat.extend([3], coerce=True)
        index.on_append(5, 6)
        assert index.range(3, 3).tolist() == [5]

    def test_nil_excluded(self, bat):
        index = SortedIndex(bat)
        assert len(index) == 4

    def test_string_sorted(self):
        bat = BAT.from_values(dt.STRING, ["pear", "fig", None, "apple"],
                              coerce=True)
        index = SortedIndex(bat)
        assert index.range("apple", "fig").tolist() == [1, 3]
