"""Optimizer soundness: rewritten plans return the same rows.

Every corpus query runs twice through the tree executor — optimized and
unoptimized — and through the MAL interpreter on the optimized plan.
Any rule that changes results fails here.
"""

import pytest

from repro.sql import compile_select
from repro.sql.executor import ExecutionContext, PlanExecutor
from tests.test_mal import QUERY_CORPUS

EXTRA = [
    # pushdown around a LEFT JOIN must not filter the preserved side
    "SELECT e.id FROM emp e LEFT JOIN dept d ON e.dept = d.name "
    "WHERE d.budget > 600 ORDER BY e.id",
    "SELECT e.id FROM emp e LEFT JOIN dept d ON e.dept = d.name "
    "WHERE e.salary > 120 ORDER BY e.id",
    # join-key extraction from a comma join + extra residual
    "SELECT e.id FROM emp e, dept d WHERE e.dept = d.name "
    "AND e.id > d.budget / 1000 ORDER BY e.id",
    # constant folding inside every clause
    "SELECT id + (2 * 3) FROM emp WHERE salary > 25 * 4 "
    "ORDER BY id LIMIT 3",
    # pruning with expressions over several columns
    "SELECT id * salary FROM emp WHERE dept LIKE 'a%' OR id IN (5)",
]


@pytest.mark.parametrize("sql", QUERY_CORPUS + EXTRA)
def test_optimizer_preserves_results(emp_catalog, sql):
    optimized = compile_select(sql, emp_catalog, optimize=True)
    raw = compile_select(sql, emp_catalog, optimize=False)
    opt_rows = PlanExecutor(
        ExecutionContext(emp_catalog)).execute(optimized).to_rows()
    raw_rows = PlanExecutor(
        ExecutionContext(emp_catalog)).execute(raw).to_rows()
    assert opt_rows == raw_rows


@pytest.mark.parametrize("sql", QUERY_CORPUS[:8])
def test_optimizer_idempotent(emp_catalog, sql):
    """Optimizing an already-optimized plan changes nothing."""
    from repro.sql.optimizer import Optimizer

    plan = compile_select(sql, emp_catalog, optimize=True)
    before = plan.pretty()
    again = Optimizer().optimize(plan)
    assert again.pretty() == before


def test_indexes_do_not_change_results(emp_catalog):
    queries = [
        "SELECT id FROM emp WHERE id >= 3 ORDER BY id",
        "SELECT e.id, d.city FROM emp e, dept d "
        "WHERE e.dept = d.name ORDER BY e.id",
        "SELECT id FROM emp WHERE dept = 'b' AND salary > 60",
    ]
    plain = [PlanExecutor(ExecutionContext(emp_catalog)).execute(
        compile_select(q, emp_catalog)).to_rows() for q in queries]
    emp_catalog.table("emp").create_index("id", "sorted")
    emp_catalog.table("emp").create_index("dept", "hash")
    emp_catalog.table("dept").create_index("name", "hash")
    indexed = [PlanExecutor(ExecutionContext(emp_catalog)).execute(
        compile_select(q, emp_catalog)).to_rows() for q in queries]
    assert plain == indexed
