"""Unit tests for schemas and persistent tables."""

import numpy as np
import pytest

from repro.errors import CatalogError, KernelError
from repro.mal.relation import Relation
from repro.storage import types as dt
from repro.storage.schema import ColumnDef, Schema
from repro.storage.table import Table


class TestSchema:
    def test_of(self):
        schema = Schema.of(("a", dt.INT), ("b", dt.STRING))
        assert schema.names == ["a", "b"]

    def test_parse(self):
        schema = Schema.parse([("a", "integer"), ("b", "varchar")])
        assert schema.types == [dt.INT, dt.STRING]

    def test_duplicate_rejected(self):
        with pytest.raises(CatalogError):
            Schema.of(("a", dt.INT), ("A", dt.INT))

    def test_lookup(self):
        schema = Schema.of(("a", dt.INT))
        assert schema.has("A")
        assert schema.index_of("a") == 0
        assert schema.type_of("a") is dt.INT

    def test_unknown_column(self):
        schema = Schema.of(("a", dt.INT))
        with pytest.raises(CatalogError):
            schema.index_of("b")

    def test_rename(self):
        schema = Schema.of(("a", dt.INT)).rename(["z"])
        assert schema.names == ["z"]
        assert schema.types == [dt.INT]

    def test_rename_wrong_count(self):
        with pytest.raises(CatalogError):
            Schema.of(("a", dt.INT)).rename(["x", "y"])

    def test_empty_column_name_rejected(self):
        with pytest.raises(CatalogError):
            ColumnDef("", dt.INT)

    def test_equality(self):
        assert Schema.of(("a", dt.INT)) == Schema.of(("a", dt.INT))
        assert Schema.of(("a", dt.INT)) != Schema.of(("a", dt.FLOAT))


@pytest.fixture
def table():
    t = Table("t", Schema.parse([("a", "INT"), ("s", "STRING")]))
    t.insert_rows([(1, "x"), (2, "y"), (3, None)])
    return t


class TestTable:
    def test_len(self, table):
        assert len(table) == 3 and table.row_count == 3

    def test_insert_row(self, table):
        table.insert_row((4, "w"))
        assert table.to_rows()[-1] == (4, "w")

    def test_insert_wrong_width(self, table):
        with pytest.raises(CatalogError):
            table.insert_row((1,))

    def test_insert_coerces(self, table):
        table.insert_row((4.0, None))
        assert table.to_rows()[-1] == (4, None)

    def test_unknown_column(self, table):
        with pytest.raises(CatalogError):
            table.column("zz")

    def test_scan_shares_columns(self, table):
        rel = table.scan()
        assert rel.to_rows() == table.to_rows()

    def test_insert_relation(self, table):
        rel = Relation.from_rows(table.schema, [(9, "q")])
        table.insert_relation(rel)
        assert table.to_rows()[-1] == (9, "q")

    def test_insert_relation_type_mismatch(self, table):
        bad = Relation.from_rows(
            Schema.parse([("a", "FLOAT"), ("s", "STRING")]), [(1.5, "x")])
        with pytest.raises(KernelError):
            table.insert_relation(bad)

    def test_delete_positions(self, table):
        deleted = table.delete_positions(np.array([0, 2], dtype=np.int64))
        assert deleted == 2
        assert table.to_rows() == [(2, "y")]

    def test_delete_empty(self, table):
        assert table.delete_positions(np.array([], dtype=np.int64)) == 0

    def test_truncate(self, table):
        table.truncate()
        assert len(table) == 0
        table.insert_row((1, "a"))
        assert len(table) == 1


class TestTableIndexes:
    def test_create_duplicate_index(self, table):
        table.create_index("a")
        with pytest.raises(CatalogError):
            table.create_index("a")

    def test_unknown_kind(self, table):
        with pytest.raises(CatalogError):
            table.create_index("a", "btree")

    def test_hash_lookup(self, table):
        table.create_index("a", "hash")
        assert table.index_lookup("a", 2).tolist() == [1]

    def test_lookup_without_index(self, table):
        assert table.index_lookup("a", 2) is None

    def test_index_maintained_on_insert(self, table):
        table.create_index("a", "hash")
        table.insert_row((2, "dup"))
        assert table.index_lookup("a", 2).tolist() == [1, 3]

    def test_index_rebuilt_on_delete(self, table):
        table.create_index("a", "hash")
        table.delete_positions(np.array([0], dtype=np.int64))
        assert table.index_lookup("a", 2).tolist() == [0]

    def test_sorted_range(self, table):
        table.create_index("a", "sorted")
        assert table.index_range("a", 2, None).tolist() == [1, 2]

    def test_range_needs_sorted(self, table):
        table.create_index("a", "hash")
        assert table.index_range("a", 1, 2) is None

    def test_drop_index(self, table):
        table.create_index("a")
        table.drop_index("a")
        assert table.index_lookup("a", 1) is None
