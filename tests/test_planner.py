"""Unit tests for logical plan construction."""

import pytest

from repro.errors import BindError, CatalogError
from repro.sql.parser import parse
from repro.sql.plan import (AggregateNode, DistinctNode, FilterNode,
                            JoinNode, LimitNode, ProjectNode, ScanNode,
                            SortNode, find_stream_scans, walk_plan)
from repro.sql.planner import Planner
from repro.storage import Schema


@pytest.fixture
def catalog(emp_catalog):
    emp_catalog.create_stream("s", Schema.parse(
        [("k", "INT"), ("v", "FLOAT")]))
    return emp_catalog


def plan(catalog, sql):
    return Planner(catalog).plan_select(parse(sql))


class TestShapes:
    def test_simple_select(self, catalog):
        root = plan(catalog, "SELECT id FROM emp")
        assert isinstance(root, ProjectNode)
        assert isinstance(root.child, ScanNode)

    def test_where_filter(self, catalog):
        root = plan(catalog, "SELECT id FROM emp WHERE salary > 1")
        assert isinstance(root.child, FilterNode)

    def test_order_below_project(self, catalog):
        root = plan(catalog, "SELECT id FROM emp ORDER BY salary")
        assert isinstance(root, ProjectNode)
        assert isinstance(root.child, SortNode)

    def test_limit_on_top(self, catalog):
        root = plan(catalog, "SELECT id FROM emp LIMIT 3")
        assert isinstance(root, LimitNode)
        assert root.limit == 3

    def test_distinct_above_project(self, catalog):
        root = plan(catalog, "SELECT DISTINCT dept FROM emp")
        assert isinstance(root, DistinctNode)
        assert isinstance(root.child, ProjectNode)

    def test_aggregate_node(self, catalog):
        root = plan(catalog,
                    "SELECT dept, count(*) FROM emp GROUP BY dept")
        aggs = [n for n in walk_plan(root)
                if isinstance(n, AggregateNode)]
        assert len(aggs) == 1
        assert aggs[0].group_names == ["emp.dept"]

    def test_having_filter_above_aggregate(self, catalog):
        root = plan(catalog, "SELECT dept FROM emp GROUP BY dept "
                             "HAVING count(*) > 1")
        filt = root.child
        assert isinstance(filt, FilterNode)
        assert isinstance(filt.child, AggregateNode)

    def test_having_without_group_rejected(self, catalog):
        with pytest.raises(BindError):
            plan(catalog, "SELECT id FROM emp HAVING id > 1")

    def test_scalar_aggregate_no_groups(self, catalog):
        root = plan(catalog, "SELECT sum(salary) FROM emp")
        agg = root.child
        assert isinstance(agg, AggregateNode) and not agg.group_exprs


class TestJoins:
    def test_explicit_on_becomes_key(self, catalog):
        root = plan(catalog, "SELECT e.id FROM emp e JOIN dept d "
                             "ON e.dept = d.name")
        join = [n for n in walk_plan(root) if isinstance(n, JoinNode)][0]
        assert join.left_key is not None
        assert join.left_key.sql() == "e.dept"

    def test_comma_join_is_cross_before_optimizer(self, catalog):
        root = plan(catalog, "SELECT e.id FROM emp e, dept d "
                             "WHERE e.dept = d.name")
        join = [n for n in walk_plan(root) if isinstance(n, JoinNode)][0]
        assert join.left_key is None

    def test_on_with_extra_condition(self, catalog):
        root = plan(catalog, "SELECT e.id FROM emp e JOIN dept d "
                             "ON e.dept = d.name AND d.budget > 100")
        join = [n for n in walk_plan(root) if isinstance(n, JoinNode)][0]
        assert join.left_key is not None
        assert join.residual is not None

    def test_three_way_join(self, catalog):
        root = plan(catalog,
                    "SELECT e.id FROM emp e JOIN dept d "
                    "ON e.dept = d.name JOIN dept d2 "
                    "ON d.city = d2.city")
        joins = [n for n in walk_plan(root) if isinstance(n, JoinNode)]
        assert len(joins) == 2


class TestStarAndNames:
    def test_star_expansion(self, catalog):
        root = plan(catalog, "SELECT * FROM emp")
        assert root.schema.names == ["id", "dept", "salary"]

    def test_star_multi_table(self, catalog):
        root = plan(catalog, "SELECT * FROM emp e, dept d")
        assert len(root.schema.names) == 6

    def test_duplicate_names_deduped(self, catalog):
        root = plan(catalog, "SELECT id, id FROM emp")
        names = root.schema.names
        assert len(set(names)) == 2

    def test_expression_names(self, catalog):
        root = plan(catalog, "SELECT id + 1 FROM emp")
        assert root.schema.names[0].startswith("col")


class TestGroupByValidation:
    def test_naked_column_rejected(self, catalog):
        with pytest.raises(BindError, match="GROUP BY"):
            plan(catalog, "SELECT id, count(*) FROM emp GROUP BY dept")

    def test_group_expr_allowed_in_select(self, catalog):
        root = plan(catalog,
                    "SELECT salary * 2, count(*) FROM emp "
                    "GROUP BY salary * 2")
        assert isinstance(root, ProjectNode)

    def test_having_column_validated(self, catalog):
        with pytest.raises(BindError, match="HAVING"):
            plan(catalog, "SELECT dept FROM emp GROUP BY dept "
                          "HAVING salary > 1")

    def test_duplicate_group_expr(self, catalog):
        with pytest.raises(BindError, match="duplicate"):
            plan(catalog, "SELECT dept FROM emp GROUP BY dept, dept")


class TestOrderBy:
    def test_order_by_alias(self, catalog):
        root = plan(catalog, "SELECT salary AS pay FROM emp ORDER BY pay")
        sort = root.child
        assert isinstance(sort, SortNode)
        assert sort.keys[0][0].sql() == "emp.salary"

    def test_order_by_position(self, catalog):
        root = plan(catalog, "SELECT dept, salary FROM emp ORDER BY 2")
        assert root.child.keys[0][0].sql() == "emp.salary"

    def test_order_by_position_out_of_range(self, catalog):
        with pytest.raises(BindError):
            plan(catalog, "SELECT dept FROM emp ORDER BY 5")

    def test_order_by_aggregate(self, catalog):
        root = plan(catalog, "SELECT dept FROM emp GROUP BY dept "
                             "ORDER BY count(*) DESC")
        sort = root.child
        assert isinstance(sort, SortNode)
        assert sort.keys[0][1] is True


class TestStreams:
    def test_stream_scan_node(self, catalog):
        root = plan(catalog, "SELECT k FROM s [RANGE 10 SLIDE 5]")
        scans = find_stream_scans(root)
        assert len(scans) == 1
        assert scans[0].window.size == 10

    def test_window_on_table_rejected(self, catalog):
        with pytest.raises(BindError):
            plan(catalog, "SELECT id FROM emp [RANGE 10]")

    def test_unknown_source(self, catalog):
        with pytest.raises(CatalogError):
            plan(catalog, "SELECT x FROM nothere")

    def test_stream_table_mix(self, catalog):
        root = plan(catalog, "SELECT s.k FROM s [RANGE 10], dept d "
                             "WHERE s.k = d.budget")
        assert len(find_stream_scans(root)) == 1
