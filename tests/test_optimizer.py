"""Unit tests for the optimizer rules."""

import pytest

from repro.sql.expressions import BoundLiteral
from repro.sql.optimizer import Optimizer
from repro.sql.optimizer.rules import (extract_join_keys, fold_constants,
                                       prune_columns, push_down_filters)
from repro.sql.parser import parse
from repro.sql.plan import (FilterNode, JoinNode, ScanNode,
                            walk_plan)
from repro.sql.planner import Planner
from repro.storage import Schema


@pytest.fixture
def catalog(emp_catalog):
    emp_catalog.create_stream("s", Schema.parse(
        [("k", "INT"), ("v", "FLOAT")]))
    return emp_catalog


def raw_plan(catalog, sql):
    return Planner(catalog).plan_select(parse(sql))


class TestConstantFolding:
    def test_fold_arithmetic(self, catalog):
        plan = raw_plan(catalog, "SELECT id + (1 + 2) FROM emp")
        plan = fold_constants(plan)
        project = plan
        assert "3" in project.exprs[0].sql()

    def test_fold_whole_constant_expr(self, catalog):
        plan = raw_plan(catalog, "SELECT 2 * 21 FROM emp")
        plan = fold_constants(plan)
        expr = plan.exprs[0]
        assert isinstance(expr, BoundLiteral) and expr.value == 42

    def test_fold_in_filter(self, catalog):
        plan = raw_plan(catalog,
                        "SELECT id FROM emp WHERE salary > 10 * 10")
        plan = fold_constants(plan)
        filt = [n for n in walk_plan(plan)
                if isinstance(n, FilterNode)][0]
        assert "100" in filt.predicate.sql()

    def test_fold_division_by_zero_to_null(self, catalog):
        plan = raw_plan(catalog, "SELECT 1 / 0 FROM emp")
        plan = fold_constants(plan)
        assert plan.exprs[0].value is None

    def test_aggregates_never_folded(self, catalog):
        plan = raw_plan(catalog, "SELECT count(*) FROM emp")
        fold_constants(plan)  # must not blow up on BoundAgg


class TestFilterPushdown:
    def test_single_side_conjunct_moves_below_join(self, catalog):
        plan = raw_plan(catalog,
                        "SELECT e.id FROM emp e, dept d "
                        "WHERE e.dept = d.name AND e.salary > 100")
        plan = push_down_filters(plan)
        join = [n for n in walk_plan(plan) if isinstance(n, JoinNode)][0]
        left_filters = [n for n in walk_plan(join.left)
                        if isinstance(n, FilterNode)]
        assert any("e.salary" in f.predicate.sql() for f in left_filters)

    def test_cross_side_conjunct_joins_residual(self, catalog):
        plan = raw_plan(catalog,
                        "SELECT e.id FROM emp e, dept d "
                        "WHERE e.dept = d.name")
        plan = push_down_filters(plan)
        join = [n for n in walk_plan(plan) if isinstance(n, JoinNode)][0]
        assert join.residual is not None
        # the filter above the join disappeared entirely
        assert not isinstance(plan.child, FilterNode) or \
            "dept" not in plan.child.predicate.sql()

    def test_filter_above_single_scan_untouched(self, catalog):
        plan = raw_plan(catalog, "SELECT id FROM emp WHERE salary > 1")
        plan = push_down_filters(plan)
        assert isinstance(plan.child, FilterNode)


class TestJoinKeyExtraction:
    def test_residual_equality_promoted(self, catalog):
        plan = raw_plan(catalog,
                        "SELECT e.id FROM emp e, dept d "
                        "WHERE e.dept = d.name")
        plan = push_down_filters(plan)
        plan = extract_join_keys(plan)
        join = [n for n in walk_plan(plan) if isinstance(n, JoinNode)][0]
        assert join.left_key is not None
        assert join.residual is None

    def test_extra_conditions_stay_residual(self, catalog):
        plan = raw_plan(catalog,
                        "SELECT e.id FROM emp e, dept d "
                        "WHERE e.dept = d.name AND e.id > d.budget")
        plan = push_down_filters(plan)
        plan = extract_join_keys(plan)
        join = [n for n in walk_plan(plan) if isinstance(n, JoinNode)][0]
        assert join.left_key is not None
        assert join.residual is not None

    def test_existing_key_not_replaced(self, catalog):
        plan = raw_plan(catalog,
                        "SELECT e.id FROM emp e JOIN dept d "
                        "ON e.dept = d.name")
        join_before = [n for n in walk_plan(plan)
                       if isinstance(n, JoinNode)][0]
        key_before = join_before.left_key
        extract_join_keys(plan)
        assert join_before.left_key is key_before


class TestColumnPruning:
    def test_scan_needed_columns(self, catalog):
        plan = raw_plan(catalog, "SELECT id FROM emp WHERE salary > 1")
        plan = prune_columns(plan)
        scan = [n for n in walk_plan(plan) if isinstance(n, ScanNode)][0]
        assert sorted(scan.needed) == ["emp.id", "emp.salary"]

    def test_join_keys_counted(self, catalog):
        plan = raw_plan(catalog,
                        "SELECT e.id FROM emp e JOIN dept d "
                        "ON e.dept = d.name")
        plan = prune_columns(plan)
        escan = [n for n in walk_plan(plan) if isinstance(n, ScanNode)
                 and n.alias == "e"][0]
        assert "e.dept" in escan.needed

    def test_aggregate_args_counted(self, catalog):
        plan = raw_plan(catalog,
                        "SELECT dept, sum(salary) FROM emp GROUP BY dept")
        plan = prune_columns(plan)
        scan = [n for n in walk_plan(plan) if isinstance(n, ScanNode)][0]
        assert sorted(scan.needed) == ["emp.dept", "emp.salary"]

    def test_star_keeps_all(self, catalog):
        plan = raw_plan(catalog, "SELECT * FROM emp")
        plan = prune_columns(plan)
        scan = [n for n in walk_plan(plan) if isinstance(n, ScanNode)][0]
        assert len(scan.needed) == 3


class TestPipeline:
    def test_default_rules_applied_in_order(self, catalog):
        opt = Optimizer()
        opt.optimize(raw_plan(catalog, "SELECT id FROM emp"))
        assert opt.applied == ["fold_constants", "push_down_filters",
                               "extract_join_keys", "prune_columns"]

    def test_custom_rules(self, catalog):
        opt = Optimizer(rules=[fold_constants])
        opt.optimize(raw_plan(catalog, "SELECT id FROM emp"))
        assert opt.applied == ["fold_constants"]

    def test_optimized_plan_still_executes(self, catalog):
        from repro.sql.executor import ExecutionContext, PlanExecutor

        plan = Optimizer().optimize(raw_plan(
            catalog, "SELECT e.id FROM emp e, dept d "
                     "WHERE e.dept = d.name AND e.salary >= 100 "
                     "ORDER BY e.id"))
        rows = PlanExecutor(ExecutionContext(catalog)).execute(plan)
        assert rows.to_rows() == [(1,), (2,), (5,)]
