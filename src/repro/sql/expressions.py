"""Bound (typed) expression trees and their vectorized evaluator.

The binder turns parser AST expressions into these nodes. Every node
knows its :class:`~repro.storage.types.DataType` and evaluates over a
:class:`~repro.mal.relation.Relation` to a whole column (BAT) — this is
the bulk-processing model: expressions never see single tuples.

Boolean-valued nodes produce MonetDB-style three-valued BOOLEAN columns
(1 true / 0 false / -1 unknown); predicates keep rows whose value is 1.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import BindError, KernelError
from repro.mal import kernel
from repro.mal.bat import BAT
from repro.mal.relation import Relation
from repro.storage import types as dt


class BoundExpr:
    """Base class: typed, evaluable, inspectable expression node."""

    dtype: dt.DataType

    def evaluate(self, rel: Relation) -> BAT:
        raise NotImplementedError

    def children(self) -> Sequence["BoundExpr"]:
        return ()

    def walk(self):
        """Yield this node and all descendants (pre-order)."""
        yield self
        for child in self.children():
            yield from child.walk()

    def column_keys(self) -> List[str]:
        """All column keys referenced anywhere below this node."""
        return [n.key for n in self.walk() if isinstance(n, BoundColumn)]

    def const_value(self):
        """Python value when this subtree is a constant, else raises."""
        raise BindError("expression is not constant")

    def is_constant(self) -> bool:
        try:
            self.const_value()
            return True
        except BindError:
            return False

    def sql(self) -> str:
        """Approximate SQL rendering (for plan printing)."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.sql()}: {self.dtype.name})"


class BoundColumn(BoundExpr):
    """Reference to a column of the input relation by qualified key."""

    def __init__(self, key: str, dtype: dt.DataType):
        self.key = key.lower()
        self.dtype = dtype

    def evaluate(self, rel: Relation) -> BAT:
        return rel.column(self.key)

    def sql(self) -> str:
        return self.key


class BoundLiteral(BoundExpr):
    def __init__(self, value, dtype: dt.DataType):
        self.value = None if value is None else dt.coerce_value(dtype, value)
        self.value = dt.from_storage(dtype, self.value) \
            if self.value is not None else None
        self.dtype = dtype

    def evaluate(self, rel: Relation) -> BAT:
        return kernel.const_column(self.dtype, self.value, rel.row_count)

    def const_value(self):
        return self.value

    def sql(self) -> str:
        if self.value is None:
            return "NULL"
        if self.dtype.is_string:
            return "'" + str(self.value).replace("'", "''") + "'"
        return str(self.value)


class BoundArith(BoundExpr):
    """`+ - * / %` and string `||` (mapped to +)."""

    def __init__(self, op: str, left: BoundExpr, right: BoundExpr):
        self.op = op
        self.left = left
        self.right = right
        if op == "||":
            self.dtype = dt.STRING
        elif op == "/":
            self.dtype = dt.FLOAT
        elif left.dtype.is_string or right.dtype.is_string:
            if op == "+":
                self.dtype = dt.STRING
            else:
                raise BindError(f"arithmetic {op!r} over strings")
        else:
            self.dtype = dt.common_type(left.dtype, right.dtype)

    def children(self):
        return (self.left, self.right)

    def evaluate(self, rel: Relation) -> BAT:
        lhs = self.left.evaluate(rel)
        rhs = self.right.evaluate(rel)
        op = "+" if self.op == "||" else self.op
        if self.op == "||":
            lhs = kernel.calc_cast(lhs, dt.STRING)
            rhs = kernel.calc_cast(rhs, dt.STRING)
        return kernel.calc_arith(op, lhs, rhs)

    def const_value(self):
        lv = self.left.const_value()
        rv = self.right.const_value()
        if lv is None or rv is None:
            return None
        if self.op in ("||", "+") and self.dtype.is_string:
            return str(lv) + str(rv)
        if self.op == "+":
            return lv + rv
        if self.op == "-":
            return lv - rv
        if self.op == "*":
            return lv * rv
        if self.op == "/":
            if rv == 0:
                return None
            return lv / rv
        if self.op == "%":
            if rv == 0:
                return None
            return lv % rv
        raise BindError(f"cannot fold {self.op!r}")

    def sql(self) -> str:
        return f"({self.left.sql()} {self.op} {self.right.sql()})"


class BoundNeg(BoundExpr):
    def __init__(self, operand: BoundExpr):
        if not operand.dtype.is_numeric:
            raise BindError("unary minus over non-numeric expression")
        self.operand = operand
        self.dtype = operand.dtype

    def children(self):
        return (self.operand,)

    def evaluate(self, rel: Relation) -> BAT:
        return kernel.calc_neg(self.operand.evaluate(rel))

    def const_value(self):
        v = self.operand.const_value()
        return None if v is None else -v

    def sql(self) -> str:
        return f"(-{self.operand.sql()})"


class BoundCompare(BoundExpr):
    def __init__(self, op: str, left: BoundExpr, right: BoundExpr):
        if left.dtype.is_string != right.dtype.is_string:
            raise BindError(
                f"cannot compare {left.dtype.name} with {right.dtype.name}")
        self.op = op
        self.left = left
        self.right = right
        self.dtype = dt.BOOLEAN

    def children(self):
        return (self.left, self.right)

    def evaluate(self, rel: Relation) -> BAT:
        return kernel.calc_cmp(self.op, self.left.evaluate(rel),
                               self.right.evaluate(rel))

    def sql(self) -> str:
        op = {"==": "="}.get(self.op, self.op)
        return f"({self.left.sql()} {op} {self.right.sql()})"


class BoundLogical(BoundExpr):
    def __init__(self, op: str, left: BoundExpr, right: BoundExpr):
        self.op = op  # "and" | "or"
        self.left = left
        self.right = right
        self.dtype = dt.BOOLEAN

    def children(self):
        return (self.left, self.right)

    def evaluate(self, rel: Relation) -> BAT:
        lhs = self.left.evaluate(rel)
        rhs = self.right.evaluate(rel)
        if self.op == "and":
            return kernel.calc_and(lhs, rhs)
        return kernel.calc_or(lhs, rhs)

    def sql(self) -> str:
        return f"({self.left.sql()} {self.op.upper()} {self.right.sql()})"


class BoundNot(BoundExpr):
    def __init__(self, operand: BoundExpr):
        self.operand = operand
        self.dtype = dt.BOOLEAN

    def children(self):
        return (self.operand,)

    def evaluate(self, rel: Relation) -> BAT:
        return kernel.calc_not(self.operand.evaluate(rel))

    def sql(self) -> str:
        return f"(NOT {self.operand.sql()})"


class BoundIsNull(BoundExpr):
    def __init__(self, operand: BoundExpr, negated: bool = False):
        self.operand = operand
        self.negated = negated
        self.dtype = dt.BOOLEAN

    def children(self):
        return (self.operand,)

    def evaluate(self, rel: Relation) -> BAT:
        result = kernel.calc_isnil(self.operand.evaluate(rel))
        if self.negated:
            result = kernel.calc_not(result)
        return result

    def sql(self) -> str:
        tail = "IS NOT NULL" if self.negated else "IS NULL"
        return f"({self.operand.sql()} {tail})"


class BoundInList(BoundExpr):
    """SQL IN over a list of constants, with NULL-correct semantics."""

    def __init__(self, operand: BoundExpr, values: Sequence,
                 negated: bool = False):
        self.operand = operand
        self.values = list(values)  # Python constants; may include None
        self.negated = negated
        self.dtype = dt.BOOLEAN

    def children(self):
        return (self.operand,)

    def evaluate(self, rel: Relation) -> BAT:
        col = self.operand.evaluate(rel)
        nil = col.nil_mask()
        needles = [v for v in self.values if v is not None]
        has_null_item = any(v is None for v in self.values)
        hit_pos = kernel.in_select(col, needles) if needles else \
            np.empty(0, dtype=np.int64)
        out = np.zeros(len(col), dtype=np.int8)
        out[hit_pos] = 1
        # x IN (..., NULL): a non-match is UNKNOWN, not FALSE
        if has_null_item:
            out[(out == 0)] = -1
        out[nil] = -1
        result = BAT.from_array(dt.BOOLEAN, out)
        if self.negated:
            result = kernel.calc_not(result)
        return result

    def sql(self) -> str:
        items = ", ".join("NULL" if v is None else repr(v)
                          for v in self.values)
        word = "NOT IN" if self.negated else "IN"
        return f"({self.operand.sql()} {word} ({items}))"


class BoundLike(BoundExpr):
    def __init__(self, operand: BoundExpr, pattern: str,
                 negated: bool = False):
        if not operand.dtype.is_string:
            raise BindError("LIKE over non-string expression")
        self.operand = operand
        self.pattern = pattern
        self.negated = negated
        self.dtype = dt.BOOLEAN
        self._regex = kernel.like_to_regex(pattern)

    def children(self):
        return (self.operand,)

    def evaluate(self, rel: Relation) -> BAT:
        col = self.operand.evaluate(rel)
        out = np.empty(len(col), dtype=np.int8)
        for i, v in enumerate(col.values):
            if v is None:
                out[i] = -1
            else:
                out[i] = 1 if self._regex.match(v) else 0
        result = BAT.from_array(dt.BOOLEAN, out)
        if self.negated:
            result = kernel.calc_not(result)
        return result

    def sql(self) -> str:
        word = "NOT LIKE" if self.negated else "LIKE"
        return f"({self.operand.sql()} {word} '{self.pattern}')"


class BoundCase(BoundExpr):
    def __init__(self, whens: Sequence[Tuple[BoundExpr, BoundExpr]],
                 else_: Optional[BoundExpr], dtype: dt.DataType):
        self.whens = list(whens)
        self.else_ = else_
        self.dtype = dtype

    def children(self):
        out = []
        for cond, value in self.whens:
            out.extend((cond, value))
        if self.else_ is not None:
            out.append(self.else_)
        return out

    def evaluate(self, rel: Relation) -> BAT:
        n = rel.row_count
        decided = np.zeros(n, dtype=bool)
        result = kernel.const_column(self.dtype, None, n)
        values = result.values
        for cond, value in self.whens:
            mask = cond.evaluate(rel).values == 1
            take = mask & ~decided
            if take.any():
                branch = value.evaluate(rel)
                if branch.dtype != self.dtype:
                    branch = kernel.calc_cast(branch, self.dtype)
                values[take] = branch.values[take]
                decided |= take
        if self.else_ is not None and not decided.all():
            branch = self.else_.evaluate(rel)
            if branch.dtype != self.dtype:
                branch = kernel.calc_cast(branch, self.dtype)
            rest = ~decided
            values[rest] = branch.values[rest]
        return result

    def sql(self) -> str:
        parts = ["CASE"]
        for cond, value in self.whens:
            parts.append(f"WHEN {cond.sql()} THEN {value.sql()}")
        if self.else_ is not None:
            parts.append(f"ELSE {self.else_.sql()}")
        parts.append("END")
        return " ".join(parts)


class BoundCast(BoundExpr):
    def __init__(self, operand: BoundExpr, dtype: dt.DataType):
        self.operand = operand
        self.dtype = dtype

    def children(self):
        return (self.operand,)

    def evaluate(self, rel: Relation) -> BAT:
        return kernel.calc_cast(self.operand.evaluate(rel), self.dtype)

    def const_value(self):
        v = self.operand.const_value()
        if v is None:
            return None
        return dt.from_storage(self.dtype, dt.coerce_value(self.dtype, v))

    def sql(self) -> str:
        return f"CAST({self.operand.sql()} AS {self.dtype.name})"


class BoundFunc(BoundExpr):
    def __init__(self, name: str, args: Sequence[BoundExpr],
                 dtype: dt.DataType, impl: Callable[..., BAT]):
        self.name = name
        self.args = list(args)
        self.dtype = dtype
        self.impl = impl

    def children(self):
        return self.args

    def evaluate(self, rel: Relation) -> BAT:
        return self.impl(*[a.evaluate(rel) for a in self.args])

    def sql(self) -> str:
        return f"{self.name}({', '.join(a.sql() for a in self.args)})"


class BoundAgg(BoundExpr):
    """An aggregate call placeholder.

    Never evaluated directly: the Aggregate plan node computes it via the
    kernel and exposes the result as an output column; expressions above
    the aggregation refer to that column through a :class:`BoundColumn`.
    """

    def __init__(self, op: str, arg: Optional[BoundExpr],
                 distinct: bool = False):
        self.op = op.lower()
        self.arg = arg
        self.distinct = distinct
        self.dtype = _agg_type(self.op, arg)

    def children(self):
        return (self.arg,) if self.arg is not None else ()

    def evaluate(self, rel: Relation) -> BAT:
        raise KernelError(
            "aggregate evaluated outside an Aggregate plan node")

    def sql(self) -> str:
        inner = "*" if self.arg is None else self.arg.sql()
        if self.distinct:
            inner = "DISTINCT " + inner
        return f"{self.op.upper()}({inner})"


def _agg_type(op: str, arg: Optional[BoundExpr]) -> dt.DataType:
    from repro.sql.functions import aggregate_result_type
    return aggregate_result_type(op, arg.dtype if arg is not None else None)


def contains_aggregate(expr: BoundExpr) -> bool:
    return any(isinstance(node, BoundAgg) for node in expr.walk())


def collect_aggregates(expr: BoundExpr) -> List[BoundAgg]:
    return [node for node in expr.walk() if isinstance(node, BoundAgg)]


def replace_nodes(expr: BoundExpr, mapping) -> BoundExpr:
    """Return a copy of *expr* with nodes substituted via *mapping*.

    *mapping* is ``fn(node) -> replacement or None``; children of replaced
    nodes are not revisited.
    """
    replacement = mapping(expr)
    if replacement is not None:
        return replacement
    if isinstance(expr, BoundArith):
        return BoundArith(expr.op, replace_nodes(expr.left, mapping),
                          replace_nodes(expr.right, mapping))
    if isinstance(expr, BoundNeg):
        return BoundNeg(replace_nodes(expr.operand, mapping))
    if isinstance(expr, BoundCompare):
        return BoundCompare(expr.op, replace_nodes(expr.left, mapping),
                            replace_nodes(expr.right, mapping))
    if isinstance(expr, BoundLogical):
        return BoundLogical(expr.op, replace_nodes(expr.left, mapping),
                            replace_nodes(expr.right, mapping))
    if isinstance(expr, BoundNot):
        return BoundNot(replace_nodes(expr.operand, mapping))
    if isinstance(expr, BoundIsNull):
        return BoundIsNull(replace_nodes(expr.operand, mapping),
                           expr.negated)
    if isinstance(expr, BoundInList):
        return BoundInList(replace_nodes(expr.operand, mapping),
                           expr.values, expr.negated)
    if isinstance(expr, BoundLike):
        return BoundLike(replace_nodes(expr.operand, mapping),
                         expr.pattern, expr.negated)
    if isinstance(expr, BoundCase):
        whens = [(replace_nodes(c, mapping), replace_nodes(v, mapping))
                 for c, v in expr.whens]
        else_ = (replace_nodes(expr.else_, mapping)
                 if expr.else_ is not None else None)
        return BoundCase(whens, else_, expr.dtype)
    if isinstance(expr, BoundCast):
        return BoundCast(replace_nodes(expr.operand, mapping), expr.dtype)
    if isinstance(expr, BoundFunc):
        return BoundFunc(expr.name,
                         [replace_nodes(a, mapping) for a in expr.args],
                         expr.dtype, expr.impl)
    if isinstance(expr, BoundAgg):
        arg = (replace_nodes(expr.arg, mapping)
               if expr.arg is not None else None)
        return BoundAgg(expr.op, arg, expr.distinct)
    return expr
