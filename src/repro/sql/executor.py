"""Vectorized tree executor for logical plans.

Every operator consumes and produces whole :class:`Relation` values,
calling the bulk kernel — the column-at-a-time execution model of the
paper. Stream scans are resolved through the :class:`ExecutionContext`,
which the DataCell runtime points at the current basket (or window
slice) before each firing.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import KernelError, StreamError
from repro.mal import kernel
from repro.mal.bat import BAT
from repro.mal.relation import Relation
from repro.sql.expressions import (BoundAgg, BoundColumn, BoundCompare,
                                   BoundExpr, BoundLiteral)
from repro.sql.plan import (AggregateNode, DistinctNode, FilterNode,
                            JoinNode, LimitNode, PlanNode, ProjectNode,
                            ScanNode, SortNode, StreamScanNode,
                            UnionNode)
from repro.sql.planner import split_conjuncts, join_conjuncts
from repro.storage.catalog import Catalog


class ExecutionContext:
    """Resolves scans to relations and collects runtime statistics.

    ``stream_reader`` maps a stream name to the relation holding the
    tuples the current execution should see; one-time queries default to
    "everything currently in the basket" via the engine.
    """

    def __init__(self, catalog: Catalog,
                 stream_reader: Optional[Callable[[str], Relation]] = None):
        self.catalog = catalog
        self.stream_reader = stream_reader
        self.stats: Dict[str, int] = {}

    def count(self, key: str, n: int = 1) -> None:
        self.stats[key] = self.stats.get(key, 0) + n

    def table_relation(self, name: str) -> Relation:
        return self.catalog.table(name).scan()

    def stream_relation(self, name: str) -> Relation:
        if self.stream_reader is None:
            raise StreamError(
                f"no stream binding for {name!r}: execute this query "
                f"through the DataCell engine")
        return self.stream_reader(name)


class PlanExecutor:
    """Executes a logical plan tree against an :class:`ExecutionContext`."""

    def __init__(self, ctx: ExecutionContext):
        self.ctx = ctx

    def execute(self, node: PlanNode) -> Relation:
        if isinstance(node, ScanNode):
            return self._scan(node)
        if isinstance(node, StreamScanNode):
            return self._stream_scan(node)
        if isinstance(node, FilterNode):
            return self._filter(node)
        if isinstance(node, ProjectNode):
            return self._project(node)
        if isinstance(node, JoinNode):
            return self._join(node)
        if isinstance(node, AggregateNode):
            return self._aggregate(node)
        if isinstance(node, SortNode):
            return self._sort(node)
        if isinstance(node, LimitNode):
            return self._limit(node)
        if isinstance(node, DistinctNode):
            return self._distinct(node)
        if isinstance(node, UnionNode):
            return self._union(node)
        raise KernelError(f"cannot execute plan node {node!r}")

    def _union(self, node: UnionNode) -> Relation:
        names = node.schema.names
        out = self.execute(node.children[0]).renamed(names)
        for child in node.children[1:]:
            out = out.concat(self.execute(child).renamed(names))
        return out

    # -- leaves -----------------------------------------------------------

    def _scan(self, node: ScanNode) -> Relation:
        rel = self.ctx.table_relation(node.table_name)
        rel = rel.renamed([f"{node.alias}.{n}" for n in rel.names])
        if node.needed is not None:
            rel = rel.select_columns(node.needed)
        self.ctx.count("rows_scanned", rel.row_count)
        return rel

    def _stream_scan(self, node: StreamScanNode) -> Relation:
        rel = self.ctx.stream_relation(node.stream_name)
        rel = rel.renamed([f"{node.alias}.{n}" for n in rel.names])
        if node.needed is not None:
            rel = rel.select_columns(node.needed)
        self.ctx.count("stream_rows_read", rel.row_count)
        return rel

    # -- filters (with opportunistic index use) ------------------------------

    def _filter(self, node: FilterNode) -> Relation:
        child = node.child
        if isinstance(child, ScanNode):
            out = self._indexed_filter(child, node.predicate)
            if out is not None:
                return out
        rel = self.execute(child)
        return apply_predicate(rel, node.predicate)

    def _indexed_filter(self, scan: ScanNode,
                        predicate: BoundExpr) -> Optional[Relation]:
        """Probe a secondary index for one sargable conjunct, if any."""
        table = self.ctx.catalog.table(scan.table_name)
        conjuncts = split_conjuncts(predicate)
        for i, conj in enumerate(conjuncts):
            probe = self._sargable(scan, conj)
            if probe is None:
                continue
            column, op, value = probe
            positions = self._index_probe(table, column, op, value)
            if positions is None:
                continue
            self.ctx.count("index_probes")
            rel = self._scan(scan).take(positions)
            rest = join_conjuncts(conjuncts[:i] + conjuncts[i + 1:])
            if rest is not None:
                rel = apply_predicate(rel, rest)
            return rel
        return None

    @staticmethod
    def _sargable(scan: ScanNode, conj: BoundExpr
                  ) -> Optional[Tuple[str, str, object]]:
        if not (isinstance(conj, BoundCompare)
                and isinstance(conj.left, BoundColumn)
                and isinstance(conj.right, BoundLiteral)
                and conj.right.value is not None):
            return None
        key = conj.left.key
        prefix = scan.alias + "."
        if not key.startswith(prefix):
            return None
        return key[len(prefix):], conj.op, conj.right.value

    @staticmethod
    def _index_probe(table, column: str, op: str,
                     value) -> Optional[np.ndarray]:
        if op == "==":
            return table.index_lookup(column, value)
        bounds = {"<": (None, value, True, False),
                  "<=": (None, value, True, True),
                  ">": (value, None, False, True),
                  ">=": (value, None, True, True)}.get(op)
        if bounds is None:
            return None
        low, high, li, hi = bounds
        return table.index_range(column, low, high, li, hi)

    # -- projections ----------------------------------------------------------

    def _project(self, node: ProjectNode) -> Relation:
        rel = self.execute(node.child)
        return project_relation(rel, node.exprs, node.names)

    # -- joins ------------------------------------------------------------------

    def _join(self, node: JoinNode) -> Relation:
        left = self.execute(node.left)
        out = self._indexed_join(node, left)
        if out is None:
            right = self.execute(node.right)
            out = join_relations(left, right, node.left_key,
                                 node.right_key,
                                 join_type=node.join_type)
        self.ctx.count("join_output_rows", out.row_count)
        if node.residual is not None:
            out = apply_predicate(out, node.residual)
        return out

    def _indexed_join(self, node: JoinNode,
                      left: Relation) -> Optional[Relation]:
        """Probe a hash index on the build (table) side instead of
        rebuilding a hash table per execution — the payoff in a
        streaming setting: a standing query joining every window slice
        against a large dimension table probes, never rebuilds.
        """
        if node.join_type != "inner" or node.left_key is None:
            return None
        if not isinstance(node.right, ScanNode):
            return None
        if not isinstance(node.right_key, BoundColumn):
            return None
        table = self.ctx.catalog.table(node.right.table_name)
        prefix = node.right.alias + "."
        if not node.right_key.key.startswith(prefix):
            return None
        column = node.right_key.key[len(prefix):]
        index = table.index_on(column)
        from repro.storage.index import HashIndex

        if not isinstance(index, HashIndex):
            return None
        self.ctx.count("index_join_probes")
        lkey = node.left_key.evaluate(left)
        valid = ~lkey.nil_mask()
        lpos_list = []
        rpos_list = []
        values = lkey.values
        for i in np.nonzero(valid)[0]:
            matches = index.lookup(values[i])
            if len(matches):
                lpos_list.extend([int(i)] * len(matches))
                rpos_list.extend(matches.tolist())
        lpos = np.asarray(lpos_list, dtype=np.int64)
        rpos = np.asarray(rpos_list, dtype=np.int64)
        right = self._scan(node.right)
        out = Relation()
        for name, bat in left.columns():
            out.add(name, bat.take(lpos))
        for name, bat in right.columns():
            out.add(name, bat.take(rpos))
        return out

    # -- aggregation --------------------------------------------------------------

    def _aggregate(self, node: AggregateNode) -> Relation:
        rel = self.execute(node.child)
        return aggregate_relation(rel, node)

    # -- ordering, limiting, distinct ------------------------------------------------

    def _sort(self, node: SortNode) -> Relation:
        rel = self.execute(node.child)
        return sort_relation(rel, node.keys)

    def _limit(self, node: LimitNode) -> Relation:
        rel = self.execute(node.child)
        stop = None if node.limit is None else node.offset + node.limit
        return rel.slice_rows(node.offset, stop)

    def _distinct(self, node: DistinctNode) -> Relation:
        rel = self.execute(node.child)
        bats = [bat for _n, bat in rel.columns()]
        if not bats or rel.row_count == 0:
            return rel
        return rel.take(kernel.distinct(bats))


# ---------------------------------------------------------------------
# reusable operator bodies (shared with the incremental engine)
# ---------------------------------------------------------------------

def apply_predicate(rel: Relation, predicate: BoundExpr) -> Relation:
    """Keep the rows where *predicate* evaluates to true."""
    if rel.row_count == 0:
        return rel
    mask = predicate.evaluate(rel)
    return rel.take(kernel.mask_select(mask))


def project_relation(rel: Relation, exprs: Sequence[BoundExpr],
                     names: Sequence[str]) -> Relation:
    out = Relation()
    for expr, name in zip(exprs, names):
        out.add(name, expr.evaluate(rel))
    return out


def join_relations(left: Relation, right: Relation,
                   left_key: Optional[BoundExpr],
                   right_key: Optional[BoundExpr],
                   join_type: str = "inner") -> Relation:
    """Hash equi-join, cross product (keys None) or left outer join."""
    if join_type in ("semi", "anti"):
        lbat = left_key.evaluate(left)
        rbat = right_key.evaluate(right)
        keep = kernel.semi_pairs(lbat, rbat, anti=(join_type == "anti"))
        return left.take(keep)
    if left_key is None:
        nl, nr = left.row_count, right.row_count
        lpos = np.repeat(np.arange(nl, dtype=np.int64), nr)
        rpos = np.tile(np.arange(nr, dtype=np.int64), nl)
    else:
        lbat = left_key.evaluate(left)
        rbat = right_key.evaluate(right)
        if join_type == "left":
            lpos, rpos = kernel.left_outer_pairs(lbat, rbat)
        else:
            lpos, rpos = kernel.hashjoin(lbat, rbat)
    out = Relation()
    for name, bat in left.columns():
        out.add(name, bat.take(lpos))
    for name, bat in right.columns():
        if join_type == "left":
            out.add(name, kernel.fetch_outer(bat, rpos))
        else:
            out.add(name, bat.take(rpos))
    return out


def aggregate_relation(rel: Relation, node: AggregateNode) -> Relation:
    """Hash aggregation of *rel* according to an AggregateNode spec."""
    n = rel.row_count
    if node.group_exprs:
        gids = None
        reps = None
        ngroups = 0
        group_bats = [e.evaluate(rel) for e in node.group_exprs]
        for bat in group_bats:
            gids, reps, ngroups = kernel.subgroup(bat, gids)
        out = Relation()
        for name, bat in zip(node.group_names, group_bats):
            out.add(name, bat.take(reps))
    else:
        gids = np.zeros(n, dtype=np.int64)
        ngroups = 1
        out = Relation()
    for name, agg in zip(node.agg_names, node.aggs):
        out.add(name, compute_aggregate(rel, agg, gids, ngroups))
    return out


def compute_aggregate(rel: Relation, agg: BoundAgg, gids: np.ndarray,
                      ngroups: int) -> BAT:
    """One aggregate column over a grouped relation."""
    if agg.op == "count" and agg.arg is None:
        return kernel.agg_count(gids, ngroups)
    arg = agg.arg.evaluate(rel)
    if agg.distinct:
        return _distinct_aggregate(agg, arg, gids, ngroups)
    if agg.op == "count":
        return kernel.agg_count(gids, ngroups, arg, None)
    if agg.op == "sum":
        return kernel.agg_sum(arg, gids, ngroups)
    if agg.op == "avg":
        return kernel.agg_avg(arg, gids, ngroups)
    if agg.op == "min":
        return kernel.agg_min(arg, gids, ngroups)
    if agg.op == "max":
        return kernel.agg_max(arg, gids, ngroups)
    if agg.op == "stddev":
        return kernel.agg_stddev(arg, gids, ngroups)
    if agg.op == "variance":
        return kernel.agg_variance(arg, gids, ngroups)
    raise KernelError(f"unknown aggregate {agg.op!r}")


def _distinct_aggregate(agg: BoundAgg, arg: BAT, gids: np.ndarray,
                        ngroups: int) -> BAT:
    """Aggregate over distinct values per group (COUNT/SUM/AVG DISTINCT)."""
    nil = arg.nil_mask()
    keep = ~nil
    pair_seen: Dict[Tuple[int, object], bool] = {}
    sel: List[int] = []
    values = arg.values
    for i in np.nonzero(keep)[0]:
        key = (int(gids[i]), values[i])
        if key not in pair_seen:
            pair_seen[key] = True
            sel.append(i)
    sel_arr = np.asarray(sel, dtype=np.int64)
    sub_gids = gids[sel_arr]
    sub_bat = arg.take(sel_arr)
    if agg.op == "count":
        return kernel.agg_count(sub_gids, ngroups, sub_bat, None)
    if agg.op == "sum":
        return kernel.agg_sum(sub_bat, sub_gids, ngroups)
    if agg.op == "avg":
        return kernel.agg_avg(sub_bat, sub_gids, ngroups)
    if agg.op == "min":
        return kernel.agg_min(sub_bat, sub_gids, ngroups)
    if agg.op == "max":
        return kernel.agg_max(sub_bat, sub_gids, ngroups)
    raise KernelError(f"unknown aggregate {agg.op!r}")


def sort_relation(rel: Relation,
                  keys: Sequence[Tuple[BoundExpr, bool]]) -> Relation:
    if rel.row_count == 0 or not keys:
        return rel
    bats = [e.evaluate(rel) for e, _d in keys]
    descending = [d for _e, d in keys]
    return rel.take(kernel.sort_positions(bats, descending))
