"""Semantic analysis: resolve names, type expressions, find aggregates."""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.errors import BindError
from repro.sql import ast
from repro.sql import functions as funcs
from repro.sql.expressions import (BoundAgg, BoundArith, BoundCase,
                                   BoundCast, BoundColumn, BoundCompare,
                                   BoundExpr, BoundFunc, BoundInList,
                                   BoundIsNull, BoundLike, BoundLiteral,
                                   BoundLogical, BoundNeg, BoundNot)
from repro.storage import types as dt
from repro.storage.schema import Schema


class Scope:
    """Name resolution scope: qualified and bare column lookups."""

    def __init__(self):
        self._qualified: Dict[str, dt.DataType] = {}
        self._bare: Dict[str, List[str]] = {}
        self.aliases: List[str] = []

    def add_source(self, alias: str, schema: Schema) -> None:
        alias = alias.lower()
        if alias in self.aliases:
            raise BindError(f"duplicate table alias {alias!r}")
        self.aliases.append(alias)
        for col in schema:
            self.add_column(f"{alias}.{col.name}", col.dtype,
                            bare_name=col.name)

    def add_column(self, key: str, dtype: dt.DataType,
                   bare_name: Optional[str] = None) -> None:
        key = key.lower()
        if key in self._qualified:
            raise BindError(f"duplicate column key {key!r}")
        self._qualified[key] = dtype
        bare = (bare_name or key).lower()
        self._bare.setdefault(bare, []).append(key)

    def resolve(self, name: str, table: Optional[str] = None
                ) -> Tuple[str, dt.DataType]:
        """Resolve a (possibly qualified) column reference to (key, type)."""
        name = name.lower()
        if table is not None:
            key = f"{table.lower()}.{name}"
            if key not in self._qualified:
                raise BindError(f"unknown column {table}.{name}")
            return key, self._qualified[key]
        if name in self._qualified:  # already-qualified internal key
            return name, self._qualified[name]
        candidates = self._bare.get(name, [])
        if not candidates:
            raise BindError(f"unknown column {name!r}")
        if len(candidates) > 1:
            raise BindError(
                f"ambiguous column {name!r}: could be any of {candidates}")
        key = candidates[0]
        return key, self._qualified[key]

    def columns(self) -> List[Tuple[str, dt.DataType]]:
        return list(self._qualified.items())


class Binder:
    """Turns parser AST expressions into typed :class:`BoundExpr` trees."""

    def __init__(self, scope: Scope, allow_aggregates: bool = False):
        self.scope = scope
        self.allow_aggregates = allow_aggregates

    def bind(self, expr: ast.Expr, inside_aggregate: bool = False
             ) -> BoundExpr:
        if isinstance(expr, ast.Literal):
            return _literal(expr.value)
        if isinstance(expr, ast.ColumnRef):
            key, dtype = self.scope.resolve(expr.name, expr.table)
            return BoundColumn(key, dtype)
        if isinstance(expr, ast.Star):
            raise BindError("'*' is only allowed in COUNT(*) here")
        if isinstance(expr, ast.UnaryOp):
            if expr.op == "-":
                operand = self.bind(expr.operand, inside_aggregate)
                if isinstance(operand, BoundLiteral) \
                        and operand.value is not None:
                    return BoundLiteral(-operand.value, operand.dtype)
                return BoundNeg(operand)
            if expr.op == "not":
                return BoundNot(self.bind(expr.operand, inside_aggregate))
            raise BindError(f"unknown unary operator {expr.op!r}")
        if isinstance(expr, ast.BinaryOp):
            return self._binary(expr, inside_aggregate)
        if isinstance(expr, ast.IsNull):
            return BoundIsNull(self.bind(expr.operand, inside_aggregate),
                               expr.negated)
        if isinstance(expr, ast.Between):
            operand = self.bind(expr.operand, inside_aggregate)
            low = self.bind(expr.low, inside_aggregate)
            high = self.bind(expr.high, inside_aggregate)
            low, _ = _unify_null(low, operand)
            high, _ = _unify_null(high, operand)
            test = BoundLogical("and",
                                BoundCompare(">=", operand, low),
                                BoundCompare("<=", operand, high))
            return BoundNot(test) if expr.negated else test
        if isinstance(expr, ast.InList):
            operand = self.bind(expr.operand, inside_aggregate)
            values = []
            for item in expr.items:
                bound = self.bind(item, inside_aggregate)
                try:
                    value = bound.const_value()
                except BindError:
                    raise BindError(
                        "IN list items must be constants") from None
                if value is not None:
                    value = dt.from_storage(
                        operand.dtype,
                        dt.coerce_value(operand.dtype, value))
                values.append(value)
            return BoundInList(operand, values, expr.negated)
        if isinstance(expr, ast.InSubquery):
            raise BindError(
                "IN (SELECT ...) is only supported as a top-level "
                "conjunct of WHERE (it rewrites to a semi/anti join)")
        if isinstance(expr, ast.Like):
            return BoundLike(self.bind(expr.operand, inside_aggregate),
                             expr.pattern, expr.negated)
        if isinstance(expr, ast.Case):
            return self._case(expr, inside_aggregate)
        if isinstance(expr, ast.Cast):
            target = dt.DataType.by_name(expr.type_name)
            return BoundCast(self.bind(expr.operand, inside_aggregate),
                             target)
        if isinstance(expr, ast.FunctionCall):
            return self._call(expr, inside_aggregate)
        raise BindError(f"cannot bind expression {expr!r}")

    # -- helpers -----------------------------------------------------

    def _binary(self, expr: ast.BinaryOp,
                inside_aggregate: bool) -> BoundExpr:
        op = expr.op
        left = self.bind(expr.left, inside_aggregate)
        right = self.bind(expr.right, inside_aggregate)
        if op in ("and", "or"):
            return BoundLogical(op, left, right)
        if op in ("==", "!=", "<", "<=", ">", ">="):
            left, right = _unify_null(left, right)
            return BoundCompare(op, left, right)
        if op in ("+", "-", "*", "/", "%", "||"):
            left, right = _unify_null(left, right)
            return BoundArith(op, left, right)
        raise BindError(f"unknown binary operator {op!r}")

    def _case(self, expr: ast.Case, inside_aggregate: bool) -> BoundExpr:
        whens = [(self.bind(c, inside_aggregate),
                  self.bind(v, inside_aggregate)) for c, v in expr.whens]
        else_ = (self.bind(expr.else_, inside_aggregate)
                 if expr.else_ is not None else None)
        branches = [v for _c, v in whens] + \
            ([else_] if else_ is not None else [])
        out_type = None
        for branch in branches:
            if isinstance(branch, BoundLiteral) and branch.value is None:
                continue
            out_type = branch.dtype if out_type is None \
                else (branch.dtype if out_type == branch.dtype
                      else dt.common_type(out_type, branch.dtype))
        if out_type is None:
            out_type = dt.STRING
        return BoundCase(whens, else_, out_type)

    def _call(self, expr: ast.FunctionCall,
              inside_aggregate: bool) -> BoundExpr:
        name = expr.name
        if funcs.is_aggregate(name):
            if not self.allow_aggregates:
                raise BindError(
                    f"aggregate {name!r} is not allowed in this clause")
            if inside_aggregate:
                raise BindError("aggregates cannot be nested")
            if name == "count" and len(expr.args) == 1 \
                    and isinstance(expr.args[0], ast.Star):
                return BoundAgg("count", None, expr.distinct)
            if len(expr.args) != 1:
                raise BindError(f"{name} takes exactly one argument")
            arg = self.bind(expr.args[0], inside_aggregate=True)
            return BoundAgg(name, arg, expr.distinct)
        if expr.distinct:
            raise BindError("DISTINCT only applies to aggregates")
        fn = funcs.lookup(name)
        fn.check_arity(len(expr.args))
        args = [self.bind(a, inside_aggregate) for a in expr.args]
        out_type = fn.result_type([a.dtype for a in args])
        return BoundFunc(name, args, out_type, fn.impl)


def _literal(value) -> BoundLiteral:
    if value is None:
        return BoundLiteral(None, dt.STRING)
    return BoundLiteral(value, dt.infer_type(value))


def _unify_null(a: BoundExpr, b: BoundExpr
                ) -> Tuple[BoundExpr, BoundExpr]:
    """Retype bare NULL literals to the other operand's type."""
    if isinstance(a, BoundLiteral) and a.value is None \
            and a.dtype != b.dtype:
        a = BoundLiteral(None, b.dtype)
    if isinstance(b, BoundLiteral) and b.value is None \
            and b.dtype != a.dtype:
        b = BoundLiteral(None, a.dtype)
    return a, b
