"""SQL front-end: lexer, parser, binder, planner, optimizer, executor."""

from __future__ import annotations

from repro.sql.parser import parse, parse_script
from repro.sql.planner import Planner
from repro.sql.optimizer import Optimizer


def compile_select(text: str, catalog, optimize: bool = True):
    """Parse, bind, plan and (optionally) optimize one SELECT (or
    UNION) statement."""
    from repro.sql import ast

    stmt = parse(text)
    if not isinstance(stmt, (ast.SelectStmt, ast.UnionStmt)):
        raise TypeError("compile_select expects a SELECT statement")
    plan = Planner(catalog).plan(stmt)
    if optimize:
        plan = Optimizer().optimize(plan)
    return plan


__all__ = ["parse", "parse_script", "Planner", "Optimizer",
           "compile_select"]
