"""Abstract syntax trees produced by the parser (unbound, untyped)."""

from __future__ import annotations

from typing import Any, Optional, Sequence, Tuple


class Node:
    """Base class for all AST nodes; structural equality for testing."""

    _fields: Tuple[str, ...] = ()

    def __eq__(self, other) -> bool:
        return (type(self) is type(other)
                and all(getattr(self, f) == getattr(other, f)
                        for f in self._fields))

    def __repr__(self) -> str:
        inner = ", ".join(f"{f}={getattr(self, f)!r}" for f in self._fields)
        return f"{type(self).__name__}({inner})"


# ---------------------------------------------------------------------
# expressions
# ---------------------------------------------------------------------

class Expr(Node):
    pass


class Literal(Expr):
    _fields = ("value",)

    def __init__(self, value: Any):
        self.value = value  # int/float/str/bool/None


class ColumnRef(Expr):
    _fields = ("table", "name")

    def __init__(self, name: str, table: Optional[str] = None):
        self.table = table
        self.name = name


class Star(Expr):
    """``*`` — only valid inside COUNT(*) or as the whole select list."""
    _fields = ()


class BinaryOp(Expr):
    _fields = ("op", "left", "right")

    def __init__(self, op: str, left: Expr, right: Expr):
        self.op = op
        self.left = left
        self.right = right


class UnaryOp(Expr):
    _fields = ("op", "operand")

    def __init__(self, op: str, operand: Expr):
        self.op = op  # "-" or "not"
        self.operand = operand


class FunctionCall(Expr):
    _fields = ("name", "args", "distinct")

    def __init__(self, name: str, args: Sequence[Expr],
                 distinct: bool = False):
        self.name = name.lower()
        self.args = list(args)
        self.distinct = distinct


class IsNull(Expr):
    _fields = ("operand", "negated")

    def __init__(self, operand: Expr, negated: bool = False):
        self.operand = operand
        self.negated = negated


class Between(Expr):
    _fields = ("operand", "low", "high", "negated")

    def __init__(self, operand: Expr, low: Expr, high: Expr,
                 negated: bool = False):
        self.operand = operand
        self.low = low
        self.high = high
        self.negated = negated


class InList(Expr):
    _fields = ("operand", "items", "negated")

    def __init__(self, operand: Expr, items: Sequence[Expr],
                 negated: bool = False):
        self.operand = operand
        self.items = list(items)
        self.negated = negated


class InSubquery(Expr):
    """``x [NOT] IN (SELECT ...)`` — planned as a semi/anti join.

    Only supported as a top-level conjunct of WHERE (it rewrites to a
    join, which cannot live under OR).
    """
    _fields = ("operand", "select", "negated")

    def __init__(self, operand: Expr, select: "SelectStmt",
                 negated: bool = False):
        self.operand = operand
        self.select = select
        self.negated = negated


class Like(Expr):
    _fields = ("operand", "pattern", "negated")

    def __init__(self, operand: Expr, pattern: str, negated: bool = False):
        self.operand = operand
        self.pattern = pattern
        self.negated = negated


class Case(Expr):
    _fields = ("whens", "else_")

    def __init__(self, whens: Sequence[Tuple[Expr, Expr]],
                 else_: Optional[Expr] = None):
        self.whens = list(whens)
        self.else_ = else_


class Cast(Expr):
    _fields = ("operand", "type_name")

    def __init__(self, operand: Expr, type_name: str):
        self.operand = operand
        self.type_name = type_name


# ---------------------------------------------------------------------
# query structure
# ---------------------------------------------------------------------

class WindowClause(Node):
    """DataCell window: ``[RANGE n (SECONDS) SLIDE m (SECONDS)]``.

    ``time_based`` selects time windows (sizes in seconds) versus tuple
    count windows. ``slide=None`` means a tumbling window (slide == size).
    """
    _fields = ("size", "slide", "time_based")

    def __init__(self, size: int, slide: Optional[int] = None,
                 time_based: bool = False):
        self.size = size
        self.slide = slide
        self.time_based = time_based


class TableRef(Node):
    _fields = ("name", "alias", "window")

    def __init__(self, name: str, alias: Optional[str] = None,
                 window: Optional[WindowClause] = None):
        self.name = name.lower()
        self.alias = (alias or name).lower()
        self.window = window


class FromItem(Node):
    """One member of the FROM clause with its join condition.

    The first item has ``join_cond None``; later items join against the
    accumulated result either with an explicit ON condition or as a
    cross product (comma syntax — equi-conditions are recovered from
    WHERE by the optimizer). ``join_type`` is ``"inner"`` or ``"left"``.
    """
    _fields = ("ref", "join_cond", "join_type")

    def __init__(self, ref: TableRef, join_cond: Optional[Expr] = None,
                 join_type: str = "inner"):
        self.ref = ref
        self.join_cond = join_cond
        self.join_type = join_type


class SelectItem(Node):
    _fields = ("expr", "alias")

    def __init__(self, expr: Expr, alias: Optional[str] = None):
        self.expr = expr
        self.alias = alias


class OrderItem(Node):
    _fields = ("expr", "descending")

    def __init__(self, expr: Expr, descending: bool = False):
        self.expr = expr
        self.descending = descending


# ---------------------------------------------------------------------
# statements
# ---------------------------------------------------------------------

class Statement(Node):
    pass


class SelectStmt(Statement):
    _fields = ("items", "from_items", "where", "group_by", "having",
               "order_by", "limit", "offset", "distinct")

    def __init__(self, items: Sequence[SelectItem],
                 from_items: Sequence[FromItem],
                 where: Optional[Expr] = None,
                 group_by: Sequence[Expr] = (),
                 having: Optional[Expr] = None,
                 order_by: Sequence[OrderItem] = (),
                 limit: Optional[int] = None,
                 offset: int = 0,
                 distinct: bool = False):
        self.items = list(items)
        self.from_items = list(from_items)
        self.where = where
        self.group_by = list(group_by)
        self.having = having
        self.order_by = list(order_by)
        self.limit = limit
        self.offset = offset
        self.distinct = distinct


class UnionStmt(Statement):
    """A UNION [ALL] chain of SELECT cores with compound-level
    ORDER BY / LIMIT. ``distinct=True`` for plain UNION."""
    _fields = ("selects", "distinct", "order_by", "limit", "offset")

    def __init__(self, selects: Sequence["SelectStmt"],
                 distinct: bool = False,
                 order_by: Sequence[OrderItem] = (),
                 limit: Optional[int] = None, offset: int = 0):
        self.selects = list(selects)
        self.distinct = distinct
        self.order_by = list(order_by)
        self.limit = limit
        self.offset = offset


class CreateTableStmt(Statement):
    _fields = ("name", "columns")

    def __init__(self, name: str, columns: Sequence[Tuple[str, str]]):
        self.name = name.lower()
        self.columns = list(columns)  # (name, type_name)


class CreateStreamStmt(Statement):
    _fields = ("name", "columns")

    def __init__(self, name: str, columns: Sequence[Tuple[str, str]]):
        self.name = name.lower()
        self.columns = list(columns)


class CreateIndexStmt(Statement):
    _fields = ("table", "column", "kind")

    def __init__(self, table: str, column: str, kind: str = "hash"):
        self.table = table.lower()
        self.column = column.lower()
        self.kind = kind


class DropStmt(Statement):
    _fields = ("kind", "name")

    def __init__(self, kind: str, name: str):
        self.kind = kind  # "table" | "stream"
        self.name = name.lower()


class ExplainStmt(Statement):
    """EXPLAIN <select> — returns the logical plan and MAL program."""
    _fields = ("statement",)

    def __init__(self, statement: Statement):
        self.statement = statement


class DeleteStmt(Statement):
    _fields = ("table", "where")

    def __init__(self, table: str, where: Optional[Expr] = None):
        self.table = table.lower()
        self.where = where


class UpdateStmt(Statement):
    _fields = ("table", "assignments", "where")

    def __init__(self, table: str,
                 assignments: Sequence[Tuple[str, Expr]],
                 where: Optional[Expr] = None):
        self.table = table.lower()
        self.assignments = [(c.lower(), e) for c, e in assignments]
        self.where = where


class InsertStmt(Statement):
    _fields = ("table", "columns", "rows", "select")

    def __init__(self, table: str, columns: Optional[Sequence[str]],
                 rows: Optional[Sequence[Sequence[Expr]]] = None,
                 select: Optional[SelectStmt] = None):
        self.table = table.lower()
        self.columns = list(columns) if columns else None
        self.rows = [list(r) for r in rows] if rows is not None else None
        self.select = select
