"""AST -> logical plan translation.

Produces canonical plans: scans joined left-deep, one Filter for WHERE,
Aggregate when needed, Sort below the final Project, Distinct and Limit
on top. The optimizer then cleans up (pushdown, pruning, join-condition
extraction).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import BindError, CatalogError
from repro.sql import ast
from repro.sql.binder import Binder, Scope
from repro.sql.expressions import (BoundAgg, BoundColumn, BoundCompare,
                                   BoundExpr, BoundLogical,
                                   collect_aggregates, contains_aggregate,
                                   replace_nodes)
from repro.sql.plan import (AggregateNode, DistinctNode, FilterNode,
                            JoinNode, LimitNode, PlanNode, ProjectNode,
                            ScanNode, SortNode, StreamScanNode)
from repro.storage.catalog import Catalog


def split_conjuncts(pred: BoundExpr) -> List[BoundExpr]:
    """Flatten a predicate into its AND-ed conjuncts."""
    if isinstance(pred, BoundLogical) and pred.op == "and":
        return split_conjuncts(pred.left) + split_conjuncts(pred.right)
    return [pred]


def join_conjuncts(conjuncts: Sequence[BoundExpr]) -> Optional[BoundExpr]:
    """Re-assemble conjuncts into one AND tree (None when empty)."""
    out: Optional[BoundExpr] = None
    for conj in conjuncts:
        out = conj if out is None else BoundLogical("and", out, conj)
    return out


def keys_within(expr: BoundExpr, aliases: Sequence[str]) -> bool:
    """True when every column the expression touches belongs to *aliases*."""
    prefixes = tuple(a + "." for a in aliases)
    keys = expr.column_keys()
    return all(k.startswith(prefixes) for k in keys) and bool(keys)


class Planner:
    """Translates bound SELECT statements into logical plans."""

    def __init__(self, catalog: Catalog):
        self.catalog = catalog

    # -- entry point --------------------------------------------------

    def plan_select(self, stmt: ast.SelectStmt) -> PlanNode:
        scope = Scope()
        scans: List[PlanNode] = []
        for item in stmt.from_items:
            scan = self._scan_for(item.ref)
            scans.append(scan)
            schema = self.catalog.schema_of(item.ref.name)
            scope.add_source(item.ref.alias, schema)

        node = self._join_tree(stmt, scans, scope)

        where_binder = Binder(scope, allow_aggregates=False)
        if stmt.where is not None:
            plain, subqueries = self._split_subquery_conjuncts(stmt.where)
            for sub in subqueries:
                node = self._plan_in_subquery(node, sub, where_binder)
            if plain is not None:
                node = FilterNode(node, where_binder.bind(plain))

        select_binder = Binder(scope, allow_aggregates=True)
        items = self._expand_star(stmt.items, scope)
        bound_items = [(select_binder.bind(i.expr), i.alias) for i in items]
        group_exprs = [where_binder.bind(g) for g in stmt.group_by]
        having = select_binder.bind(stmt.having) \
            if stmt.having is not None else None
        order_keys = self._bind_order(stmt.order_by, select_binder,
                                      bound_items, items)

        needs_agg = (bool(group_exprs) or having is not None
                     or any(contains_aggregate(e) for e, _a in bound_items)
                     or any(contains_aggregate(e) for e, _d in order_keys))
        if needs_agg:
            node, bound_items, having, order_keys = self._aggregate(
                node, bound_items, group_exprs, having, order_keys)
        elif having is not None:
            raise BindError("HAVING without GROUP BY or aggregates")

        if having is not None:
            node = FilterNode(node, having)
        if order_keys:
            node = SortNode(node, order_keys)

        names = self._output_names(bound_items, items)
        node = ProjectNode(node, [e for e, _a in bound_items], names)
        if stmt.distinct:
            node = DistinctNode(node)
        if stmt.limit is not None or stmt.offset:
            node = LimitNode(node, stmt.offset, stmt.limit)
        return node

    def plan_union(self, stmt: ast.UnionStmt) -> PlanNode:
        """Plan a UNION [ALL] compound: align branch schemas to the
        first branch's names (coercing INT branches to FLOAT where
        needed), concat, optional dedup/sort/limit on top."""
        from repro.sql.expressions import BoundCast, BoundColumn
        from repro.sql.plan import DistinctNode, LimitNode, ProjectNode, \
            SortNode, UnionNode
        from repro.storage import types as dt

        branches = [self.plan_select(s) for s in stmt.selects]
        first = branches[0].schema
        aligned = [branches[0]]
        for branch in branches[1:]:
            schema = branch.schema
            if len(schema) != len(first):
                raise BindError(
                    f"UNION branches have {len(first)} vs "
                    f"{len(schema)} columns")
            exprs = []
            for target, col in zip(first.columns, schema.columns):
                expr: "BoundExpr" = BoundColumn(col.name, col.dtype)
                if col.dtype != target.dtype:
                    dt.common_type(col.dtype, target.dtype)  # validates
                    expr = BoundCast(expr, target.dtype)
                exprs.append(expr)
            aligned.append(ProjectNode(branch, exprs, first.names))
        node: PlanNode = UnionNode(aligned)
        if stmt.distinct:
            node = DistinctNode(node)
        if stmt.order_by:
            scope = Scope()
            for col in first.columns:
                scope.add_column(col.name, col.dtype)
            binder = Binder(scope)
            keys = []
            for order in stmt.order_by:
                if isinstance(order.expr, ast.Literal) \
                        and isinstance(order.expr.value, int):
                    index = order.expr.value - 1
                    if not 0 <= index < len(first.columns):
                        raise BindError(
                            f"ORDER BY position {order.expr.value} "
                            f"out of range")
                    col = first.columns[index]
                    keys.append((BoundColumn(col.name, col.dtype),
                                 order.descending))
                else:
                    keys.append((binder.bind(order.expr),
                                 order.descending))
            node = SortNode(node, keys)
        if stmt.limit is not None or stmt.offset:
            node = LimitNode(node, stmt.offset, stmt.limit)
        return node

    def plan(self, stmt) -> PlanNode:
        """Plan a SELECT or UNION statement."""
        if isinstance(stmt, ast.UnionStmt):
            return self.plan_union(stmt)
        return self.plan_select(stmt)

    # -- FROM clause ----------------------------------------------------

    def _scan_for(self, ref: ast.TableRef) -> PlanNode:
        if self.catalog.is_stream(ref.name):
            return StreamScanNode(ref.name, ref.alias,
                                  self.catalog.stream(ref.name).schema,
                                  ref.window)
        if ref.window is not None:
            raise BindError(
                f"window clause on persistent table {ref.name!r}")
        if not self.catalog.has_table(ref.name):
            raise CatalogError(f"no table or stream {ref.name!r}")
        return ScanNode(ref.name, ref.alias,
                        self.catalog.table(ref.name).schema)

    def _join_tree(self, stmt: ast.SelectStmt, scans: List[PlanNode],
                   scope: Scope) -> PlanNode:
        node = scans[0]
        seen_aliases = [stmt.from_items[0].ref.alias]
        binder = Binder(scope, allow_aggregates=False)
        for item, scan in zip(stmt.from_items[1:], scans[1:]):
            alias = item.ref.alias
            if item.join_cond is not None:
                cond = binder.bind(item.join_cond)
                lk, rk, residual = self._extract_equi_key(
                    cond, seen_aliases, [alias])
                if item.join_type == "left":
                    if lk is None:
                        raise BindError(
                            "LEFT JOIN requires an equality condition "
                            "between the two sides")
                    if residual is not None:
                        raise BindError(
                            "LEFT JOIN supports a single equality ON "
                            "condition (move extra predicates to WHERE)")
                node = JoinNode(node, scan, lk, rk, residual,
                                join_type=item.join_type)
            else:
                node = JoinNode(node, scan, None, None, None)
            seen_aliases.append(alias)
        return node

    @staticmethod
    def _extract_equi_key(cond: BoundExpr, left_aliases: Sequence[str],
                          right_aliases: Sequence[str]
                          ) -> Tuple[Optional[BoundExpr],
                                     Optional[BoundExpr],
                                     Optional[BoundExpr]]:
        """Pick one ``left = right`` conjunct as the hash-join key."""
        conjuncts = split_conjuncts(cond)
        key_pair = None
        rest: List[BoundExpr] = []
        for conj in conjuncts:
            if (key_pair is None and isinstance(conj, BoundCompare)
                    and conj.op == "=="):
                if keys_within(conj.left, left_aliases) \
                        and keys_within(conj.right, right_aliases):
                    key_pair = (conj.left, conj.right)
                    continue
                if keys_within(conj.right, left_aliases) \
                        and keys_within(conj.left, right_aliases):
                    key_pair = (conj.right, conj.left)
                    continue
            rest.append(conj)
        if key_pair is None:
            return None, None, cond
        return key_pair[0], key_pair[1], join_conjuncts(rest)

    # -- IN (SELECT ...) subqueries --------------------------------------

    @staticmethod
    def _split_subquery_conjuncts(where: ast.Expr):
        """Separate top-level ``[NOT] IN (SELECT...)`` conjuncts from
        the rest of the WHERE expression."""
        subqueries: List[ast.InSubquery] = []

        def walk(expr: ast.Expr) -> Optional[ast.Expr]:
            if isinstance(expr, ast.BinaryOp) and expr.op == "and":
                left = walk(expr.left)
                right = walk(expr.right)
                if left is None:
                    return right
                if right is None:
                    return left
                return ast.BinaryOp("and", left, right)
            if isinstance(expr, ast.InSubquery):
                subqueries.append(expr)
                return None
            return expr

        return walk(where), subqueries

    def _plan_in_subquery(self, node: PlanNode, sub: ast.InSubquery,
                          binder: Binder) -> JoinNode:
        """Rewrite one IN-subquery conjunct as a semi (or anti) join."""
        subplan = self.plan_select(sub.select)
        if len(subplan.schema) != 1:
            raise BindError(
                "IN (SELECT ...) requires a single-column subquery, "
                f"got {len(subplan.schema)} columns")
        operand = binder.bind(sub.operand)
        sub_col = subplan.schema.columns[0]
        if operand.dtype.is_string != sub_col.dtype.is_string:
            raise BindError(
                f"cannot compare {operand.dtype.name} with subquery "
                f"column of type {sub_col.dtype.name}")
        right_key = BoundColumn(sub_col.name, sub_col.dtype)
        return JoinNode(node, subplan, operand, right_key, None,
                        join_type="anti" if sub.negated else "semi")

    # -- SELECT list ------------------------------------------------------

    def _expand_star(self, items: Sequence[ast.SelectItem], scope: Scope
                     ) -> List[ast.SelectItem]:
        out: List[ast.SelectItem] = []
        for item in items:
            if isinstance(item.expr, ast.Star):
                for key, _dtype in scope.columns():
                    alias_part, _dot, bare = key.partition(".")
                    out.append(ast.SelectItem(
                        ast.ColumnRef(bare, table=alias_part), None))
            else:
                out.append(item)
        return out

    @staticmethod
    def _output_names(bound_items, items) -> List[str]:
        names: List[str] = []
        used: Dict[str, int] = {}
        for (expr, alias), item in zip(bound_items, items):
            if alias:
                name = alias.lower()
            elif isinstance(item.expr, ast.ColumnRef):
                name = item.expr.name.lower()
            elif isinstance(expr, BoundAgg) or contains_aggregate(expr):
                name = expr.sql().lower().replace(" ", "")
                name = "".join(c for c in name if c.isalnum() or c in "_$(,)*.")
            else:
                name = f"col{len(names)}"
            if name in used:
                used[name] += 1
                name = f"{name}_{used[name]}"
            else:
                used[name] = 0
            names.append(name)
        return names

    def _bind_order(self, order_by, binder: Binder, bound_items, items
                    ) -> List[Tuple[BoundExpr, bool]]:
        alias_map: Dict[str, BoundExpr] = {}
        for (expr, alias), _item in zip(bound_items, items):
            if alias:
                alias_map[alias.lower()] = expr
        keys: List[Tuple[BoundExpr, bool]] = []
        for order in order_by:
            expr = order.expr
            if isinstance(expr, ast.ColumnRef) and expr.table is None \
                    and expr.name.lower() in alias_map:
                keys.append((alias_map[expr.name.lower()],
                             order.descending))
                continue
            if isinstance(expr, ast.Literal) \
                    and isinstance(expr.value, int):
                index = expr.value - 1
                if not 0 <= index < len(bound_items):
                    raise BindError(
                        f"ORDER BY position {expr.value} out of range")
                keys.append((bound_items[index][0], order.descending))
                continue
            keys.append((binder.bind(expr), order.descending))
        return keys

    # -- aggregation --------------------------------------------------------

    def _aggregate(self, node: PlanNode, bound_items, group_exprs,
                   having, order_keys):
        group_names = [e.sql().lower() for e in group_exprs]
        if len(set(group_names)) != len(group_names):
            raise BindError("duplicate GROUP BY expression")

        aggs: List[BoundAgg] = []
        agg_index: Dict[str, int] = {}

        def intern_agg(agg: BoundAgg) -> int:
            key = agg.sql().lower()
            if key not in agg_index:
                agg_index[key] = len(aggs)
                aggs.append(agg)
            return agg_index[key]

        all_exprs = [e for e, _a in bound_items]
        if having is not None:
            all_exprs.append(having)
        all_exprs.extend(e for e, _d in order_keys)
        for expr in all_exprs:
            for agg in collect_aggregates(expr):
                intern_agg(agg)

        agg_node = AggregateNode(node, group_exprs, group_names, aggs)

        group_map = {e.sql().lower(): (name, e.dtype)
                     for e, name in zip(group_exprs, group_names)}

        def rewrite(expr: BoundExpr) -> BoundExpr:
            def mapper(n: BoundExpr):
                if isinstance(n, BoundAgg):
                    i = agg_index[n.sql().lower()]
                    return BoundColumn(agg_node.agg_names[i], n.dtype)
                hit = group_map.get(n.sql().lower())
                if hit is not None:
                    return BoundColumn(hit[0], hit[1])
                return None

            return replace_nodes(expr, mapper)

        new_items = [(rewrite(e), a) for e, a in bound_items]
        new_having = rewrite(having) if having is not None else None
        new_order = [(rewrite(e), d) for e, d in order_keys]

        allowed = set(agg_node.schema.names)
        for expr, _alias in new_items:
            for key in expr.column_keys():
                if key not in allowed:
                    raise BindError(
                        f"column {key!r} must appear in GROUP BY or "
                        f"inside an aggregate")
        if new_having is not None:
            for key in new_having.column_keys():
                if key not in allowed:
                    raise BindError(
                        f"HAVING column {key!r} must appear in GROUP BY "
                        f"or inside an aggregate")
        return agg_node, new_items, new_having, new_order
