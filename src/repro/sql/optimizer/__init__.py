"""Rule-based logical optimizer (the reproduction of MonetDB's
optimizer stack that DataCell reuses unchanged for continuous queries)."""

from repro.sql.optimizer.rules import (DEFAULT_RULES, Optimizer,
                                       extract_join_keys, fold_constants,
                                       prune_columns, push_down_filters)

__all__ = ["Optimizer", "DEFAULT_RULES", "fold_constants",
           "push_down_filters", "extract_join_keys", "prune_columns"]
