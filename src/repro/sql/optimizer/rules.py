"""Optimizer rewrite rules over logical plans.

Each rule is a pure function ``plan -> plan``. The default pipeline:

1. ``fold_constants`` — evaluate constant expression subtrees.
2. ``push_down_filters`` — move WHERE conjuncts below joins, onto the
   side that produces their columns.
3. ``extract_join_keys`` — turn cross products with equality residuals
   into hash equi-joins.
4. ``prune_columns`` — tell scans which columns are actually needed.

The paper's point is that this very stack keeps working for continuous
queries: the DataCell rewriter runs *after* these rules, so streams get
the same optimizations as tables.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Set

from repro.errors import BindError
from repro.sql.expressions import (BoundColumn, BoundCompare, BoundExpr,
                                   BoundLiteral, contains_aggregate,
                                   replace_nodes)
from repro.sql.plan import (AggregateNode, DistinctNode, FilterNode,
                            JoinNode, LimitNode, PlanNode, ProjectNode,
                            ScanNode, SortNode, StreamScanNode, walk_plan)
from repro.sql.planner import join_conjuncts, split_conjuncts

Rule = Callable[[PlanNode], PlanNode]


# ---------------------------------------------------------------------
# constant folding
# ---------------------------------------------------------------------

def fold_expr(expr: BoundExpr) -> BoundExpr:
    """Replace constant subtrees with literals (conservatively)."""

    def mapper(node: BoundExpr):
        if isinstance(node, BoundLiteral) or isinstance(node, BoundColumn):
            return None
        if contains_aggregate(node):
            return None
        try:
            value = node.const_value()
        except (BindError, NotImplementedError):
            return None
        return BoundLiteral(value, node.dtype)

    return replace_nodes(expr, mapper)


def fold_constants(plan: PlanNode) -> PlanNode:
    for node in walk_plan(plan):
        if isinstance(node, FilterNode):
            node.predicate = fold_expr(node.predicate)
        elif isinstance(node, ProjectNode):
            node.exprs = [fold_expr(e) for e in node.exprs]
        elif isinstance(node, JoinNode):
            if node.residual is not None:
                node.residual = fold_expr(node.residual)
        elif isinstance(node, SortNode):
            node.keys = [(fold_expr(e), d) for e, d in node.keys]
        elif isinstance(node, AggregateNode):
            node.group_exprs = [fold_expr(e) for e in node.group_exprs]
    return plan


# ---------------------------------------------------------------------
# filter pushdown
# ---------------------------------------------------------------------

def _fits(expr: BoundExpr, node: PlanNode) -> bool:
    """True when *node* produces every column *expr* references."""
    available = set(node.schema.names)
    keys = expr.column_keys()
    return bool(keys) and all(k in available for k in keys)


def _push_conjunct(node: PlanNode, conj: BoundExpr) -> Optional[PlanNode]:
    """Try to sink one conjunct below *node*; None when it must stay."""
    if isinstance(node, JoinNode):
        if _fits(conj, node.left):
            pushed = _push_conjunct(node.left, conj)
            node.replace_children(
                [pushed if pushed is not None
                 else FilterNode(node.left, conj), node.right])
            return node
        if node.join_type == "left":
            # filtering the right input of a LEFT JOIN is not
            # equivalent (it turns removals into nil-padding); the
            # conjunct must stay above the join
            return None
        if _fits(conj, node.right):
            pushed = _push_conjunct(node.right, conj)
            node.replace_children(
                [node.left, pushed if pushed is not None
                 else FilterNode(node.right, conj)])
            return node
        # touches both sides: merge into the join residual
        node.residual = conj if node.residual is None \
            else join_conjuncts([node.residual, conj])
        return node
    if isinstance(node, FilterNode):
        pushed = _push_conjunct(node.child, conj)
        if pushed is not None:
            node.replace_children([pushed])
            return node
        node.predicate = join_conjuncts([node.predicate, conj])
        return node
    if isinstance(node, (ScanNode, StreamScanNode)):
        return None  # caller wraps in a Filter just above the scan
    return None


def push_down_filters(plan: PlanNode) -> PlanNode:
    """Push Filter-above-Join conjuncts toward the scans."""

    def rewrite(node: PlanNode) -> PlanNode:
        node.replace_children([rewrite(c) for c in node.children])
        if not isinstance(node, FilterNode):
            return node
        child = node.child
        if not isinstance(child, JoinNode):
            return node
        keep: List[BoundExpr] = []
        for conj in split_conjuncts(node.predicate):
            if _push_conjunct(child, conj) is None:
                keep.append(conj)
        remaining = join_conjuncts(keep)
        if remaining is None:
            return child
        node.predicate = remaining
        return node

    return rewrite(plan)


# ---------------------------------------------------------------------
# join-key extraction
# ---------------------------------------------------------------------

def _try_promote(join: JoinNode) -> None:
    """Promote an equality residual conjunct to the hash-join key."""
    if join.left_key is not None or join.residual is None \
            or join.join_type != "inner":
        return
    conjuncts = split_conjuncts(join.residual)
    for i, conj in enumerate(conjuncts):
        if not (isinstance(conj, BoundCompare) and conj.op == "=="):
            continue
        if _fits(conj.left, join.left) and _fits(conj.right, join.right):
            join.left_key, join.right_key = conj.left, conj.right
        elif _fits(conj.right, join.left) and _fits(conj.left, join.right):
            join.left_key, join.right_key = conj.right, conj.left
        else:
            continue
        join.residual = join_conjuncts(conjuncts[:i] + conjuncts[i + 1:])
        return


def extract_join_keys(plan: PlanNode) -> PlanNode:
    for node in walk_plan(plan):
        if isinstance(node, JoinNode):
            _try_promote(node)
    return plan


# ---------------------------------------------------------------------
# column pruning
# ---------------------------------------------------------------------

def _expr_keys(exprs: Sequence[BoundExpr]) -> Set[str]:
    keys: Set[str] = set()
    for expr in exprs:
        keys.update(expr.column_keys())
    return keys


def prune_columns(plan: PlanNode) -> PlanNode:
    """Mark scans with the set of columns the plan above actually uses."""

    def visit(node: PlanNode, needed: Optional[Set[str]]) -> None:
        if isinstance(node, (ScanNode, StreamScanNode)):
            if needed is None:
                node.needed = None
            else:
                node.needed = [n for n in node.schema.names if n in needed]
                if not node.needed:
                    # keep one column as the row-count anchor (e.g.
                    # SELECT 42 FROM t, or the unused side of a cross
                    # product)
                    node.needed = [node.schema.names[0]]
            return
        if isinstance(node, ProjectNode):
            visit(node.child, _expr_keys(node.exprs))
            return
        if isinstance(node, FilterNode):
            below = None if needed is None else \
                needed | _expr_keys([node.predicate])
            visit(node.child, below)
            return
        if isinstance(node, JoinNode):
            below = needed
            if below is not None:
                extra: List[BoundExpr] = []
                if node.left_key is not None:
                    extra.extend([node.left_key, node.right_key])
                if node.residual is not None:
                    extra.append(node.residual)
                below = below | _expr_keys(extra)
            visit(node.left, below)
            visit(node.right, below)
            return
        if isinstance(node, AggregateNode):
            exprs = list(node.group_exprs)
            exprs.extend(a.arg for a in node.aggs if a.arg is not None)
            visit(node.child, _expr_keys(exprs))
            return
        if isinstance(node, SortNode):
            below = None if needed is None else \
                needed | _expr_keys([e for e, _d in node.keys])
            visit(node.child, below)
            return
        if isinstance(node, (LimitNode, DistinctNode)):
            visit(node.children[0], needed)
            return
        # UnionNode children are complete Project subtrees that compute
        # their own requirements; anything unknown keeps everything
        for child in node.children:
            visit(child, None)

    visit(plan, None)
    return plan


DEFAULT_RULES: List[Rule] = [
    fold_constants,
    push_down_filters,
    extract_join_keys,
    prune_columns,
]


class Optimizer:
    """Applies a rule pipeline to a plan; records rule applications."""

    def __init__(self, rules: Optional[Sequence[Rule]] = None):
        self.rules = list(rules) if rules is not None else \
            list(DEFAULT_RULES)
        self.applied: List[str] = []

    def optimize(self, plan: PlanNode) -> PlanNode:
        self.applied = []
        for rule in self.rules:
            plan = rule(plan)
            self.applied.append(rule.__name__)
        return plan
