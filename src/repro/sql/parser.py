"""Recursive-descent SQL parser.

Covers the SQL'03 subset DataCell needs (select-project-join-aggregate
with HAVING/ORDER BY/LIMIT, DDL for tables and streams, INSERT) plus the
DataCell stream extensions: ``CREATE STREAM`` and the window clause
``FROM s [RANGE n SLIDE m]`` / ``[RANGE n SECONDS SLIDE m SECONDS]``.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.errors import ParseError
from repro.sql import ast
from repro.sql.lexer import Token, tokenize

_AGG_KEYWORDS = ("count", "sum", "avg", "min", "max")


class Parser:
    """One-token-lookahead recursive-descent parser over a token list."""

    def __init__(self, text: str):
        self.text = text
        self.tokens = tokenize(text)
        self.pos = 0

    # -- token plumbing --------------------------------------------------

    @property
    def current(self) -> Token:
        return self.tokens[self.pos]

    def _advance(self) -> Token:
        token = self.tokens[self.pos]
        if token.kind != "EOF":
            self.pos += 1
        return token

    def _check(self, kind: str, value=None) -> bool:
        return self.current.matches(kind, value)

    def _accept(self, kind: str, value=None) -> Optional[Token]:
        if self._check(kind, value):
            return self._advance()
        return None

    def _expect(self, kind: str, value=None) -> Token:
        if not self._check(kind, value):
            raise ParseError(
                f"expected {value or kind}, found "
                f"{self.current.value!r}", self.current)
        return self._advance()

    def _accept_keyword(self, *words: str) -> Optional[str]:
        if self.current.kind == "KEYWORD" and self.current.value in words:
            return self._advance().value
        return None

    def _expect_keyword(self, word: str) -> None:
        if not self._accept_keyword(word):
            raise ParseError(f"expected {word.upper()}, found "
                             f"{self.current.value!r}", self.current)

    def _ident(self) -> str:
        token = self.current
        if token.kind == "IDENT":
            return self._advance().value
        # allow non-reserved keywords as identifiers where unambiguous
        if token.kind == "KEYWORD" and token.value in (
                "range", "slide", "seconds", "tuples", "query", "index",
                "count", "min", "max"):
            return self._advance().value
        raise ParseError(f"expected identifier, found {token.value!r}",
                         token)

    # -- entry points -------------------------------------------------------

    def parse_statement(self) -> ast.Statement:
        stmt = self._statement()
        self._accept("PUNCT", ";")
        if not self._check("EOF"):
            raise ParseError(
                f"unexpected trailing input {self.current.value!r}",
                self.current)
        return stmt

    def parse_script(self) -> List[ast.Statement]:
        stmts = []
        while not self._check("EOF"):
            stmts.append(self._statement())
            if not self._accept("PUNCT", ";") and not self._check("EOF"):
                raise ParseError(
                    f"expected ';', found {self.current.value!r}",
                    self.current)
        return stmts

    # -- statements ---------------------------------------------------------

    def _statement(self) -> ast.Statement:
        if self._check("KEYWORD", "select"):
            return self._select()
        if self._accept_keyword("create"):
            return self._create()
        if self._accept_keyword("drop"):
            kind = self._accept_keyword("table", "stream")
            if kind is None:
                raise ParseError("expected TABLE or STREAM after DROP",
                                 self.current)
            return ast.DropStmt(kind, self._ident())
        if self._accept_keyword("insert"):
            return self._insert()
        if self._accept_keyword("delete"):
            self._expect_keyword("from")
            table = self._ident()
            where = self._expr() if self._accept_keyword("where") \
                else None
            return ast.DeleteStmt(table, where)
        if self._accept_keyword("update"):
            return self._update()
        if self._accept_keyword("explain"):
            if not self._check("KEYWORD", "select"):
                raise ParseError("EXPLAIN expects a SELECT statement",
                                 self.current)
            return ast.ExplainStmt(self._select())
        raise ParseError(f"unexpected statement start "
                         f"{self.current.value!r}", self.current)

    def _update(self) -> ast.UpdateStmt:
        table = self._ident()
        self._expect_keyword("set")
        assignments = []
        while True:
            column = self._ident()
            self._expect("OP", "=")
            assignments.append((column, self._expr()))
            if not self._accept("PUNCT", ","):
                break
        where = self._expr() if self._accept_keyword("where") else None
        return ast.UpdateStmt(table, assignments, where)

    def _create(self) -> ast.Statement:
        if self._accept_keyword("table"):
            name = self._ident()
            return ast.CreateTableStmt(name, self._column_defs())
        if self._accept_keyword("stream"):
            name = self._ident()
            return ast.CreateStreamStmt(name, self._column_defs())
        if self._accept_keyword("index"):
            self._expect_keyword("on")
            table = self._ident()
            self._expect("PUNCT", "(")
            column = self._ident()
            self._expect("PUNCT", ")")
            kind = "hash"
            if self._accept_keyword("using"):
                kind = self._ident()
            return ast.CreateIndexStmt(table, column, kind)
        raise ParseError("expected TABLE, STREAM or INDEX after CREATE",
                         self.current)

    def _column_defs(self) -> List[Tuple[str, str]]:
        self._expect("PUNCT", "(")
        cols = []
        while True:
            name = self._ident()
            type_name = self._type_name()
            cols.append((name, type_name))
            if not self._accept("PUNCT", ","):
                break
        self._expect("PUNCT", ")")
        return cols

    def _type_name(self) -> str:
        token = self.current
        if token.kind in ("IDENT", "KEYWORD"):
            name = self._advance().value
            # swallow VARCHAR(30)-style length arguments
            if self._accept("PUNCT", "("):
                self._expect("NUMBER")
                if self._accept("PUNCT", ","):
                    self._expect("NUMBER")
                self._expect("PUNCT", ")")
            return name
        raise ParseError(f"expected type name, found {token.value!r}",
                         token)

    def _insert(self) -> ast.InsertStmt:
        self._expect_keyword("into")
        table = self._ident()
        columns = None
        if self._accept("PUNCT", "("):
            columns = [self._ident()]
            while self._accept("PUNCT", ","):
                columns.append(self._ident())
            self._expect("PUNCT", ")")
        if self._accept_keyword("values"):
            rows = [self._value_row()]
            while self._accept("PUNCT", ","):
                rows.append(self._value_row())
            return ast.InsertStmt(table, columns, rows=rows)
        if self._check("KEYWORD", "select"):
            return ast.InsertStmt(table, columns, select=self._select())
        raise ParseError("expected VALUES or SELECT in INSERT",
                         self.current)

    def _value_row(self) -> List[ast.Expr]:
        self._expect("PUNCT", "(")
        row = [self._expr()]
        while self._accept("PUNCT", ","):
            row.append(self._expr())
        self._expect("PUNCT", ")")
        return row

    # -- SELECT ---------------------------------------------------------------

    def _select(self):
        """One SELECT statement, possibly a UNION [ALL] compound."""
        first = self._select_core()
        if not self._check("KEYWORD", "union"):
            order_by, limit, offset = self._order_limit()
            first.order_by = order_by
            first.limit = limit
            first.offset = offset
            return first
        selects = [first]
        any_distinct = False
        while self._accept_keyword("union"):
            if not self._accept_keyword("all"):
                any_distinct = True
            selects.append(self._select_core())
        order_by, limit, offset = self._order_limit()
        return ast.UnionStmt(selects, any_distinct, order_by, limit,
                             offset)

    def _select_core(self) -> ast.SelectStmt:
        """SELECT ... [WHERE] [GROUP BY] [HAVING] — no ORDER/LIMIT
        (those bind to the whole compound)."""
        self._expect_keyword("select")
        distinct = bool(self._accept_keyword("distinct"))
        items = self._select_items()
        self._expect_keyword("from")
        from_items = self._from_clause()
        where = self._expr() if self._accept_keyword("where") else None
        group_by: List[ast.Expr] = []
        if self._accept_keyword("group"):
            self._expect_keyword("by")
            group_by.append(self._expr())
            while self._accept("PUNCT", ","):
                group_by.append(self._expr())
        having = self._expr() if self._accept_keyword("having") else None
        return ast.SelectStmt(items, from_items, where, group_by, having,
                              (), None, 0, distinct)

    def _order_limit(self):
        order_by: List[ast.OrderItem] = []
        if self._accept_keyword("order"):
            self._expect_keyword("by")
            order_by.append(self._order_item())
            while self._accept("PUNCT", ","):
                order_by.append(self._order_item())
        limit = None
        offset = 0
        if self._accept_keyword("limit"):
            limit = int(self._expect("NUMBER").value)
            if self._accept_keyword("offset"):
                offset = int(self._expect("NUMBER").value)
        return order_by, limit, offset

    def _select_items(self) -> List[ast.SelectItem]:
        if self._accept("OP", "*"):
            return [ast.SelectItem(ast.Star())]
        items = [self._select_item()]
        while self._accept("PUNCT", ","):
            items.append(self._select_item())
        return items

    def _select_item(self) -> ast.SelectItem:
        expr = self._expr()
        alias = None
        if self._accept_keyword("as"):
            alias = self._ident()
        elif self.current.kind == "IDENT":
            alias = self._advance().value
        return ast.SelectItem(expr, alias)

    def _order_item(self) -> ast.OrderItem:
        expr = self._expr()
        descending = False
        if self._accept_keyword("desc"):
            descending = True
        else:
            self._accept_keyword("asc")
        return ast.OrderItem(expr, descending)

    # -- FROM / windows --------------------------------------------------------

    def _from_clause(self) -> List[ast.FromItem]:
        items = [ast.FromItem(self._table_ref())]
        while True:
            if self._accept("PUNCT", ","):
                items.append(ast.FromItem(self._table_ref()))
                continue
            if self._accept_keyword("cross"):
                self._expect_keyword("join")
                items.append(ast.FromItem(self._table_ref()))
                continue
            if self._accept_keyword("left"):
                self._accept_keyword("outer")
                self._expect_keyword("join")
                ref = self._table_ref()
                self._expect_keyword("on")
                items.append(ast.FromItem(ref, self._expr(),
                                          join_type="left"))
                continue
            saw_inner = self._accept_keyword("inner")
            if self._accept_keyword("join"):
                ref = self._table_ref()
                self._expect_keyword("on")
                items.append(ast.FromItem(ref, self._expr()))
                continue
            if saw_inner:
                raise ParseError("expected JOIN after INNER", self.current)
            break
        return items

    def _table_ref(self) -> ast.TableRef:
        name = self._ident()
        window = self._window_clause()
        alias = None
        if self._accept_keyword("as"):
            alias = self._ident()
        elif self.current.kind == "IDENT":
            alias = self._advance().value
        return ast.TableRef(name, alias, window)

    def _window_clause(self) -> Optional[ast.WindowClause]:
        if not self._accept("PUNCT", "["):
            return None
        self._expect_keyword("range")
        size = int(self._expect("NUMBER").value)
        time_based = False
        if self._accept_keyword("seconds"):
            time_based = True
        else:
            self._accept_keyword("tuples")
        slide = None
        if self._accept_keyword("slide"):
            slide = int(self._expect("NUMBER").value)
            unit = self._accept_keyword("seconds", "tuples")
            if time_based and unit == "tuples":
                raise ParseError("window mixes SECONDS and TUPLES",
                                 self.current)
            if not time_based and unit == "seconds":
                raise ParseError("window mixes TUPLES and SECONDS",
                                 self.current)
        self._expect("PUNCT", "]")
        return ast.WindowClause(size, slide, time_based)

    # -- expressions -------------------------------------------------------------

    def _expr(self) -> ast.Expr:
        return self._or_expr()

    def _or_expr(self) -> ast.Expr:
        left = self._and_expr()
        while self._accept_keyword("or"):
            left = ast.BinaryOp("or", left, self._and_expr())
        return left

    def _and_expr(self) -> ast.Expr:
        left = self._not_expr()
        while self._accept_keyword("and"):
            left = ast.BinaryOp("and", left, self._not_expr())
        return left

    def _not_expr(self) -> ast.Expr:
        if self._accept_keyword("not"):
            return ast.UnaryOp("not", self._not_expr())
        return self._predicate()

    def _predicate(self) -> ast.Expr:
        left = self._additive()
        if self._accept_keyword("is"):
            negated = bool(self._accept_keyword("not"))
            self._expect_keyword("null")
            return ast.IsNull(left, negated)
        negated = bool(self._accept_keyword("not"))
        if self._accept_keyword("between"):
            low = self._additive()
            self._expect_keyword("and")
            high = self._additive()
            return ast.Between(left, low, high, negated)
        if self._accept_keyword("in"):
            self._expect("PUNCT", "(")
            if self._check("KEYWORD", "select"):
                sub = self._select_core()
                self._expect("PUNCT", ")")
                return ast.InSubquery(left, sub, negated)
            items = [self._expr()]
            while self._accept("PUNCT", ","):
                items.append(self._expr())
            self._expect("PUNCT", ")")
            return ast.InList(left, items, negated)
        if self._accept_keyword("like"):
            pattern = self._expect("STRING").value
            return ast.Like(left, pattern, negated)
        if negated:
            raise ParseError("expected BETWEEN, IN or LIKE after NOT",
                             self.current)
        for op in ("=", "<>", "!=", "<=", ">=", "<", ">"):
            if self._accept("OP", op):
                normalized = {"=": "==", "<>": "!=", "!=": "!="}.get(op, op)
                return ast.BinaryOp(normalized, left, self._additive())
        return left

    def _additive(self) -> ast.Expr:
        left = self._multiplicative()
        while True:
            if self._accept("OP", "+"):
                left = ast.BinaryOp("+", left, self._multiplicative())
            elif self._accept("OP", "-"):
                left = ast.BinaryOp("-", left, self._multiplicative())
            elif self._accept("OP", "||"):
                left = ast.BinaryOp("||", left, self._multiplicative())
            else:
                return left

    def _multiplicative(self) -> ast.Expr:
        left = self._unary()
        while True:
            if self._accept("OP", "*"):
                left = ast.BinaryOp("*", left, self._unary())
            elif self._accept("OP", "/"):
                left = ast.BinaryOp("/", left, self._unary())
            elif self._accept("OP", "%"):
                left = ast.BinaryOp("%", left, self._unary())
            else:
                return left

    def _unary(self) -> ast.Expr:
        if self._accept("OP", "-"):
            return ast.UnaryOp("-", self._unary())
        if self._accept("OP", "+"):
            return self._unary()
        return self._primary()

    def _primary(self) -> ast.Expr:
        token = self.current
        if token.kind == "NUMBER":
            self._advance()
            return ast.Literal(token.value)
        if token.kind == "STRING":
            self._advance()
            return ast.Literal(token.value)
        if self._accept_keyword("true"):
            return ast.Literal(True)
        if self._accept_keyword("false"):
            return ast.Literal(False)
        if self._accept_keyword("null"):
            return ast.Literal(None)
        if self._accept_keyword("case"):
            return self._case()
        if self._accept_keyword("cast"):
            self._expect("PUNCT", "(")
            operand = self._expr()
            self._expect_keyword("as")
            type_name = self._type_name()
            self._expect("PUNCT", ")")
            return ast.Cast(operand, type_name)
        if (token.kind == "KEYWORD" and token.value in _AGG_KEYWORDS
                and self.tokens[self.pos + 1].matches("PUNCT", "(")):
            self._advance()
            return self._call(token.value)
        if token.kind == "IDENT":
            name = self._advance().value
            if self._check("PUNCT", "("):
                return self._call(name)
            if self._accept("PUNCT", "."):
                return ast.ColumnRef(self._ident(), table=name)
            return ast.ColumnRef(name)
        if self._accept("PUNCT", "("):
            expr = self._expr()
            self._expect("PUNCT", ")")
            return expr
        raise ParseError(f"unexpected token {token.value!r} in expression",
                         token)

    def _call(self, name: str) -> ast.FunctionCall:
        self._expect("PUNCT", "(")
        distinct = bool(self._accept_keyword("distinct"))
        if name == "count" and self._accept("OP", "*"):
            self._expect("PUNCT", ")")
            return ast.FunctionCall("count", [ast.Star()], distinct)
        args: List[ast.Expr] = []
        if not self._check("PUNCT", ")"):
            args.append(self._expr())
            while self._accept("PUNCT", ","):
                args.append(self._expr())
        self._expect("PUNCT", ")")
        return ast.FunctionCall(name, args, distinct)

    def _case(self) -> ast.Case:
        whens = []
        while self._accept_keyword("when"):
            cond = self._expr()
            self._expect_keyword("then")
            whens.append((cond, self._expr()))
        if not whens:
            raise ParseError("CASE needs at least one WHEN", self.current)
        else_ = self._expr() if self._accept_keyword("else") else None
        self._expect_keyword("end")
        return ast.Case(whens, else_)


def parse(text: str) -> ast.Statement:
    """Parse one SQL statement (a trailing ``;`` is allowed)."""
    return Parser(text).parse_statement()


def parse_script(text: str) -> List[ast.Statement]:
    """Parse a ``;``-separated sequence of statements."""
    return Parser(text).parse_script()
