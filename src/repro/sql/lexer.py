"""SQL tokenizer.

Hand-written scanner producing a flat token list. Keywords are
case-insensitive; identifiers are lower-cased (MonetDB folds unquoted
identifiers to lower case). String literals use single quotes with ``''``
escaping; ``--`` starts a line comment and ``/* */`` a block comment.
"""

from __future__ import annotations

from typing import List

from repro.errors import LexerError

KEYWORDS = frozenset("""
    select from where group by having order asc desc limit offset distinct
    and or not in is null like between as join inner left on cross
    create table stream drop insert into values index using
    range slide seconds tuples case when then else end cast
    true false count sum avg min max continuous query
    outer union all delete update set explain
""".split())

# multi-character operators first so the scanner is greedy
_OPERATORS = ("<>", "<=", ">=", "!=", "||", "=", "<", ">", "+", "-", "*",
              "/", "%")
_PUNCT = "(),.;[]"


class Token:
    """One lexical token: ``kind`` in IDENT/KEYWORD/NUMBER/STRING/OP/PUNCT/EOF."""

    __slots__ = ("kind", "value", "pos")

    def __init__(self, kind: str, value, pos: int):
        self.kind = kind
        self.value = value
        self.pos = pos

    def __repr__(self) -> str:
        return f"Token({self.kind}, {self.value!r}, @{self.pos})"

    def is_keyword(self, word: str) -> bool:
        return self.kind == "KEYWORD" and self.value == word

    def matches(self, kind: str, value=None) -> bool:
        return self.kind == kind and (value is None or self.value == value)


def tokenize(text: str) -> List[Token]:
    """Scan *text* into tokens ending with one EOF token."""
    tokens: List[Token] = []
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch.isspace():
            i += 1
            continue
        if text.startswith("--", i):
            nl = text.find("\n", i)
            i = n if nl < 0 else nl + 1
            continue
        if text.startswith("/*", i):
            end = text.find("*/", i + 2)
            if end < 0:
                raise LexerError("unterminated block comment", i)
            i = end + 2
            continue
        if ch == "'":
            value, i = _scan_string(text, i)
            tokens.append(Token("STRING", value, i))
            continue
        if ch == '"':
            end = text.find('"', i + 1)
            if end < 0:
                raise LexerError("unterminated quoted identifier", i)
            tokens.append(Token("IDENT", text[i + 1:end], i))
            i = end + 1
            continue
        if ch.isdigit() or (ch == "." and i + 1 < n and text[i + 1].isdigit()):
            value, i = _scan_number(text, i)
            tokens.append(Token("NUMBER", value, i))
            continue
        if ch.isalpha() or ch == "_":
            start = i
            while i < n and (text[i].isalnum() or text[i] == "_"):
                i += 1
            word = text[start:i].lower()
            if word in KEYWORDS:
                tokens.append(Token("KEYWORD", word, start))
            else:
                tokens.append(Token("IDENT", word, start))
            continue
        matched = False
        for op in _OPERATORS:
            if text.startswith(op, i):
                tokens.append(Token("OP", op, i))
                i += len(op)
                matched = True
                break
        if matched:
            continue
        if ch in _PUNCT:
            tokens.append(Token("PUNCT", ch, i))
            i += 1
            continue
        raise LexerError(f"unexpected character {ch!r}", i)
    tokens.append(Token("EOF", None, n))
    return tokens


def _scan_string(text: str, i: int):
    out = []
    i += 1
    n = len(text)
    while i < n:
        ch = text[i]
        if ch == "'":
            if i + 1 < n and text[i + 1] == "'":
                out.append("'")
                i += 2
                continue
            return "".join(out), i + 1
        out.append(ch)
        i += 1
    raise LexerError("unterminated string literal", i)


def _scan_number(text: str, i: int):
    start = i
    n = len(text)
    seen_dot = False
    seen_exp = False
    while i < n:
        ch = text[i]
        if ch.isdigit():
            i += 1
        elif ch == "." and not seen_dot and not seen_exp:
            seen_dot = True
            i += 1
        elif ch in "eE" and not seen_exp and i > start:
            seen_exp = True
            i += 1
            if i < n and text[i] in "+-":
                i += 1
        else:
            break
    raw = text[start:i]
    try:
        value = float(raw) if (seen_dot or seen_exp) else int(raw)
    except ValueError:
        raise LexerError(f"bad numeric literal {raw!r}", start) from None
    return value, i
