"""Scalar and aggregate function registry for the SQL layer.

Scalar functions are vectorized: each implementation receives BATs (and
is responsible for nil propagation) and returns a BAT. The binder
resolves names and argument types here, so adding a function is one
:func:`register` call.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

import numpy as np

from repro.errors import BindError, KernelError
from repro.mal import kernel
from repro.mal.bat import BAT
from repro.storage import types as dt


class FunctionDef:
    """A scalar function: type rule + vectorized implementation."""

    def __init__(self, name: str, min_args: int, max_args: int,
                 result_type: Callable[[List[dt.DataType]], dt.DataType],
                 impl: Callable[..., BAT]):
        self.name = name
        self.min_args = min_args
        self.max_args = max_args
        self.result_type = result_type
        self.impl = impl

    def check_arity(self, n: int) -> None:
        if not (self.min_args <= n <= self.max_args):
            raise BindError(
                f"{self.name}: expected between {self.min_args} and "
                f"{self.max_args} arguments, got {n}")


_SCALAR: Dict[str, FunctionDef] = {}

AGGREGATES = frozenset(["count", "sum", "avg", "min", "max",
                        "stddev", "variance"])


def register(name: str, min_args: int, max_args: int, result_type,
             impl) -> None:
    """Register a scalar function under *name* (lower-cased)."""
    _SCALAR[name.lower()] = FunctionDef(name.lower(), min_args, max_args,
                                        result_type, impl)


def lookup(name: str) -> FunctionDef:
    try:
        return _SCALAR[name.lower()]
    except KeyError:
        raise BindError(f"unknown function {name!r}") from None


def is_aggregate(name: str) -> bool:
    return name.lower() in AGGREGATES


def is_scalar(name: str) -> bool:
    return name.lower() in _SCALAR


def aggregate_result_type(op: str, arg_type: Optional[dt.DataType]
                          ) -> dt.DataType:
    """Type rule for the five standard aggregates."""
    op = op.lower()
    if op == "count":
        return dt.INT
    if arg_type is None:
        raise BindError(f"{op} requires an argument")
    if op in ("avg", "stddev", "variance"):
        if not arg_type.is_numeric:
            raise BindError(
                f"{op} over non-numeric type {arg_type.name}")
        return dt.FLOAT
    if op == "sum":
        if not arg_type.is_numeric:
            raise BindError(f"sum over non-numeric type {arg_type.name}")
        return arg_type
    if op in ("min", "max"):
        return arg_type
    raise BindError(f"unknown aggregate {op!r}")


# ---------------------------------------------------------------------
# implementation helpers
# ---------------------------------------------------------------------

def _numeric_unary(fn, out_float: bool = True):
    """Lift a float->float numpy ufunc into a nil-propagating column op."""

    def impl(a: BAT) -> BAT:
        if not a.dtype.is_numeric:
            raise KernelError("numeric function over non-numeric column")
        mask = a.nil_mask()
        vals = a.values.astype(np.float64).copy()
        vals[mask] = 0.0
        with np.errstate(invalid="ignore", divide="ignore"):
            res = fn(vals)
        res = np.asarray(res, dtype=np.float64)
        bad = ~np.isfinite(res)
        if out_float:
            res[mask | bad] = np.nan
            return BAT.from_array(dt.FLOAT, res)
        out = np.where(mask | bad, 0, res).astype(np.int64)
        out[mask | bad] = dt.INT_NIL
        return BAT.from_array(dt.INT, out)

    return impl


def _string_unary(fn, out_type: dt.DataType):
    def impl(a: BAT) -> BAT:
        if not a.dtype.is_string:
            raise KernelError("string function over non-string column")
        if out_type.is_string:
            out = [None if v is None else fn(v) for v in a.values]
            return BAT.from_values(dt.STRING, out)
        out = [dt.INT_NIL if v is None else fn(v) for v in a.values]
        return BAT.from_array(dt.INT, np.asarray(out, dtype=np.int64))

    return impl


def _first_numeric(types: List[dt.DataType]) -> dt.DataType:
    if not types[0].is_numeric:
        raise BindError(f"expected numeric argument, got {types[0].name}")
    return types[0]


def _always(t: dt.DataType):
    return lambda types: t


# abs keeps the argument type; everything below that returns FLOAT
register("abs", 1, 1, _first_numeric, lambda a: _abs_impl(a))
register("sqrt", 1, 1, _always(dt.FLOAT), _numeric_unary(np.sqrt))
register("exp", 1, 1, _always(dt.FLOAT), _numeric_unary(np.exp))
register("ln", 1, 1, _always(dt.FLOAT), _numeric_unary(np.log))
register("log", 1, 1, _always(dt.FLOAT), _numeric_unary(np.log10))
register("floor", 1, 1, _always(dt.INT),
         _numeric_unary(np.floor, out_float=False))
register("ceil", 1, 1, _always(dt.INT),
         _numeric_unary(np.ceil, out_float=False))
register("ceiling", 1, 1, _always(dt.INT),
         _numeric_unary(np.ceil, out_float=False))
register("sign", 1, 1, _always(dt.INT),
         _numeric_unary(np.sign, out_float=False))


def _abs_impl(a: BAT) -> BAT:
    mask = a.nil_mask()
    if a.dtype is dt.FLOAT:
        return BAT.from_array(dt.FLOAT, np.abs(a.values))
    if a.dtype is dt.INT:
        out = np.abs(np.where(mask, 0, a.values)).astype(np.int64)
        out[mask] = dt.INT_NIL
        return BAT.from_array(dt.INT, out)
    raise KernelError("abs over non-numeric column")


def _round_impl(a: BAT, digits: Optional[BAT] = None) -> BAT:
    if not a.dtype.is_numeric:
        raise KernelError("round over non-numeric column")
    nd = 0
    if digits is not None:
        if len(digits) == 0:
            nd = 0
        else:
            d = digits.get(0)
            nd = 0 if d is None else int(d)
    mask = a.nil_mask()
    vals = a.values.astype(np.float64).copy()
    vals[mask] = 0.0
    res = np.round(vals, nd)
    res[mask] = np.nan
    return BAT.from_array(dt.FLOAT, res)


register("round", 1, 2, _always(dt.FLOAT), _round_impl)

register("length", 1, 1, _always(dt.INT), _string_unary(len, dt.INT))
register("lower", 1, 1, _always(dt.STRING),
         _string_unary(str.lower, dt.STRING))
register("upper", 1, 1, _always(dt.STRING),
         _string_unary(str.upper, dt.STRING))
register("trim", 1, 1, _always(dt.STRING),
         _string_unary(str.strip, dt.STRING))


def _substr_impl(s: BAT, start: BAT, length: Optional[BAT] = None) -> BAT:
    """SQL SUBSTR: 1-based start, optional length."""
    if not s.dtype.is_string:
        raise KernelError("substr over non-string column")
    starts = start.values
    lens = length.values if length is not None else None
    out = []
    for i, v in enumerate(s.values):
        if v is None or dt.is_nil(dt.INT, starts[i]):
            out.append(None)
            continue
        begin = max(int(starts[i]) - 1, 0)
        if lens is None:
            out.append(v[begin:])
        elif dt.is_nil(dt.INT, lens[i]):
            out.append(None)
        else:
            out.append(v[begin:begin + int(lens[i])])
    return BAT.from_values(dt.STRING, out)


register("substr", 2, 3, _always(dt.STRING), _substr_impl)
register("substring", 2, 3, _always(dt.STRING), _substr_impl)


def _concat_type(types: List[dt.DataType]) -> dt.DataType:
    return dt.STRING


def _concat_impl(*args: BAT) -> BAT:
    out = None
    for arg in args:
        rendered = kernel.calc_cast(arg, dt.STRING)
        out = rendered if out is None else kernel.calc_arith("+", out,
                                                             rendered)
    return out


register("concat", 1, 8, _concat_type, _concat_impl)


def _coalesce_type(types: List[dt.DataType]) -> dt.DataType:
    out = types[0]
    for t in types[1:]:
        out = out if out == t else dt.common_type(out, t)
    return out


def _coalesce_impl(*args: BAT) -> BAT:
    out = args[0].copy()
    for arg in args[1:]:
        mask = out.nil_mask()
        if not mask.any():
            break
        take = arg
        if take.dtype != out.dtype:
            take = kernel.calc_cast(take, out.dtype)
        values = out.values
        values[mask] = take.values[mask]
    return out


register("coalesce", 2, 8, _coalesce_type, _coalesce_impl)


def _nullif_impl(a: BAT, b: BAT) -> BAT:
    eq = kernel.calc_cmp("==", a, b)
    out = a.copy()
    hit = eq.values == 1
    values = out.values
    if out.dtype.is_string:
        for i in np.nonzero(hit)[0]:
            values[i] = None
    else:
        values[hit] = out.dtype.nil
    return out


register("nullif", 2, 2, lambda types: types[0], _nullif_impl)


def _power_impl(a: BAT, b: BAT) -> BAT:
    amask = a.nil_mask()
    bmask = b.nil_mask()
    av = a.values.astype(np.float64).copy()
    bv = b.values.astype(np.float64).copy()
    av[amask] = 0.0
    bv[bmask] = 0.0
    with np.errstate(invalid="ignore", over="ignore"):
        res = np.power(av, bv)
    res[amask | bmask | ~np.isfinite(res)] = np.nan
    return BAT.from_array(dt.FLOAT, res)


register("power", 2, 2, _always(dt.FLOAT), _power_impl)
register("mod", 2, 2, lambda types: dt.common_type(types[0], types[1]),
         lambda a, b: kernel.calc_arith("%", a, b))
