"""Logical query plans.

The planner produces these trees; the optimizer rewrites them; the
executor (and the MAL compiler) consume them. Column keys inside plans
are *qualified* (``alias.column``); the final Project assigns the
user-visible output names.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.errors import BindError
from repro.sql.ast import WindowClause
from repro.sql.expressions import BoundAgg, BoundExpr
from repro.storage.schema import ColumnDef, Schema


class PlanNode:
    """Base class; every node exposes ``children`` and output ``schema``."""

    children: List["PlanNode"]
    schema: Schema

    def label(self) -> str:
        """One-line description for plan pretty-printing."""
        return type(self).__name__

    def pretty(self, indent: int = 0) -> str:
        lines = ["  " * indent + self.label()]
        for child in self.children:
            lines.append(child.pretty(indent + 1))
        return "\n".join(lines)

    def replace_children(self, children: Sequence["PlanNode"]) -> None:
        self.children = list(children)

    def __repr__(self) -> str:
        return self.label()


class ScanNode(PlanNode):
    """Full scan of a persistent table; output keys are alias-qualified."""

    def __init__(self, table_name: str, alias: str, schema: Schema):
        self.table_name = table_name.lower()
        self.alias = alias.lower()
        self.children = []
        self.schema = Schema(
            ColumnDef(f"{self.alias}.{c.name}", c.dtype) for c in schema)
        # columns the projection-pruning rule decided we actually need;
        # None means all
        self.needed: Optional[List[str]] = None

    def label(self) -> str:
        cols = "" if self.needed is None else \
            " [" + ", ".join(self.needed) + "]"
        return f"Scan({self.table_name} as {self.alias}{cols})"


class StreamScanNode(PlanNode):
    """Scan of a stream basket, optionally windowed.

    For one-time queries the runtime binds the basket's full current
    content; for continuous queries the DataCell rewriter binds the
    current window slice chosen by the scheduler.
    """

    def __init__(self, stream_name: str, alias: str, schema: Schema,
                 window: Optional[WindowClause] = None):
        self.stream_name = stream_name.lower()
        self.alias = alias.lower()
        self.window = window
        self.children = []
        self.schema = Schema(
            ColumnDef(f"{self.alias}.{c.name}", c.dtype) for c in schema)
        self.needed: Optional[List[str]] = None

    def label(self) -> str:
        win = ""
        if self.window is not None:
            unit = "s" if self.window.time_based else "t"
            win = (f" [range {self.window.size}{unit}"
                   + (f" slide {self.window.slide}{unit}"
                      if self.window.slide is not None else "")
                   + "]")
        return f"StreamScan({self.stream_name} as {self.alias}{win})"


class FilterNode(PlanNode):
    def __init__(self, child: PlanNode, predicate: BoundExpr):
        self.children = [child]
        self.predicate = predicate
        self.schema = child.schema

    @property
    def child(self) -> PlanNode:
        return self.children[0]

    def replace_children(self, children) -> None:
        self.children = list(children)
        self.schema = self.children[0].schema

    def label(self) -> str:
        return f"Filter({self.predicate.sql()})"


class ProjectNode(PlanNode):
    def __init__(self, child: PlanNode, exprs: Sequence[BoundExpr],
                 names: Sequence[str]):
        if len(exprs) != len(names):
            raise BindError("project: expr/name count mismatch")
        self.children = [child]
        self.exprs = list(exprs)
        self.names = [n.lower() for n in names]
        self.schema = Schema(ColumnDef(n, e.dtype)
                             for n, e in zip(self.names, self.exprs))

    @property
    def child(self) -> PlanNode:
        return self.children[0]

    def label(self) -> str:
        items = ", ".join(f"{e.sql()} as {n}"
                          for e, n in zip(self.exprs, self.names))
        return f"Project({items})"


class JoinNode(PlanNode):
    """Equi-join on one key pair plus optional residual predicate.

    ``left_key``/``right_key`` of ``None`` makes this a cross product
    (the optimizer tries hard to avoid leaving it that way).
    ``join_type`` is ``"inner"`` or ``"left"`` (left outer: unmatched
    left rows survive with nil-padded right columns).
    """

    def __init__(self, left: PlanNode, right: PlanNode,
                 left_key: Optional[BoundExpr],
                 right_key: Optional[BoundExpr],
                 residual: Optional[BoundExpr] = None,
                 join_type: str = "inner"):
        self.children = [left, right]
        self.left_key = left_key
        self.right_key = right_key
        self.residual = residual
        self.join_type = join_type
        if join_type in ("semi", "anti"):
            # semi/anti joins filter the left input; right columns do
            # not survive
            self.schema = left.schema
        else:
            self.schema = Schema(list(left.schema.columns)
                                 + list(right.schema.columns))

    @property
    def left(self) -> PlanNode:
        return self.children[0]

    @property
    def right(self) -> PlanNode:
        return self.children[1]

    def replace_children(self, children) -> None:
        self.children = list(children)
        if self.join_type in ("semi", "anti"):
            self.schema = self.children[0].schema
        else:
            self.schema = Schema(
                list(self.children[0].schema.columns)
                + list(self.children[1].schema.columns))

    def label(self) -> str:
        if self.left_key is None:
            cond = "cross"
        else:
            cond = f"{self.left_key.sql()} = {self.right_key.sql()}"
        extra = f" and {self.residual.sql()}" if self.residual else ""
        kind = {"left": "LeftJoin", "semi": "SemiJoin",
                "anti": "AntiJoin"}.get(self.join_type, "Join")
        return f"{kind}({cond}{extra})"


class AggregateNode(PlanNode):
    """Hash aggregation.

    Output columns: the group keys (named by their SQL rendering) then
    one column per aggregate, named ``$agg0``, ``$agg1``, ...
    """

    def __init__(self, child: PlanNode, group_exprs: Sequence[BoundExpr],
                 group_names: Sequence[str], aggs: Sequence[BoundAgg]):
        self.children = [child]
        self.group_exprs = list(group_exprs)
        self.group_names = [n.lower() for n in group_names]
        self.aggs = list(aggs)
        self.agg_names = [f"$agg{i}" for i in range(len(self.aggs))]
        cols = [ColumnDef(n, e.dtype)
                for n, e in zip(self.group_names, self.group_exprs)]
        cols += [ColumnDef(n, a.dtype)
                 for n, a in zip(self.agg_names, self.aggs)]
        self.schema = Schema(cols)

    @property
    def child(self) -> PlanNode:
        return self.children[0]

    def label(self) -> str:
        groups = ", ".join(e.sql() for e in self.group_exprs)
        aggs = ", ".join(a.sql() for a in self.aggs)
        return f"Aggregate(by=[{groups}] aggs=[{aggs}])"


class UnionNode(PlanNode):
    """UNION ALL of compatible inputs (row-wise concatenation).

    Children are full query subtrees whose output schemas were aligned
    by the planner (names from the first branch, types coerced).
    """

    def __init__(self, children: Sequence[PlanNode]):
        if len(children) < 2:
            raise BindError("union needs at least two inputs")
        self.children = list(children)
        self.schema = children[0].schema

    def label(self) -> str:
        return f"UnionAll({len(self.children)} branches)"


class SortNode(PlanNode):
    def __init__(self, child: PlanNode,
                 keys: Sequence[Tuple[BoundExpr, bool]]):
        self.children = [child]
        self.keys = list(keys)  # (expr, descending)
        self.schema = child.schema

    @property
    def child(self) -> PlanNode:
        return self.children[0]

    def replace_children(self, children) -> None:
        self.children = list(children)
        self.schema = self.children[0].schema

    def label(self) -> str:
        keys = ", ".join(e.sql() + (" desc" if d else "")
                         for e, d in self.keys)
        return f"Sort({keys})"


class LimitNode(PlanNode):
    def __init__(self, child: PlanNode, offset: int, limit: Optional[int]):
        self.children = [child]
        self.offset = offset
        self.limit = limit
        self.schema = child.schema

    @property
    def child(self) -> PlanNode:
        return self.children[0]

    def replace_children(self, children) -> None:
        self.children = list(children)
        self.schema = self.children[0].schema

    def label(self) -> str:
        return f"Limit(offset={self.offset}, limit={self.limit})"


class DistinctNode(PlanNode):
    def __init__(self, child: PlanNode):
        self.children = [child]
        self.schema = child.schema

    @property
    def child(self) -> PlanNode:
        return self.children[0]

    def replace_children(self, children) -> None:
        self.children = list(children)
        self.schema = self.children[0].schema

    def label(self) -> str:
        return "Distinct"


def walk_plan(node: PlanNode):
    """Yield *node* and all descendants, pre-order."""
    yield node
    for child in node.children:
        yield from walk_plan(child)


def find_stream_scans(node: PlanNode) -> List[StreamScanNode]:
    return [n for n in walk_plan(node) if isinstance(n, StreamScanNode)]


def find_scans(node: PlanNode) -> List[ScanNode]:
    return [n for n in walk_plan(node) if isinstance(n, ScanNode)]
