"""Exception hierarchy for the DataCell reproduction.

Every error raised by the library derives from :class:`DataCellError`, so
applications can catch one base class. Subclasses mirror the layer that
raised them (SQL front-end, catalog, kernel, streaming runtime).
"""

from __future__ import annotations


class DataCellError(Exception):
    """Base class for all library errors."""


class SQLError(DataCellError):
    """Base class for errors raised by the SQL front-end."""


class LexerError(SQLError):
    """Raised when the tokenizer meets an unrecognizable character."""

    def __init__(self, message: str, position: int = -1):
        super().__init__(message)
        self.position = position


class ParseError(SQLError):
    """Raised when the token stream does not match the grammar."""

    def __init__(self, message: str, token=None):
        super().__init__(message)
        self.token = token


class BindError(SQLError):
    """Raised during semantic analysis (unknown columns, type errors)."""


class TypeMismatchError(BindError):
    """Raised when an expression combines incompatible types."""


class CatalogError(DataCellError):
    """Raised for schema-object problems (missing/duplicate tables...)."""


class KernelError(DataCellError):
    """Raised by the columnar kernel (BAT/operator misuse)."""


class MALError(DataCellError):
    """Raised by the MAL program layer (unknown opcode, bad arity)."""


class StreamError(DataCellError):
    """Raised by the streaming runtime (baskets, receptors, scheduler)."""


class WindowError(StreamError):
    """Raised for invalid window specifications."""


class SchedulerError(StreamError):
    """Raised for Petri-net scheduling problems."""


class FactoryError(StreamError):
    """Raised when a continuous-query factory fails while firing."""

    def __init__(self, message: str, query_name: str = "", cause=None):
        super().__init__(message)
        self.query_name = query_name
        self.cause = cause


class PersistenceError(DataCellError):
    """Raised when snapshot save/load fails."""


class StoreError(DataCellError):
    """Raised by the durable stream log (segments, manifest, recovery)."""


class ReplayGap(StoreError):
    """Raised when a replay asks for history below the retention floor.

    A caller that registered ``from_start``/``from_offset`` believes it
    will see *all* history from the requested offset; when retention
    (or a short log) has already discarded part of that range, silently
    serving the surviving suffix would claim completeness the data
    cannot back. ``requested`` is the offset the caller asked for and
    ``floor`` the oldest offset that still exists — re-request at or
    above ``floor`` to acknowledge the gap.
    """

    def __init__(self, message: str, stream: str = "",
                 requested: int = 0, floor: int = 0):
        super().__init__(message)
        self.stream = stream
        self.requested = requested
        self.floor = floor


class InjectedCrash(Exception):
    """Raised by the segment writer's fault-injection hook.

    Deliberately *not* a :class:`DataCellError`: test harnesses that
    simulate a crash mid-write must not have the signal swallowed by a
    blanket ``except DataCellError``. The log writer treats it exactly
    like a process kill — the partial write stays on disk as a torn
    tail for recovery to truncate.
    """


class NetError(DataCellError):
    """Raised by the network edge (wire protocol, server, client).

    ``code`` carries the machine-readable error code from an ERROR
    frame (``"shed"``, ``"evicted"``, ``"bad_frame"``, ...) when the
    error crossed the wire; it is ``""`` for local failures.
    """

    def __init__(self, message: str, code: str = ""):
        super().__init__(message)
        self.code = code
