"""MonetDB/DataCell reproduction: online analytics in a streaming
column-store.

Public API highlights:

* :class:`repro.core.DataCellEngine` — the system facade (DDL, one-time
  queries, continuous queries, stream sources, the scheduler loop).
* :mod:`repro.streams` — rate-controlled sources and the built-in
  workload generators (sensors, web logs, network traffic, Linear Road).
* :mod:`repro.sql` — the SQL compiler stack, usable standalone.
* :mod:`repro.mal` — the columnar kernel (BATs, bulk operators, MAL
  programs).
* :mod:`repro.net` — the network edge: the framed wire protocol, the
  long-running :class:`~repro.net.server.DataCellServer` and the
  blocking :class:`~repro.net.client.DataCellClient`.
"""

from repro.core.engine import ContinuousQuery, DataCellEngine
from repro.core.clock import SimulatedClock, WallClock
from repro.core.emitter import CallbackSink, CollectingSink, NullSink
from repro.streams.source import ListSource, RateSource

__version__ = "1.0.0"

__all__ = ["DataCellEngine", "ContinuousQuery", "SimulatedClock",
           "WallClock", "CallbackSink", "CollectingSink", "NullSink",
           "ListSource", "RateSource", "__version__"]
