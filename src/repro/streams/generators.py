"""Synthetic workload generators for the paper's motivating domains.

The introduction motivates DataCell with *"web logs, network monitoring
and scientific data management"* plus mobile/cloud monitoring; each
generator below produces a reproducible (seeded) stream for one of those
domains, with the schema the examples and benchmarks use.

All generators return plain row lists (wrap in
:class:`~repro.streams.source.RateSource` to set the event rate) plus a
``*_SCHEMA`` DDL constant.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Tuple

SENSOR_SCHEMA = ("CREATE STREAM sensors ("
                 "sensor_id INT, room INT, temperature FLOAT, "
                 "humidity FLOAT)")

WEBLOG_SCHEMA = ("CREATE STREAM weblog ("
                 "client_id INT, url VARCHAR(64), status INT, "
                 "bytes INT, latency_ms FLOAT)")

NETFLOW_SCHEMA = ("CREATE STREAM netflow ("
                  "src_ip INT, dst_ip INT, dst_port INT, protocol INT, "
                  "packets INT, bytes INT)")

TICKS_SCHEMA = ("CREATE STREAM ticks ("
                "symbol VARCHAR(8), price FLOAT, volume INT)")


def sensor_rows(n: int, sensors: int = 16, rooms: int = 4,
                seed: int = 42) -> List[Tuple]:
    """Scientific/IoT telemetry: drifting temperatures per sensor.

    Each sensor random-walks around a room-specific base temperature;
    ~0.5% of readings are NULL (failed measurement), exercising nil
    handling end to end.
    """
    rng = random.Random(seed)
    base = [18.0 + (s % rooms) * 2.0 for s in range(sensors)]
    temp = list(base)
    rows: List[Tuple] = []
    for i in range(n):
        s = rng.randrange(sensors)
        temp[s] += rng.gauss(0, 0.3) + (base[s] - temp[s]) * 0.05
        reading: Optional[float] = round(temp[s], 2)
        if rng.random() < 0.005:
            reading = None
        humidity = round(rng.uniform(30.0, 70.0), 1)
        rows.append((s, s % rooms, reading, humidity))
    return rows


def weblog_rows(n: int, clients: int = 500, urls: int = 40,
                seed: int = 42) -> List[Tuple]:
    """Web click/request log with Zipf-ish URL popularity and a small
    error rate; bytes/latency correlate with the URL."""
    rng = random.Random(seed)
    url_pool = [f"/page/{i}" for i in range(urls - 5)] + [
        "/", "/login", "/search", "/cart", "/checkout"]
    weights = [1.0 / (rank + 1) for rank in range(len(url_pool))]
    rows: List[Tuple] = []
    for i in range(n):
        url = rng.choices(url_pool, weights)[0]
        status = rng.choices([200, 301, 404, 500],
                             [0.93, 0.03, 0.03, 0.01])[0]
        size = max(200, int(rng.gauss(8000, 3000)))
        latency = round(max(1.0, rng.gauss(45.0, 20.0)), 2)
        if status == 500:
            latency = round(latency * rng.uniform(3, 8), 2)
        rows.append((rng.randrange(clients), url, status, size, latency))
    return rows


def netflow_rows(n: int, hosts: int = 200, attackers: int = 3,
                 seed: int = 42) -> List[Tuple]:
    """Network-monitoring flows.

    A handful of "attacker" sources emit high-fan-out small flows
    (port-scan shaped) on top of a normal traffic mix, so threshold
    queries have something to catch.
    """
    rng = random.Random(seed)
    attacker_ips = [10_000 + a for a in range(attackers)]
    rows: List[Tuple] = []
    for i in range(n):
        if rng.random() < 0.08:
            src = rng.choice(attacker_ips)
            dst = rng.randrange(hosts)
            port = rng.randrange(1, 1024)
            packets = rng.randint(1, 3)
            size = packets * rng.randint(40, 80)
            proto = 6
        else:
            src = rng.randrange(hosts)
            dst = rng.randrange(hosts)
            port = rng.choice([80, 443, 22, 53, 8080])
            packets = rng.randint(1, 100)
            size = packets * rng.randint(200, 1500)
            proto = rng.choice([6, 6, 6, 17])
        rows.append((src, dst, port, proto, packets, size))
    return rows


def tick_rows(n: int, symbols: Sequence[str] = ("ACME", "GLOB", "INIT",
                                                "UMBR", "WAYN"),
              seed: int = 42) -> List[Tuple]:
    """Market ticks: geometric random-walk prices per symbol."""
    rng = random.Random(seed)
    price = {s: rng.uniform(20.0, 200.0) for s in symbols}
    rows: List[Tuple] = []
    for i in range(n):
        s = rng.choice(list(symbols))
        price[s] *= 1.0 + rng.gauss(0, 0.002)
        rows.append((s, round(price[s], 4), rng.randint(1, 500)))
    return rows


def reference_rooms(rooms: int = 4) -> List[Tuple]:
    """Dimension rows for the sensors workload (stream ⋈ table demos)."""
    names = ["lab", "office", "server-room", "hall", "archive", "roof"]
    return [(r, names[r % len(names)], 15.0 + 2.0 * r, 26.0 + 1.0 * r)
            for r in range(rooms)]


ROOMS_SCHEMA = ("CREATE TABLE rooms ("
                "room INT, name VARCHAR(16), min_temp FLOAT, "
                "max_temp FLOAT)")
