"""A scaled-down Linear Road benchmark substrate.

The demo paper points at the companion system paper: *"DataCell is shown
to perform extremely well, easily meeting the requirements of the Linear
Road Benchmark in [16]"*. The real benchmark needs the authors' traffic
simulator and hours of wall-clock driving; we substitute a compact,
seeded traffic simulator that produces the same *kind* of input — car
position reports on a multi-segment expressway with accidents and the
congestion they cause — so the DataCell queries (segment statistics,
accident detection, toll computation) exercise the same code paths.

Scaling knobs: ``timescale`` compresses benchmark seconds into simulated
milliseconds; the default produces a few thousand reports instead of
millions. The response-time requirement scales with it (the official
constraint is 5 benchmark seconds per notification).

Ground truth: the generator returns the accident intervals it injected,
and :func:`reference_segment_stats` / :func:`expected_tolls` recompute
the query answers in plain Python for validation.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Tuple

POSITION_SCHEMA = ("CREATE STREAM position ("
                   "car INT, speed FLOAT, xway INT, lane INT, "
                   "dir INT, seg INT, pos INT)")

# Linear Road toll rule: toll only when the 5-minute average speed is
# below 40 mph, more than 50 cars are in the segment, and there is no
# accident in the 5 downstream segments.
LAV_THRESHOLD = 40.0
CAR_THRESHOLD = 50
RESPONSE_CONSTRAINT_S = 5.0


def toll(lav: Optional[float], cars: int, accident: bool,
         car_threshold: int = CAR_THRESHOLD) -> int:
    """The benchmark's toll formula (0 when the segment flows freely)."""
    if accident or cars <= car_threshold:
        return 0
    if lav is not None and lav >= LAV_THRESHOLD:
        return 0
    return 2 * (cars - car_threshold) ** 2


class Accident:
    """Ground-truth record of one injected accident."""

    __slots__ = ("xway", "direction", "seg", "start_ms", "end_ms")

    def __init__(self, xway: int, direction: int, seg: int,
                 start_ms: int, end_ms: int):
        self.xway = xway
        self.direction = direction
        self.seg = seg
        self.start_ms = start_ms
        self.end_ms = end_ms

    def active_at(self, t_ms: int) -> bool:
        return self.start_ms <= t_ms < self.end_ms

    def __repr__(self) -> str:
        return (f"Accident(x{self.xway} d{self.direction} seg{self.seg} "
                f"[{self.start_ms},{self.end_ms})ms)")


class LinearRoadConfig:
    """Generator parameters (defaults give a laptop-scale run)."""

    def __init__(self, cars: int = 120, xways: int = 1, segments: int = 10,
                 duration_s: int = 120, report_every_s: int = 3,
                 seg_length: int = 5280, accident_rate: float = 0.01,
                 accident_duration_s: int = 20, seed: int = 7,
                 timescale: float = 1.0):
        self.cars = cars
        self.xways = xways
        self.segments = segments
        self.duration_s = duration_s
        self.report_every_s = report_every_s
        self.seg_length = seg_length
        self.accident_rate = accident_rate
        self.accident_duration_s = accident_duration_s
        self.seed = seed
        # 1.0 = benchmark seconds mapped to simulated seconds;
        # 0.1 squeezes the run 10x (all ms timestamps shrink alike)
        self.timescale = timescale

    def scale_ms(self, seconds: float) -> int:
        return int(seconds * 1000 * self.timescale)

    @property
    def response_constraint_ms(self) -> int:
        return self.scale_ms(RESPONSE_CONSTRAINT_S)


class _Car:
    __slots__ = ("car_id", "xway", "direction", "lane", "pos", "speed",
                 "enter_s", "stopped_until_s")

    def __init__(self, car_id: int, xway: int, direction: int, lane: int,
                 pos: float, speed: float, enter_s: int):
        self.car_id = car_id
        self.xway = xway
        self.direction = direction
        self.lane = lane
        self.pos = pos
        self.speed = speed
        self.enter_s = enter_s
        self.stopped_until_s = -1


class LinearRoadGenerator:
    """Seeded traffic simulator emitting position reports.

    Cars enter over time, cruise with mildly varying speed, and a small
    fraction stop mid-road long enough to register as an accident (the
    benchmark detects one after four identical consecutive reports).
    Cars upstream of an active accident slow down sharply, dragging the
    segment's average speed below the toll threshold.
    """

    def __init__(self, config: Optional[LinearRoadConfig] = None):
        self.config = config if config is not None else LinearRoadConfig()
        self.accidents: List[Accident] = []

    def events(self) -> List[Tuple[int, Tuple]]:
        """Simulate and return ``(timestamp_ms, position_report)``."""
        cfg = self.config
        rng = random.Random(cfg.seed)
        road_len = cfg.segments * cfg.seg_length
        cars: List[_Car] = []
        for cid in range(cfg.cars):
            direction = rng.randint(0, 1)
            cars.append(_Car(
                cid, rng.randrange(cfg.xways), direction,
                rng.randint(0, 2),
                0.0 if direction == 0 else float(road_len - 1),
                rng.uniform(40.0, 100.0),
                rng.randrange(0, max(cfg.duration_s // 2, 1))))
        self.accidents = []
        active: Dict[Tuple[int, int, int], Accident] = {}
        out: List[Tuple[int, Tuple]] = []

        for t in range(0, cfg.duration_s, cfg.report_every_s):
            t_ms = cfg.scale_ms(t)
            # expire accidents
            for key, acc in list(active.items()):
                if t_ms >= acc.end_ms:
                    del active[key]
            live = [car for car in cars
                    if t >= car.enter_s and 0 <= car.pos < road_len]
            # first pass: accident decisions, so every car in this tick
            # sees the same set of active accidents
            for car in live:
                seg = int(car.pos // cfg.seg_length)
                key = (car.xway, car.direction, seg)
                if car.stopped_until_s <= t \
                        and rng.random() < cfg.accident_rate \
                        and key not in active:
                    car.stopped_until_s = t + cfg.accident_duration_s
                    acc = Accident(car.xway, car.direction, seg, t_ms,
                                   cfg.scale_ms(t +
                                                cfg.accident_duration_s))
                    self.accidents.append(acc)
                    active[key] = acc
            for car in live:
                seg = int(car.pos // cfg.seg_length)
                key = (car.xway, car.direction, seg)
                if car.stopped_until_s > t:
                    speed = 0.0
                elif key in active or self._near_accident(active, car,
                                                          seg):
                    speed = rng.uniform(5.0, 15.0)  # congestion crawl
                else:
                    car.speed += rng.gauss(0, 2.0)
                    car.speed = min(max(car.speed, 30.0), 110.0)
                    speed = car.speed
                out.append((t_ms, (car.car_id, round(speed, 2), car.xway,
                                   car.lane, car.direction, seg,
                                   int(car.pos))))
                # advance: mph -> feet per report interval
                feet = speed * 5280.0 / 3600.0 * cfg.report_every_s
                car.pos += feet if car.direction == 0 else -feet
        return out

    @staticmethod
    def _near_accident(active: Dict, car: _Car, seg: int) -> bool:
        """True when the car is within 5 segments upstream of a crash."""
        for (xway, direction, aseg), _acc in active.items():
            if xway != car.xway or direction != car.direction:
                continue
            delta = aseg - seg if direction == 0 else seg - aseg
            if 0 <= delta <= 5:
                return True
        return False


# ---------------------------------------------------------------------
# reference (oracle) computations for validation
# ---------------------------------------------------------------------

def reference_segment_stats(events: Sequence[Tuple[int, Tuple]],
                            window_ms: int, slide_ms: int,
                            anchor_ms: int = 0
                            ) -> List[Tuple[int, Dict]]:
    """Per-window ``{(xway, dir, seg): (avg_speed, car_count)}``.

    Matches the semantics of the DataCell time-window query
    ``SELECT xway, dir, seg, avg(speed), count(*) ... GROUP BY``:
    windows end at ``anchor + k*slide`` and cover ``window_ms``.
    ``car_count`` counts *distinct* cars, per the benchmark definition.
    """
    if not events:
        return []
    out: List[Tuple[int, Dict]] = []
    end = anchor_ms + window_ms
    last_ts = max(ts for ts, _row in events)
    while end <= last_ts + slide_ms:
        lo = end - window_ms
        groups: Dict[Tuple[int, int, int], List] = {}
        for ts, row in events:
            if not (lo <= ts < end):
                continue
            car, speed, xway, _lane, direction, seg, _pos = row
            entry = groups.setdefault((xway, direction, seg),
                                      [0.0, 0, set()])
            entry[0] += speed
            entry[1] += 1
            entry[2].add(car)
        summary = {key: (value[0] / value[1], len(value[2]))
                   for key, value in groups.items()}
        out.append((end, summary))
        end += slide_ms
    return out


def expected_tolls(stats: List[Tuple[int, Dict]],
                   accidents: Sequence[Accident],
                   car_threshold: int = CAR_THRESHOLD
                   ) -> List[Tuple[int, Dict]]:
    """Toll per (window end, segment) from reference stats + accidents."""
    out: List[Tuple[int, Dict]] = []
    for end, summary in stats:
        tolls: Dict[Tuple[int, int, int], int] = {}
        for (xway, direction, seg), (lav, cars) in summary.items():
            blocked = any(
                acc.xway == xway and acc.direction == direction
                and (0 <= (acc.seg - seg if direction == 0
                           else seg - acc.seg) <= 5)
                and acc.active_at(end - 1)
                for acc in accidents)
            tolls[(xway, direction, seg)] = toll(lav, cars, blocked,
                                                 car_threshold)
        out.append((end, tolls))
    return out


def detect_stopped_cars(events: Sequence[Tuple[int, Tuple]],
                        consecutive: int = 4
                        ) -> List[Tuple[int, int, Tuple[int, int, int]]]:
    """Benchmark accident rule: a car is *stopped* after ``consecutive``
    identical position reports. Returns ``(ts, car, (xway, dir, seg))``
    detection events."""
    history: Dict[int, List[Tuple[int, int]]] = {}
    detections = []
    flagged = set()
    for ts, row in events:
        car, speed, xway, _lane, direction, seg, pos = row
        run = history.setdefault(car, [])
        if run and run[-1][1] == pos:
            run.append((ts, pos))
        else:
            history[car] = [(ts, pos)]
            flagged.discard(car)
            continue
        if len(history[car]) >= consecutive and car not in flagged:
            flagged.add(car)
            detections.append((ts, car, (xway, direction, seg)))
    return detections
