"""Workload stream sources and generators."""

from repro.streams.source import (CSVSource, GeneratorSource, ListSource,
                                  RateSource, StreamSource, merge_sources)
from repro.streams.generators import (NETFLOW_SCHEMA, ROOMS_SCHEMA,
                                      SENSOR_SCHEMA, TICKS_SCHEMA,
                                      WEBLOG_SCHEMA, netflow_rows,
                                      reference_rooms, sensor_rows,
                                      tick_rows, weblog_rows)
from repro.streams.linearroad import (POSITION_SCHEMA, LinearRoadConfig,
                                      LinearRoadGenerator)

__all__ = ["CSVSource", "GeneratorSource", "ListSource", "RateSource",
           "StreamSource", "merge_sources",
           "NETFLOW_SCHEMA", "ROOMS_SCHEMA", "SENSOR_SCHEMA",
           "TICKS_SCHEMA", "WEBLOG_SCHEMA", "netflow_rows",
           "reference_rooms", "sensor_rows", "tick_rows", "weblog_rows",
           "POSITION_SCHEMA", "LinearRoadConfig", "LinearRoadGenerator"]
