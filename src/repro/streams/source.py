"""Stream sources: timestamped tuple producers feeding receptors.

A source is an iterator of ``(timestamp_ms, row)`` pairs with
non-decreasing timestamps. :class:`RateSource` assigns timestamps to an
untimed row iterable at a fixed event rate — the demo's "data files which
can be streamed in the system at rates which are configurable".
"""

from __future__ import annotations

import csv
from typing import Any, Callable, Iterable, Iterator, List, \
    Sequence, Tuple

from repro.errors import StreamError

Event = Tuple[int, Sequence[Any]]


class StreamSource:
    """Base class; subclasses implement :meth:`events`."""

    def events(self) -> Iterator[Event]:
        raise NotImplementedError

    def __iter__(self) -> Iterator[Event]:
        return self.events()


class ListSource(StreamSource):
    """Replays explicit ``(timestamp_ms, row)`` pairs."""

    def __init__(self, events: Iterable[Event]):
        self._events = list(events)
        last = None
        for ts, _row in self._events:
            if last is not None and ts < last:
                raise StreamError("ListSource timestamps must be "
                                  "non-decreasing")
            last = ts

    def events(self) -> Iterator[Event]:
        return iter(self._events)

    def __len__(self) -> int:
        return len(self._events)


class RateSource(StreamSource):
    """Assigns timestamps to rows at *rate* events per second.

    ``start_ms`` is the timestamp of the first event; event ``i`` arrives
    at ``start_ms + i * 1000 / rate`` (integer milliseconds).
    """

    def __init__(self, rows: Iterable[Sequence[Any]], rate: float,
                 start_ms: int = 0):
        if rate <= 0:
            raise StreamError("rate must be positive")
        self._rows = rows
        self.rate = float(rate)
        self.start_ms = int(start_ms)

    def events(self) -> Iterator[Event]:
        period = 1000.0 / self.rate
        for i, row in enumerate(self._rows):
            yield (self.start_ms + int(i * period), row)


class GeneratorSource(StreamSource):
    """Wraps a zero-argument factory of event iterators (replayable)."""

    def __init__(self, factory: Callable[[], Iterator[Event]]):
        self._factory = factory

    def events(self) -> Iterator[Event]:
        return self._factory()


class CSVSource(StreamSource):
    """Reads rows from a CSV file; parses with the given converters.

    ``converters`` is one callable per column (e.g. ``int``/``float``/
    ``str``). Timestamps are assigned by rate, like :class:`RateSource`.
    """

    def __init__(self, path: str, converters: Sequence[Callable],
                 rate: float, start_ms: int = 0, skip_header: bool = True):
        self.path = path
        self.converters = list(converters)
        self.rate = float(rate)
        self.start_ms = int(start_ms)
        self.skip_header = skip_header

    def events(self) -> Iterator[Event]:
        period = 1000.0 / self.rate

        def rows():
            with open(self.path, newline="") as f:
                reader = csv.reader(f)
                for i, raw in enumerate(reader):
                    if i == 0 and self.skip_header:
                        continue
                    yield [conv(cell) if cell != "" else None
                           for conv, cell in zip(self.converters, raw)]

        for i, row in enumerate(rows()):
            yield (self.start_ms + int(i * period), row)


def merge_sources(*sources: StreamSource) -> StreamSource:
    """Merge several sources into one time-ordered event stream."""

    def factory() -> Iterator[Event]:
        import heapq

        iters = [iter(s) for s in sources]
        heads: List[Tuple[int, int, Sequence[Any]]] = []
        for idx, it in enumerate(iters):
            first = next(it, None)
            if first is not None:
                heads.append((first[0], idx, first[1]))
        heapq.heapify(heads)
        while heads:
            ts, idx, row = heapq.heappop(heads)
            yield (ts, row)
            following = next(iters[idx], None)
            if following is not None:
                heapq.heappush(heads, (following[0], idx, following[1]))

    return GeneratorSource(factory)
