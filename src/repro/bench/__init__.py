"""Benchmark harness utilities."""

from repro.bench.harness import (ResultTable, run_windowed_query, speedup,
                                 time_callable)
from repro.bench.reporting import (compare_runs, load_json, save_json,
                                   to_json, to_markdown)

__all__ = ["ResultTable", "run_windowed_query", "speedup",
           "time_callable", "to_markdown", "to_json", "save_json",
           "load_json", "compare_runs"]
