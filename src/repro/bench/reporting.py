"""Result rendering helpers: markdown/JSON export for experiment
tables (EXPERIMENTS.md is generated from these)."""

from __future__ import annotations

import json
from typing import Any, Dict, List, Sequence

from repro.bench.harness import ResultTable


def to_markdown(table: ResultTable) -> str:
    """Render a :class:`ResultTable` as a GitHub-flavored table."""

    def fmt(value: Any) -> str:
        if isinstance(value, float):
            return f"{value:.4f}"
        return str(value)

    lines = [f"### {table.title}", ""]
    lines.append("| " + " | ".join(table.columns) + " |")
    lines.append("|" + "|".join("---" for _ in table.columns) + "|")
    for row in table.rows:
        lines.append("| " + " | ".join(fmt(v) for v in row) + " |")
    return "\n".join(lines)


def to_json(tables: Sequence[ResultTable]) -> str:
    """Serialize experiment tables for archival / regression diffing."""
    payload: List[Dict[str, Any]] = []
    for table in tables:
        payload.append({"title": table.title,
                        "columns": table.columns,
                        "rows": table.rows})
    return json.dumps(payload, indent=2, default=str)


def save_json(tables: Sequence[ResultTable], path: str) -> None:
    with open(path, "w") as f:
        f.write(to_json(tables))


def load_json(path: str) -> List[Dict[str, Any]]:
    with open(path) as f:
        return json.load(f)


def compare_runs(before: List[Dict[str, Any]],
                 after: List[Dict[str, Any]],
                 tolerance: float = 0.5) -> List[str]:
    """Flag numeric regressions between two archived runs.

    Returns human-readable lines for every cell whose value moved by
    more than ``tolerance`` (relative). Meant for eyeballing whether a
    code change shifted an experiment's shape.
    """
    findings: List[str] = []
    by_title = {entry["title"]: entry for entry in before}
    for entry in after:
        base = by_title.get(entry["title"])
        if base is None or base["columns"] != entry["columns"]:
            continue
        for row_b, row_a in zip(base["rows"], entry["rows"]):
            for col, vb, va in zip(entry["columns"], row_b, row_a):
                if not isinstance(vb, (int, float)) \
                        or not isinstance(va, (int, float)):
                    continue
                if isinstance(vb, bool) or isinstance(va, bool):
                    continue
                if vb == 0:
                    continue
                drift = abs(va - vb) / abs(vb)
                if drift > tolerance:
                    findings.append(
                        f"{entry['title']} / {col}: {vb} -> {va} "
                        f"({drift:+.0%})")
    return findings
