"""Benchmark harness utilities shared by the per-experiment benches.

Each experiment module in ``benchmarks/`` builds a workload, runs the
engine configurations it compares, and reports rows through
:class:`ResultTable`. The harness keeps measurement conventions uniform:
simulated clock for determinism, wall-clock ``perf_counter`` for the
processing-cost axis, and medians over repeats.
"""

from __future__ import annotations

import statistics
import time
from typing import Any, Callable, Dict, List, Sequence, Tuple

from repro.core.engine import DataCellEngine
from repro.streams.source import RateSource


def time_callable(fn: Callable[[], Any], repeats: int = 3,
                  warmup: int = 1) -> Tuple[float, Any]:
    """Median wall-clock seconds over *repeats* runs (after *warmup*)."""
    result = None
    for _ in range(warmup):
        result = fn()
    samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        samples.append(time.perf_counter() - start)
    return statistics.median(samples), result


def run_windowed_query(rows: Sequence[Sequence[Any]], schema_sql: str,
                       stream: str, query_sql: str, mode: str,
                       rate: float = 100000.0,
                       cache_enabled: bool = True) -> Dict[str, Any]:
    """Feed *rows* through one continuous query; returns measurements.

    The stream is driven to exhaustion under a simulated clock, so the
    returned ``busy_seconds`` is pure processing cost (the quantity the
    demo's analysis pane charts), independent of the input rate.
    """
    engine = DataCellEngine()
    engine.execute(schema_sql)
    query = engine.register_continuous(query_sql, mode=mode,
                                       cache_enabled=cache_enabled)
    engine.attach_source(stream, RateSource(rows, rate=rate))
    engine.run_until_drained()
    factory = query.factory
    stats = factory.stats()
    sink = engine.results(query.name)
    return {
        "mode": query.mode,
        "fires": factory.fires,
        "busy_seconds": factory.busy_seconds,
        "ms_per_fire": (factory.busy_seconds / factory.fires * 1000
                        if factory.fires else 0.0),
        "tuples_in": factory.tuples_in,
        "rows_out": factory.rows_out,
        "batches": list(sink.batches),
        "stats": stats,
        "engine": engine,
        "query": query,
    }


class ResultTable:
    """Collects experiment rows and renders the report block."""

    def __init__(self, title: str, columns: Sequence[str]):
        self.title = title
        self.columns = list(columns)
        self.rows: List[List[Any]] = []

    def add(self, *values: Any) -> None:
        if len(values) != len(self.columns):
            raise ValueError(
                f"{self.title}: expected {len(self.columns)} values")
        self.rows.append(list(values))

    def render(self) -> str:
        def fmt(v: Any) -> str:
            if isinstance(v, float):
                return f"{v:.4f}"
            return str(v)

        cells = [[fmt(v) for v in row] for row in self.rows]
        widths = [max([len(c)] + [len(r[i]) for r in cells])
                  for i, c in enumerate(self.columns)]
        lines = [f"== {self.title} =="]
        lines.append("  ".join(c.ljust(w)
                               for c, w in zip(self.columns, widths)))
        lines.append("  ".join("-" * w for w in widths))
        for row in cells:
            lines.append("  ".join(c.ljust(w)
                                   for c, w in zip(row, widths)))
        return "\n".join(lines)

    def show(self) -> None:
        print()
        print(self.render())

    def as_dicts(self) -> List[Dict[str, Any]]:
        return [dict(zip(self.columns, row)) for row in self.rows]


def speedup(baseline: float, candidate: float) -> float:
    """baseline/candidate, guarded against division by ~zero."""
    if candidate <= 1e-12:
        return float("inf")
    return baseline / candidate
