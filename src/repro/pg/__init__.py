"""Postgres wire-protocol front end.

Any PostgreSQL v3 client — ``psql``, ``pg8000``, a JDBC driver — can
speak to the DataCell engine: plain SELECTs run one-shot, ``CREATE
STREAM`` / ``INSERT`` feed receptors, and the ``TAIL`` extension turns
the connection into a live result feed from a standing query's
delivery queue. The listener shares the asyncio I/O core
(:class:`~repro.net.aio.IOLoop`) with the framed-protocol server.

Modules: :mod:`~repro.pg.messages` (byte-level v3 messages),
:mod:`~repro.pg.protocol` (async stream framing),
:mod:`~repro.pg.session` (per-connection state machine),
:mod:`~repro.pg.server` (:class:`~repro.pg.server.PGWireServer`),
:mod:`~repro.pg.cli` (standalone ``python -m repro.pg.cli``).
"""

from repro.pg.server import PGWireServer

__all__ = ["PGWireServer"]
