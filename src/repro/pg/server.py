"""The Postgres wire-protocol listener.

:class:`PGWireServer` binds a port any PostgreSQL v3 client can speak
to and runs one :class:`~repro.pg.session.PGSession` coroutine per
accepted connection on the shared asyncio core
(:class:`~repro.net.aio.IOLoop`). It can host an engine by itself
(``drive_scheduler=True`` starts the same scheduler thread the framed
server runs) or ride next to a :class:`~repro.net.server.
DataCellServer` on one loop and one engine — ``repro serve
--pg-port`` does exactly that, with the framed server driving the
scheduler.

CancelRequest support: each session gets a (pid, secret) key pair at
startup (``BackendKeyData``); a second connection carrying
``CancelRequest`` with a matching pair sets the session's cancel
event, which interrupts a running ``TAIL``.

Typical use::

    engine = DataCellEngine(clock=WallClock())
    engine.execute("CREATE STREAM s (k INT, v FLOAT)")
    with PGWireServer(engine, drive_scheduler=True) as server:
        ...  # psql -h server.host -p server.port
"""

from __future__ import annotations

import asyncio
import random
import threading
import time
from typing import Any, Dict, List, Optional

from repro.core.clock import WallClock
from repro.core.engine import DataCellEngine
from repro.core.live import drain_scheduler
from repro.errors import NetError, StreamError
from repro.net.aio import IOLoop
from repro.pg.session import PGSession


class PGWireServer:
    """Hosts one engine behind a Postgres-speaking listen socket."""

    def __init__(self, engine: Optional[DataCellEngine] = None,
                 host: str = "127.0.0.1", port: int = 0, *,
                 max_client_queue: int = 256,
                 drive_scheduler: bool = False,
                 step_interval_s: float = 0.002,
                 io_loop: Optional[IOLoop] = None):
        """``port=0`` binds an ephemeral port (read :attr:`port` after
        :meth:`start`; the conventional choice is 5433 to stay clear
        of a real Postgres on 5432). ``max_client_queue`` bounds each
        ``TAIL``'s delivery queue, exactly like the framed server's
        subscriber queues. ``drive_scheduler`` starts a scheduler
        thread stepping the engine — leave it off when a
        :class:`~repro.net.server.DataCellServer` on the same engine
        already drives one. ``io_loop`` shares an existing
        :class:`~repro.net.aio.IOLoop`; by default the server runs its
        own."""
        if engine is None:
            engine = DataCellEngine(clock=WallClock())
        if not isinstance(engine.clock, WallClock):
            raise StreamError("PGWireServer needs an engine on a "
                              "WallClock")
        self.engine = engine
        self.host = host
        self.port = port
        self.max_client_queue = max_client_queue
        self.drive_scheduler = drive_scheduler
        self.step_interval_s = step_interval_s
        self.io = io_loop if io_loop is not None else IOLoop()
        # serializes pg statements against each other (engine calls
        # run on worker threads; see PGSession._exec_engine)
        self.exec_lock = threading.Lock()
        self._aio_server: Optional[asyncio.AbstractServer] = None
        self._sched_thread: Optional[threading.Thread] = None
        self._stop = threading.Event()
        self._lock = threading.Lock()
        self._sessions: List[PGSession] = []
        self._cancel_keys: Dict[tuple, PGSession] = {}
        # counters folded in from closed sessions, so aggregate stats
        # survive disconnects (mirrors the framed server's totals)
        self._totals = {"queries": 0, "rows_sent": 0, "tails": 0,
                        "errors": 0}
        self._session_counter = 0
        self._rng = random.Random()
        self.connections_total = 0
        self.cancels = 0
        self.steps = 0
        self.running = False

    # -- lifecycle -----------------------------------------------------

    def start(self) -> "PGWireServer":
        if self.running:
            raise StreamError("server already started")
        self.io.acquire()
        try:
            self._aio_server = self.io.call(self._open_listener())
        except Exception:
            self.io.release()
            raise
        sockname = self._aio_server.sockets[0].getsockname()
        self.host, self.port = sockname[:2]
        self.engine.pg_edge = self
        self._stop.clear()
        self.running = True
        if self.drive_scheduler:
            self._sched_thread = threading.Thread(
                target=self._sched_loop, daemon=True,
                name="datacell-pg-scheduler")
            self._sched_thread.start()
        return self

    async def _open_listener(self) -> asyncio.AbstractServer:
        return await asyncio.start_server(
            self._on_connection, host=self.host, port=self.port,
            backlog=512, reuse_address=True)

    def stop(self, timeout_s: float = 5.0) -> None:
        """Stop accepting, drain the net (when driving the scheduler),
        close every session, release the loop (idempotent)."""
        if not self.running:
            return
        self.running = False
        if self._aio_server is not None:
            server = self._aio_server
            self._aio_server = None
            try:
                self.io.call(_close_listener(server), timeout_s)
            except Exception:
                pass
        if self._sched_thread is not None:
            deadline = time.monotonic() + timeout_s
            while time.monotonic() < deadline:
                if not self.engine.scheduler.enabled_transitions():
                    break
                time.sleep(0.01)
            self._stop.set()
            self._sched_thread.join(timeout_s)
            self._sched_thread = None
            drain_scheduler(self.engine.scheduler)
        for session in self._snapshot_sessions():
            try:
                self.io.call(self._close_session(session), timeout_s)
            except Exception:
                pass
        if self.engine.pg_edge is self:
            self.engine.pg_edge = None
        self.io.release(timeout_s)

    def __enter__(self) -> "PGWireServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    def _sched_loop(self) -> None:
        while not self._stop.is_set():
            self.engine.scheduler.step()
            self.engine.maybe_checkpoint()
            self.steps += 1
            time.sleep(self.step_interval_s)

    # -- connections (coroutines on the I/O loop) ----------------------

    async def _on_connection(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        if not self.running:
            writer.close()
            return
        sock = writer.get_extra_info("socket")
        if sock is not None:
            try:
                import socket as _socket
                sock.setsockopt(_socket.IPPROTO_TCP,
                                _socket.TCP_NODELAY, 1)
            except OSError:
                pass
        with self._lock:
            self._session_counter += 1
            session = PGSession(self, reader, writer,
                                self._session_counter,
                                self._rng.getrandbits(31))
            self._sessions.append(session)
            self._cancel_keys[(session.cid, session.secret)] = session
            self.connections_total += 1
        session.task = asyncio.current_task()
        try:
            await session.run()
        except NetError:
            pass  # peer vanished or spoke garbage; drop the session
        except asyncio.CancelledError:
            # teardown cancelled the conversation; end normally —
            # asyncio's streams done-callback calls task.exception(),
            # which throws on a task left in the cancelled state
            pass
        finally:
            await self._close_session(session)

    async def _close_session(self, session: PGSession) -> None:
        with self._lock:
            if session.closed:
                return
            session.closed = True
            self._sessions = [s for s in self._sessions
                              if s is not session]
            self._cancel_keys.pop((session.cid, session.secret), None)
            for key in self._totals:
                self._totals[key] += getattr(session, key)
        try:
            session.writer.close()
        except Exception:
            pass
        # join the conversation task so nothing is torn down mid-await
        # when the loop later stops (no-op on the self-close path)
        task = session.task
        if task is not None and task is not asyncio.current_task():
            task.cancel()
            await asyncio.wait({task}, timeout=2.0)

    def cancel_request(self, pid: int, secret: int) -> None:
        """Handle a CancelRequest connection's key pair: wake the
        matching session's cancel event (unknown keys are ignored, as
        in Postgres)."""
        with self._lock:
            session = self._cancel_keys.get((pid, secret))
        if session is not None:
            self.cancels += 1
            session.cancel()

    # -- inspection ----------------------------------------------------

    def _snapshot_sessions(self) -> List[PGSession]:
        with self._lock:
            return list(self._sessions)

    def pg_stats(self) -> Dict[str, Any]:
        """Per-session and aggregate counters (the ``"pg"`` section of
        :meth:`DataCellEngine.network_stats`)."""
        with self._lock:
            entries = [s.stats() for s in self._sessions]
            totals = dict(self._totals)
        return {"address": f"{self.host}:{self.port}",
                "running": self.running,
                "connections_total": self.connections_total,
                "cancels": self.cancels,
                "queries": totals["queries"]
                + sum(e["queries"] for e in entries),
                "rows_sent": totals["rows_sent"]
                + sum(e["rows_sent"] for e in entries),
                "tails": totals["tails"]
                + sum(e["tails"] for e in entries),
                "errors": totals["errors"]
                + sum(e["errors"] for e in entries),
                "sessions": entries}

    def __repr__(self) -> str:
        state = "running" if self.running else "stopped"
        return (f"PGWireServer({self.host}:{self.port}, {state}, "
                f"sessions={len(self._sessions)})")


async def _close_listener(server: asyncio.AbstractServer) -> None:
    server.close()
    await server.wait_closed()
