"""Async stream framing for the Postgres v3 protocol.

Two read shapes exist on the wire: the *first* packet of a connection
(length-prefixed, no type byte — StartupMessage, SSLRequest,
GSSENCRequest or CancelRequest) and every subsequent typed message
(``type + length + payload``). Both readers live here so the session
state machine never touches raw structs.
"""

from __future__ import annotations

import asyncio
import struct
from typing import Optional, Tuple

from repro.errors import NetError
from repro.pg import messages as msg

_I32 = struct.Struct("!i")

# a startup packet larger than this is not a postgres client talking
MAX_STARTUP_BYTES = 16 * 1024
MAX_MESSAGE_BYTES = 64 * 1024 * 1024


class Startup:
    """Decoded first packet of a connection."""

    __slots__ = ("kind", "params", "pid", "secret")

    def __init__(self, kind: str, params=None, pid: int = 0,
                 secret: int = 0):
        self.kind = kind        # "startup" | "cancel"
        self.params = params or {}
        self.pid = pid
        self.secret = secret


async def read_startup(reader: asyncio.StreamReader,
                       writer: asyncio.StreamWriter
                       ) -> Optional[Startup]:
    """Read the connection's first packet, negotiating away SSL and
    GSSENC requests (one ``N`` byte each — "not supported, carry on in
    clear") until a StartupMessage or CancelRequest arrives. Returns
    ``None`` on EOF before a complete packet.
    """
    # a client may send SSLRequest then GSSENCRequest then startup
    for _ in range(4):
        head = await _read_exactly(reader, 4)
        if head is None:
            return None
        (length,) = _I32.unpack(head)
        if length < 8 or length > MAX_STARTUP_BYTES:
            raise NetError(f"bad startup packet length {length}",
                           code="bad_frame")
        body = await _read_exactly(reader, length - 4)
        if body is None:
            return None
        (code,) = _I32.unpack_from(body, 0)
        if code in (msg.SSL_REQUEST_CODE, msg.GSSENC_REQUEST_CODE):
            writer.write(b"N")
            await writer.drain()
            continue
        if code == msg.CANCEL_REQUEST_CODE:
            (pid,) = _I32.unpack_from(body, 4)
            (secret,) = _I32.unpack_from(body, 8)
            return Startup("cancel", pid=pid, secret=secret)
        if code == msg.PROTOCOL_3_0:
            return Startup("startup",
                           params=msg.parse_startup_payload(body[4:]))
        raise NetError(f"unsupported protocol version {code}",
                       code="bad_frame")
    raise NetError("startup negotiation did not converge",
                   code="bad_frame")


async def read_message(reader: asyncio.StreamReader
                       ) -> Optional[Tuple[bytes, bytes]]:
    """Next typed frontend message as ``(type_byte, payload)``;
    ``None`` on orderly EOF at a message boundary."""
    head = await _read_exactly(reader, 5)
    if head is None:
        return None
    type_byte = head[0:1]
    (length,) = _I32.unpack_from(head, 1)
    if length < 4 or length > MAX_MESSAGE_BYTES:
        raise NetError(f"bad message length {length}", code="bad_frame")
    payload = b""
    if length > 4:
        payload = await _read_exactly(reader, length - 4)
        if payload is None:
            raise NetError("connection closed mid-message", code="io")
    return type_byte, payload


async def _read_exactly(reader: asyncio.StreamReader,
                        n: int) -> Optional[bytes]:
    try:
        return await reader.readexactly(n)
    except asyncio.IncompleteReadError as exc:
        if exc.partial:
            raise NetError("connection closed mid-message",
                           code="io") from exc
        return None
    except (ConnectionError, OSError) as exc:
        raise NetError(f"recv failed: {exc}", code="io") from exc
