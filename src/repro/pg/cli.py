"""Standalone Postgres front end: ``python -m repro.pg.cli``.

Boots an engine (optionally from a shell script that creates streams
and registers standing queries), then serves *only* the Postgres wire
protocol — no framed listener — driving the scheduler itself::

    python -m repro.pg.cli --port 5433 --script init.sql
    psql -h 127.0.0.1 -p 5433 -c "SHOW STREAMS"

For both front ends on one engine use ``repro serve --pg-port``
(:mod:`repro.net.cli`), which shares a single I/O loop between them.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import IO, List, Optional

from repro.errors import DataCellError


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-pg", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=5433,
                        help="0 binds an ephemeral port")
    parser.add_argument("--script", default=None,
                        help="shell script (SQL + dot-commands) run "
                             "against the engine before serving")
    parser.add_argument("--client-queue", type=int, default=256,
                        help="delivery queue bound (batches per TAIL)")
    parser.add_argument("--step-ms", type=float, default=2.0,
                        help="scheduler step interval")
    parser.add_argument("--duration", type=float, default=None,
                        help="serve for N seconds, then exit "
                             "(default: until interrupted)")
    parser.add_argument("--port-file", default=None,
                        help="write the bound port here")
    parser.add_argument("--data-dir", default=None,
                        help="durable stream-log directory")
    parser.add_argument("--durability", default="async",
                        choices=("off", "async", "fsync"))
    return parser


def main(argv: Optional[List[str]] = None,
         out: Optional[IO] = None) -> int:
    out = out if out is not None else sys.stdout
    args = _build_parser().parse_args(argv)
    try:
        return _serve(args, out)
    except (DataCellError, OSError) as exc:
        sys.stderr.write(f"error: {exc}\n")
        return 1


def _serve(args, out: IO) -> int:
    from repro.cli import DataCellShell
    from repro.core.clock import WallClock
    from repro.core.engine import DataCellEngine
    from repro.pg.server import PGWireServer

    engine = DataCellEngine(clock=WallClock(),
                            data_dir=args.data_dir,
                            durability=args.durability)
    if args.script:
        shell = DataCellShell(engine=engine, out=out)
        with open(args.script) as f:
            shell.run(f, interactive=False)
    server = PGWireServer(engine, host=args.host, port=args.port,
                          max_client_queue=args.client_queue,
                          drive_scheduler=True,
                          step_interval_s=args.step_ms / 1000.0)
    server.start()
    out.write(f"postgres front end listening on "
              f"{server.host}:{server.port} "
              f"(psql -h {server.host} -p {server.port}; "
              f"{len(engine.queries())} standing queries)\n")
    out.flush()
    if args.port_file:
        with open(args.port_file, "w") as f:
            f.write(str(server.port))
    try:
        if args.duration is not None:
            time.sleep(args.duration)
        else:  # pragma: no cover - interactive path
            while True:
                time.sleep(0.5)
    except KeyboardInterrupt:  # pragma: no cover - interactive path
        pass
    finally:
        server.stop()
        engine.close()
    stats = server.pg_stats()
    out.write(f"served {stats['connections_total']} connections: "
              f"queries={stats['queries']} rows={stats['rows_sent']} "
              f"tails={stats['tails']}\n")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
