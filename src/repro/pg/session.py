"""Per-connection Postgres session: the backend state machine.

One coroutine per accepted socket runs the whole conversation —
startup, authentication, then the query loop. Both query sub-protocols
are spoken:

* **simple** (``psql``): ``Query`` → RowDescription + DataRows +
  CommandComplete + ReadyForQuery, one round trip per statement batch;
* **extended** (``pg8000``, JDBC): Parse/Bind/Describe/Execute/Sync,
  with the standard skip-until-Sync error recovery. Parameters
  (``$1``) and binary result formats are out of scope and rejected
  with SQLSTATE ``0A000``.

On top of the engine's SQL the session recognises a small streaming
dialect (intercepted before the parser):

=============================================  =======================
``REGISTER CONTINUOUS [QUERY] q [MODE m] AS``  register a standing
``  SELECT ...``                               query named ``q``
``UNREGISTER CONTINUOUS [QUERY] q``            remove it
``TAIL q [BATCHES n] [ROWS n] [TIMEOUT ms]``   stream ``q``'s live
                                               results as DataRows
``SHOW STREAMS`` / ``SHOW QUERIES``            catalog introspection
``BEGIN``/``COMMIT``/``ROLLBACK``/``SET ...``  accepted as no-ops (so
                                               drivers' preambles work)
=============================================  =======================

``TAIL`` is what turns a connection live: a bounded
:class:`~repro.core.emitter.QueueSink` is attached to the standing
query's emitter — the *same* delivery path a framed-protocol
subscriber uses — and its waker parks the coroutine on an
``asyncio.Event``, so an idle tail costs no CPU. A tail ends at its
BATCHES/ROWS/TIMEOUT bound (then ``CommandComplete``), on cancel
(``57014``), or by eviction when the client cannot keep up
(``55000``).

Engine calls run on a worker thread (never on the I/O loop) under the
server's execution lock, which serializes pg statements against each
other; concurrency with the scheduler thread follows the same rules as
every other engine client.
"""

from __future__ import annotations

import asyncio
import time
from typing import Any, Dict, List, Optional, Tuple

from repro.core.emitter import QueueSink
from repro.errors import (BindError, CatalogError, DataCellError,
                          LexerError, NetError, ParseError, ReplayGap,
                          StoreError, StreamError, TypeMismatchError)
from repro.pg import messages as msg
from repro.pg import protocol
from repro.sql import ast
from repro.sql.optimizer import Optimizer
from repro.sql.parser import parse_script
from repro.sql.planner import Planner
from repro.storage import types as dt

SERVER_VERSION = "13.0 (datacell-repro)"

_STARTUP_PARAMS = (
    ("server_version", SERVER_VERSION),
    ("server_encoding", "UTF8"),
    ("client_encoding", "UTF8"),
    ("DateStyle", "ISO, MDY"),
    ("TimeZone", "UTC"),
    ("integer_datetimes", "on"),
    ("standard_conforming_strings", "on"),
)


class PGError(Exception):
    """Session-level error mapped straight to an ErrorResponse."""

    def __init__(self, sqlstate: str, message: str,
                 hint: Optional[str] = None):
        super().__init__(message)
        self.sqlstate = sqlstate
        self.message = message
        self.hint = hint


def sqlstate_for(exc: BaseException) -> str:
    """Map an engine exception onto the closest SQLSTATE class."""
    if isinstance(exc, (ParseError, LexerError)):
        return "42601"  # syntax_error
    if isinstance(exc, TypeMismatchError):
        return "42804"  # datatype_mismatch
    if isinstance(exc, BindError):
        return "42703"  # undefined_column
    if isinstance(exc, CatalogError):
        return "42P01"  # undefined_table
    if isinstance(exc, (ReplayGap, StreamError, StoreError)):
        return "55000"  # object_not_in_prerequisite_state
    return "XX000"      # internal_error


def split_statements(text: str) -> List[str]:
    """Split a simple-Query string on top-level semicolons (quote
    aware); drops empty pieces."""
    parts: List[str] = []
    buf: List[str] = []
    quote: Optional[str] = None
    for ch in text:
        if quote:
            buf.append(ch)
            if ch == quote:
                quote = None
        elif ch in ("'", '"'):
            quote = ch
            buf.append(ch)
        elif ch == ";":
            parts.append("".join(buf))
            buf = []
        else:
            buf.append(ch)
    parts.append("".join(buf))
    return [p for p in (part.strip() for part in parts) if p]


# -- statement classification ------------------------------------------

class Command:
    """One classified statement: either a streaming-dialect command
    (``kind`` in register/unregister/tail/show/noop) or engine SQL
    (``kind == "sql"`` with the parsed ast statement)."""

    def __init__(self, kind: str, **kw: Any):
        self.kind = kind
        self.__dict__.update(kw)


_NOOP_TAGS = {"begin": "BEGIN", "commit": "COMMIT",
              "rollback": "ROLLBACK", "abort": "ROLLBACK",
              "set": "SET", "reset": "RESET", "discard": "DISCARD"}


def classify(sql: str) -> Command:
    """Classify one statement; raises engine parse errors for SQL and
    :class:`PGError` for malformed dialect commands."""
    words = sql.split()
    head = words[0].lower() if words else ""
    if head in _NOOP_TAGS:
        return Command("noop", tag=_NOOP_TAGS[head])
    if head == "register":
        return _classify_register(sql, words)
    if head == "unregister":
        if len(words) < 3 or words[1].lower() != "continuous":
            raise PGError("42601",
                          "expected UNREGISTER CONTINUOUS [QUERY] <name>")
        rest = words[2:]
        if rest and rest[0].lower() == "query":
            rest = rest[1:]
        if len(rest) != 1:
            raise PGError("42601",
                          "expected UNREGISTER CONTINUOUS [QUERY] <name>")
        return Command("unregister", name=rest[0].lower())
    if head == "tail":
        return _classify_tail(words)
    if head == "show" and len(words) == 2 \
            and words[1].lower() in ("streams", "queries"):
        return Command("show", what=words[1].lower())
    # engine SQL: parse now so syntax errors surface at Parse time
    stmts = parse_script(sql)
    if len(stmts) != 1:
        raise PGError("42601",
                      "cannot prepare a multi-statement string")
    return Command("sql", stmt=stmts[0])


def _classify_register(sql: str, words: List[str]) -> Command:
    lowered = [w.lower() for w in words]
    if len(lowered) < 2 or lowered[1] != "continuous":
        raise PGError("42601", "expected REGISTER CONTINUOUS [QUERY] "
                               "<name> [MODE <mode>] AS <select>")
    idx = 2
    if idx < len(lowered) and lowered[idx] == "query":
        idx += 1
    if idx >= len(lowered):
        raise PGError("42601", "REGISTER CONTINUOUS: missing name")
    name = words[idx].lower()
    idx += 1
    mode = "auto"
    if idx + 1 < len(lowered) and lowered[idx] == "mode":
        mode = lowered[idx + 1]
        idx += 2
    if idx >= len(lowered) or lowered[idx] != "as":
        raise PGError("42601", "REGISTER CONTINUOUS: missing AS "
                               "<select>")
    # the SELECT body is everything after this AS, original casing
    body = _text_after_keyword(sql, words, idx)
    if not body.strip():
        raise PGError("42601", "REGISTER CONTINUOUS: empty query body")
    return Command("register", name=name, mode=mode, query=body)


def _text_after_keyword(sql: str, words: List[str], idx: int) -> str:
    """The original text following the *idx*-th whitespace token."""
    pos = 0
    for i in range(idx + 1):
        pos = sql.lower().index(words[i].lower(), pos) + len(words[i])
    return sql[pos:]


def _classify_tail(words: List[str]) -> Command:
    if len(words) < 2:
        raise PGError("42601", "expected TAIL <query> [BATCHES n] "
                               "[ROWS n] [TIMEOUT ms]")
    name = words[1].lower()
    bounds = {"batches": None, "rows": None, "timeout": None}
    rest = [w.lower() for w in words[2:]]
    i = 0
    while i < len(rest):
        key = rest[i]
        if key not in bounds or i + 1 >= len(rest):
            raise PGError("42601", f"TAIL: unexpected token {key!r}")
        try:
            value = int(rest[i + 1])
        except ValueError:
            raise PGError("42601",
                          f"TAIL: {key.upper()} needs an integer, got "
                          f"{rest[i + 1]!r}") from None
        if value < 1:
            raise PGError("42601", f"TAIL: {key.upper()} must be >= 1")
        bounds[key] = value
        i += 2
    return Command("tail", name=name, batches=bounds["batches"],
                   rows=bounds["rows"], timeout_ms=bounds["timeout"])


class _Prepared:
    __slots__ = ("sql", "command")

    def __init__(self, sql: str, command: Command):
        self.sql = sql
        self.command = command


class PGSession:
    """One client connection's backend half (loop-thread owned)."""

    def __init__(self, server, reader: asyncio.StreamReader,
                 writer: asyncio.StreamWriter, cid: int,
                 secret: int):
        self.server = server
        self.reader = reader
        self.writer = writer
        self.cid = cid          # doubles as the cancel-key "pid"
        self.secret = secret
        peer = writer.get_extra_info("peername")
        self.peer = f"{peer[0]}:{peer[1]}" if isinstance(peer, tuple) \
            else str(peer)
        self.user = ""
        self.database = ""
        self.closed = False
        self.queries = 0        # statements executed
        self.rows_sent = 0
        self.tails = 0
        self.errors = 0
        self.tailing: Optional[str] = None  # live-tail query name
        self.task: Optional[asyncio.Task] = None  # the run() task
        self._cancel = asyncio.Event()
        self._stmts: Dict[str, _Prepared] = {}
        self._portals: Dict[str, _Prepared] = {}
        self._skip_until_sync = False

    # -- plumbing ------------------------------------------------------

    def _w(self, data: bytes) -> None:
        self.writer.write(data)

    async def _flush(self) -> None:
        try:
            await self.writer.drain()
        except (ConnectionError, OSError, RuntimeError) as exc:
            raise NetError(f"send failed: {exc}", code="io") from exc

    def cancel(self) -> None:
        """Request cancellation of the in-flight statement (threadsafe
        only via the I/O loop)."""
        self._cancel.set()

    async def _exec_engine(self, fn, *args) -> Any:
        """Run an engine call on a worker thread under the server's
        statement lock."""
        loop = asyncio.get_running_loop()

        def call():
            with self.server.exec_lock:
                return fn(*args)

        return await loop.run_in_executor(None, call)

    # -- conversation --------------------------------------------------

    async def run(self) -> None:
        """The whole conversation; returns when the client leaves."""
        startup = await protocol.read_startup(self.reader, self.writer)
        if startup is None:
            return
        if startup.kind == "cancel":
            # a cancel connection carries no queries: signal and drop
            self.server.cancel_request(startup.pid, startup.secret)
            return
        self.user = startup.params.get("user", "")
        self.database = startup.params.get("database", self.user)
        self._w(msg.authentication_ok())
        for name, value in _STARTUP_PARAMS:
            self._w(msg.parameter_status(name, value))
        self._w(msg.backend_key_data(self.cid, self.secret))
        self._w(msg.ready_for_query())
        await self._flush()
        while True:
            frame = await protocol.read_message(self.reader)
            if frame is None:
                return
            mtype, payload = frame
            if mtype == msg.TERMINATE:
                return
            if self._skip_until_sync and mtype != msg.SYNC:
                continue
            await self._dispatch(mtype, payload)

    async def _dispatch(self, mtype: bytes, payload: bytes) -> None:
        if mtype == msg.QUERY:
            await self._on_query(payload)
        elif mtype == msg.PARSE:
            await self._guarded(self._on_parse, payload)
        elif mtype == msg.BIND:
            await self._guarded(self._on_bind, payload)
        elif mtype == msg.DESCRIBE:
            await self._guarded(self._on_describe, payload)
        elif mtype == msg.EXECUTE:
            await self._guarded(self._on_execute, payload)
        elif mtype == msg.CLOSE:
            await self._guarded(self._on_close, payload)
        elif mtype == msg.SYNC:
            self._skip_until_sync = False
            self._w(msg.ready_for_query())
            await self._flush()
        elif mtype == msg.FLUSH:
            await self._flush()
        else:
            self._error(PGError(
                "0A000", f"unsupported frontend message "
                         f"{mtype.decode('ascii', 'replace')!r}"))
            self._skip_until_sync = True
            await self._flush()

    async def _guarded(self, handler, payload: bytes) -> None:
        """Extended-protocol step with skip-until-Sync error
        recovery."""
        try:
            await handler(payload)
        except PGError as exc:
            self._error(exc)
            self._skip_until_sync = True
            await self._flush()
        except DataCellError as exc:
            self._error(PGError(sqlstate_for(exc), str(exc)))
            self._skip_until_sync = True
            await self._flush()

    # -- simple query --------------------------------------------------

    async def _on_query(self, payload: bytes) -> None:
        sql, _ = msg.read_cstr(payload, 0)
        statements = split_statements(sql)
        if not statements:
            self._w(msg.empty_query_response())
            self._w(msg.ready_for_query())
            await self._flush()
            return
        for statement in statements:
            try:
                command = classify(statement)
                await self._run_command(command, describe=True)
            except PGError as exc:
                self._error(exc)
                break
            except DataCellError as exc:
                self._error(PGError(sqlstate_for(exc), str(exc)))
                break
        self._w(msg.ready_for_query())
        await self._flush()

    # -- extended query ------------------------------------------------

    async def _on_parse(self, payload: bytes) -> None:
        name, sql, oids = msg.parse_parse(payload)
        if oids:
            raise PGError("0A000",
                          "parameter types are not supported",
                          hint="inline values into the SQL text")
        statements = split_statements(sql)
        if len(statements) > 1:
            raise PGError("42601",
                          "cannot prepare a multi-statement string")
        if not statements:
            command = Command("empty")
        else:
            command = classify(statements[0])
        self._stmts[name] = _Prepared(sql, command)
        self._w(msg.parse_complete())

    async def _on_bind(self, payload: bytes) -> None:
        portal, stmt_name, params, result_formats = \
            msg.parse_bind(payload)
        prepared = self._stmts.get(stmt_name)
        if prepared is None:
            raise PGError("26000",
                          f"prepared statement {stmt_name!r} does not "
                          f"exist")
        if params:
            raise PGError("0A000",
                          "bind parameters ($n) are not supported",
                          hint="inline values into the SQL text")
        if any(fmt != 0 for fmt in result_formats):
            raise PGError("0A000",
                          "binary result format is not supported")
        self._portals[portal] = prepared
        self._w(msg.bind_complete())

    async def _on_describe(self, payload: bytes) -> None:
        kind, name = msg.parse_describe(payload)
        if kind == "S":
            prepared = self._stmts.get(name)
            if prepared is None:
                raise PGError("26000",
                              f"prepared statement {name!r} does not "
                              f"exist")
            self._w(msg.parameter_description())
        else:
            prepared = self._portals.get(name)
            if prepared is None:
                raise PGError("34000",
                              f"portal {name!r} does not exist")
        columns = self._describe_columns(prepared.command)
        if columns is None:
            self._w(msg.no_data())
        else:
            self._w(msg.row_description(columns))

    async def _on_execute(self, payload: bytes) -> None:
        portal, _max_rows = msg.parse_execute(payload)
        prepared = self._portals.get(portal)
        if prepared is None:
            raise PGError("34000", f"portal {portal!r} does not exist")
        if prepared.command.kind == "empty":
            self._w(msg.empty_query_response())
            return
        # RowDescription was (optionally) sent by Describe; Execute
        # sends only the rows
        await self._run_command(prepared.command, describe=False)

    async def _on_close(self, payload: bytes) -> None:
        kind, name = msg.parse_close(payload)
        if kind == "S":
            self._stmts.pop(name, None)
        else:
            self._portals.pop(name, None)
        self._w(msg.close_complete())

    # -- execution -----------------------------------------------------

    def _describe_columns(self, command: Command
                          ) -> Optional[List[Tuple[str, dt.DataType]]]:
        """RowDescription columns without executing (``None`` = no
        result set)."""
        if command.kind == "sql":
            stmt = command.stmt
            if isinstance(stmt, (ast.SelectStmt, ast.UnionStmt)):
                engine = self.server.engine
                plan = Optimizer().optimize(
                    Planner(engine.catalog).plan(stmt))
                return list(zip(plan.schema.names, plan.schema.types))
            if isinstance(stmt, ast.ExplainStmt):
                return [("QUERY PLAN", dt.STRING)]
            return None
        if command.kind == "tail":
            query = self.server.engine.continuous_query(command.name)
            schema = query.plan.schema
            return list(zip(schema.names, schema.types))
        if command.kind == "show":
            return self._show_columns(command.what)
        return None

    async def _run_command(self, command: Command,
                           describe: bool) -> None:
        """Execute one classified statement, emitting its result
        messages (RowDescription only when *describe*)."""
        self._cancel.clear()
        self.queries += 1
        if command.kind == "noop":
            self._w(msg.command_complete(command.tag))
        elif command.kind == "register":
            await self._exec_engine(
                self.server.engine.register_continuous,
                command.query, command.name, command.mode)
            self._w(msg.command_complete("REGISTER CONTINUOUS"))
        elif command.kind == "unregister":
            await self._exec_engine(
                self.server.engine.remove_query, command.name)
            self._w(msg.command_complete("UNREGISTER CONTINUOUS"))
        elif command.kind == "show":
            self._send_show(command.what, describe)
        elif command.kind == "tail":
            await self._run_tail(command, describe)
        else:
            await self._run_sql(command.stmt, describe)

    async def _run_sql(self, stmt: ast.Statement,
                       describe: bool) -> None:
        engine = self.server.engine
        result = await self._exec_engine(engine.execute_statement, stmt)
        if isinstance(stmt, (ast.SelectStmt, ast.UnionStmt)):
            rows = result.to_rows()
            if describe:
                self._w(msg.row_description(
                    [(c.name, c.dtype)
                     for c in result.schema().columns]))
            for row in rows:
                self._w(msg.data_row(row))
            self.rows_sent += len(rows)
            self._w(msg.command_complete(f"SELECT {len(rows)}"))
        elif isinstance(stmt, ast.ExplainStmt):
            lines = str(result).splitlines()
            if describe:
                self._w(msg.row_description(
                    [("QUERY PLAN", dt.STRING)]))
            for line in lines:
                self._w(msg.data_row((line,)))
            self.rows_sent += len(lines)
            self._w(msg.command_complete("EXPLAIN"))
        elif isinstance(stmt, ast.InsertStmt):
            self._w(msg.command_complete(f"INSERT 0 {int(result)}"))
        elif isinstance(stmt, ast.DeleteStmt):
            self._w(msg.command_complete(f"DELETE {int(result)}"))
        elif isinstance(stmt, ast.UpdateStmt):
            self._w(msg.command_complete(f"UPDATE {int(result)}"))
        else:
            # DDL returns "CREATE STREAM s" etc.; the tag is the verb
            words = str(result).split()
            self._w(msg.command_complete(" ".join(words[:2]).upper()))

    # -- SHOW ----------------------------------------------------------

    @staticmethod
    def _show_columns(what: str) -> List[Tuple[str, dt.DataType]]:
        if what == "streams":
            return [("name", dt.STRING), ("columns", dt.STRING),
                    ("rows", dt.INT)]
        return [("name", dt.STRING), ("mode", dt.STRING),
                ("sql", dt.STRING)]

    def _send_show(self, what: str, describe: bool) -> None:
        engine = self.server.engine
        if describe:
            self._w(msg.row_description(self._show_columns(what)))
        count = 0
        if what == "streams":
            for stream in engine.catalog.streams():
                basket = engine.basket(stream.name)
                rendered = ", ".join(
                    f"{c.name} {c.dtype.name}"
                    for c in stream.schema.columns)
                self._w(msg.data_row(
                    (stream.name, rendered, basket.next_oid)))
                count += 1
        else:
            for query in engine.queries():
                self._w(msg.data_row(
                    (query.name, query.mode, query.sql_text)))
                count += 1
        self.rows_sent += count
        self._w(msg.command_complete(f"SHOW {count}"))

    # -- TAIL: the live edge -------------------------------------------

    async def _run_tail(self, command: Command, describe: bool) -> None:
        engine = self.server.engine
        query = engine.continuous_query(command.name)  # StreamError ↦ 55000
        schema = query.plan.schema
        sink = QueueSink(f"pg{self.cid}:{command.name}",
                         max_batches=self.server.max_client_queue)
        event = asyncio.Event()
        sink.set_waker(
            lambda: self.server.io.call_soon(event.set))
        query.emitter.add_sink(sink)
        self.tails += 1
        self.tailing = command.name
        deadline = None if command.timeout_ms is None \
            else time.monotonic() + command.timeout_ms / 1000.0
        batches = 0
        rows = 0
        if describe:
            self._w(msg.row_description(
                list(zip(schema.names, schema.types))))
        try:
            while True:
                event.clear()
                while True:
                    item = sink.get_nowait()
                    if item is None:
                        break
                    _seq, _now, rel = item
                    for row in rel.to_rows():
                        self._w(msg.data_row(row))
                        rows += 1
                        if command.rows is not None \
                                and rows >= command.rows:
                            break
                    batches += 1
                    await self._flush()
                    if self._bounded(command, batches, rows):
                        break
                if self._bounded(command, batches, rows):
                    break
                if self._cancel.is_set():
                    raise PGError(
                        "57014",
                        "canceling statement due to user request")
                if sink.evicted and sink.drained():
                    raise PGError(
                        "55000",
                        f"tail of {command.name!r} fell behind; "
                        f"delivery queue overflowed "
                        f"({sink.dropped_batches} batches dropped)")
                if self.reader.at_eof():
                    raise NetError("client went away mid-tail",
                                   code="io")
                timeout = None
                if deadline is not None:
                    timeout = deadline - time.monotonic()
                    if timeout <= 0:
                        break
                # cap the park so disconnects and cancels are noticed
                # even on a silent queue
                wait_s = 0.25 if timeout is None \
                    else min(timeout, 0.25)
                try:
                    await asyncio.wait_for(event.wait(), wait_s)
                except asyncio.TimeoutError:
                    pass
            self.rows_sent += rows
            self._w(msg.command_complete(f"TAIL {rows}"))
        finally:
            self.tailing = None
            sink.set_waker(None)
            query.emitter.remove_sink(sink)

    @staticmethod
    def _bounded(command: Command, batches: int, rows: int) -> bool:
        if command.batches is not None and batches >= command.batches:
            return True
        return command.rows is not None and rows >= command.rows

    # -- errors / stats ------------------------------------------------

    def _error(self, exc: PGError) -> None:
        self.errors += 1
        self._w(msg.error_response(exc.sqlstate, exc.message,
                                   hint=exc.hint))

    def stats(self) -> Dict[str, Any]:
        return {"id": self.cid, "peer": self.peer, "user": self.user,
                "database": self.database, "queries": self.queries,
                "rows_sent": self.rows_sent, "tails": self.tails,
                "tailing": self.tailing, "errors": self.errors}
