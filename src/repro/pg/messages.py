"""PostgreSQL v3 wire-protocol messages: byte-level build and parse.

Everything here is pure bytes — no sockets, no asyncio — so the
encoders/decoders are unit-testable and reusable by both the server
session and the test suite's miniature client.

A backend (server→client) message is ``type(1) + length(int32,
including itself) + payload``; frontend messages are the same except
the *first* packet of a connection (startup/SSLRequest/CancelRequest),
which has no type byte. Only the message set DataCell needs is
implemented; see ``docs/PGWIRE.md`` for the support matrix.

Type mapping (text format only): every value travels as its text
rendering, tagged with the OID a Postgres client uses to pick a
decoder. Our storage types map onto

=============  =====  =======================================
``INT``        20     int8 (our ints are 64-bit)
``FLOAT``      701    float8
``STRING``     25     text
``BOOLEAN``    16     bool (``t``/``f`` on the wire)
``TIMESTAMP``  20     int8 — DataCell timestamps are integer
                      milliseconds, not calendar datetimes
=============  =====  =======================================

NULL is the ``-1`` column-length sentinel; nil sentinels never cross
the wire (rows are materialized through ``nil -> None`` conversion
before encoding).
"""

from __future__ import annotations

import struct
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.storage import types as dt

# -- protocol constants ------------------------------------------------

PROTOCOL_3_0 = 196608          # (3 << 16)
SSL_REQUEST_CODE = 80877103
GSSENC_REQUEST_CODE = 80877104
CANCEL_REQUEST_CODE = 80877102

# backend message type bytes
AUTHENTICATION = b"R"
PARAMETER_STATUS = b"S"
BACKEND_KEY_DATA = b"K"
READY_FOR_QUERY = b"Z"
ROW_DESCRIPTION = b"T"
DATA_ROW = b"D"
COMMAND_COMPLETE = b"C"
EMPTY_QUERY_RESPONSE = b"I"
ERROR_RESPONSE = b"E"
NOTICE_RESPONSE = b"N"
PARSE_COMPLETE = b"1"
BIND_COMPLETE = b"2"
CLOSE_COMPLETE = b"3"
NO_DATA = b"n"
PARAMETER_DESCRIPTION = b"t"
PORTAL_SUSPENDED = b"s"

# frontend message type bytes
QUERY = b"Q"
PARSE = b"P"
BIND = b"B"
DESCRIBE = b"D"
EXECUTE = b"E"
SYNC = b"S"
FLUSH = b"H"
CLOSE = b"C"
TERMINATE = b"X"

OID_BOOL = 16
OID_INT8 = 20
OID_FLOAT8 = 701
OID_TEXT = 25

# DataType -> (oid, typlen); -1 typlen = variable
PG_TYPES: Dict[str, Tuple[int, int]] = {
    "INT": (OID_INT8, 8),
    "FLOAT": (OID_FLOAT8, 8),
    "STRING": (OID_TEXT, -1),
    "BOOLEAN": (OID_BOOL, 1),
    "TIMESTAMP": (OID_INT8, 8),
}

_I16 = struct.Struct("!h")
_I32 = struct.Struct("!i")


def pg_type_of(dtype: dt.DataType) -> Tuple[int, int]:
    """``(oid, typlen)`` for a storage type (text format)."""
    return PG_TYPES[dtype.name]


def text_of(value: Any) -> Optional[bytes]:
    """Text-format rendering of one Python cell value (None = NULL).

    Rows must already be nil->None converted (``Relation.to_rows``);
    bools render ``t``/``f``, floats with ``repr`` (shortest
    round-trip), everything else with ``str``.
    """
    if value is None:
        return None
    if isinstance(value, bool):
        return b"t" if value else b"f"
    if isinstance(value, float):
        return repr(value).encode("utf-8")
    if isinstance(value, bytes):
        return value
    return str(value).encode("utf-8")


# -- message framing ---------------------------------------------------

def message(type_byte: bytes, payload: bytes = b"") -> bytes:
    """One complete typed message: type + length(self-inclusive) +
    payload."""
    return type_byte + _I32.pack(len(payload) + 4) + payload


def cstr(text: str) -> bytes:
    return text.encode("utf-8") + b"\x00"


# -- backend (server -> client) messages -------------------------------

def authentication_ok() -> bytes:
    return message(AUTHENTICATION, _I32.pack(0))


def parameter_status(name: str, value: str) -> bytes:
    return message(PARAMETER_STATUS, cstr(name) + cstr(value))


def backend_key_data(pid: int, secret: int) -> bytes:
    return message(BACKEND_KEY_DATA,
                   _I32.pack(pid & 0x7FFFFFFF)
                   + _I32.pack(secret & 0x7FFFFFFF))


def ready_for_query(status: bytes = b"I") -> bytes:
    return message(READY_FOR_QUERY, status)


def row_description(columns: Sequence[Tuple[str, dt.DataType]]
                    ) -> bytes:
    """RowDescription for named, typed columns (all text format)."""
    out = bytearray(_I16.pack(len(columns)))
    for name, dtype in columns:
        oid, typlen = pg_type_of(dtype)
        out += cstr(name)
        out += _I32.pack(0)       # table oid (none)
        out += _I16.pack(0)       # column attribute number
        out += _I32.pack(oid)
        out += _I16.pack(typlen)
        out += _I32.pack(-1)      # typmod
        out += _I16.pack(0)       # format: text
    return message(ROW_DESCRIPTION, bytes(out))


def data_row(values: Sequence[Any]) -> bytes:
    """DataRow from Python cell values (None -> NULL)."""
    out = bytearray(_I16.pack(len(values)))
    for value in values:
        text = text_of(value)
        if text is None:
            out += _I32.pack(-1)
        else:
            out += _I32.pack(len(text))
            out += text
    return message(DATA_ROW, bytes(out))


def command_complete(tag: str) -> bytes:
    return message(COMMAND_COMPLETE, cstr(tag))


def empty_query_response() -> bytes:
    return message(EMPTY_QUERY_RESPONSE)


def parse_complete() -> bytes:
    return message(PARSE_COMPLETE)


def bind_complete() -> bytes:
    return message(BIND_COMPLETE)


def close_complete() -> bytes:
    return message(CLOSE_COMPLETE)


def no_data() -> bytes:
    return message(NO_DATA)


def parameter_description(oids: Sequence[int] = ()) -> bytes:
    out = bytearray(_I16.pack(len(oids)))
    for oid in oids:
        out += _I32.pack(oid)
    return message(PARAMETER_DESCRIPTION, bytes(out))


def error_response(sqlstate: str, text: str,
                   severity: str = "ERROR",
                   detail: Optional[str] = None,
                   hint: Optional[str] = None) -> bytes:
    """ErrorResponse with the standard field set (S/V/C/M [+D +H])."""
    fields = bytearray()
    fields += b"S" + cstr(severity)
    fields += b"V" + cstr(severity)
    fields += b"C" + cstr(sqlstate)
    fields += b"M" + cstr(text)
    if detail:
        fields += b"D" + cstr(detail)
    if hint:
        fields += b"H" + cstr(hint)
    fields += b"\x00"
    return message(ERROR_RESPONSE, bytes(fields))


def notice_response(text: str, sqlstate: str = "00000") -> bytes:
    fields = bytearray()
    fields += b"S" + cstr("NOTICE")
    fields += b"V" + cstr("NOTICE")
    fields += b"C" + cstr(sqlstate)
    fields += b"M" + cstr(text)
    fields += b"\x00"
    return message(NOTICE_RESPONSE, bytes(fields))


# -- frontend payload parsers (server side + test client) --------------

def parse_startup_payload(payload: bytes) -> Dict[str, str]:
    """Key/value pairs of a 3.0 StartupMessage (code already read)."""
    params: Dict[str, str] = {}
    parts = payload.split(b"\x00")
    it = iter(parts)
    for key in it:
        if not key:
            break
        value = next(it, b"")
        params[key.decode("utf-8", "replace")] = \
            value.decode("utf-8", "replace")
    return params


def read_cstr(payload: bytes, offset: int) -> Tuple[str, int]:
    end = payload.index(b"\x00", offset)
    return payload[offset:end].decode("utf-8"), end + 1


def parse_parse(payload: bytes) -> Tuple[str, str, List[int]]:
    """Parse message -> (statement_name, sql, param_type_oids)."""
    name, off = read_cstr(payload, 0)
    sql, off = read_cstr(payload, off)
    (n,) = _I16.unpack_from(payload, off)
    off += 2
    oids = []
    for _ in range(n):
        (oid,) = _I32.unpack_from(payload, off)
        off += 4
        oids.append(oid)
    return name, sql, oids


def parse_bind(payload: bytes
               ) -> Tuple[str, str, List[bytes], List[int]]:
    """Bind message -> (portal, statement, params, result_formats).

    Parameter *values* are returned raw (text-format bytes or None);
    the session rejects non-empty parameter lists anyway.
    """
    portal, off = read_cstr(payload, 0)
    statement, off = read_cstr(payload, off)
    (nfmt,) = _I16.unpack_from(payload, off)
    off += 2 + 2 * nfmt  # per-parameter format codes (unused)
    (nparams,) = _I16.unpack_from(payload, off)
    off += 2
    params: List[bytes] = []
    for _ in range(nparams):
        (ln,) = _I32.unpack_from(payload, off)
        off += 4
        if ln >= 0:
            params.append(payload[off:off + ln])
            off += ln
        else:
            params.append(None)  # type: ignore[arg-type]
    (nres,) = _I16.unpack_from(payload, off)
    off += 2
    result_formats = []
    for _ in range(nres):
        (fmt,) = _I16.unpack_from(payload, off)
        off += 2
        result_formats.append(fmt)
    return portal, statement, params, result_formats


def parse_describe(payload: bytes) -> Tuple[str, str]:
    """Describe -> (kind 'S'|'P', name)."""
    kind = payload[0:1].decode("ascii")
    name, _ = read_cstr(payload, 1)
    return kind, name


def parse_execute(payload: bytes) -> Tuple[str, int]:
    """Execute -> (portal, max_rows)."""
    portal, off = read_cstr(payload, 0)
    (max_rows,) = _I32.unpack_from(payload, off)
    return portal, max_rows


def parse_close(payload: bytes) -> Tuple[str, str]:
    return parse_describe(payload)
