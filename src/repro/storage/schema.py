"""Relational schemas: ordered, typed column definitions."""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

from repro.errors import CatalogError
from repro.storage import types as dt


class ColumnDef:
    """A named, typed column."""

    __slots__ = ("name", "dtype")

    def __init__(self, name: str, dtype: dt.DataType):
        if not name:
            raise CatalogError("column name must be non-empty")
        self.name = name.lower()
        self.dtype = dtype

    def __repr__(self) -> str:
        return f"{self.name} {self.dtype.name}"

    def __eq__(self, other) -> bool:
        return (isinstance(other, ColumnDef)
                and other.name == self.name and other.dtype == self.dtype)

    def __hash__(self) -> int:
        return hash((self.name, self.dtype))


class Schema:
    """An ordered collection of :class:`ColumnDef` with name lookup."""

    def __init__(self, columns: Iterable[ColumnDef]):
        self.columns: List[ColumnDef] = list(columns)
        seen = set()
        for col in self.columns:
            if col.name in seen:
                raise CatalogError(f"duplicate column name {col.name!r}")
            seen.add(col.name)
        self._by_name = {c.name: i for i, c in enumerate(self.columns)}

    @classmethod
    def of(cls, *pairs: Tuple[str, dt.DataType]) -> "Schema":
        """Shorthand: ``Schema.of(("a", INT), ("b", STRING))``."""
        return cls(ColumnDef(n, t) for n, t in pairs)

    @classmethod
    def parse(cls, pairs: Sequence[Tuple[str, str]]) -> "Schema":
        """Build from ``(name, type_name)`` string pairs."""
        return cls(ColumnDef(n, dt.DataType.by_name(t)) for n, t in pairs)

    def __len__(self) -> int:
        return len(self.columns)

    def __iter__(self):
        return iter(self.columns)

    def __eq__(self, other) -> bool:
        return isinstance(other, Schema) and other.columns == self.columns

    @property
    def names(self) -> List[str]:
        return [c.name for c in self.columns]

    @property
    def types(self) -> List[dt.DataType]:
        return [c.dtype for c in self.columns]

    def has(self, name: str) -> bool:
        return name.lower() in self._by_name

    def index_of(self, name: str) -> int:
        try:
            return self._by_name[name.lower()]
        except KeyError:
            raise CatalogError(f"no column {name!r}") from None

    def column(self, name: str) -> ColumnDef:
        return self.columns[self.index_of(name)]

    def type_of(self, name: str) -> dt.DataType:
        return self.column(name).dtype

    def rename(self, names: Sequence[str]) -> "Schema":
        """Same types under new names (e.g. for projections/aliases)."""
        if len(names) != len(self.columns):
            raise CatalogError("rename: wrong number of column names")
        return Schema(ColumnDef(n, c.dtype)
                      for n, c in zip(names, self.columns))

    def __repr__(self) -> str:
        return "Schema(" + ", ".join(map(repr, self.columns)) + ")"
