"""The catalog: the namespace of tables, streams and continuous queries.

DataCell's "natural integration of baskets and tables within the same
processing fabric" starts here — both kinds of objects live in one
catalog so the binder resolves a FROM item to either without the query
author caring which it is.
"""

from __future__ import annotations

from typing import Dict, List

from repro.errors import CatalogError
from repro.storage.schema import Schema
from repro.storage.table import Table


class StreamDef:
    """Catalog entry for a declared stream (schema only; the live basket
    is owned by the runtime layer)."""

    def __init__(self, name: str, schema: Schema):
        self.name = name.lower()
        self.schema = schema

    def __repr__(self) -> str:
        return f"StreamDef({self.name}, {self.schema!r})"


class Catalog:
    """Name -> object mapping for tables and streams."""

    def __init__(self):
        self._tables: Dict[str, Table] = {}
        self._streams: Dict[str, StreamDef] = {}

    # -- tables ---------------------------------------------------------

    def create_table(self, name: str, schema: Schema) -> Table:
        name = name.lower()
        self._check_free(name)
        table = Table(name, schema)
        self._tables[name] = table
        return table

    def drop_table(self, name: str) -> None:
        if self._tables.pop(name.lower(), None) is None:
            raise CatalogError(f"no table {name!r}")

    def table(self, name: str) -> Table:
        try:
            return self._tables[name.lower()]
        except KeyError:
            raise CatalogError(f"no table {name!r}") from None

    def has_table(self, name: str) -> bool:
        return name.lower() in self._tables

    def tables(self) -> List[Table]:
        return list(self._tables.values())

    # -- streams ----------------------------------------------------------

    def create_stream(self, name: str, schema: Schema) -> StreamDef:
        name = name.lower()
        self._check_free(name)
        stream = StreamDef(name, schema)
        self._streams[name] = stream
        return stream

    def drop_stream(self, name: str) -> None:
        if self._streams.pop(name.lower(), None) is None:
            raise CatalogError(f"no stream {name!r}")

    def stream(self, name: str) -> StreamDef:
        try:
            return self._streams[name.lower()]
        except KeyError:
            raise CatalogError(f"no stream {name!r}") from None

    def has_stream(self, name: str) -> bool:
        return name.lower() in self._streams

    def streams(self) -> List[StreamDef]:
        return list(self._streams.values())

    # -- generic -----------------------------------------------------------

    def schema_of(self, name: str) -> Schema:
        """Schema of a table or stream named *name*."""
        name = name.lower()
        if name in self._tables:
            return self._tables[name].schema
        if name in self._streams:
            return self._streams[name].schema
        raise CatalogError(f"no table or stream {name!r}")

    def is_stream(self, name: str) -> bool:
        return name.lower() in self._streams

    def exists(self, name: str) -> bool:
        name = name.lower()
        return name in self._tables or name in self._streams

    def _check_free(self, name: str) -> None:
        if self.exists(name):
            raise CatalogError(f"name {name!r} already in use")

    def __repr__(self) -> str:
        return (f"Catalog(tables={sorted(self._tables)}, "
                f"streams={sorted(self._streams)})")
