"""Snapshot persistence: save/load a catalog to a directory.

Layout::

    <dir>/catalog.json            table & stream definitions
    <dir>/<table>/<column>.npy    one npy file per column

String columns are stored as pickled object arrays; numeric columns as
raw npy. This reproduces the "new data may also enter the data warehouse
and be stored as normal" part of the paper's motivating paradigm.
"""

from __future__ import annotations

import json
import os
from typing import Optional

import numpy as np

from repro.errors import PersistenceError
from repro.storage.catalog import Catalog
from repro.storage.schema import Schema

_FORMAT_VERSION = 1


def save_catalog(catalog: Catalog, directory: str) -> None:
    """Write every table (data) and stream (schema) under *directory*."""
    os.makedirs(directory, exist_ok=True)
    manifest = {"version": _FORMAT_VERSION, "tables": [], "streams": []}
    for table in catalog.tables():
        entry = {
            "name": table.name,
            "columns": [[c.name, c.dtype.name] for c in table.schema],
            "rows": len(table),
        }
        manifest["tables"].append(entry)
        tdir = os.path.join(directory, table.name)
        os.makedirs(tdir, exist_ok=True)
        for coldef in table.schema:
            path = os.path.join(tdir, coldef.name + ".npy")
            values = table.column(coldef.name).values
            np.save(path, values, allow_pickle=coldef.dtype.is_string)
    for stream in catalog.streams():
        manifest["streams"].append({
            "name": stream.name,
            "columns": [[c.name, c.dtype.name] for c in stream.schema],
        })
    with open(os.path.join(directory, "catalog.json"), "w") as f:
        json.dump(manifest, f, indent=2)


def save_queries(queries: list, directory: str) -> None:
    """Persist continuous-query definitions (registration order matters:
    chained output-stream networks must re-register upstream first).

    Each entry is a plain dict — ``name``, ``sql``, ``output_stream``
    and the registration knobs — written atomically so a crash
    mid-checkpoint leaves the previous definition file intact.
    """
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, "queries.json")
    tmp = path + ".tmp"
    with open(tmp, "w") as f:
        json.dump({"version": _FORMAT_VERSION, "queries": queries}, f,
                  indent=2)
        f.flush()
        os.fsync(f.fileno())
    os.replace(tmp, path)


def load_queries(directory: str) -> list:
    """Read definitions written by :func:`save_queries` (empty list when
    none were ever persisted)."""
    path = os.path.join(directory, "queries.json")
    if not os.path.exists(path):
        return []
    try:
        with open(path) as f:
            manifest = json.load(f)
    except (OSError, ValueError) as exc:
        raise PersistenceError(
            f"cannot read query definitions: {exc}") from exc
    if manifest.get("version") != _FORMAT_VERSION:
        raise PersistenceError(
            f"unsupported queries version {manifest.get('version')!r}")
    return list(manifest.get("queries", []))


def load_catalog(directory: str,
                 into: Optional[Catalog] = None) -> Catalog:
    """Read a snapshot written by :func:`save_catalog`."""
    path = os.path.join(directory, "catalog.json")
    try:
        with open(path) as f:
            manifest = json.load(f)
    except OSError as exc:
        raise PersistenceError(f"cannot read snapshot: {exc}") from exc
    if manifest.get("version") != _FORMAT_VERSION:
        raise PersistenceError(
            f"unsupported snapshot version {manifest.get('version')!r}")
    catalog = into if into is not None else Catalog()
    for entry in manifest["tables"]:
        schema = Schema.parse([(n, t) for n, t in entry["columns"]])
        table = catalog.create_table(entry["name"], schema)
        for coldef in schema:
            col_path = os.path.join(directory, entry["name"],
                                    coldef.name + ".npy")
            try:
                values = np.load(col_path,
                                 allow_pickle=coldef.dtype.is_string)
            except OSError as exc:
                raise PersistenceError(
                    f"missing column file {col_path}") from exc
            if len(values) != entry["rows"]:
                raise PersistenceError(
                    f"{col_path}: expected {entry['rows']} rows, "
                    f"found {len(values)}")
            table.column(coldef.name).extend(values)
    for entry in manifest["streams"]:
        schema = Schema.parse([(n, t) for n, t in entry["columns"]])
        catalog.create_stream(entry["name"], schema)
    return catalog
