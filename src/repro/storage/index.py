"""Secondary indexes over single BATs.

The demo paper highlights "exploiting standard DBMS functionalities in a
streaming environment such as indexing"; these indexes serve the
persistent-table side of hybrid (stream ⋈ table) queries so the probe per
window slide is sub-linear in the table size.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.mal.bat import BAT
from repro.storage import types as dt


class HashIndex:
    """Equality index: value -> positions. Nil values are not indexed."""

    def __init__(self, bat: BAT):
        self._bat = bat
        self._table: Dict = {}
        self.rebuild()

    def rebuild(self) -> None:
        self._table = {}
        self.on_append(0, len(self._bat))

    def on_append(self, start: int, stop: int) -> None:
        """Index the newly appended positions ``[start, stop)``."""
        if start == 0:
            self._table = {}
        values = self._bat.values[start:stop]
        mask = dt.nil_mask(self._bat.dtype, values)
        for offset, (value, is_nil) in enumerate(zip(values, mask)):
            if is_nil:
                continue
            self._table.setdefault(value, []).append(start + offset)

    def lookup(self, value) -> np.ndarray:
        return np.asarray(self._table.get(value, []), dtype=np.int64)

    def __len__(self) -> int:
        return sum(len(v) for v in self._table.values())


class SortedIndex:
    """Order index: binary-searchable sorted permutation of one column.

    Rebuilt on append (amortized by rebuilding only when stale); supports
    equality and range probes. Nils sort out of the index entirely.
    """

    def __init__(self, bat: BAT):
        self._bat = bat
        self._order: Optional[np.ndarray] = None
        self._keys: Optional[np.ndarray] = None
        self._built_rows = -1
        self.rebuild()

    def rebuild(self) -> None:
        values = self._bat.values
        mask = dt.nil_mask(self._bat.dtype, values)
        valid = np.nonzero(~mask)[0].astype(np.int64)
        if self._bat.dtype.is_string:
            order = sorted(valid, key=lambda p: values[p])
            self._order = np.asarray(order, dtype=np.int64)
            self._keys = values[self._order]
        else:
            vv = values[valid]
            perm = np.argsort(vv, kind="stable")
            self._order = valid[perm]
            self._keys = vv[perm]
        self._built_rows = len(self._bat)

    def on_append(self, start: int, stop: int) -> None:
        self._built_rows = -1  # stale; rebuilt lazily on next probe

    def _fresh(self) -> None:
        if self._built_rows != len(self._bat):
            self.rebuild()

    def lookup(self, value) -> np.ndarray:
        self._fresh()
        lo = np.searchsorted(self._keys, value, side="left")
        hi = np.searchsorted(self._keys, value, side="right")
        return np.sort(self._order[lo:hi])

    def range(self, low, high, low_inclusive: bool = True,
              high_inclusive: bool = True) -> np.ndarray:
        self._fresh()
        lo = 0
        hi = len(self._keys)
        if low is not None:
            lo = np.searchsorted(self._keys, low,
                                 side="left" if low_inclusive else "right")
        if high is not None:
            hi = np.searchsorted(self._keys, high,
                                 side="right" if high_inclusive else "left")
        return np.sort(self._order[lo:hi])

    def __len__(self) -> int:
        self._fresh()
        return len(self._keys)
