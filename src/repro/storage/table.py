"""Persistent tables: one BAT per attribute, MonetDB style."""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.errors import CatalogError, KernelError
from repro.mal.bat import BAT
from repro.mal.relation import Relation
from repro.storage import types as dt
from repro.storage.index import HashIndex, SortedIndex
from repro.storage.schema import Schema


class Table:
    """A persistent relational table stored as a collection of BATs.

    Inserts append to every column BAT; deletes are positional and
    compact immediately (the reproduction does not need MVCC — DataCell's
    stream side goes through baskets, not tables).
    """

    def __init__(self, name: str, schema: Schema):
        self.name = name.lower()
        self.schema = schema
        self._bats: Dict[str, BAT] = {
            c.name: BAT(c.dtype) for c in schema.columns}
        self._indexes: Dict[str, object] = {}

    def __len__(self) -> int:
        return len(self._bats[self.schema.names[0]]) if len(self.schema) else 0

    @property
    def row_count(self) -> int:
        return len(self)

    def column(self, name: str) -> BAT:
        try:
            return self._bats[name.lower()]
        except KeyError:
            raise CatalogError(
                f"table {self.name!r} has no column {name!r}") from None

    # -- mutation ------------------------------------------------------

    def insert_row(self, values: Sequence[Any]) -> None:
        self.insert_rows([values])

    def insert_rows(self, rows: Iterable[Sequence[Any]]) -> None:
        rows = list(rows)
        if not rows:
            return
        width = len(self.schema)
        for row in rows:
            if len(row) != width:
                raise CatalogError(
                    f"insert into {self.name}: expected {width} values, "
                    f"got {len(row)}")
        start = len(self)
        # same batch staging as Basket.append_rows: one vectorized
        # conversion per column, not a Python loop per row
        staged = [dt.coerce_column(coldef.dtype, [row[i] for row in rows])
                  for i, coldef in enumerate(self.schema.columns)]
        for coldef, column in zip(self.schema.columns, staged):
            self._bats[coldef.name].extend(column)
        for index in self._indexes.values():
            index.on_append(start, len(self))

    def insert_relation(self, rel: Relation) -> None:
        """Append a compatible relation (used by INSERT ... SELECT)."""
        if rel.names != self.schema.names:
            rel = rel.renamed(self.schema.names)
        start = len(self)
        for coldef in self.schema.columns:
            src = rel.column(coldef.name)
            if src.dtype != coldef.dtype:
                raise KernelError(
                    f"insert into {self.name}.{coldef.name}: type "
                    f"{src.dtype} does not match {coldef.dtype}")
            self._bats[coldef.name].append_bat(src)
        for index in self._indexes.values():
            index.on_append(start, len(self))

    def delete_positions(self, positions: np.ndarray) -> int:
        """Delete rows at *positions*; returns number deleted."""
        positions = np.unique(np.asarray(positions, dtype=np.int64))
        if len(positions) == 0:
            return 0
        keep = np.ones(len(self), dtype=bool)
        keep[positions] = False
        keep_pos = np.nonzero(keep)[0].astype(np.int64)
        for name, bat in self._bats.items():
            self._bats[name] = bat.take(keep_pos)
        self._reindex()
        return len(positions)

    def update_column(self, column: str, positions: np.ndarray,
                      values: BAT) -> int:
        """Overwrite *column* at *positions* with *values* (row-aligned
        with the positions). Indexes on the column are rebuilt."""
        column = column.lower()
        bat = self.column(column)
        if values.dtype != bat.dtype:
            raise KernelError(
                f"update {self.name}.{column}: type {values.dtype} "
                f"does not match {bat.dtype}")
        positions = np.asarray(positions, dtype=np.int64)
        if len(positions) != len(values):
            raise KernelError("update: positions/values length mismatch")
        target = bat.values
        if bat.dtype.is_string:
            src = values.values
            for i, pos in enumerate(positions):
                target[pos] = src[i]
        else:
            target[positions] = values.values
        index = self._indexes.get(column)
        if index is not None:
            index.rebuild()
        return len(positions)

    def truncate(self) -> None:
        for coldef in self.schema.columns:
            self._bats[coldef.name] = BAT(coldef.dtype)
        self._reindex()

    def _reindex(self) -> None:
        """Rebuild indexes against the (replaced) column BATs."""
        for column, index in list(self._indexes.items()):
            kind = "hash" if isinstance(index, HashIndex) else "sorted"
            cls = HashIndex if kind == "hash" else SortedIndex
            self._indexes[column] = cls(self.column(column))

    # -- reading -------------------------------------------------------

    def scan(self) -> Relation:
        """The whole table as a relation (columns shared, not copied)."""
        return Relation((c.name, self._bats[c.name])
                        for c in self.schema.columns)

    def to_rows(self) -> List[tuple]:
        return self.scan().to_rows()

    # -- indexing ------------------------------------------------------

    def create_index(self, column: str, kind: str = "hash") -> None:
        """Create a secondary index; ``kind`` is ``hash`` or ``sorted``."""
        column = column.lower()
        bat = self.column(column)
        if column in self._indexes:
            raise CatalogError(
                f"index on {self.name}.{column} already exists")
        if kind == "hash":
            self._indexes[column] = HashIndex(bat)
        elif kind == "sorted":
            self._indexes[column] = SortedIndex(bat)
        else:
            raise CatalogError(f"unknown index kind {kind!r}")

    def drop_index(self, column: str) -> None:
        self._indexes.pop(column.lower(), None)

    def index_on(self, column: str):
        return self._indexes.get(column.lower())

    def index_lookup(self, column: str, value) -> Optional[np.ndarray]:
        """Equality probe via an index, or None when not indexed."""
        index = self._indexes.get(column.lower())
        if index is None:
            return None
        return index.lookup(dt.coerce_value(
            self.schema.type_of(column), value))

    def index_range(self, column: str, low, high,
                    low_inclusive: bool = True, high_inclusive: bool = True
                    ) -> Optional[np.ndarray]:
        """Range probe via a sorted index, or None when unavailable."""
        index = self._indexes.get(column.lower())
        if index is None or not isinstance(index, SortedIndex):
            return None
        return index.range(low, high, low_inclusive, high_inclusive)

    def __repr__(self) -> str:
        return f"Table({self.name}, {self.schema!r}, rows={len(self)})"
