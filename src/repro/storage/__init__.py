"""Persistent storage: types, schemas, tables, catalog, persistence.

Submodules are re-exported lazily (PEP 562) because the BAT layer imports
``repro.storage.types`` while the table layer imports the BAT layer; eager
re-exports here would create an import cycle.
"""

from repro.storage.types import (BOOLEAN, FLOAT, INT, STRING, TIMESTAMP,
                                 DataType)

__all__ = [
    "BOOLEAN", "FLOAT", "INT", "STRING", "TIMESTAMP", "DataType",
    "Catalog", "StreamDef", "ColumnDef", "Schema", "Table",
    "HashIndex", "SortedIndex",
]

_LAZY = {
    "Catalog": ("repro.storage.catalog", "Catalog"),
    "StreamDef": ("repro.storage.catalog", "StreamDef"),
    "ColumnDef": ("repro.storage.schema", "ColumnDef"),
    "Schema": ("repro.storage.schema", "Schema"),
    "Table": ("repro.storage.table", "Table"),
    "HashIndex": ("repro.storage.index", "HashIndex"),
    "SortedIndex": ("repro.storage.index", "SortedIndex"),
}


def __getattr__(name):
    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(name) from None
    import importlib

    module = importlib.import_module(module_name)
    value = getattr(module, attr)
    globals()[name] = value
    return value
