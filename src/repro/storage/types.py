"""Data types and nil semantics for the columnar kernel.

MonetDB represents SQL NULL with in-band *nil* sentinels per type rather
than with validity bitmaps; we mirror that design because the whole bulk
kernel then works on plain numpy arrays:

* ``INT`` / ``TIMESTAMP`` — ``numpy.iinfo(int64).min``
* ``FLOAT`` — ``NaN``
* ``BOOLEAN`` — stored as ``int8`` with nil ``-1`` (0 false, 1 true)
* ``STRING`` — Python ``None`` inside an object array

:class:`DataType` instances are singletons; compare with ``is`` or ``==``.
"""

from __future__ import annotations

import math
from typing import Any, Optional

import numpy as np

from repro.errors import TypeMismatchError

INT_NIL = np.iinfo(np.int64).min
FLOAT_NIL = float("nan")
BOOL_NIL = np.int8(-1)


class DataType:
    """A column type: SQL name, numpy storage dtype and nil sentinel."""

    _registry: dict = {}

    def __init__(self, name: str, np_dtype, nil, python_type):
        self.name = name
        self.np_dtype = np.dtype(np_dtype)
        self.nil = nil
        self.python_type = python_type
        DataType._registry[name] = self

    def __repr__(self) -> str:
        return f"DataType({self.name})"

    def __str__(self) -> str:
        return self.name

    def __eq__(self, other) -> bool:
        return isinstance(other, DataType) and other.name == self.name

    def __hash__(self) -> int:
        return hash(self.name)

    @property
    def is_numeric(self) -> bool:
        return self.name in ("INT", "FLOAT")

    @property
    def is_string(self) -> bool:
        return self.name == "STRING"

    def empty(self, capacity: int = 0) -> np.ndarray:
        """Return an empty storage array of this type."""
        return np.empty(capacity, dtype=self.np_dtype)

    @staticmethod
    def by_name(name: str) -> "DataType":
        key = _TYPE_ALIASES.get(name.upper(), name.upper())
        try:
            return DataType._registry[key]
        except KeyError:
            raise TypeMismatchError(f"unknown type: {name!r}") from None


INT = DataType("INT", np.int64, INT_NIL, int)
FLOAT = DataType("FLOAT", np.float64, FLOAT_NIL, float)
STRING = DataType("STRING", object, None, str)
BOOLEAN = DataType("BOOLEAN", np.int8, BOOL_NIL, bool)
TIMESTAMP = DataType("TIMESTAMP", np.int64, INT_NIL, int)

_TYPE_ALIASES = {
    "INTEGER": "INT",
    "BIGINT": "INT",
    "SMALLINT": "INT",
    "TINYINT": "INT",
    "DOUBLE": "FLOAT",
    "REAL": "FLOAT",
    "DECIMAL": "FLOAT",
    "NUMERIC": "FLOAT",
    "VARCHAR": "STRING",
    "CHAR": "STRING",
    "TEXT": "STRING",
    "CLOB": "STRING",
    "BOOL": "BOOLEAN",
}


def is_nil(dtype: DataType, value: Any) -> bool:
    """True when *value* is the nil sentinel (or Python None) for *dtype*."""
    if value is None:
        return True
    if dtype is FLOAT:
        try:
            return math.isnan(value)
        except TypeError:
            return False
    if dtype is INT or dtype is TIMESTAMP:
        return value == INT_NIL
    if dtype is BOOLEAN:
        return value == -1
    return False


def nil_mask(dtype: DataType, values: np.ndarray) -> np.ndarray:
    """Boolean mask of nil positions for a storage array of *dtype*."""
    if dtype is FLOAT:
        return np.isnan(values)
    if dtype is INT or dtype is TIMESTAMP:
        return values == INT_NIL
    if dtype is BOOLEAN:
        return values == -1
    return np.array([v is None for v in values], dtype=bool)


def coerce_value(dtype: DataType, value: Any):
    """Coerce a Python value to *dtype* storage, mapping None to nil.

    Raises :class:`TypeMismatchError` for impossible conversions.
    """
    if value is None:
        return dtype.nil
    try:
        if dtype is INT or dtype is TIMESTAMP:
            if isinstance(value, float) and math.isnan(value):
                return INT_NIL
            if isinstance(value, bool):
                return int(value)
            if isinstance(value, float) and value != int(value):
                raise TypeMismatchError(
                    f"cannot store non-integral {value!r} in {dtype.name}")
            return int(value)
        if dtype is FLOAT:
            return float(value)
        if dtype is BOOLEAN:
            if isinstance(value, (bool, np.bool_)):
                return np.int8(1 if value else 0)
            if value in (0, 1, -1):
                return np.int8(value)
            raise TypeMismatchError(f"cannot store {value!r} in BOOLEAN")
        if dtype is STRING:
            if isinstance(value, str):
                return value
            raise TypeMismatchError(f"cannot store {value!r} in STRING")
    except (ValueError, TypeError) as exc:
        raise TypeMismatchError(
            f"cannot store {value!r} in {dtype.name}") from exc
    raise TypeMismatchError(f"unsupported type {dtype!r}")


def coerce_column(dtype: DataType, values) -> np.ndarray:
    """Batch-coerce a sequence of Python values to a storage array.

    Semantically identical to ``[coerce_value(dtype, v) for v in
    values]`` (same :class:`TypeMismatchError` on impossible
    conversions, ``None`` becomes nil) but with a vectorized fast path
    for the ingest-hot case of clean homogeneous columns: one C-level
    type scan plus ``np.fromiter``, instead of a Python-level coercion
    call per value.
    """
    if isinstance(values, np.ndarray) and \
            values.dtype == dtype.np_dtype and not dtype.is_string:
        return values
    values = values if isinstance(values, list) else list(values)
    n = len(values)
    if dtype is INT or dtype is TIMESTAMP:
        if all(type(v) is int for v in values):
            return np.fromiter(values, dtype=np.int64, count=n)
    elif dtype is FLOAT:
        if all(type(v) is float or type(v) is int for v in values):
            return np.fromiter(values, dtype=np.float64, count=n)
    elif dtype is STRING:
        if all(type(v) is str or v is None for v in values):
            arr = np.empty(n, dtype=object)
            arr[:] = values
            return arr
    # slow path: per-value coercion with full type checking
    coerced = [coerce_value(dtype, v) for v in values]
    if dtype.is_string:
        arr = np.empty(n, dtype=object)
        arr[:] = coerced
        return arr
    return np.asarray(coerced, dtype=dtype.np_dtype)


def from_storage(dtype: DataType, value: Any) -> Optional[Any]:
    """Convert a storage cell back to a Python value (nil -> None)."""
    if is_nil(dtype, value):
        return None
    if dtype is BOOLEAN:
        return bool(value)
    if dtype is INT or dtype is TIMESTAMP:
        return int(value)
    if dtype is FLOAT:
        return float(value)
    return value


def common_type(a: DataType, b: DataType) -> DataType:
    """Least common type for binary operations (INT widens to FLOAT)."""
    if a == b:
        return a
    pair = {a.name, b.name}
    if pair == {"INT", "FLOAT"}:
        return FLOAT
    if pair == {"INT", "TIMESTAMP"} or pair == {"FLOAT", "TIMESTAMP"}:
        # timestamps are int64 instants; arithmetic mixes freely with INT
        return TIMESTAMP if "FLOAT" not in pair else FLOAT
    raise TypeMismatchError(f"no common type for {a.name} and {b.name}")


def infer_type(value: Any) -> DataType:
    """Infer the :class:`DataType` of a Python literal."""
    if isinstance(value, bool):
        return BOOLEAN
    if isinstance(value, (int, np.integer)):
        return INT
    if isinstance(value, (float, np.floating)):
        return FLOAT
    if isinstance(value, str):
        return STRING
    if value is None:
        return STRING  # caller refines; NULL literal is typed lazily
    raise TypeMismatchError(f"cannot infer SQL type of {value!r}")
