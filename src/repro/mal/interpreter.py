"""MAL program interpreter.

Executes :class:`~repro.mal.program.MALProgram` instructions against the
bulk kernel. The interpreter is the execution engine of the
*re-evaluation* mode: a continuous-query factory holds a rewritten MAL
program and the scheduler runs it here once per firing.

The opcode table is open: the DataCell runtime registers the ``basket.*``
opcodes that bind, lock and drain stream baskets.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, List, Optional

import numpy as np

from repro.errors import MALError
from repro.mal import kernel
from repro.mal.bat import BAT, all_candidates
from repro.mal.program import Const, Instruction, MALProgram, Var
from repro.mal.relation import Relation
from repro.storage import types as dt


class MALContext:
    """Runtime bindings for one program execution.

    ``stream_reader`` resolves a stream name to the Relation the program
    should see (a full basket for one-time queries; the current window
    slice inside a factory). ``basket_hooks`` receives lock/drain/unlock
    notifications from rewritten continuous plans.
    """

    def __init__(self, catalog, stream_reader=None, basket_hooks=None):
        self.catalog = catalog
        self.stream_reader = stream_reader
        self.basket_hooks = basket_hooks
        self.result: Optional[Relation] = None
        self.emitted: List[Relation] = []

    def resolve_column(self, source: str, column: str) -> BAT:
        if self.catalog is not None and self.catalog.has_table(source):
            return self.catalog.table(source).column(column)
        if self.stream_reader is not None:
            return self.stream_reader(source).column(column)
        raise MALError(f"cannot resolve column {source}.{column}")


OpImpl = Callable[..., Any]
_OPCODES: Dict[str, OpImpl] = {}


def opcode(name: str):
    """Register an opcode implementation: ``fn(ctx, *args)``."""

    def deco(fn: OpImpl) -> OpImpl:
        _OPCODES[name] = fn
        return fn

    return deco


def has_opcode(name: str) -> bool:
    return name in _OPCODES


def lookup_opcode(name: str, line: Optional[int] = None,
                  plan: str = "") -> OpImpl:
    """Resolve *name* to its implementation, exactly once.

    ``calc.*`` opcodes are lazily backed by the scalar-function
    registry (:func:`resolve_opcode`); everything else must already be
    registered. A miss raises :class:`MALError` naming the opcode and,
    when known, the plan line it came from — both the interpreter and
    the slot compiler (:mod:`repro.mal.compiler`) resolve through
    here.
    """
    impl = _OPCODES.get(name)
    if impl is None and name.startswith("calc."):
        impl = resolve_opcode(name)
    if impl is None:
        where = f" (line {line}" + (f" of {plan})" if plan else ")") \
            if line is not None else (f" (plan {plan})" if plan else "")
        raise MALError(f"unknown opcode {name!r}{where}")
    return impl


class MALInterpreter:
    """Straight-line interpreter with a variable environment per run.

    With a :class:`~repro.core.recycler.Recycler` attached (plus the
    program's instruction fingerprints and the oid-ranges of the stream
    windows this run reads), every recyclable instruction consults the
    cross-query cache before executing: a hit binds the shared cached
    value; a miss executes and publishes the result for the other
    standing queries sharing the basket window.
    """

    def __init__(self, ctx: MALContext, recycler=None,
                 fingerprints=None, window_ranges=None):
        self.ctx = ctx
        self.recycler = recycler
        self.fingerprints = fingerprints
        self.window_ranges = window_ranges or {}

    def run(self, program: MALProgram,
            env: Optional[Dict[str, Any]] = None) -> Optional[Relation]:
        env = env if env is not None else {}
        recycling = (self.recycler is not None
                     and self.fingerprints is not None
                     and len(self.fingerprints) == len(program.instructions))
        for i, instr in enumerate(program.instructions):
            if recycling:
                self._recycled_step(instr, self.fingerprints[i], env, i)
            else:
                self._step(instr, env, i)
        return self.ctx.result

    def _recycled_step(self, instr: Instruction, info,
                       env: Dict[str, Any],
                       line: Optional[int] = None) -> None:
        if info is None or not info.recyclable:
            self._step(instr, env, line)
            return
        if not self.recycler.should_attempt(info.fp):
            self._step(instr, env, line)
            return
        try:
            ranges = [(s,) + self.window_ranges[s] for s in info.streams]
        except KeyError:
            # a lineage stream this run has no window for (should not
            # happen for factory programs) — execute without caching
            self._step(instr, env, line)
            return
        key = self.recycler.instruction_key(info.fp, ranges)
        found, value = self.recycler.lookup(key)
        if found:
            if self.recycler.verify:
                self._verify_hit(instr, env, value, line)
            self._bind(instr, value, env)
            return
        # bracket the evaluation: the wall time is the entry's
        # recompute cost, which the benefit-density policy weighs
        # against its size at eviction time
        started = time.perf_counter()
        value = self._execute(instr, env, line)
        cost_ms = (time.perf_counter() - started) * 1000.0
        self._bind(instr, value, env)
        self.recycler.store(key, value, cost_ms=cost_ms)

    def _verify_hit(self, instr: Instruction, env: Dict[str, Any],
                    cached: Any, line: Optional[int] = None) -> None:
        from repro.core.recycler import payloads_equal

        fresh = self._execute(instr, env, line)
        if not payloads_equal(cached, fresh):
            raise MALError(
                f"recycler verify failed for {instr.opcode}: cached "
                f"{cached!r} != fresh {fresh!r}")

    def _step(self, instr: Instruction, env: Dict[str, Any],
              line: Optional[int] = None) -> None:
        self._bind(instr, self._execute(instr, env, line), env)

    def _execute(self, instr: Instruction, env: Dict[str, Any],
                 line: Optional[int] = None) -> Any:
        impl = lookup_opcode(instr.opcode, line)
        args = [self._value(a, env) for a in instr.args]
        return impl(self.ctx, *args)

    @staticmethod
    def _bind(instr: Instruction, out: Any, env: Dict[str, Any]) -> None:
        if len(instr.results) == 0:
            return
        if len(instr.results) == 1:
            env[instr.results[0]] = out
            return
        if not isinstance(out, tuple) or len(out) != len(instr.results):
            raise MALError(
                f"{instr.opcode}: expected {len(instr.results)} results")
        for name, value in zip(instr.results, out):
            env[name] = value

    @staticmethod
    def _value(arg: Any, env: Dict[str, Any]) -> Any:
        if isinstance(arg, Var):
            try:
                return env[arg.name]
            except KeyError:
                raise MALError(f"unbound variable {arg.name}") from None
        if isinstance(arg, Const):
            return arg.value
        return arg


def execute(program: MALProgram, ctx: MALContext) -> Optional[Relation]:
    """Run *program* under *ctx*; returns its result set (if any)."""
    return MALInterpreter(ctx).run(program)


# ---------------------------------------------------------------------
# opcode implementations
# ---------------------------------------------------------------------

@opcode("sql.bind")
def _sql_bind(ctx: MALContext, source: str, column: str) -> BAT:
    return ctx.resolve_column(source, column)


@opcode("basket.bind")
def _basket_bind(ctx: MALContext, stream: str, column: str) -> BAT:
    if ctx.stream_reader is None:
        raise MALError(f"no basket binding for stream {stream!r}")
    return ctx.stream_reader(stream).column(column)


@opcode("basket.lock")
def _basket_lock(ctx: MALContext, stream: str) -> None:
    if ctx.basket_hooks is not None:
        ctx.basket_hooks.lock(stream)


@opcode("basket.unlock")
def _basket_unlock(ctx: MALContext, stream: str) -> None:
    if ctx.basket_hooks is not None:
        ctx.basket_hooks.unlock(stream)


@opcode("basket.drain")
def _basket_drain(ctx: MALContext, stream: str) -> None:
    if ctx.basket_hooks is not None:
        ctx.basket_hooks.drain(stream)


@opcode("algebra.thetaselect")
def _thetaselect(ctx: MALContext, bat: BAT, *rest) -> np.ndarray:
    if len(rest) == 3:
        cand, value, op = rest
    else:
        value, op = rest
        cand = None
    return kernel.theta_select(bat, op, value, cand)


@opcode("algebra.select")
def _select(ctx: MALContext, bat: BAT, low, high, li: bool, hi: bool,
            anti: bool) -> np.ndarray:
    return kernel.select_range(bat, low, high, li, hi, anti=anti)


@opcode("algebra.maskselect")
def _maskselect(ctx: MALContext, mask: BAT,
                cand: Optional[np.ndarray] = None) -> np.ndarray:
    return kernel.mask_select(mask, cand)


@opcode("algebra.projection")
def _projection(ctx: MALContext, cand: np.ndarray, bat: BAT) -> BAT:
    return kernel.fetch(bat, cand)


@opcode("algebra.join")
def _join(ctx: MALContext, left: BAT, right: BAT):
    return kernel.hashjoin(left, right)


@opcode("algebra.leftjoin")
def _leftjoin(ctx: MALContext, left: BAT, right: BAT):
    return kernel.left_outer_pairs(left, right)


@opcode("algebra.semijoin")
def _semijoin(ctx: MALContext, left: BAT, right: BAT):
    return kernel.semi_pairs(left, right, anti=False)


@opcode("algebra.antijoin")
def _antijoin(ctx: MALContext, left: BAT, right: BAT):
    return kernel.semi_pairs(left, right, anti=True)


@opcode("algebra.outerprojection")
def _outerprojection(ctx: MALContext, cand: np.ndarray, bat: BAT) -> BAT:
    return kernel.fetch_outer(bat, cand)


@opcode("bat.concat")
def _bat_concat(ctx: MALContext, a: BAT, b: BAT) -> BAT:
    out = a.copy()
    out.append_bat(b)
    return out


@opcode("algebra.crossproduct")
def _crossproduct(ctx: MALContext, left: BAT, right: BAT):
    nl, nr = len(left), len(right)
    lpos = np.repeat(np.arange(nl, dtype=np.int64), nr)
    rpos = np.tile(np.arange(nr, dtype=np.int64), nl)
    return lpos, rpos


@opcode("group.subgroup")
def _subgroup(ctx: MALContext, bat: BAT,
              prev: Optional[np.ndarray] = None):
    return kernel.subgroup(bat, prev)


@opcode("aggr.subcount")
def _subcount(ctx: MALContext, gids: np.ndarray, ngroups: int) -> BAT:
    return kernel.agg_count(gids, ngroups)


def _register_grouped(op_name: str, fn) -> None:
    @opcode(f"aggr.sub{op_name}")
    def _impl(ctx: MALContext, bat: BAT, gids: np.ndarray,
              ngroups: int) -> BAT:
        return fn(bat, gids, ngroups)


_register_grouped("sum", kernel.agg_sum)
_register_grouped("avg", kernel.agg_avg)
_register_grouped("min", kernel.agg_min)
_register_grouped("max", kernel.agg_max)
_register_grouped("stddev", kernel.agg_stddev)
_register_grouped("variance", kernel.agg_variance)


@opcode("aggr.subcountcol")
def _subcountcol(ctx: MALContext, bat: BAT, gids: np.ndarray,
                 ngroups: int) -> BAT:
    return kernel.agg_count(gids, ngroups, bat, None)


@opcode("aggr.subdistinct")
def _subdistinct(ctx: MALContext, op: str, bat: BAT, gids: np.ndarray,
                 ngroups: int) -> BAT:
    from repro.sql.executor import _distinct_aggregate
    from repro.sql.expressions import BoundAgg, BoundColumn

    probe = BoundAgg(op, BoundColumn("x", bat.dtype), distinct=True)
    return _distinct_aggregate(probe, bat, gids, ngroups)


@opcode("aggr.count_rows")
def _count_rows(ctx: MALContext, bat: BAT) -> int:
    return len(bat)


def _register_scalar(op_name: str) -> None:
    @opcode(f"aggr.{op_name}")
    def _impl(ctx: MALContext, bat: BAT):
        return kernel.scalar_agg(op_name, bat)


for _name in ("count", "sum", "avg", "min", "max", "stddev",
               "variance"):
    _register_scalar(_name)


@opcode("aggr.distinct_scalar")
def _distinct_scalar(ctx: MALContext, op: str, bat: BAT):
    seen = set()
    keep: List[int] = []
    mask = bat.nil_mask()
    for i, value in enumerate(bat.values):
        if mask[i]:
            continue
        if value not in seen:
            seen.add(value)
            keep.append(i)
    sub = bat.take(np.asarray(keep, dtype=np.int64))
    return kernel.scalar_agg(op, sub)


@opcode("bat.single")
def _bat_single(ctx: MALContext, type_name: str, value) -> BAT:
    out = BAT(dt.DataType.by_name(type_name))
    out.append(value, coerce=True)
    return out


@opcode("batcalc.const")
def _batcalc_const(ctx: MALContext, type_name: str, value,
                   anchor: BAT) -> BAT:
    return kernel.const_column(dt.DataType.by_name(type_name), value,
                               len(anchor))


def _register_arith(name: str, op: str) -> None:
    @opcode(f"batcalc.{name}")
    def _impl(ctx: MALContext, a: BAT, b: BAT) -> BAT:
        return kernel.calc_arith(op, a, b)


for _n, _o in (("add", "+"), ("sub", "-"), ("mul", "*"), ("div", "/"),
               ("mod", "%")):
    _register_arith(_n, _o)


def _register_cmp(name: str, op: str) -> None:
    @opcode(f"batcalc.{name}")
    def _impl(ctx: MALContext, a: BAT, b: BAT) -> BAT:
        return kernel.calc_cmp(op, a, b)


for _n, _o in (("eq", "=="), ("ne", "!="), ("lt", "<"), ("le", "<="),
               ("gt", ">"), ("ge", ">=")):
    _register_cmp(_n, _o)


@opcode("batcalc.neg")
def _neg(ctx: MALContext, a: BAT) -> BAT:
    return kernel.calc_neg(a)


@opcode("batcalc.and")
def _and(ctx: MALContext, a: BAT, b: BAT) -> BAT:
    return kernel.calc_and(a, b)


@opcode("batcalc.or")
def _or(ctx: MALContext, a: BAT, b: BAT) -> BAT:
    return kernel.calc_or(a, b)


@opcode("batcalc.not")
def _not(ctx: MALContext, a: BAT) -> BAT:
    return kernel.calc_not(a)


@opcode("batcalc.isnil")
def _isnil(ctx: MALContext, a: BAT) -> BAT:
    return kernel.calc_isnil(a)


@opcode("batcalc.cast")
def _cast(ctx: MALContext, type_name: str, a: BAT) -> BAT:
    return kernel.calc_cast(a, dt.DataType.by_name(type_name))


@opcode("calc.inlist")
def _inlist(ctx: MALContext, bat: BAT, values, negated: bool) -> BAT:
    from repro.sql.expressions import BoundColumn, BoundInList
    from repro.mal.relation import Relation as _Rel

    expr = BoundInList(BoundColumn("x", bat.dtype), list(values), negated)
    rel = _Rel([("x", bat)])
    return expr.evaluate(rel)


@opcode("calc.like")
def _like(ctx: MALContext, bat: BAT, pattern: str, negated: bool) -> BAT:
    from repro.sql.expressions import BoundColumn, BoundLike
    from repro.mal.relation import Relation as _Rel

    expr = BoundLike(BoundColumn("x", bat.dtype), pattern, negated)
    return expr.evaluate(_Rel([("x", bat)]))


@opcode("calc.case")
def _case(ctx: MALContext, type_name: str, nbranches: int, *rest) -> BAT:
    out_type = dt.DataType.by_name(type_name)
    pairs = [(rest[2 * i], rest[2 * i + 1]) for i in range(nbranches)]
    else_bat = rest[2 * nbranches] if len(rest) > 2 * nbranches else None
    n = len(pairs[0][0])
    result = kernel.const_column(out_type, None, n)
    values = result.values
    decided = np.zeros(n, dtype=bool)
    for cond, branch in pairs:
        take = (cond.values == 1) & ~decided
        if take.any():
            if branch.dtype != out_type:
                branch = kernel.calc_cast(branch, out_type)
            values[take] = branch.values[take]
            decided |= take
    if else_bat is not None and not decided.all():
        if else_bat.dtype != out_type:
            else_bat = kernel.calc_cast(else_bat, out_type)
        rest_mask = ~decided
        values[rest_mask] = else_bat.values[rest_mask]
    return result


@opcode("algebra.sortmulti")
def _sortmulti(ctx: MALContext, nkeys: int, *rest) -> np.ndarray:
    bats = [rest[2 * i] for i in range(nkeys)]
    descs = [rest[2 * i + 1] for i in range(nkeys)]
    return kernel.sort_positions(bats, descs)


@opcode("algebra.slicecand")
def _slicecand(ctx: MALContext, anchor: BAT, offset: int,
               limit: Optional[int]) -> np.ndarray:
    cand = all_candidates(len(anchor))
    return kernel.slice_candidates(cand, offset, limit)


@opcode("algebra.distinctcand")
def _distinctcand(ctx: MALContext, *bats: BAT) -> np.ndarray:
    return kernel.distinct(list(bats))


@opcode("sql.resultSet")
def _result_set(ctx: MALContext, names, *bats: BAT) -> None:
    rel = Relation(list(zip(names, bats)))
    ctx.result = rel
    ctx.emitted.append(rel)


@opcode("basket.emit")
def _basket_emit(ctx: MALContext, names, *bats: BAT) -> None:
    """Continuous-plan result delivery: append to the output basket.

    The factory harvests ``ctx.result`` after the run and hands it to
    the query's emitter."""
    _result_set(ctx, names, *bats)


def _dynamic_scalar_call(ctx: MALContext, name: str, *args: BAT) -> BAT:
    from repro.sql import functions as funcs

    return funcs.lookup(name).impl(*args)


class _CalcDispatch:
    """Fallback: ``calc.<fn>`` opcodes route to the function registry."""


def _ensure_calc(name: str) -> None:
    if name in _OPCODES:
        return
    fn_name = name.split(".", 1)[1]

    @opcode(name)
    def _impl(ctx: MALContext, *args):
        return _dynamic_scalar_call(ctx, fn_name, *args)


def resolve_opcode(name: str) -> Optional[OpImpl]:
    """Lazily register ``calc.*`` opcodes backed by scalar functions;
    returns the registered implementation (None for non-calc names
    that are not registered)."""
    if name.startswith("calc.") and name not in _OPCODES:
        _ensure_calc(name)
    return _OPCODES.get(name)
