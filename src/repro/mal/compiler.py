"""Logical plan -> MAL program compiler.

Mirrors MonetDB's SQL-to-MAL code generation closely enough for the
DataCell story: scans become ``sql.bind`` (or ``basket.bind`` for
streams), selections become ``algebra.thetaselect`` / ``algebra.select``
with candidate lists, late reconstruction is explicit
``algebra.projection`` instructions, and the program ends in
``sql.resultSet``. The DataCell rewriter then edits this program.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.errors import MALError
from repro.mal.program import Const, MALProgram, Var
from repro.sql.expressions import (BoundAgg, BoundArith, BoundCase,
                                   BoundCast, BoundColumn, BoundCompare,
                                   BoundExpr, BoundFunc, BoundInList,
                                   BoundIsNull, BoundLike, BoundLiteral,
                                   BoundLogical, BoundNeg, BoundNot)
from repro.sql.plan import (AggregateNode, DistinctNode, FilterNode,
                            JoinNode, LimitNode, PlanNode, ProjectNode,
                            ScanNode, SortNode, StreamScanNode,
                            UnionNode)
from repro.sql.planner import split_conjuncts

_CMP_NAMES = {"==": "eq", "!=": "ne", "<": "lt", "<=": "le",
              ">": "gt", ">=": "ge"}
_ARITH_NAMES = {"+": "add", "-": "sub", "*": "mul", "/": "div", "%": "mod"}


class _Cols:
    """Aligned column environment for one plan subtree."""

    def __init__(self, mapping: Dict[str, Var]):
        self.mapping = dict(mapping)

    def var(self, key: str) -> Var:
        try:
            return self.mapping[key]
        except KeyError:
            raise MALError(f"MAL compile: no column {key!r}; have "
                           f"{sorted(self.mapping)}") from None

    def anchor(self) -> Var:
        if not self.mapping:
            raise MALError("MAL compile: empty column environment")
        return next(iter(self.mapping.values()))

    def items(self):
        return self.mapping.items()


class MALCompiler:
    """Compiles optimized logical plans to :class:`MALProgram`."""

    def __init__(self):
        self.program: Optional[MALProgram] = None

    def compile(self, plan: PlanNode, name: str = "user.s0") -> MALProgram:
        self.program = MALProgram(name, kind="query")
        cols = self._node(plan)
        names = plan.schema.names
        args: List = [Const(tuple(names))]
        args.extend(cols.var(n) for n in names)
        self.program.emit("sql.resultSet", *args, results=0,
                          comment="deliver result to client")
        return self.program

    # -- plan dispatch ---------------------------------------------------

    def _node(self, node: PlanNode) -> _Cols:
        if isinstance(node, ScanNode):
            return self._scan(node, "sql.bind", node.table_name)
        if isinstance(node, StreamScanNode):
            return self._scan(node, "sql.bind", node.stream_name,
                              comment="stream read as one-time query")
        if isinstance(node, FilterNode):
            return self._filter(node)
        if isinstance(node, ProjectNode):
            return self._project(node)
        if isinstance(node, JoinNode):
            return self._join(node)
        if isinstance(node, AggregateNode):
            return self._aggregate(node)
        if isinstance(node, SortNode):
            return self._sort(node)
        if isinstance(node, LimitNode):
            return self._limit(node)
        if isinstance(node, DistinctNode):
            return self._distinct(node)
        if isinstance(node, UnionNode):
            return self._union(node)
        raise MALError(f"cannot compile plan node {node!r}")

    def _union(self, node: UnionNode) -> _Cols:
        branch_cols = [self._node(child) for child in node.children]
        names = node.schema.names
        mapping: Dict[str, Var] = {}
        for i, name in enumerate(names):
            merged = branch_cols[0].var(node.children[0].schema.names[i])
            for child, cols in zip(node.children[1:], branch_cols[1:]):
                other = cols.var(child.schema.names[i])
                merged = self.program.emit(
                    "bat.concat", merged, other,
                    comment=f"union all column {name}")
            mapping[name] = merged
        return _Cols(mapping)

    def _scan(self, node, opcode: str, source: str,
              comment: str = "") -> _Cols:
        keys = node.needed if node.needed is not None \
            else node.schema.names
        if not keys:  # always bind at least one column as the row anchor
            keys = [node.schema.names[0]]
        mapping = {}
        for key in keys:
            bare = key.split(".", 1)[1]
            mapping[key] = self.program.emit(
                opcode, Const(source), Const(bare), comment=comment)
        return _Cols(mapping)

    # -- filter -----------------------------------------------------------

    def _filter(self, node: FilterNode) -> _Cols:
        cols = self._node(node.child)
        cand = None
        rest: List[BoundExpr] = []
        for conj in split_conjuncts(node.predicate):
            simple = self._simple_theta(conj, cols)
            if simple is not None:
                col_var, op, value = simple
                args = [col_var]
                if cand is not None:
                    args.append(cand)
                args.extend([Const(value), Const(op)])
                cand = self.program.emit(
                    "algebra.thetaselect", *args,
                    comment=f"select {conj.sql()}")
            else:
                rest.append(conj)
        if rest:
            current = _Cols(dict(cols.items()))
            if cand is not None:
                current = self._reconstruct(current, cand)
                cols = current
                cand = None
            mask = None
            for conj in rest:
                mask = self._expr(conj, cols)
                cand = self.program.emit(
                    "algebra.maskselect", mask,
                    *( [cand] if cand is not None else [] ),
                    comment=f"select {conj.sql()}")
                cols = self._reconstruct(cols, cand)
                cand = None
            return cols
        if cand is None:
            return cols
        return self._reconstruct(cols, cand)

    @staticmethod
    def _simple_theta(conj: BoundExpr, cols: _Cols
                      ) -> Optional[Tuple[Var, str, object]]:
        if (isinstance(conj, BoundCompare)
                and isinstance(conj.left, BoundColumn)
                and isinstance(conj.right, BoundLiteral)
                and conj.right.value is not None):
            return (cols.var(conj.left.key), conj.op, conj.right.value)
        if (isinstance(conj, BoundCompare)
                and isinstance(conj.right, BoundColumn)
                and isinstance(conj.left, BoundLiteral)
                and conj.left.value is not None):
            flip = {"<": ">", "<=": ">=", ">": "<", ">=": "<=",
                    "==": "==", "!=": "!="}
            return (cols.var(conj.right.key), flip[conj.op],
                    conj.left.value)
        return None

    def _reconstruct(self, cols: _Cols, cand: Var) -> _Cols:
        """Late tuple reconstruction of every live column."""
        mapping = {}
        for key, var in cols.items():
            mapping[key] = self.program.emit(
                "algebra.projection", cand, var,
                comment=f"reconstruct {key}")
        return _Cols(mapping)

    # -- project ------------------------------------------------------------

    def _project(self, node: ProjectNode) -> _Cols:
        cols = self._node(node.child)
        mapping = {}
        for expr, name in zip(node.exprs, node.names):
            mapping[name] = self._expr(expr, cols)
        return _Cols(mapping)

    # -- join -----------------------------------------------------------------

    def _join(self, node: JoinNode) -> _Cols:
        left = self._node(node.left)
        right = self._node(node.right)
        if node.join_type in ("semi", "anti"):
            lkey = self._expr(node.left_key, left)
            rkey = self._expr(node.right_key, right)
            cand = self.program.emit(
                f"algebra.{node.join_type}join", lkey, rkey,
                comment=f"{node.join_type} join on "
                        f"{node.left_key.sql()} = {node.right_key.sql()}")
            return self._reconstruct(left, cand)
        outer = node.join_type == "left"
        if node.left_key is None:
            lcand, rcand = self.program.emit(
                "algebra.crossproduct", left.anchor(), right.anchor(),
                results=2, comment="cross product")
        else:
            lkey = self._expr(node.left_key, left)
            rkey = self._expr(node.right_key, right)
            opcode = "algebra.leftjoin" if outer else "algebra.join"
            lcand, rcand = self.program.emit(
                opcode, lkey, rkey, results=2,
                comment=f"{'left outer' if outer else 'hash'} join on "
                        f"{node.left_key.sql()} = {node.right_key.sql()}")
        mapping = {}
        for key, var in left.items():
            mapping[key] = self.program.emit(
                "algebra.projection", lcand, var,
                comment=f"fetch {key} (left)")
        right_fetch = "algebra.outerprojection" if outer \
            else "algebra.projection"
        for key, var in right.items():
            mapping[key] = self.program.emit(
                right_fetch, rcand, var,
                comment=f"fetch {key} (right)")
        cols = _Cols(mapping)
        if node.residual is not None:
            mask = self._expr(node.residual, cols)
            cand = self.program.emit(
                "algebra.maskselect", mask,
                comment=f"residual {node.residual.sql()}")
            cols = self._reconstruct(cols, cand)
        return cols

    # -- aggregate ----------------------------------------------------------------

    def _aggregate(self, node: AggregateNode) -> _Cols:
        cols = self._node(node.child)
        mapping: Dict[str, Var] = {}
        if node.group_exprs:
            gids = None
            reps = None
            ngroups = None
            group_vars = [self._expr(e, cols) for e in node.group_exprs]
            for gv, ge in zip(group_vars, node.group_exprs):
                args = [gv] + ([gids] if gids is not None else [])
                gids, reps, ngroups = self.program.emit(
                    "group.subgroup", *args, results=3,
                    comment=f"group by {ge.sql()}")
            for name, gv in zip(node.group_names, group_vars):
                mapping[name] = self.program.emit(
                    "algebra.projection", reps, gv,
                    comment=f"group key {name}")
            for name, agg in zip(node.agg_names, node.aggs):
                mapping[name] = self._grouped_agg(agg, cols, gids,
                                                  ngroups, name)
        else:
            for name, agg in zip(node.agg_names, node.aggs):
                mapping[name] = self._scalar_agg(agg, cols, name)
        return _Cols(mapping)

    def _grouped_agg(self, agg: BoundAgg, cols: _Cols, gids: Var,
                     ngroups: Var, name: str) -> Var:
        if agg.op == "count" and agg.arg is None:
            return self.program.emit("aggr.subcount", gids, ngroups,
                                     comment=f"{name} := count(*)")
        arg = self._expr(agg.arg, cols)
        if agg.distinct:
            return self.program.emit(
                "aggr.subdistinct", Const(agg.op), arg, gids, ngroups,
                comment=f"{name} := {agg.sql()}")
        opcode = "aggr.subcountcol" if agg.op == "count" \
            else f"aggr.sub{agg.op}"
        return self.program.emit(
            opcode, arg, gids, ngroups,
            comment=f"{name} := {agg.sql()}")

    def _scalar_agg(self, agg: BoundAgg, cols: _Cols, name: str) -> Var:
        if agg.op == "count" and agg.arg is None:
            scalar = self.program.emit("aggr.count_rows", cols.anchor(),
                                       comment=f"{name} := count(*)")
            return self.program.emit("bat.single", Const("INT"), scalar)
        arg = self._expr(agg.arg, cols)
        if agg.distinct:
            scalar = self.program.emit("aggr.distinct_scalar",
                                       Const(agg.op), arg,
                                       comment=f"{name} := {agg.sql()}")
        else:
            scalar = self.program.emit(f"aggr.{agg.op}", arg,
                                       comment=f"{name} := {agg.sql()}")
        return self.program.emit("bat.single", Const(agg.dtype.name),
                                 scalar)

    # -- sort / limit / distinct ---------------------------------------------------

    def _sort(self, node: SortNode) -> _Cols:
        cols = self._node(node.child)
        args: List = [Const(len(node.keys))]
        for expr, desc in node.keys:
            args.append(self._expr(expr, cols))
            args.append(Const(bool(desc)))
        order = self.program.emit("algebra.sortmulti", *args,
                                  comment="order by")
        return self._reconstruct(cols, order)

    def _limit(self, node: LimitNode) -> _Cols:
        cols = self._node(node.child)
        cand = self.program.emit(
            "algebra.slicecand", cols.anchor(), Const(node.offset),
            Const(node.limit), comment="limit/offset")
        return self._reconstruct(cols, cand)

    def _distinct(self, node: DistinctNode) -> _Cols:
        cols = self._node(node.child)
        args = [var for _key, var in cols.items()]
        cand = self.program.emit("algebra.distinctcand", *args,
                                 comment="distinct")
        return self._reconstruct(cols, cand)

    # -- expressions ------------------------------------------------------------------

    def _expr(self, expr: BoundExpr, cols: _Cols) -> Var:
        if isinstance(expr, BoundColumn):
            return cols.var(expr.key)
        if isinstance(expr, BoundLiteral):
            return self.program.emit(
                "batcalc.const", Const(expr.dtype.name),
                Const(expr.value), cols.anchor())
        if isinstance(expr, BoundArith):
            op = "+" if expr.op == "||" else expr.op
            left = expr.left
            right = expr.right
            lv = self._expr(left, cols)
            rv = self._expr(right, cols)
            if expr.op == "||" or (op == "+" and expr.dtype.is_string):
                lv = self.program.emit("batcalc.cast", Const("STRING"), lv)
                rv = self.program.emit("batcalc.cast", Const("STRING"), rv)
            return self.program.emit(f"batcalc.{_ARITH_NAMES[op]}", lv, rv)
        if isinstance(expr, BoundNeg):
            return self.program.emit("batcalc.neg",
                                     self._expr(expr.operand, cols))
        if isinstance(expr, BoundCompare):
            return self.program.emit(
                f"batcalc.{_CMP_NAMES[expr.op]}",
                self._expr(expr.left, cols), self._expr(expr.right, cols))
        if isinstance(expr, BoundLogical):
            return self.program.emit(
                f"batcalc.{expr.op}", self._expr(expr.left, cols),
                self._expr(expr.right, cols))
        if isinstance(expr, BoundNot):
            return self.program.emit("batcalc.not",
                                     self._expr(expr.operand, cols))
        if isinstance(expr, BoundIsNull):
            var = self.program.emit("batcalc.isnil",
                                    self._expr(expr.operand, cols))
            if expr.negated:
                var = self.program.emit("batcalc.not", var)
            return var
        if isinstance(expr, BoundCast):
            return self.program.emit(
                "batcalc.cast", Const(expr.dtype.name),
                self._expr(expr.operand, cols))
        if isinstance(expr, BoundFunc):
            args = [self._expr(a, cols) for a in expr.args]
            return self.program.emit(f"calc.{expr.name}", *args)
        if isinstance(expr, BoundInList):
            return self.program.emit(
                "calc.inlist", self._expr(expr.operand, cols),
                Const(tuple(expr.values)), Const(expr.negated))
        if isinstance(expr, BoundLike):
            return self.program.emit(
                "calc.like", self._expr(expr.operand, cols),
                Const(expr.pattern), Const(expr.negated))
        if isinstance(expr, BoundCase):
            args: List = [Const(expr.dtype.name), Const(len(expr.whens))]
            for cond, value in expr.whens:
                args.append(self._expr(cond, cols))
                args.append(self._expr(value, cols))
            if expr.else_ is not None:
                args.append(self._expr(expr.else_, cols))
            return self.program.emit("calc.case", *args)
        if isinstance(expr, BoundAgg):
            raise MALError("aggregate outside Aggregate node")
        raise MALError(f"cannot compile expression {expr!r}")


def compile_plan(plan: PlanNode, name: str = "user.s0") -> MALProgram:
    """Convenience wrapper around :class:`MALCompiler`."""
    return MALCompiler().compile(plan, name)
