"""Logical plan -> MAL program compiler.

Mirrors MonetDB's SQL-to-MAL code generation closely enough for the
DataCell story: scans become ``sql.bind`` (or ``basket.bind`` for
streams), selections become ``algebra.thetaselect`` / ``algebra.select``
with candidate lists, late reconstruction is explicit
``algebra.projection`` instructions, and the program ends in
``sql.resultSet``. The DataCell rewriter then edits this program.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.errors import MALError
from repro.mal.program import Const, MALProgram, Var
from repro.sql.expressions import (BoundAgg, BoundArith, BoundCase,
                                   BoundCast, BoundColumn, BoundCompare,
                                   BoundExpr, BoundFunc, BoundInList,
                                   BoundIsNull, BoundLike, BoundLiteral,
                                   BoundLogical, BoundNeg, BoundNot)
from repro.sql.plan import (AggregateNode, DistinctNode, FilterNode,
                            JoinNode, LimitNode, PlanNode, ProjectNode,
                            ScanNode, SortNode, StreamScanNode,
                            UnionNode)
from repro.sql.planner import split_conjuncts

_CMP_NAMES = {"==": "eq", "!=": "ne", "<": "lt", "<=": "le",
              ">": "gt", ">=": "ge"}
_ARITH_NAMES = {"+": "add", "-": "sub", "*": "mul", "/": "div", "%": "mod"}


class _Cols:
    """Aligned column environment for one plan subtree."""

    def __init__(self, mapping: Dict[str, Var]):
        self.mapping = dict(mapping)

    def var(self, key: str) -> Var:
        try:
            return self.mapping[key]
        except KeyError:
            raise MALError(f"MAL compile: no column {key!r}; have "
                           f"{sorted(self.mapping)}") from None

    def anchor(self) -> Var:
        if not self.mapping:
            raise MALError("MAL compile: empty column environment")
        return next(iter(self.mapping.values()))

    def items(self):
        return self.mapping.items()


class MALCompiler:
    """Compiles optimized logical plans to :class:`MALProgram`."""

    def __init__(self):
        self.program: Optional[MALProgram] = None

    def compile(self, plan: PlanNode, name: str = "user.s0") -> MALProgram:
        self.program = MALProgram(name, kind="query")
        cols = self._node(plan)
        names = plan.schema.names
        args: List = [Const(tuple(names))]
        args.extend(cols.var(n) for n in names)
        self.program.emit("sql.resultSet", *args, results=0,
                          comment="deliver result to client")
        return self.program

    # -- plan dispatch ---------------------------------------------------

    def _node(self, node: PlanNode) -> _Cols:
        if isinstance(node, ScanNode):
            return self._scan(node, "sql.bind", node.table_name)
        if isinstance(node, StreamScanNode):
            return self._scan(node, "sql.bind", node.stream_name,
                              comment="stream read as one-time query")
        if isinstance(node, FilterNode):
            return self._filter(node)
        if isinstance(node, ProjectNode):
            return self._project(node)
        if isinstance(node, JoinNode):
            return self._join(node)
        if isinstance(node, AggregateNode):
            return self._aggregate(node)
        if isinstance(node, SortNode):
            return self._sort(node)
        if isinstance(node, LimitNode):
            return self._limit(node)
        if isinstance(node, DistinctNode):
            return self._distinct(node)
        if isinstance(node, UnionNode):
            return self._union(node)
        raise MALError(f"cannot compile plan node {node!r}")

    def _union(self, node: UnionNode) -> _Cols:
        branch_cols = [self._node(child) for child in node.children]
        names = node.schema.names
        mapping: Dict[str, Var] = {}
        for i, name in enumerate(names):
            merged = branch_cols[0].var(node.children[0].schema.names[i])
            for child, cols in zip(node.children[1:], branch_cols[1:]):
                other = cols.var(child.schema.names[i])
                merged = self.program.emit(
                    "bat.concat", merged, other,
                    comment=f"union all column {name}")
            mapping[name] = merged
        return _Cols(mapping)

    def _scan(self, node, opcode: str, source: str,
              comment: str = "") -> _Cols:
        keys = node.needed if node.needed is not None \
            else node.schema.names
        if not keys:  # always bind at least one column as the row anchor
            keys = [node.schema.names[0]]
        mapping = {}
        for key in keys:
            bare = key.split(".", 1)[1]
            mapping[key] = self.program.emit(
                opcode, Const(source), Const(bare), comment=comment)
        return _Cols(mapping)

    # -- filter -----------------------------------------------------------

    def _filter(self, node: FilterNode) -> _Cols:
        cols = self._node(node.child)
        cand = None
        rest: List[BoundExpr] = []
        for conj in split_conjuncts(node.predicate):
            simple = self._simple_theta(conj, cols)
            if simple is not None:
                col_var, op, value = simple
                args = [col_var]
                if cand is not None:
                    args.append(cand)
                args.extend([Const(value), Const(op)])
                cand = self.program.emit(
                    "algebra.thetaselect", *args,
                    comment=f"select {conj.sql()}")
            else:
                rest.append(conj)
        if rest:
            current = _Cols(dict(cols.items()))
            if cand is not None:
                current = self._reconstruct(current, cand)
                cols = current
                cand = None
            mask = None
            for conj in rest:
                mask = self._expr(conj, cols)
                cand = self.program.emit(
                    "algebra.maskselect", mask,
                    *( [cand] if cand is not None else [] ),
                    comment=f"select {conj.sql()}")
                cols = self._reconstruct(cols, cand)
                cand = None
            return cols
        if cand is None:
            return cols
        return self._reconstruct(cols, cand)

    @staticmethod
    def _simple_theta(conj: BoundExpr, cols: _Cols
                      ) -> Optional[Tuple[Var, str, object]]:
        if (isinstance(conj, BoundCompare)
                and isinstance(conj.left, BoundColumn)
                and isinstance(conj.right, BoundLiteral)
                and conj.right.value is not None):
            return (cols.var(conj.left.key), conj.op, conj.right.value)
        if (isinstance(conj, BoundCompare)
                and isinstance(conj.right, BoundColumn)
                and isinstance(conj.left, BoundLiteral)
                and conj.left.value is not None):
            flip = {"<": ">", "<=": ">=", ">": "<", ">=": "<=",
                    "==": "==", "!=": "!="}
            return (cols.var(conj.right.key), flip[conj.op],
                    conj.left.value)
        return None

    def _reconstruct(self, cols: _Cols, cand: Var) -> _Cols:
        """Late tuple reconstruction of every live column."""
        mapping = {}
        for key, var in cols.items():
            mapping[key] = self.program.emit(
                "algebra.projection", cand, var,
                comment=f"reconstruct {key}")
        return _Cols(mapping)

    # -- project ------------------------------------------------------------

    def _project(self, node: ProjectNode) -> _Cols:
        cols = self._node(node.child)
        mapping = {}
        for expr, name in zip(node.exprs, node.names):
            mapping[name] = self._expr(expr, cols)
        return _Cols(mapping)

    # -- join -----------------------------------------------------------------

    def _join(self, node: JoinNode) -> _Cols:
        left = self._node(node.left)
        right = self._node(node.right)
        if node.join_type in ("semi", "anti"):
            lkey = self._expr(node.left_key, left)
            rkey = self._expr(node.right_key, right)
            cand = self.program.emit(
                f"algebra.{node.join_type}join", lkey, rkey,
                comment=f"{node.join_type} join on "
                        f"{node.left_key.sql()} = {node.right_key.sql()}")
            return self._reconstruct(left, cand)
        outer = node.join_type == "left"
        if node.left_key is None:
            lcand, rcand = self.program.emit(
                "algebra.crossproduct", left.anchor(), right.anchor(),
                results=2, comment="cross product")
        else:
            lkey = self._expr(node.left_key, left)
            rkey = self._expr(node.right_key, right)
            opcode = "algebra.leftjoin" if outer else "algebra.join"
            lcand, rcand = self.program.emit(
                opcode, lkey, rkey, results=2,
                comment=f"{'left outer' if outer else 'hash'} join on "
                        f"{node.left_key.sql()} = {node.right_key.sql()}")
        mapping = {}
        for key, var in left.items():
            mapping[key] = self.program.emit(
                "algebra.projection", lcand, var,
                comment=f"fetch {key} (left)")
        right_fetch = "algebra.outerprojection" if outer \
            else "algebra.projection"
        for key, var in right.items():
            mapping[key] = self.program.emit(
                right_fetch, rcand, var,
                comment=f"fetch {key} (right)")
        cols = _Cols(mapping)
        if node.residual is not None:
            mask = self._expr(node.residual, cols)
            cand = self.program.emit(
                "algebra.maskselect", mask,
                comment=f"residual {node.residual.sql()}")
            cols = self._reconstruct(cols, cand)
        return cols

    # -- aggregate ----------------------------------------------------------------

    def _aggregate(self, node: AggregateNode) -> _Cols:
        cols = self._node(node.child)
        mapping: Dict[str, Var] = {}
        if node.group_exprs:
            gids = None
            reps = None
            ngroups = None
            group_vars = [self._expr(e, cols) for e in node.group_exprs]
            for gv, ge in zip(group_vars, node.group_exprs):
                args = [gv] + ([gids] if gids is not None else [])
                gids, reps, ngroups = self.program.emit(
                    "group.subgroup", *args, results=3,
                    comment=f"group by {ge.sql()}")
            for name, gv in zip(node.group_names, group_vars):
                mapping[name] = self.program.emit(
                    "algebra.projection", reps, gv,
                    comment=f"group key {name}")
            for name, agg in zip(node.agg_names, node.aggs):
                mapping[name] = self._grouped_agg(agg, cols, gids,
                                                  ngroups, name)
        else:
            for name, agg in zip(node.agg_names, node.aggs):
                mapping[name] = self._scalar_agg(agg, cols, name)
        return _Cols(mapping)

    def _grouped_agg(self, agg: BoundAgg, cols: _Cols, gids: Var,
                     ngroups: Var, name: str) -> Var:
        if agg.op == "count" and agg.arg is None:
            return self.program.emit("aggr.subcount", gids, ngroups,
                                     comment=f"{name} := count(*)")
        arg = self._expr(agg.arg, cols)
        if agg.distinct:
            return self.program.emit(
                "aggr.subdistinct", Const(agg.op), arg, gids, ngroups,
                comment=f"{name} := {agg.sql()}")
        opcode = "aggr.subcountcol" if agg.op == "count" \
            else f"aggr.sub{agg.op}"
        return self.program.emit(
            opcode, arg, gids, ngroups,
            comment=f"{name} := {agg.sql()}")

    def _scalar_agg(self, agg: BoundAgg, cols: _Cols, name: str) -> Var:
        if agg.op == "count" and agg.arg is None:
            scalar = self.program.emit("aggr.count_rows", cols.anchor(),
                                       comment=f"{name} := count(*)")
            return self.program.emit("bat.single", Const("INT"), scalar)
        arg = self._expr(agg.arg, cols)
        if agg.distinct:
            scalar = self.program.emit("aggr.distinct_scalar",
                                       Const(agg.op), arg,
                                       comment=f"{name} := {agg.sql()}")
        else:
            scalar = self.program.emit(f"aggr.{agg.op}", arg,
                                       comment=f"{name} := {agg.sql()}")
        return self.program.emit("bat.single", Const(agg.dtype.name),
                                 scalar)

    # -- sort / limit / distinct ---------------------------------------------------

    def _sort(self, node: SortNode) -> _Cols:
        cols = self._node(node.child)
        args: List = [Const(len(node.keys))]
        for expr, desc in node.keys:
            args.append(self._expr(expr, cols))
            args.append(Const(bool(desc)))
        order = self.program.emit("algebra.sortmulti", *args,
                                  comment="order by")
        return self._reconstruct(cols, order)

    def _limit(self, node: LimitNode) -> _Cols:
        cols = self._node(node.child)
        cand = self.program.emit(
            "algebra.slicecand", cols.anchor(), Const(node.offset),
            Const(node.limit), comment="limit/offset")
        return self._reconstruct(cols, cand)

    def _distinct(self, node: DistinctNode) -> _Cols:
        cols = self._node(node.child)
        args = [var for _key, var in cols.items()]
        cand = self.program.emit("algebra.distinctcand", *args,
                                 comment="distinct")
        return self._reconstruct(cols, cand)

    # -- expressions ------------------------------------------------------------------

    def _expr(self, expr: BoundExpr, cols: _Cols) -> Var:
        if isinstance(expr, BoundColumn):
            return cols.var(expr.key)
        if isinstance(expr, BoundLiteral):
            return self.program.emit(
                "batcalc.const", Const(expr.dtype.name),
                Const(expr.value), cols.anchor())
        if isinstance(expr, BoundArith):
            op = "+" if expr.op == "||" else expr.op
            left = expr.left
            right = expr.right
            lv = self._expr(left, cols)
            rv = self._expr(right, cols)
            if expr.op == "||" or (op == "+" and expr.dtype.is_string):
                lv = self.program.emit("batcalc.cast", Const("STRING"), lv)
                rv = self.program.emit("batcalc.cast", Const("STRING"), rv)
            return self.program.emit(f"batcalc.{_ARITH_NAMES[op]}", lv, rv)
        if isinstance(expr, BoundNeg):
            return self.program.emit("batcalc.neg",
                                     self._expr(expr.operand, cols))
        if isinstance(expr, BoundCompare):
            return self.program.emit(
                f"batcalc.{_CMP_NAMES[expr.op]}",
                self._expr(expr.left, cols), self._expr(expr.right, cols))
        if isinstance(expr, BoundLogical):
            return self.program.emit(
                f"batcalc.{expr.op}", self._expr(expr.left, cols),
                self._expr(expr.right, cols))
        if isinstance(expr, BoundNot):
            return self.program.emit("batcalc.not",
                                     self._expr(expr.operand, cols))
        if isinstance(expr, BoundIsNull):
            var = self.program.emit("batcalc.isnil",
                                    self._expr(expr.operand, cols))
            if expr.negated:
                var = self.program.emit("batcalc.not", var)
            return var
        if isinstance(expr, BoundCast):
            return self.program.emit(
                "batcalc.cast", Const(expr.dtype.name),
                self._expr(expr.operand, cols))
        if isinstance(expr, BoundFunc):
            args = [self._expr(a, cols) for a in expr.args]
            return self.program.emit(f"calc.{expr.name}", *args)
        if isinstance(expr, BoundInList):
            return self.program.emit(
                "calc.inlist", self._expr(expr.operand, cols),
                Const(tuple(expr.values)), Const(expr.negated))
        if isinstance(expr, BoundLike):
            return self.program.emit(
                "calc.like", self._expr(expr.operand, cols),
                Const(expr.pattern), Const(expr.negated))
        if isinstance(expr, BoundCase):
            args: List = [Const(expr.dtype.name), Const(len(expr.whens))]
            for cond, value in expr.whens:
                args.append(self._expr(cond, cols))
                args.append(self._expr(value, cols))
            if expr.else_ is not None:
                args.append(self._expr(expr.else_, cols))
            return self.program.emit("calc.case", *args)
        if isinstance(expr, BoundAgg):
            raise MALError("aggregate outside Aggregate node")
        raise MALError(f"cannot compile expression {expr!r}")


def compile_plan(plan: PlanNode, name: str = "user.s0") -> MALProgram:
    """Convenience wrapper around :class:`MALCompiler`."""
    return MALCompiler().compile(plan, name)


# ---------------------------------------------------------------------
# slot compilation: MALProgram -> CompiledProgram
# ---------------------------------------------------------------------
#
# A factory's MAL program fires thousands of times unchanged, yet the
# straight-line interpreter re-pays full dynamic dispatch on every
# firing: a dict probe per instruction, an isinstance() per argument
# and a dict-keyed environment read/write per variable. Analytic
# column stores separate *plan preparation* from vectorized execution;
# we do the same here. At registration each instruction is compiled
# once into a pre-bound thunk:
#
# * the opcode implementation is resolved exactly once (including the
#   lazy ``calc.*`` registrations) — a miss fails at compile time,
#   naming the opcode and plan line;
# * constants are folded into the thunk (inline literals, or a closed-
#   over tuple for non-literal payloads);
# * SSA variable names are renumbered into integer *slots* over one
#   flat register list, so the per-fire loop is
#   ``for thunk in thunks: thunk(ctx, regs)`` with each thunk doing
#   ``regs[dst] = impl(ctx, regs[a], regs[b])`` — zero dict lookups,
#   zero per-argument type tests.
#
# Structurally identical programs (the 32-standing-queries scenario)
# compile to identical slot programs, so compilations are shared
# through a canonical-form memo: each registration after the first is
# a cache hit, and the per-instruction fingerprints riding on the
# compiled steps are shared too.

import time as _time

from repro.errors import MALError as _MALError
from repro.mal.fingerprint import cached_fingerprints
from repro.mal.interpreter import lookup_opcode
from repro.mal.program import Instruction as _Instruction
from repro.storage import types as _dt


class CompiledStep:
    """One pre-bound instruction: the thunk plus recycling metadata."""

    __slots__ = ("thunk", "opcode", "line", "info", "dst", "dsts")

    def __init__(self, thunk, opcode: str, line: int, info,
                 dst: Optional[int], dsts: Optional[Tuple[int, ...]]):
        self.thunk = thunk
        self.opcode = opcode
        self.line = line
        self.info = info      # InstructionFP or None (side effects)
        self.dst = dst        # single-result slot, or None
        self.dsts = dsts      # multi-result slots, or None


class CompiledProgram:
    """A slot-compiled MAL plan: fire with :meth:`run` (and friends).

    ``thunks`` is the bare hot path; ``steps`` carries the per-
    instruction fingerprints the recycled path consults. Compiled
    programs hold no run state (registers are allocated per call), so
    one compilation is safely shared by every factory whose program is
    structurally identical — and by concurrent firings on the worker
    pool.
    """

    __slots__ = ("name", "nslots", "steps", "thunks")

    def __init__(self, name: str, nslots: int,
                 steps: List[CompiledStep]):
        self.name = name
        self.nslots = nslots
        self.steps = steps
        self.thunks = [step.thunk for step in steps]

    def __len__(self) -> int:
        return len(self.steps)

    def run(self, ctx) -> Any:
        """One firing, no recycling: the specialized inner loop."""
        regs: List[Any] = [None] * self.nslots
        for thunk in self.thunks:
            thunk(ctx, regs)
        return ctx.result

    # -- recycled execution -------------------------------------------

    @staticmethod
    def _value_of(step: CompiledStep, regs: List[Any]) -> Any:
        if step.dst is not None:
            return regs[step.dst]
        return tuple(regs[d] for d in step.dsts)

    @staticmethod
    def _bind(step: CompiledStep, value: Any, regs: List[Any]) -> None:
        if step.dst is not None:
            regs[step.dst] = value
        else:
            for d, v in zip(step.dsts, value):
                regs[d] = v

    def _recycled_step(self, step: CompiledStep, ctx, regs,
                       recycler, window_ranges,
                       check: bool = True) -> None:
        info = step.info
        if check and not recycler.should_attempt(info.fp):
            step.thunk(ctx, regs)
            return
        try:
            ranges = [(s,) + window_ranges[s] for s in info.streams]
        except KeyError:
            # a lineage stream this run has no window for — execute
            # without caching (mirrors the interpreter)
            step.thunk(ctx, regs)
            return
        key = recycler.instruction_key(info.fp, ranges)
        found, value = recycler.lookup(key)
        if found:
            if recycler.verify:
                self._verify_hit(step, ctx, regs, value)
            self._bind(step, value, regs)
            return
        started = _time.perf_counter()
        step.thunk(ctx, regs)
        cost_ms = (_time.perf_counter() - started) * 1000.0
        recycler.store(key, self._value_of(step, regs), cost_ms=cost_ms)

    def _verify_hit(self, step: CompiledStep, ctx, regs,
                    cached: Any) -> None:
        from repro.core.recycler import payloads_equal

        step.thunk(ctx, regs)
        fresh = self._value_of(step, regs)
        if not payloads_equal(cached, fresh):
            raise _MALError(
                f"recycler verify failed for {step.opcode} "
                f"(line {step.line} of {self.name}): cached "
                f"{cached!r} != fresh {fresh!r}")

    def run_recycled(self, ctx, recycler,
                     window_ranges: Dict[str, tuple],
                     modes: Optional[tuple] = None) -> Any:
        """One firing consulting the recycler by slot: recyclable steps
        look up their (fingerprint, window-ranges) key before invoking
        the thunk; misses execute, bind and publish.

        *modes* is an optional per-step admission mask (aligned with
        :attr:`steps`) the factory snapshots once per recycler
        ``census_version``: ``0`` runs the bare thunk, ``1`` attempts
        recycling without re-checking admission, ``2`` consults
        ``should_attempt`` per firing (uncensused fingerprints whose
        cold-store cutoff moves without a version bump). Without a
        mask every recyclable step pays the per-fire admission call."""
        regs: List[Any] = [None] * self.nslots
        if modes is None:
            for step in self.steps:
                info = step.info
                if info is None or not info.recyclable:
                    step.thunk(ctx, regs)
                else:
                    self._recycled_step(step, ctx, regs, recycler,
                                        window_ranges)
        else:
            for step, mode in zip(self.steps, modes):
                if mode == 0:
                    step.thunk(ctx, regs)
                else:
                    self._recycled_step(step, ctx, regs, recycler,
                                        window_ranges, check=mode == 2)
        return ctx.result

    def attempt_modes(self, recycler) -> tuple:
        """Per-step admission mask for :meth:`run_recycled`, valid
        until the recycler's ``census_version`` changes."""
        modes = []
        for step in self.steps:
            info = step.info
            if info is None or not info.recyclable:
                modes.append(0)
            else:
                modes.append(recycler.attempt_mode(info.fp))
        return tuple(modes)

    def run_profiled(self, ctx, profile: Dict[str, List[float]],
                     recycler=None,
                     window_ranges: Optional[Dict[str, tuple]] = None,
                     modes: Optional[tuple] = None) -> Any:
        """One firing with per-opcode wall-time accounting.

        *profile* maps opcode -> ``[calls, cumulative_ms]`` and is
        owned by the calling factory (its firing lock serializes
        updates, so no extra locking here)."""
        regs: List[Any] = [None] * self.nslots
        perf = _time.perf_counter
        for i, step in enumerate(self.steps):
            started = perf()
            info = step.info
            if (recycler is None or info is None or not info.recyclable
                    or (modes is not None and modes[i] == 0)):
                step.thunk(ctx, regs)
            else:
                self._recycled_step(
                    step, ctx, regs, recycler, window_ranges,
                    check=modes is None or modes[i] == 2)
            elapsed_ms = (perf() - started) * 1000.0
            cell = profile.get(step.opcode)
            if cell is None:
                profile[step.opcode] = [1, elapsed_ms]
            else:
                cell[0] += 1
                cell[1] += elapsed_ms
        return ctx.result

    def __repr__(self) -> str:
        return (f"CompiledProgram({self.name}, {len(self.steps)} ops, "
                f"{self.nslots} slots)")


# literal constant types safe to inline into generated source (repr
# round-trips exactly); everything else rides in the closed-over tuple
_INLINE_TYPES = (int, float, bool, str, type(None))


def _is_literal(value) -> bool:
    if type(value) in _INLINE_TYPES:
        return True
    if type(value) in (tuple, list):
        return all(_is_literal(v) for v in value)
    return False


def _const_source(value, consts: List[Any]) -> str:
    if _is_literal(value):
        return repr(value)
    consts.append(value)
    return f"C[{len(consts) - 1}]"


# arithmetic/comparison kernels broadcast bare scalars natively, so a
# literal column whose every consumer is one of these never needs to be
# materialized
_SCALAR_FOLD_CONSUMERS = frozenset((
    "batcalc.add", "batcalc.sub", "batcalc.mul", "batcalc.div",
    "batcalc.mod", "batcalc.eq", "batcalc.ne", "batcalc.lt",
    "batcalc.le", "batcalc.gt", "batcalc.ge"))


def _fold_scalar_consts(program: MALProgram) -> Dict[str, Any]:
    """Map of ``batcalc.const`` result names safe to keep as bare scalars.

    ``batcalc.const`` materializes one literal into an n-row column on
    every firing — pure per-fire overhead when each consumer is an
    arithmetic/comparison kernel that broadcasts scalars itself. Folds
    only INT/FLOAT (and NULL) literals; a name is dropped when any
    consumer needs a real BAT (anchors, emits, grouping), when it is
    rebound, or when folding would leave a kernel with no BAT operand
    to take the row count from.
    """
    candidates: Dict[str, Any] = {}
    defined: set = set()
    for instr in program.instructions:
        for name in instr.results:
            if name in defined:
                candidates.pop(name, None)
            defined.add(name)
        if (instr.opcode != "batcalc.const" or len(instr.results) != 1
                or len(instr.args) != 3
                or not isinstance(instr.args[0], Const)
                or not isinstance(instr.args[1], Const)):
            continue
        try:
            dtype = _dt.DataType.by_name(str(instr.args[0].value))
        except Exception:
            continue
        value = instr.args[1].value
        if value is None:
            scalar: Any = None
        elif (type(value) in (int, float) and dtype is _dt.INT):
            scalar = int(value)
        elif (type(value) in (int, float) and dtype is _dt.FLOAT):
            scalar = float(value)
        else:
            continue
        candidates[instr.results[0]] = scalar
    if not candidates:
        return candidates
    for instr in program.instructions:
        used = [a.name for a in instr.args
                if isinstance(a, Var) and a.name in candidates]
        if not used:
            continue
        if instr.opcode not in _SCALAR_FOLD_CONSUMERS:
            for name in used:
                candidates.pop(name, None)
            continue
        unfolded_vars = [a for a in instr.args if isinstance(a, Var)
                         and a.name not in candidates]
        if not unfolded_vars:
            # every operand would fold away: the kernel would have no
            # BAT to broadcast against — keep these as columns
            for name in used:
                candidates.pop(name, None)
    return candidates


def _compile_fold(scalar, name: str, slot_of: Dict[str, int],
                  nslots: int):
    """Thunk for a folded literal: one register store, no kernel."""
    slot = slot_of.get(name)
    if slot is None:
        slot = slot_of[name] = nslots
        nslots += 1
    source = f"def _thunk(ctx, R):\n    R[{slot}] = {scalar!r}"
    namespace: Dict[str, Any] = {}
    exec(compile(source, f"<mal:fold:{name}>", "exec"), namespace)
    key_part = ("fold.const",
                (("c", type(scalar).__name__, repr(scalar)),), slot)
    return namespace["_thunk"], key_part, slot, nslots


def _compile_instruction(program_name: str, line: int,
                         instr: _Instruction, slot_of: Dict[str, int],
                         nslots: int):
    """Build one thunk; returns ``(thunk, key_part, dst, dsts, nslots)``.

    ``key_part`` is the instruction's contribution to the canonical
    form the compilation memo is keyed on: opcode, per-argument
    slot-or-constant tokens, and result slots — everything that shapes
    the generated code.
    """
    impl = lookup_opcode(instr.opcode, line, program_name)
    consts: List[Any] = []
    arg_src: List[str] = []
    key_args: List[tuple] = []
    for arg in instr.args:
        if isinstance(arg, Var):
            slot = slot_of.get(arg.name)
            if slot is None:
                raise MALError(
                    f"unbound variable {arg.name} in {instr.opcode} "
                    f"(line {line} of {program_name})")
            arg_src.append(f"R[{slot}]")
            key_args.append(("s", slot))
        else:
            value = arg.value if isinstance(arg, Const) else arg
            arg_src.append(_const_source(value, consts))
            if _is_literal(value):
                key_args.append(
                    ("c", type(value).__name__, repr(value)))
            else:
                # non-literal payloads (arrays, objects) have no safe
                # canonical token — a unique marker keeps this program
                # out of the sharing memo rather than risking a false
                # repr-collision hit
                key_args.append(("c*", object()))
    call = f"F(ctx, {', '.join(arg_src)})" if arg_src else "F(ctx)"

    dst = dsts = None
    results = instr.results
    if len(results) == 0:
        body = [f"    {call}"]
    elif len(results) == 1:
        name = results[0]
        slot = slot_of.get(name)
        if slot is None:
            slot = slot_of[name] = nslots
            nslots += 1
        dst = slot
        body = [f"    R[{slot}] = {call}"]
    else:
        slots = []
        for name in results:
            slot = slot_of.get(name)
            if slot is None:
                slot = slot_of[name] = nslots
                nslots += 1
            slots.append(slot)
        dsts = tuple(slots)
        body = [f"    out = {call}",
                f"    if type(out) is not tuple "
                f"or len(out) != {len(dsts)}:",
                f"        raise MALError("
                f"'{instr.opcode}: expected {len(dsts)} results')"]
        body.extend(f"    R[{slot}] = out[{i}]"
                    for i, slot in enumerate(dsts))

    source = "def _thunk(ctx, R, F=F, C=C):\n" + "\n".join(body)
    namespace = {"F": impl, "C": tuple(consts), "MALError": MALError}
    exec(compile(source, f"<mal:{program_name}:{line}>", "exec"),
         namespace)
    key_part = (instr.opcode, tuple(key_args),
                dst if dsts is None else dsts)
    return namespace["_thunk"], key_part, dst, dsts, nslots


# canonical-form memo: structurally identical programs share one
# CompiledProgram (bounded; cleared wholesale when it overflows)
_COMPILE_CACHE: Dict[tuple, CompiledProgram] = {}
_COMPILE_CACHE_MAX = 512
_COMPILE_STATS = {"compiles": 0, "cache_hits": 0, "fallbacks": 0,
                  "const_folds": 0}


def record_compile_fallback() -> None:
    """Count a factory falling back to the interpreter (compile
    failure on an open-opcode-table program)."""
    _COMPILE_STATS["fallbacks"] += 1


def compile_stats() -> Dict[str, int]:
    """Process-wide slot-compiler counters (monitor ``.interp``
    pane)."""
    return {"compiles": _COMPILE_STATS["compiles"],
            "compile_cache_hits": _COMPILE_STATS["cache_hits"],
            "compile_fallbacks": _COMPILE_STATS["fallbacks"],
            "compile_const_folds": _COMPILE_STATS["const_folds"],
            "compile_cache_entries": len(_COMPILE_CACHE)}


def compile_program(program: MALProgram) -> CompiledProgram:
    """Slot-compile *program* (memoized on its canonical form).

    Raises :class:`MALError` at compile time for unknown opcodes or
    unbound variables — callers that tolerate open-table programs
    should catch it and fall back to the interpreter.
    """
    infos = cached_fingerprints(program)
    folded = _fold_scalar_consts(program)
    fold_lines: set = set()
    slot_of: Dict[str, int] = {}
    nslots = 0
    compiled: List[tuple] = []
    key_parts: List[tuple] = []
    for line, instr in enumerate(program.instructions):
        if (instr.opcode == "batcalc.const"
                and len(instr.results) == 1
                and instr.results[0] in folded):
            thunk, key_part, dst, nslots = _compile_fold(
                folded[instr.results[0]], instr.results[0],
                slot_of, nslots)
            compiled.append((thunk, instr.opcode, line, dst, None))
            key_parts.append(key_part)
            fold_lines.add(line)
            _COMPILE_STATS["const_folds"] += 1
            continue
        thunk, key_part, dst, dsts, nslots = _compile_instruction(
            program.name, line, instr, slot_of, nslots)
        compiled.append((thunk, instr.opcode, line, dst, dsts))
        key_parts.append(key_part)
    key: Optional[tuple] = (nslots, tuple(key_parts))
    try:
        hash(key)
    except TypeError:
        key = None  # unhashable raw args: compile fresh, skip the memo
    if key is not None:
        cached = _COMPILE_CACHE.get(key)
        if cached is not None:
            _COMPILE_STATS["cache_hits"] += 1
            return cached
    steps = [CompiledStep(thunk, opcode, line,
                          None if line in fold_lines else infos[line],
                          dst, dsts)
             for thunk, opcode, line, dst, dsts in compiled]
    result = CompiledProgram(program.name, nslots, steps)
    _COMPILE_STATS["compiles"] += 1
    if key is not None:
        if len(_COMPILE_CACHE) >= _COMPILE_CACHE_MAX:
            _COMPILE_CACHE.clear()
        _COMPILE_CACHE[key] = result
    return result
