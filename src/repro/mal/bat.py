"""Binary Association Tables — the unit of storage of the column-store.

A MonetDB BAT conceptually maps a *head* of object identifiers (oids) to a
*tail* of values. Modern MonetDB keeps the head virtual: a dense oid range
starting at ``hseqbase``. We reproduce that: a :class:`BAT` is a growable
typed vector (:class:`VectorHeap`) plus an ``hseqbase``.

Intermediates produced by selections are *candidate lists*: sorted int64
numpy arrays of **positions** (0-based indexes into the BAT's active
region). Keeping candidates positional keeps every kernel operator a plain
numpy gather/scatter.

Baskets drain consumed tuples from the front; ``BAT.delete_head`` supports
that in O(1) amortized by moving a logical offset and compacting lazily.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, List, Optional, Sequence

import numpy as np

from repro.errors import KernelError
from repro.storage import types as dt

_MIN_CAPACITY = 16
# compact the heap when the dead prefix exceeds both this many slots and
# half of the allocated capacity
_COMPACT_SLACK = 1024


class VectorHeap:
    """A growable, typed storage vector (MonetDB's tail heap).

    Appends are amortized O(1) with capacity doubling. The active region
    is ``[offset, offset + count)``; ``drop_head`` advances ``offset``.
    """

    __slots__ = ("dtype", "_data", "_offset", "_count", "reallocs")

    def __init__(self, dtype: dt.DataType, capacity: int = 0):
        self.dtype = dtype
        self._data = dtype.empty(max(capacity, 0))
        self._offset = 0
        self._count = 0
        # buffer replacements since construction; geometric growth keeps
        # this O(log n) for n appends (asserted in the tier-1 tests)
        self.reallocs = 0

    def __len__(self) -> int:
        return self._count

    @property
    def capacity(self) -> int:
        return len(self._data)

    def view(self) -> np.ndarray:
        """Active region as a numpy view (do not mutate)."""
        return self._data[self._offset:self._offset + self._count]

    def _ensure_room(self, extra: int) -> None:
        needed = self._offset + self._count + extra
        if needed <= len(self._data):
            return
        # reclaim the dead prefix only when it is at least half the
        # allocation: each live element then moves O(1) times amortized.
        # Compacting on *any* reclaimable slack turns the steady-state
        # drop_head(1)/append(1) loop of a sliding basket into an O(n)
        # memmove per append — quadratic overall.
        if (self._offset * 2 >= len(self._data)
                and self._count + extra <= len(self._data)):
            self._compact()
            return
        # geometric (>=2x) growth keeps reallocations logarithmic
        new_cap = max(_MIN_CAPACITY, 2 * len(self._data))
        while new_cap < self._count + extra:
            new_cap *= 2
        fresh = self.dtype.empty(new_cap)
        fresh[:self._count] = self.view()
        self._data = fresh
        self._offset = 0
        self.reallocs += 1

    def _compact(self) -> None:
        if self._offset == 0:
            return
        self._data[:self._count] = self.view()
        self._offset = 0

    @classmethod
    def _adopt(cls, dtype: dt.DataType, array: np.ndarray) -> "VectorHeap":
        """Wrap a freshly-allocated storage array as the backing store —
        zero copy. The caller transfers ownership of *array*."""
        heap = cls.__new__(cls)
        heap.dtype = dtype
        heap._data = array
        heap._offset = 0
        heap._count = len(array)
        heap.reallocs = 0
        return heap

    def append(self, value: Any) -> None:
        self._ensure_room(1)
        self._data[self._offset + self._count] = value
        self._count += 1

    def extend(self, values) -> None:
        # fast path: already a storage array of the target dtype (the
        # common case after batch ingest staging) — no staging copy.
        # Contiguity does not matter: the slice assignment below gathers
        # strided sources directly into the heap
        if not (isinstance(values, np.ndarray)
                and values.dtype == self.dtype.np_dtype):
            if self.dtype.is_string:
                vals = values if isinstance(values, list) \
                    else list(values)
                values = np.empty(len(vals), dtype=object)
                values[:] = vals
            else:
                values = np.asarray(values, dtype=self.dtype.np_dtype)
        n = len(values)
        if n == 0:
            return
        self._ensure_room(n)
        start = self._offset + self._count
        self._data[start:start + n] = values
        self._count += n

    def drop_head(self, n: int) -> None:
        """Logically delete the first *n* values of the active region."""
        if n < 0 or n > self._count:
            raise KernelError(f"drop_head({n}) out of range 0..{self._count}")
        self._offset += n
        self._count -= n
        if self._offset > _COMPACT_SLACK and self._offset * 2 > len(self._data):
            self._compact()

    def clear(self) -> None:
        self._offset = 0
        self._count = 0


class BAT:
    """A Binary Association Table: virtual dense head + typed tail.

    Positions are 0-based indexes into the active region; the absolute oid
    of position ``p`` is ``hseqbase + p``. ``hseqbase`` advances when head
    tuples are deleted (as baskets drain), so oids stay stable for the
    lifetime of a tuple — exactly what sliding-window bookkeeping needs.
    """

    __slots__ = ("dtype", "_heap", "hseqbase")

    def __init__(self, dtype: dt.DataType, capacity: int = 0, hseqbase: int = 0):
        self.dtype = dtype
        self._heap = VectorHeap(dtype, capacity)
        self.hseqbase = hseqbase

    # -- construction ------------------------------------------------

    @classmethod
    def from_values(cls, dtype: dt.DataType, values: Iterable[Any],
                    coerce: bool = False) -> "BAT":
        """Build a BAT from an iterable of Python/storage values.

        With ``coerce=True`` each value goes through
        :func:`repro.storage.types.coerce_value` (None becomes nil).
        """
        bat = cls(dtype)
        if coerce:
            bat._heap.extend(dt.coerce_column(dtype, values))
            return bat
        if dtype.is_string:
            vals = list(values)
            arr = np.empty(len(vals), dtype=object)
            arr[:] = vals
            bat._heap.extend(arr)
        else:
            bat._heap.extend(np.asarray(list(values), dtype=dtype.np_dtype))
        return bat

    @classmethod
    def from_array(cls, dtype: dt.DataType, array: np.ndarray) -> "BAT":
        """Wrap an existing storage array (copied into the heap)."""
        bat = cls(dtype)
        bat._heap.extend(array)
        return bat

    @classmethod
    def adopt_array(cls, dtype: dt.DataType, array: np.ndarray,
                    hseqbase: int = 0) -> "BAT":
        """Wrap a freshly-computed storage array without copying.

        Ownership transfers to the BAT — the caller must not touch the
        array afterwards. Falls back to :meth:`from_array` (a copy) when
        the array is a view, read-only, or of the wrong dtype, so kernel
        results can use it unconditionally. *hseqbase* positions the
        virtual head — log recovery adopts a segment read at the oid
        range the tuples had before the crash.
        """
        if (isinstance(array, np.ndarray) and array.ndim == 1
                and array.dtype == dtype.np_dtype
                and array.flags.owndata and array.flags.writeable):
            bat = cls.__new__(cls)
            bat.dtype = dtype
            bat.hseqbase = hseqbase
            bat._heap = VectorHeap._adopt(dtype, array)
            return bat
        bat = cls.from_array(dtype, array)
        bat.hseqbase = hseqbase
        return bat

    @classmethod
    def adopt_view(cls, dtype: dt.DataType, array: np.ndarray,
                   hseqbase: int = 0) -> "BAT":
        """Wrap a read-only view (e.g. an ``np.memmap`` over a sealed
        log segment) without copying.

        Unlike :meth:`adopt_array` this does **not** require ownership
        or writability — the caller guarantees the backing storage is
        immutable for the BAT's lifetime. Kernels only ever read
        operand BATs, so a mapped segment window flows through plans
        untouched; anything that must mutate goes through fresh result
        arrays anyway. Falls back to a copy only on a dtype mismatch.
        """
        if (isinstance(array, np.ndarray) and array.ndim == 1
                and array.dtype == dtype.np_dtype):
            bat = cls.__new__(cls)
            bat.dtype = dtype
            bat.hseqbase = hseqbase
            bat._heap = VectorHeap._adopt(dtype, array)
            return bat
        bat = cls.from_array(dtype, array)
        bat.hseqbase = hseqbase
        return bat

    # -- basic accessors ---------------------------------------------

    def __len__(self) -> int:
        return len(self._heap)

    @property
    def values(self) -> np.ndarray:
        """Active tail as a numpy view; treat as read-only."""
        return self._heap.view()

    def get(self, position: int) -> Any:
        """Python value at *position* (nil -> None)."""
        if position < 0 or position >= len(self):
            raise KernelError(f"position {position} out of range")
        return dt.from_storage(self.dtype, self._heap.view()[position])

    def tolist(self) -> List[Any]:
        """Active tail as Python values (nil -> None)."""
        return [dt.from_storage(self.dtype, v) for v in self._heap.view()]

    def __iter__(self) -> Iterator[Any]:
        return iter(self.tolist())

    # -- mutation ----------------------------------------------------

    def append(self, value: Any, coerce: bool = False) -> None:
        if coerce:
            value = dt.coerce_value(self.dtype, value)
        self._heap.append(value)

    def extend(self, values, coerce: bool = False) -> None:
        if coerce:
            values = dt.coerce_column(self.dtype, values)
        # VectorHeap.extend handles dtype staging (with a no-copy fast
        # path for arrays already in storage form)
        self._heap.extend(values)

    def append_bat(self, other: "BAT") -> None:
        if other.dtype != self.dtype:
            raise KernelError(
                f"cannot append {other.dtype} BAT to {self.dtype} BAT")
        self._heap.extend(other.values)

    def delete_head(self, n: int) -> None:
        """Delete the oldest *n* tuples; advances ``hseqbase`` by *n*."""
        self._heap.drop_head(n)
        self.hseqbase += n

    def clear(self) -> None:
        self.hseqbase += len(self)
        self._heap.clear()

    # -- derivation --------------------------------------------------

    def slice(self, start: int, stop: Optional[int] = None) -> "BAT":
        """New BAT holding positions ``[start, stop)`` (values copied)."""
        view = self._heap.view()[start:stop]
        out = BAT(self.dtype, hseqbase=self.hseqbase + start)
        out._heap.extend(view.copy())
        return out

    def take(self, positions: np.ndarray) -> "BAT":
        """New BAT of the values at *positions* (a candidate list)."""
        out = BAT(self.dtype)
        out._heap.extend(self._heap.view()[positions])
        return out

    def copy(self) -> "BAT":
        out = BAT(self.dtype, hseqbase=self.hseqbase)
        out._heap.extend(self._heap.view().copy())
        return out

    def nil_mask(self) -> np.ndarray:
        return dt.nil_mask(self.dtype, self.values)

    def __repr__(self) -> str:
        head = ", ".join(repr(v) for v in self.tolist()[:8])
        more = ", ..." if len(self) > 8 else ""
        return (f"BAT<{self.dtype.name}>@{self.hseqbase}"
                f"[{len(self)}]({head}{more})")


def empty_candidates() -> np.ndarray:
    """The empty candidate list."""
    return np.empty(0, dtype=np.int64)


def all_candidates(n: int) -> np.ndarray:
    """Candidate list selecting every position of an n-tuple BAT."""
    return np.arange(n, dtype=np.int64)


def as_candidates(positions: Sequence[int]) -> np.ndarray:
    """Normalize a position sequence into a sorted int64 candidate list."""
    cand = np.asarray(positions, dtype=np.int64)
    if cand.ndim != 1:
        raise KernelError("candidate list must be one-dimensional")
    if len(cand) > 1 and not np.all(cand[1:] >= cand[:-1]):
        cand = np.sort(cand)
    return cand
