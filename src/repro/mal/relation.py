"""In-flight columnar relations: the value flowing between plan operators.

A :class:`Relation` is an ordered set of equally long named BATs — the
columnar equivalent of an operator's output table. Query results are
Relations; so are the intermediates the DataCell incremental engine
caches between window slides.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import KernelError
from repro.mal.bat import BAT
from repro.storage.schema import ColumnDef, Schema


class Relation:
    """An ordered mapping of column name -> BAT with uniform length."""

    def __init__(self, columns: "Sequence[Tuple[str, BAT]]" = ()):
        self._names: List[str] = []
        self._bats: Dict[str, BAT] = {}
        for name, bat in columns:
            self.add(name, bat)

    @classmethod
    def from_rows(cls, schema: Schema, rows: Sequence[Sequence[Any]]
                  ) -> "Relation":
        """Build a relation from Python row tuples (values coerced)."""
        cols = list(zip(*rows)) if rows else [[] for _ in schema.columns]
        rel = cls()
        for coldef, values in zip(schema.columns, cols):
            rel.add(coldef.name,
                    BAT.from_values(coldef.dtype, values, coerce=True))
        return rel

    @classmethod
    def empty(cls, schema: Schema) -> "Relation":
        return cls((c.name, BAT(c.dtype)) for c in schema.columns)

    def add(self, name: str, bat: BAT) -> None:
        name = name.lower()
        if name in self._bats:
            raise KernelError(f"duplicate column {name!r} in relation")
        if self._names and len(bat) != self.row_count:
            raise KernelError(
                f"column {name!r} has {len(bat)} rows, expected "
                f"{self.row_count}")
        self._names.append(name)
        self._bats[name] = bat

    # -- accessors ----------------------------------------------------

    @property
    def names(self) -> List[str]:
        return list(self._names)

    @property
    def row_count(self) -> int:
        if not self._names:
            return 0
        return len(self._bats[self._names[0]])

    def __len__(self) -> int:
        return self.row_count

    def __contains__(self, name: str) -> bool:
        return name.lower() in self._bats

    def column(self, name: str) -> BAT:
        try:
            return self._bats[name.lower()]
        except KeyError:
            raise KernelError(f"no column {name!r} in relation "
                              f"{self._names}") from None

    def columns(self) -> Iterator[Tuple[str, BAT]]:
        for name in self._names:
            yield name, self._bats[name]

    def schema(self) -> Schema:
        return Schema(ColumnDef(n, self._bats[n].dtype)
                      for n in self._names)

    # -- derivation ---------------------------------------------------

    def take(self, positions: np.ndarray) -> "Relation":
        """Gather rows at *positions* into a new relation."""
        return Relation((n, b.take(positions)) for n, b in self.columns())

    def select_columns(self, names: Sequence[str]) -> "Relation":
        return Relation((n, self.column(n)) for n in names)

    def renamed(self, names: Sequence[str]) -> "Relation":
        if len(names) != len(self._names):
            raise KernelError("renamed: wrong number of names")
        return Relation((new, self._bats[old])
                        for new, old in zip(names, self._names))

    def concat(self, other: "Relation") -> "Relation":
        """Row-wise concatenation (UNION ALL of compatible relations)."""
        if other.names != self.names:
            raise KernelError("concat: column names differ")
        out = Relation()
        for name, bat in self.columns():
            merged = bat.copy()
            merged.append_bat(other.column(name))
            out.add(name, merged)
        return out

    def slice_rows(self, start: int, stop: Optional[int] = None
                   ) -> "Relation":
        return Relation((n, b.slice(start, stop)) for n, b in self.columns())

    # -- conversion ---------------------------------------------------

    def to_rows(self) -> List[Tuple[Any, ...]]:
        """Materialize as Python row tuples (nil -> None)."""
        cols = [self._bats[n].tolist() for n in self._names]
        return list(zip(*cols)) if cols else []

    def to_dict(self) -> Dict[str, List[Any]]:
        return {n: self._bats[n].tolist() for n in self._names}

    def row(self, i: int) -> Tuple[Any, ...]:
        return tuple(self._bats[n].get(i) for n in self._names)

    def pretty(self, limit: int = 20) -> str:
        """Fixed-width textual rendering (the demo's result pane)."""
        rows = self.to_rows()[:limit]
        headers = self._names
        cells = [[("NULL" if v is None else str(v)) for v in row]
                 for row in rows]
        widths = [max([len(h)] + [len(r[i]) for r in cells])
                  for i, h in enumerate(headers)]
        sep = "+" + "+".join("-" * (w + 2) for w in widths) + "+"
        out = [sep,
               "|" + "|".join(f" {h:<{w}} " for h, w in zip(headers, widths))
               + "|", sep]
        for row in cells:
            out.append("|" + "|".join(
                f" {c:<{w}} " for c, w in zip(row, widths)) + "|")
        out.append(sep)
        if self.row_count > limit:
            out.append(f"... {self.row_count - limit} more rows")
        return "\n".join(out)

    def __repr__(self) -> str:
        return f"Relation({self._names}, rows={self.row_count})"
