"""The columnar kernel: BATs, bulk operators, MAL programs."""

from repro.mal.bat import BAT, all_candidates, as_candidates, empty_candidates
from repro.mal.relation import Relation

__all__ = ["BAT", "Relation", "all_candidates", "as_candidates",
           "empty_candidates"]
